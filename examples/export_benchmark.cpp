// Exports the complete A-EDA benchmark as plain files — the shareable
// artifact the paper published [5]: every experimental dataset as CSV and
// every gold-standard notebook as an operation script (parseable back by
// eval/script_parser.h and scoreable with examples/aeda_score).
//
//   ./export_benchmark [output_dir]        (default: ./aeda_benchmark)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/registry.h"
#include "dataframe/csv.h"
#include "eval/gold.h"
#include "eval/script_parser.h"

int main(int argc, char** argv) {
  using namespace atena;
  const std::string out_dir = argc > 1 ? argv[1] : "aeda_benchmark";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  for (const auto& id : ExperimentalDatasetIds()) {
    auto dataset = MakeDataset(id);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    const std::string csv_path = out_dir + "/" + id + ".csv";
    if (auto s = WriteCsvFile(*dataset.value().table, csv_path); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", csv_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }

    auto scripts = GoldOperationScripts(dataset.value());
    if (!scripts.ok()) {
      std::fprintf(stderr, "%s gold: %s\n", id.c_str(),
                   scripts.status().ToString().c_str());
      return 1;
    }
    for (size_t k = 0; k < scripts.value().size(); ++k) {
      const std::string script_path =
          out_dir + "/" + id + ".gold" + std::to_string(k + 1) + ".eda";
      std::ofstream out(script_path);
      out << "# gold-standard notebook " << (k + 1) << " for " << id << " ("
          << dataset.value().info.description << ")\n";
      out << FormatOperationScript(scripts.value()[k],
                                   *dataset.value().table);
      if (!out) {
        std::fprintf(stderr, "write failed: %s\n", script_path.c_str());
        return 1;
      }
    }
    std::printf("%-10s -> %s.csv + %zu gold scripts\n", id.c_str(),
                id.c_str(), scripts.value().size());
  }
  std::printf("benchmark exported to %s/\n", out_dir.c_str());
  std::printf("score an external notebook with:\n"
              "  ./aeda_score <dataset_id> <script.eda>\n");
  return 0;
}
