// A-EDA benchmark CLI: scores an externally produced EDA notebook against
// this repository's gold standard — the role of the paper's public
// benchmark release [5], so future auto-EDA models can be compared without
// rerunning a user study.
//
//   ./aeda_score <dataset_id> <script_file>
//   ./aeda_score flights4 my_notebook.eda
//
// The script format is one operation per line (see
// eval/script_parser.h):
//
//   GROUP month AVG departure_delay
//   FILTER month == June
//   BACK
//
// With no arguments, scores a small built-in demo script on flights4.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/registry.h"
#include "eval/gold.h"
#include "eval/insights.h"
#include "eval/metrics.h"
#include "eval/script_parser.h"

namespace {

const char kDemoScript[] =
    "# demo notebook: the Example 1.1 narrative\n"
    "GROUP month AVG departure_delay\n"
    "FILTER month == June\n"
    "GROUP origin_airport AVG departure_delay\n"
    "BACK\n"
    "GROUP delay_reason COUNT\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace atena;
  std::string dataset_id = argc > 1 ? argv[1] : "flights4";
  std::string script_text;
  if (argc > 2) {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    script_text = buffer.str();
  } else {
    script_text = kDemoScript;
    std::printf("(no script given; scoring the built-in demo script)\n");
  }

  auto dataset = MakeDataset(dataset_id);
  if (!dataset.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset_id.c_str());
    return 1;
  }
  auto ops = ParseOperationScript(script_text, *dataset.value().table);
  if (!ops.ok()) {
    std::fprintf(stderr, "script error: %s\n",
                 ops.status().ToString().c_str());
    return 1;
  }

  EnvConfig env_config;
  EdaEnvironment env(dataset.value(), env_config);
  EdaNotebook notebook =
      ReplayOperations(&env, ops.value(), "external");
  std::printf("replayed %zu operations (%zu valid) on %s\n",
              ops.value().size(), notebook.entries.size(),
              dataset_id.c_str());

  auto gold = GoldNotebooks(dataset.value(), env_config);
  if (!gold.ok()) {
    std::fprintf(stderr, "gold error: %s\n",
                 gold.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<ViewSignature>> gold_views;
  for (const auto& g : gold.value()) {
    gold_views.push_back(NotebookSignatures(g));
  }
  AedaScores scores =
      ComputeAedaScores(NotebookSignatures(notebook), gold_views);
  std::printf("A-EDA scores vs %zu gold notebooks:\n", gold_views.size());
  std::printf("  Precision : %.3f\n", scores.precision);
  std::printf("  T-BLEU-1  : %.3f\n", scores.t_bleu_1);
  std::printf("  T-BLEU-2  : %.3f\n", scores.t_bleu_2);
  std::printf("  T-BLEU-3  : %.3f\n", scores.t_bleu_3);
  std::printf("  EDA-Sim   : %.3f\n", scores.eda_sim);

  auto catalog = InsightCatalog(dataset_id);
  if (!catalog.empty()) {
    std::printf("  Insights  : %.0f%% of %zu gathered\n",
                100.0 * InsightCoverage(notebook, catalog), catalog.size());
  }
  return 0;
}
