// API example: running ATENA on your own CSV file (the paper's §3 workflow:
// "the user uploads a tabular dataset, then selects focal attributes").
//
//   ./custom_csv_dataset [path/to/data.csv] [focal_attr ...]
//
// When no path is given, the example first exports one of the bundled
// datasets to CSV and reads it back, so it is runnable out of the box. The
// CSV reader infers column types (int64 / float64 / string) from the data.

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/atena.h"
#include "data/registry.h"
#include "dataframe/csv.h"
#include "notebook/render.h"

int main(int argc, char** argv) {
  using namespace atena;
  SetLogLevel(LogLevel::kInfo);

  std::string path;
  std::vector<std::string> focal;
  if (argc > 1) {
    path = argv[1];
    for (int i = 2; i < argc; ++i) focal.emplace_back(argv[i]);
  } else {
    // Bootstrap: export a bundled dataset so the example is self-contained.
    auto bundled = MakeDataset("cyber3");
    if (!bundled.ok()) return 1;
    path = "custom_dataset_demo.csv";
    if (!WriteCsvFile(*bundled.value().table, path).ok()) return 1;
    focal = {"host", "source_ip"};
    std::printf("(no CSV given; exported demo dataset to %s)\n",
                path.c_str());
  }

  auto table = ReadCsvFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %s: %lld rows, %d columns\n", path.c_str(),
              static_cast<long long>(table.value()->num_rows()),
              table.value()->num_columns());
  for (int c = 0; c < table.value()->num_columns(); ++c) {
    std::printf("  %-24s %s\n", table.value()->column_name(c).c_str(),
                DataTypeName(table.value()->column(c)->type()));
  }

  // Wrap the table as a Dataset with the user's focal attributes.
  Dataset dataset;
  dataset.table = table.value();
  dataset.info.id = table.value()->name();
  dataset.info.title = table.value()->name();
  dataset.info.description = "user-provided CSV";
  dataset.info.domain = "custom";
  dataset.info.focal_attributes = focal;

  AtenaOptions options;
  options.trainer.total_steps = 4000;
  ApplyTrainStepsFromEnv(&options);
  auto result = RunAtena(dataset, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  auto text = RenderText(result.value().notebook);
  if (text.ok()) std::printf("%s\n", text.value().c_str());
  return 0;
}
