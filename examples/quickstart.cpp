// Quickstart: generate an EDA notebook for one of the bundled datasets.
//
//   ./quickstart [dataset_id] [train_steps]
//
// Runs the full ATENA pipeline — environment construction, weak-supervision
// coherency training, reward calibration, DRL training with the twofold
// architecture, and best-episode notebook extraction — then prints the
// notebook with its exploration tree.

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/atena.h"
#include "data/registry.h"
#include "notebook/render.h"

int main(int argc, char** argv) {
  atena::SetLogLevel(atena::LogLevel::kInfo);
  const std::string dataset_id = argc > 1 ? argv[1] : "flights4";

  auto dataset = atena::MakeDataset(dataset_id);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  atena::AtenaOptions options;
  options.trainer.total_steps = 4000;
  atena::ApplyTrainStepsFromEnv(&options);
  if (argc > 2) {
    int64_t steps = 0;
    if (atena::ParseInt64(argv[2], &steps) && steps > 0) {
      options.trainer.total_steps = static_cast<int>(steps);
    }
  }

  std::printf("Generating EDA notebook for %s (%lld rows, %d train steps)\n",
              dataset.value().info.title.c_str(),
              static_cast<long long>(dataset.value().table->num_rows()),
              options.trainer.total_steps);

  auto result = atena::RunAtena(dataset.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  atena::RenderOptions render;
  render.include_rewards = true;
  auto text = atena::RenderText(result.value().notebook, render);
  if (!text.ok()) {
    std::fprintf(stderr, "render error: %s\n",
                 text.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", text.value().c_str());
  std::printf("best episode reward: %.3f over %d episodes\n",
              result.value().training.best_episode_reward,
              result.value().training.episodes);
  return 0;
}
