// Extension example: transferring a trained policy across datasets (the
// paper's future-work item "generalizing its learning process across
// datasets", §7).
//
//   ./transfer_flights [train_steps] [--actors N] [--threads N]
//                      [--guardrails]
//
// --actors N trains with N parallel exploration actors on the source
// dataset; --threads N sets the environment-stepping concurrency (default:
// one thread per actor, capped at the hardware concurrency). The thread
// count never changes the trained weights — see DESIGN.md §9.
// --guardrails arms the training guard (DESIGN.md §10): anomalous updates
// roll back to the last good snapshot and retry with a backed-off learning
// rate; guard events land in transfer_flights_health.jsonl.
//
// All flights datasets share one schema, so their observation and action
// spaces are identical. This example trains ATENA's twofold policy on
// Flights #2 (BOS departures), saves the weights, loads them into a fresh
// policy attached to Flights #3 (SFO→LAX), and compares the transferred
// policy's episode reward against an untrained policy on the target
// dataset — zero-shot transfer of exploration skill.

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "nn/serialization.h"
#include "notebook/render.h"
#include "reward/compound.h"
#include "rl/parallel_trainer.h"
#include "rl/rollout.h"
#include "rl/trainer.h"

int main(int argc, char** argv) {
  using namespace atena;
  SetLogLevel(LogLevel::kInfo);
  // Ctrl-C stops training at the next update boundary after flushing a
  // checkpoint; rerunning resumes from it bit-identically. A second Ctrl-C
  // falls back to the default fatal handling.
  std::signal(SIGINT, [](int) {
    RequestTrainingStop();
    std::signal(SIGINT, SIG_DFL);
  });

  int total_steps = 6000;
  int num_actors = 1;
  int num_threads = 0;  // auto: one per actor, capped at hardware threads
  bool guardrails = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t value = 0;
    if ((arg == "--actors" || arg == "--threads") && i + 1 < argc &&
        ParseInt64(argv[i + 1], &value) && value > 0) {
      (arg == "--actors" ? num_actors : num_threads) =
          static_cast<int>(value);
      ++i;
    } else if (arg == "--guardrails") {
      guardrails = true;
    } else if (ParseInt64(arg, &value) && value > 0) {
      total_steps = static_cast<int>(value);
    } else {
      std::fprintf(stderr,
                   "usage: %s [train_steps] [--actors N] [--threads N] "
                   "[--guardrails]\n",
                   argv[0]);
      return 1;
    }
  }

  EnvConfig env_config;
  TwofoldPolicy::Options policy_options;

  // --- 1. Train on the source dataset (Flights #2), optionally with
  // several parallel exploration actors sharing one trained coherency
  // classifier and display cache (each actor keeps its own stateful reward
  // clone; see core/atena.cc for the same wiring behind RunAtena).
  auto source = MakeDataset("flights2");
  if (!source.ok()) return 1;
  std::vector<std::unique_ptr<EdaEnvironment>> source_envs;
  for (int e = 0; e < num_actors; ++e) {
    EnvConfig config = env_config;
    config.seed = env_config.seed + static_cast<uint64_t>(e);
    source_envs.push_back(
        std::make_unique<EdaEnvironment>(source.value(), config));
  }
  EdaEnvironment& source_env = *source_envs[0];
  auto source_reward = MakeStandardReward(&source_env);
  if (!source_reward.ok()) return 1;
  source_env.SetRewardSignal(source_reward.value().get());
  std::vector<std::unique_ptr<CompoundReward>> actor_rewards;
  for (int e = 1; e < num_actors; ++e) {
    actor_rewards.push_back(std::make_unique<CompoundReward>(
        source_reward.value()->coherency(), source_reward.value()->options()));
    source_envs[static_cast<size_t>(e)]->SetRewardSignal(
        actor_rewards.back().get());
  }
  TwofoldPolicy policy(source_env.observation_dim(),
                       source_env.action_space(), policy_options);
  TrainerOptions trainer_options;
  trainer_options.total_steps = total_steps;
  trainer_options.num_threads = num_threads;
  trainer_options.checkpoint_path = "atena_flights_policy.ckpt";
  trainer_options.checkpoint_every_updates = 5;
  trainer_options.resume = true;
  if (guardrails) {
    trainer_options.guardrails.enabled = true;
    trainer_options.guardrails.health_log_path =
        "transfer_flights_health.jsonl";
  }
  std::vector<EdaEnvironment*> env_ptrs;
  for (const auto& e : source_envs) env_ptrs.push_back(e.get());
  ParallelPpoTrainer trainer(env_ptrs, &policy, trainer_options);
  TrainingResult training = trainer.Train();
  if (guardrails) {
    std::printf("training guard: %lld event(s), %d rollback(s), final LR "
                "scale %.4g%s\n",
                static_cast<long long>(training.guard.events),
                training.guard.rollbacks, training.guard.lr_scale,
                training.guard.events > 0
                    ? " — see transfer_flights_health.jsonl"
                    : "");
  }
  if (!training.guard_status.ok()) {
    std::fprintf(stderr,
                 "training aborted by guard: %s\nweights were rolled back "
                 "to the last good update; see "
                 "transfer_flights_health.jsonl\n",
                 training.guard_status.ToString().c_str());
    return 1;
  }
  if (training.interrupted) {
    std::printf("training interrupted — checkpoint flushed to %s; rerun to "
                "resume where it left off\n",
                trainer_options.checkpoint_path.c_str());
    return 0;
  }
  std::printf("trained on flights2: final mean episode reward %.3f\n",
              training.final_mean_reward);

  const std::string checkpoint = "atena_flights_policy.nn";
  if (auto s = SaveParameters(policy.Parameters(), checkpoint); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved policy to %s (%lld parameters)\n", checkpoint.c_str(),
              static_cast<long long>(policy.NumParameters()));

  // --- 2. Evaluate zero-shot on the target dataset (Flights #3).
  auto target = MakeDataset("flights3");
  if (!target.ok()) return 1;
  EdaEnvironment target_env(target.value(), env_config);
  auto target_reward = MakeStandardReward(&target_env);
  if (!target_reward.ok()) return 1;
  target_env.SetRewardSignal(target_reward.value().get());

  auto evaluate = [&](Policy* p, const char* label) {
    Rng rng(424242);
    double best = -1e18;
    double mean = 0.0;
    const int episodes = 16;
    EdaNotebook best_notebook;
    for (int episode = 0; episode < episodes; ++episode) {
      double reward = 0.0;
      EdaNotebook notebook =
          RolloutNotebook(&target_env, p, &rng, label, &reward);
      mean += reward;
      if (reward > best) {
        best = reward;
        best_notebook = std::move(notebook);
      }
    }
    mean /= episodes;
    std::printf("%-24s flights3 episode reward: mean %.3f, best %.3f\n",
                label, mean, best);
    return best_notebook;
  };

  TwofoldPolicy untrained(target_env.observation_dim(),
                          target_env.action_space(), policy_options);
  evaluate(&untrained, "untrained");

  TwofoldPolicy transferred(target_env.observation_dim(),
                            target_env.action_space(), policy_options);
  if (auto s = LoadParameters(transferred.Parameters(), checkpoint);
      !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  EdaNotebook notebook = evaluate(&transferred, "transferred");

  auto text = RenderText(notebook);
  if (text.ok()) {
    std::printf("\nZero-shot notebook on flights3 (policy trained on "
                "flights2):\n%s\n",
                text.value().c_str());
  }
  return 0;
}
