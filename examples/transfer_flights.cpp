// Extension example: transferring a trained policy across datasets (the
// paper's future-work item "generalizing its learning process across
// datasets", §7).
//
//   ./transfer_flights [train_steps]
//
// All flights datasets share one schema, so their observation and action
// spaces are identical. This example trains ATENA's twofold policy on
// Flights #2 (BOS departures), saves the weights, loads them into a fresh
// policy attached to Flights #3 (SFO→LAX), and compares the transferred
// policy's episode reward against an untrained policy on the target
// dataset — zero-shot transfer of exploration skill.

#include <csignal>
#include <cstdio>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "nn/serialization.h"
#include "notebook/render.h"
#include "reward/compound.h"
#include "rl/rollout.h"
#include "rl/trainer.h"

int main(int argc, char** argv) {
  using namespace atena;
  SetLogLevel(LogLevel::kInfo);
  // Ctrl-C stops training at the next update boundary after flushing a
  // checkpoint; rerunning resumes from it bit-identically. A second Ctrl-C
  // falls back to the default fatal handling.
  std::signal(SIGINT, [](int) {
    RequestTrainingStop();
    std::signal(SIGINT, SIG_DFL);
  });

  int total_steps = 6000;
  if (argc > 1) {
    int64_t steps = 0;
    if (ParseInt64(argv[1], &steps) && steps > 0) {
      total_steps = static_cast<int>(steps);
    }
  }

  EnvConfig env_config;
  TwofoldPolicy::Options policy_options;

  // --- 1. Train on the source dataset (Flights #2).
  auto source = MakeDataset("flights2");
  if (!source.ok()) return 1;
  EdaEnvironment source_env(source.value(), env_config);
  auto source_reward = MakeStandardReward(&source_env);
  if (!source_reward.ok()) return 1;
  source_env.SetRewardSignal(source_reward.value().get());
  TwofoldPolicy policy(source_env.observation_dim(),
                       source_env.action_space(), policy_options);
  TrainerOptions trainer_options;
  trainer_options.total_steps = total_steps;
  trainer_options.checkpoint_path = "atena_flights_policy.ckpt";
  trainer_options.checkpoint_every_updates = 5;
  trainer_options.resume = true;
  PpoTrainer trainer(&source_env, &policy, trainer_options);
  TrainingResult training = trainer.Train();
  if (training.interrupted) {
    std::printf("training interrupted — checkpoint flushed to %s; rerun to "
                "resume where it left off\n",
                trainer_options.checkpoint_path.c_str());
    return 0;
  }
  std::printf("trained on flights2: final mean episode reward %.3f\n",
              training.final_mean_reward);

  const std::string checkpoint = "atena_flights_policy.nn";
  if (auto s = SaveParameters(policy.Parameters(), checkpoint); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved policy to %s (%lld parameters)\n", checkpoint.c_str(),
              static_cast<long long>(policy.NumParameters()));

  // --- 2. Evaluate zero-shot on the target dataset (Flights #3).
  auto target = MakeDataset("flights3");
  if (!target.ok()) return 1;
  EdaEnvironment target_env(target.value(), env_config);
  auto target_reward = MakeStandardReward(&target_env);
  if (!target_reward.ok()) return 1;
  target_env.SetRewardSignal(target_reward.value().get());

  auto evaluate = [&](Policy* p, const char* label) {
    Rng rng(424242);
    double best = -1e18;
    double mean = 0.0;
    const int episodes = 16;
    EdaNotebook best_notebook;
    for (int episode = 0; episode < episodes; ++episode) {
      double reward = 0.0;
      EdaNotebook notebook =
          RolloutNotebook(&target_env, p, &rng, label, &reward);
      mean += reward;
      if (reward > best) {
        best = reward;
        best_notebook = std::move(notebook);
      }
    }
    mean /= episodes;
    std::printf("%-24s flights3 episode reward: mean %.3f, best %.3f\n",
                label, mean, best);
    return best_notebook;
  };

  TwofoldPolicy untrained(target_env.observation_dim(),
                          target_env.action_space(), policy_options);
  evaluate(&untrained, "untrained");

  TwofoldPolicy transferred(target_env.observation_dim(),
                            target_env.action_space(), policy_options);
  if (auto s = LoadParameters(transferred.Parameters(), checkpoint);
      !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  EdaNotebook notebook = evaluate(&transferred, "transferred");

  auto text = RenderText(notebook);
  if (text.ok()) {
    std::printf("\nZero-shot notebook on flights3 (policy trained on "
                "flights2):\n%s\n",
                text.value().c_str());
  }
  return 0;
}
