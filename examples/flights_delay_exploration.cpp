// Domain example: investigating flight delays (the paper's Example 1.1).
//
//   ./flights_delay_exploration [train_steps] [--actors N] [--threads N]
//                                [--scale N] [--guardrails]
//
// Generates an ATENA notebook for the "short, night-time flights" dataset
// with departure/arrival delay as focal attributes, compares it against the
// gold-standard notebooks with the full A-EDA metric suite, and writes the
// notebook as Markdown and HTML files next to the binary.
//
// --actors N runs N parallel exploration actors (default 1, the historical
// single-env run); --threads N sets the environment-stepping concurrency
// (default: one thread per actor, capped at the hardware concurrency).
// Thread count never changes the training output — see DESIGN.md §9.
// --scale N generates the dataset at N x the paper's toy row count
// (deterministic per scale; see DESIGN.md §12) — the million-row regime
// the chunked kernels are built for, e.g. --scale 100.
//
// Training is crash-safe: Ctrl-C stops at the next update boundary after
// flushing a checkpoint, and rerunning resumes bit-identically from it.
// Delete flights4_training.ckpt{,.prev} to retrain from scratch.
//
// --guardrails arms the training guard for unattended runs: anomalous
// updates (non-finite loss/gradients, exploding gradient norm, entropy
// collapse, reward divergence) roll back to the last good snapshot and
// retry with a backed-off learning rate; guard events land in
// flights4_health.jsonl and an end-of-run summary prints below. See
// DESIGN.md §10.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/atena.h"
#include "data/registry.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "notebook/render.h"

int main(int argc, char** argv) {
  using namespace atena;
  SetLogLevel(LogLevel::kInfo);
  // First Ctrl-C requests a graceful stop (checkpoint + partial result); a
  // second one falls back to the default fatal handling.
  std::signal(SIGINT, [](int) {
    RequestTrainingStop();
    std::signal(SIGINT, SIG_DFL);
  });

  AtenaOptions options;
  options.trainer.total_steps = 6000;
  options.trainer.checkpoint_path = "flights4_training.ckpt";
  options.trainer.checkpoint_every_updates = 5;
  options.trainer.resume = true;
  ApplyTrainStepsFromEnv(&options);
  int scale_factor = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t value = 0;
    if ((arg == "--actors" || arg == "--threads") && i + 1 < argc &&
        ParseInt64(argv[i + 1], &value) && value > 0) {
      (arg == "--actors" ? options.num_actors : options.trainer.num_threads) =
          static_cast<int>(value);
      ++i;
    } else if (arg == "--scale" && i + 1 < argc &&
               ParseInt64(argv[i + 1], &value) && value > 0) {
      scale_factor = static_cast<int>(value);
      ++i;
    } else if (arg == "--guardrails") {
      options.trainer.guardrails.enabled = true;
      options.trainer.guardrails.health_log_path = "flights4_health.jsonl";
    } else if (ParseInt64(arg, &value) && value > 0) {
      options.trainer.total_steps = static_cast<int>(value);
    } else {
      std::fprintf(stderr,
                   "usage: %s [train_steps] [--actors N] [--threads N] "
                   "[--scale N] [--guardrails]\n",
                   argv[0]);
      return 1;
    }
  }

  auto dataset = MakeDataset("flights4", scale_factor);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  std::printf("Exploring %s — goal: investigate flight delays\n",
              dataset.value().info.title.c_str());
  auto result = RunAtena(dataset.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const TrainingResult& training = result.value().training;
  if (options.trainer.guardrails.enabled) {
    std::printf("training guard: %lld event(s), %d rollback(s), final LR "
                "scale %.4g%s\n",
                static_cast<long long>(training.guard.events),
                training.guard.rollbacks, training.guard.lr_scale,
                training.guard.events > 0 ? " — see flights4_health.jsonl"
                                          : "");
  }
  if (!training.guard_status.ok()) {
    std::fprintf(stderr,
                 "training aborted by guard: %s\nweights were rolled back "
                 "to the last good update; see flights4_health.jsonl\n",
                 training.guard_status.ToString().c_str());
    return 1;
  }
  if (result.value().training.interrupted) {
    std::printf("training interrupted — checkpoint flushed to %s; rerun to "
                "resume where it left off\n",
                options.trainer.checkpoint_path.c_str());
    return 0;
  }
  const EdaNotebook& notebook = result.value().notebook;

  // Show the notebook.
  auto text = RenderText(notebook);
  if (text.ok()) std::printf("%s\n", text.value().c_str());

  // Score it against the gold standard.
  auto gold = GoldNotebooks(dataset.value(), options.env);
  if (gold.ok()) {
    std::vector<std::vector<ViewSignature>> gold_views;
    for (const auto& g : gold.value()) {
      gold_views.push_back(NotebookSignatures(g));
    }
    AedaScores scores =
        ComputeAedaScores(NotebookSignatures(notebook), gold_views);
    std::printf("A-EDA vs %zu gold notebooks: precision %.3f, "
                "T-BLEU-1 %.3f, T-BLEU-2 %.3f, T-BLEU-3 %.3f, "
                "EDA-Sim %.3f\n",
                gold.value().size(), scores.precision, scores.t_bleu_1,
                scores.t_bleu_2, scores.t_bleu_3, scores.eda_sim);
  }

  // Export shareable renderings.
  auto markdown = RenderMarkdown(notebook);
  auto html = RenderHtml(notebook);
  if (markdown.ok()) {
    std::ofstream("flights4_notebook.md") << markdown.value();
    std::printf("wrote flights4_notebook.md\n");
  }
  if (html.ok()) {
    std::ofstream("flights4_notebook.html") << html.value();
    std::printf("wrote flights4_notebook.html\n");
  }
  return 0;
}
