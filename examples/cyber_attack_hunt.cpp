// Domain example: hunting a hidden network attack (the paper's
// cyber-analytics scenario).
//
//   ./cyber_attack_hunt [dataset_id] [train_steps]
//
// Generates an ATENA notebook for one of the cyber datasets (default:
// cyber1, the ICMP sweep) and reports which of the challenge's official
// insights a reader would gather just by viewing the notebook — the paper's
// Figure 4b measurement for a single run.

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/string_utils.h"
#include "core/atena.h"
#include "data/registry.h"
#include "eval/insights.h"
#include "notebook/render.h"

int main(int argc, char** argv) {
  using namespace atena;
  SetLogLevel(LogLevel::kInfo);
  const std::string id = argc > 1 ? argv[1] : "cyber1";

  auto dataset = MakeDataset(id);
  if (!dataset.ok() || dataset.value().info.domain != "cyber-security") {
    std::fprintf(stderr,
                 "usage: cyber_attack_hunt [cyber1|cyber2|cyber3|cyber4]\n");
    return 1;
  }

  AtenaOptions options;
  options.trainer.total_steps = 6000;
  ApplyTrainStepsFromEnv(&options);
  if (argc > 2) {
    int64_t steps = 0;
    if (ParseInt64(argv[2], &steps) && steps > 0) {
      options.trainer.total_steps = static_cast<int>(steps);
    }
  }

  std::printf("Hunting the attack hidden in %s (%s)\n",
              dataset.value().info.title.c_str(),
              dataset.value().info.description.c_str());
  auto result = RunAtena(dataset.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const EdaNotebook& notebook = result.value().notebook;
  auto text = RenderText(notebook);
  if (text.ok()) std::printf("%s\n", text.value().c_str());

  // Which official insights does the notebook reveal?
  auto catalog = InsightCatalog(id);
  const auto views = NotebookSignatures(notebook);
  int gathered = 0;
  std::printf("Official solution insights (%zu total):\n", catalog.size());
  for (const auto& insight : catalog) {
    bool hit = false;
    for (const auto& pattern : insight.patterns) {
      for (const auto& view : views) {
        if (pattern.Matches(view)) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) ++gathered;
    std::printf("  [%s] %s\n", hit ? "x" : " ", insight.description.c_str());
  }
  std::printf("Gathered %d/%zu insights (%.0f%%) from passive viewing.\n",
              gathered, catalog.size(),
              100.0 * gathered / static_cast<double>(catalog.size()));
  return 0;
}
