// Multi-session policy-serving demo (src/serve/): one immutable policy
// snapshot shared by N concurrent EDA sessions, stepped in lockstep ticks
// with one batched forward per tick (DESIGN.md §11), each session wrapped
// in its own fault domain (DESIGN.md §13).
//
//   ./serve_sessions [--sessions N] [--threads T] [--ckpt PATH]
//                    [--dataset ID] [--steps S] [--greedy]
//                    [--max-sessions M] [--step-deadline-ms D]
//                    [--reload K] [--health-log PATH]
//
//   --sessions N         concurrent sessions to keep admitted (default 16)
//   --threads T          environment-stepping worker threads (default: cores)
//   --ckpt PATH          trained weights: a bare ATENA-NN parameter file or
//                        a full ATENA-CKPT training checkpoint. Without it,
//                        the demo serves a freshly initialized policy.
//   --dataset ID         registry dataset to explore (default flights4)
//   --steps S            environment steps per session (default 24 — two
//                        episodes at the default episode length of 12)
//   --total M            total sessions to serve before exiting (default
//                        4 x sessions; 0 = keep serving until Ctrl-C)
//   --greedy             argmax acting instead of Boltzmann sampling
//   --max-sessions M     admission cap: Admit refuses (load shed) instead
//                        of letting tick latency collapse (0 = uncapped)
//   --step-deadline-ms D per-step deadline; overrunning sessions degrade
//                        in stages and are retired past the last stage
//   --reload K           re-validate and hot-swap --ckpt every K completed
//                        sessions; a corrupt file keeps the last-good
//                        snapshot and serving continues (0 = never)
//   --health-log PATH    JSONL fault-domain event log (quarantines, sheds,
//                        degradations, reloads), one durable append per event
//   --journal PATH       write-ahead session journal (DESIGN.md §15). When
//                        the file (or its .prev) already exists the runtime
//                        first recovers from it — every restored session
//                        resumes mid-trace, bit-identical to an
//                        uninterrupted run — then keeps journaling. Try it:
//                        kill -9 the process mid-run and start it again.
//
// SIGINT (Ctrl-C) triggers a graceful drain: no new sessions are admitted,
// in-flight sessions finish their remaining steps, then the runtime
// reports totals and exits. A second SIGINT hard-stops: every live session
// is retired immediately with its partial notebook flagged — journaled, so
// a restart recovers a cleanly stopped runtime. A third exits without
// cleanup.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file_io.h"
#include "data/registry.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace {

// Written by the signal handler, polled between ticks by the serving loop:
// 1 = graceful drain, 2 = hard stop.
volatile std::sig_atomic_t g_stop_requests = 0;

void HandleSigint(int) {
  if (g_stop_requests >= 2) std::_Exit(130);  // Third Ctrl-C: hard exit.
  g_stop_requests = g_stop_requests + 1;
}

struct Args {
  int sessions = 16;
  int threads = 0;
  int steps = 24;
  long total = -1;  // -1 = default (4 x sessions); 0 = until Ctrl-C.
  bool greedy = false;
  int max_sessions = 0;
  double step_deadline_ms = 0.0;
  long reload_every = 0;
  std::string health_log;
  std::string journal;
  std::string ckpt;
  std::string dataset = "flights4";
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--sessions") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      args->sessions = std::atoi(v);
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      args->threads = std::atoi(v);
    } else if (flag == "--steps") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      args->steps = std::atoi(v);
    } else if (flag == "--total") {
      const char* v = next();
      if (v == nullptr || std::atol(v) < 0) return false;
      args->total = std::atol(v);
    } else if (flag == "--max-sessions") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) < 0) return false;
      args->max_sessions = std::atoi(v);
    } else if (flag == "--step-deadline-ms") {
      const char* v = next();
      if (v == nullptr || std::atof(v) < 0) return false;
      args->step_deadline_ms = std::atof(v);
    } else if (flag == "--reload") {
      const char* v = next();
      if (v == nullptr || std::atol(v) < 0) return false;
      args->reload_every = std::atol(v);
    } else if (flag == "--health-log") {
      const char* v = next();
      if (v == nullptr) return false;
      args->health_log = v;
    } else if (flag == "--journal") {
      const char* v = next();
      if (v == nullptr) return false;
      args->journal = v;
    } else if (flag == "--ckpt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->ckpt = v;
    } else if (flag == "--dataset") {
      const char* v = next();
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--greedy") {
      args->greedy = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->reload_every > 0 && args->ckpt.empty()) {
    std::fprintf(stderr, "--reload requires --ckpt\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atena;
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [--sessions N] [--threads T] [--ckpt PATH] "
                 "[--dataset ID] [--steps S] [--greedy] [--max-sessions M] "
                 "[--step-deadline-ms D] [--reload K] [--health-log PATH] "
                 "[--journal PATH]\n",
                 argv[0]);
    return 1;
  }

  auto dataset = MakeDataset(args.dataset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "unknown dataset '%s': %s\n", args.dataset.c_str(),
                 dataset.status().message().c_str());
    return 1;
  }

  SnapshotOptions options;
  std::shared_ptr<const PolicySnapshot> snapshot;
  if (!args.ckpt.empty()) {
    auto loaded =
        LoadPolicySnapshot(std::move(dataset).value(), options, args.ckpt);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", args.ckpt.c_str(),
                   loaded.status().message().c_str());
      return 1;
    }
    snapshot = std::move(loaded).value();
    std::printf("serving trained policy from %s\n", args.ckpt.c_str());
  } else {
    snapshot = std::make_shared<PolicySnapshot>(std::move(dataset).value(),
                                                options);
    std::printf(
        "serving a freshly initialized policy (pass --ckpt for trained "
        "weights)\n");
  }

  std::signal(SIGINT, HandleSigint);

  ServeOptions serve_options;
  serve_options.num_threads = args.threads;
  serve_options.max_sessions = args.max_sessions;
  serve_options.step_deadline_nanos =
      static_cast<int64_t>(args.step_deadline_ms * 1e6);
  serve_options.health_log_path = args.health_log;
  serve_options.journal_path = args.journal;
  SessionManager manager(snapshot, serve_options);

  uint64_t recovered_finished = 0;
  if (!args.journal.empty() &&
      (FileExists(args.journal) || FileExists(args.journal + ".prev"))) {
    SessionManager::RecoveryInfo info;
    Status recovered = manager.RecoverFromJournal(args.journal, &info);
    if (!recovered.ok()) {
      // A journal that cannot be recovered is an operator problem, not
      // something to silently overwrite — move it aside to start fresh.
      std::fprintf(stderr, "cannot recover journal '%s': %s\n",
                   args.journal.c_str(), recovered.message().c_str());
      return 1;
    }
    // Retirements since the last compaction are re-delivered
    // (at-least-once); this demo's per-process counters just restart.
    recovered_finished = manager.TakeCompleted().size();
    std::printf(
        "recovered %d live sessions from %s (%lld ticks, %lld steps "
        "replayed%s%s); %llu finished outcomes re-delivered\n",
        info.sessions_restored, args.journal.c_str(),
        static_cast<long long>(info.ticks_replayed),
        static_cast<long long>(info.steps_replayed),
        info.used_prev_fallback ? ", via .prev fallback" : "",
        info.torn_tail ? ", torn tail dropped" : "",
        static_cast<unsigned long long>(recovered_finished));
  }

  const uint64_t total_sessions =
      args.total < 0 ? static_cast<uint64_t>(args.sessions) * 4
                     : static_cast<uint64_t>(args.total);
  // Seeds continue after whatever the journal replayed, so a recovered
  // runtime never re-serves a seed it already finished.
  uint64_t admitted = static_cast<uint64_t>(manager.stats().admitted);
  uint64_t refused = 0;
  auto admit_one = [&]() {
    SessionConfig config;
    config.seed = 1000 + admitted + refused;
    config.max_steps = args.steps;
    config.greedy = args.greedy;
    Result<uint64_t> id = manager.Admit(config);
    if (!id.ok()) {
      // Structured refusal (cap or watermark shed): the session is simply
      // not served; live sessions are untouched.
      ++refused;
      return;
    }
    ++admitted;
  };
  auto may_admit = [&]() {
    return total_sessions == 0 || admitted < total_sessions;
  };
  // Top up to the target concurrency (recovery may have restored some).
  for (int i = manager.active_sessions(); i < args.sessions && may_admit();
       ++i) {
    admit_one();
  }

  std::printf(
      "%d concurrent sessions on %s, %d steps each — Ctrl-C drains "
      "gracefully, twice hard-stops\n",
      args.sessions, args.dataset.c_str(), args.steps);

  uint64_t finished = 0;
  uint64_t faulted = 0;
  double total_reward = 0.0;
  bool drain_announced = false;
  bool hard_stopped = false;
  auto consume_outcomes = [&]() {
    for (const SessionOutcome& outcome : manager.TakeCompleted()) {
      ++finished;
      total_reward += outcome.trace.total_reward;
      if (outcome.reason != RetireReason::kCompleted) ++faulted;
      if (finished <= 3 || outcome.reason != RetireReason::kCompleted) {
        std::printf("session %llu (seed %llu): %zu steps, reward %.3f [%s]%s%s\n",
                    static_cast<unsigned long long>(outcome.trace.id),
                    static_cast<unsigned long long>(outcome.trace.seed),
                    outcome.trace.steps.size(), outcome.trace.total_reward,
                    RetireReasonName(outcome.reason),
                    outcome.status.ok() ? "" : ": ",
                    outcome.status.ok() ? ""
                                        : outcome.status.message().c_str());
      } else if (finished == 4) {
        std::printf("...\n");
      }
      // Steady state: every departure admits a replacement — until the
      // workload is exhausted or a drain is requested, after which
      // in-flight sessions just finish.
      if (g_stop_requests == 0 && may_admit()) admit_one();
    }
  };
  while (manager.active_sessions() > 0) {
    if (g_stop_requests >= 2 && !hard_stopped) {
      hard_stopped = true;
      std::printf("\nhard stop: retiring %d live sessions with partial "
                  "notebooks\n",
                  manager.active_sessions());
      manager.HardStop();
      consume_outcomes();
      break;
    }
    manager.Tick();
    consume_outcomes();
    if (args.reload_every > 0 && finished > 0 &&
        finished % static_cast<uint64_t>(args.reload_every) == 0) {
      Status reloaded = manager.ReloadSnapshot(args.ckpt);
      if (!reloaded.ok()) {
        std::fprintf(stderr,
                     "reload failed, serving last-good snapshot: %s\n",
                     reloaded.message().c_str());
      }
    }
    if (g_stop_requests >= 1 && manager.active_sessions() > 0 &&
        !drain_announced) {
      drain_announced = true;
      std::printf("\ndraining %d in-flight sessions (Ctrl-C again to hard "
                  "stop)...\n",
                  manager.active_sessions());
    }
  }
  consume_outcomes();

  const ServeStats& stats = manager.stats();
  const auto cache_stats = manager.display_cache()->Snapshot();
  std::printf(
      "\nserved %llu sessions (%lld steps total), cache hit rate %.3f\n",
      static_cast<unsigned long long>(finished),
      static_cast<long long>(manager.steps_served()),
      cache_stats.totals.hit_rate());
  std::printf(
      "fault domains: %lld shed, %lld quarantined, %lld deadline-retired, "
      "%lld hard-stopped, %lld degraded steps, %lld/%lld reloads ok\n",
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.quarantined),
      static_cast<long long>(stats.deadline_retired),
      static_cast<long long>(stats.hard_stopped),
      static_cast<long long>(stats.degraded_steps),
      static_cast<long long>(stats.reload_successes),
      static_cast<long long>(stats.reload_successes + stats.reload_failures));
  return faulted > 0 && finished == faulted ? 1 : 0;
}
