// Multi-session policy-serving demo (src/serve/): one immutable policy
// snapshot shared by N concurrent EDA sessions, stepped in lockstep ticks
// with one batched forward per tick (DESIGN.md §11).
//
//   ./serve_sessions [--sessions N] [--threads T] [--ckpt PATH]
//                    [--dataset ID] [--steps S] [--greedy]
//
//   --sessions N   concurrent sessions to keep admitted (default 16)
//   --threads T    environment-stepping worker threads (default: cores)
//   --ckpt PATH    trained weights: a bare ATENA-NN parameter file or a
//                  full ATENA-CKPT training checkpoint. Without it, the
//                  demo serves a freshly initialized (untrained) policy.
//   --dataset ID   registry dataset to explore (default flights4)
//   --steps S      environment steps per session (default 24 — two
//                  episodes at the default episode length of 12)
//   --total M      total sessions to serve before exiting (default
//                  4 x sessions; 0 = keep serving until Ctrl-C)
//   --greedy       argmax acting instead of Boltzmann sampling
//
// SIGINT (Ctrl-C) triggers a graceful drain: no new sessions are admitted,
// in-flight sessions finish their remaining steps, then the runtime
// reports totals and exits. A second SIGINT exits immediately.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/registry.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace {

// Written by the signal handler, polled between ticks by the serving loop.
volatile std::sig_atomic_t g_drain_requested = 0;

void HandleSigint(int) {
  if (g_drain_requested) std::_Exit(130);  // Second Ctrl-C: hard exit.
  g_drain_requested = 1;
}

struct Args {
  int sessions = 16;
  int threads = 0;
  int steps = 24;
  long total = -1;  // -1 = default (4 x sessions); 0 = until Ctrl-C.
  bool greedy = false;
  std::string ckpt;
  std::string dataset = "flights4";
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--sessions") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      args->sessions = std::atoi(v);
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      args->threads = std::atoi(v);
    } else if (flag == "--steps") {
      const char* v = next();
      if (v == nullptr || std::atoi(v) <= 0) return false;
      args->steps = std::atoi(v);
    } else if (flag == "--total") {
      const char* v = next();
      if (v == nullptr || std::atol(v) < 0) return false;
      args->total = std::atol(v);
    } else if (flag == "--ckpt") {
      const char* v = next();
      if (v == nullptr) return false;
      args->ckpt = v;
    } else if (flag == "--dataset") {
      const char* v = next();
      if (v == nullptr) return false;
      args->dataset = v;
    } else if (flag == "--greedy") {
      args->greedy = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atena;
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [--sessions N] [--threads T] [--ckpt PATH] "
                 "[--dataset ID] [--steps S] [--greedy]\n",
                 argv[0]);
    return 1;
  }

  auto dataset = MakeDataset(args.dataset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "unknown dataset '%s': %s\n", args.dataset.c_str(),
                 dataset.status().message().c_str());
    return 1;
  }

  SnapshotOptions options;
  std::shared_ptr<const PolicySnapshot> snapshot;
  if (!args.ckpt.empty()) {
    auto loaded =
        LoadPolicySnapshot(std::move(dataset).value(), options, args.ckpt);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load '%s': %s\n", args.ckpt.c_str(),
                   loaded.status().message().c_str());
      return 1;
    }
    snapshot = std::move(loaded).value();
    std::printf("serving trained policy from %s\n", args.ckpt.c_str());
  } else {
    snapshot = std::make_shared<PolicySnapshot>(std::move(dataset).value(),
                                                options);
    std::printf(
        "serving a freshly initialized policy (pass --ckpt for trained "
        "weights)\n");
  }

  std::signal(SIGINT, HandleSigint);

  ServeOptions serve_options;
  serve_options.num_threads = args.threads;
  SessionManager manager(snapshot, serve_options);

  const uint64_t total_sessions =
      args.total < 0 ? static_cast<uint64_t>(args.sessions) * 4
                     : static_cast<uint64_t>(args.total);
  uint64_t admitted = 0;
  auto admit_one = [&]() {
    SessionConfig config;
    config.seed = 1000 + admitted;
    config.max_steps = args.steps;
    config.greedy = args.greedy;
    manager.Admit(config);
    ++admitted;
  };
  auto may_admit = [&]() {
    return total_sessions == 0 || admitted < total_sessions;
  };
  for (int i = 0; i < args.sessions && may_admit(); ++i) admit_one();

  std::printf(
      "%d concurrent sessions on %s, %d steps each — Ctrl-C drains "
      "gracefully\n",
      args.sessions, args.dataset.c_str(), args.steps);

  uint64_t finished = 0;
  double total_reward = 0.0;
  while (manager.active_sessions() > 0) {
    manager.Tick();
    for (const SessionTrace& trace : manager.TakeCompleted()) {
      ++finished;
      total_reward += trace.total_reward;
      if (finished <= 3) {
        std::printf("session %llu (seed %llu): %zu steps, reward %.3f\n",
                    static_cast<unsigned long long>(trace.id),
                    static_cast<unsigned long long>(trace.seed),
                    trace.steps.size(), trace.total_reward);
      } else if (finished == 4) {
        std::printf("...\n");
      }
      // Steady state: every departure admits a replacement — until the
      // workload is exhausted or a drain is requested, after which
      // in-flight sessions just finish.
      if (!g_drain_requested && may_admit()) admit_one();
    }
    if (g_drain_requested && manager.active_sessions() > 0) {
      static bool announced = false;
      if (!announced) {
        announced = true;
        std::printf("\ndraining %d in-flight sessions...\n",
                    manager.active_sessions());
      }
    }
  }

  const auto cache_stats = manager.display_cache()->Snapshot();
  std::printf(
      "\nserved %llu sessions (%lld steps total), cache hit rate %.3f\n",
      static_cast<unsigned long long>(finished),
      static_cast<long long>(manager.steps_served()),
      cache_stats.totals.hit_rate());
  return 0;
}
