file(REMOVE_RECURSE
  "CMakeFiles/cyber_attack_hunt.dir/cyber_attack_hunt.cpp.o"
  "CMakeFiles/cyber_attack_hunt.dir/cyber_attack_hunt.cpp.o.d"
  "cyber_attack_hunt"
  "cyber_attack_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyber_attack_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
