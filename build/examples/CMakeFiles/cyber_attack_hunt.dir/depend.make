# Empty dependencies file for cyber_attack_hunt.
# This may be replaced when dependencies are built.
