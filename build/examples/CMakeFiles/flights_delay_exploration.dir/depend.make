# Empty dependencies file for flights_delay_exploration.
# This may be replaced when dependencies are built.
