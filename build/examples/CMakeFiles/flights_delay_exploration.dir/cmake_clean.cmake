file(REMOVE_RECURSE
  "CMakeFiles/flights_delay_exploration.dir/flights_delay_exploration.cpp.o"
  "CMakeFiles/flights_delay_exploration.dir/flights_delay_exploration.cpp.o.d"
  "flights_delay_exploration"
  "flights_delay_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flights_delay_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
