file(REMOVE_RECURSE
  "CMakeFiles/custom_csv_dataset.dir/custom_csv_dataset.cpp.o"
  "CMakeFiles/custom_csv_dataset.dir/custom_csv_dataset.cpp.o.d"
  "custom_csv_dataset"
  "custom_csv_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_csv_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
