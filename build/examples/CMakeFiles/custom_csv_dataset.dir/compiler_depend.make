# Empty compiler generated dependencies file for custom_csv_dataset.
# This may be replaced when dependencies are built.
