# Empty compiler generated dependencies file for aeda_score.
# This may be replaced when dependencies are built.
