file(REMOVE_RECURSE
  "CMakeFiles/aeda_score.dir/aeda_score.cpp.o"
  "CMakeFiles/aeda_score.dir/aeda_score.cpp.o.d"
  "aeda_score"
  "aeda_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeda_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
