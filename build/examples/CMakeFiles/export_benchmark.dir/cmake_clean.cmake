file(REMOVE_RECURSE
  "CMakeFiles/export_benchmark.dir/export_benchmark.cpp.o"
  "CMakeFiles/export_benchmark.dir/export_benchmark.cpp.o.d"
  "export_benchmark"
  "export_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
