# Empty compiler generated dependencies file for export_benchmark.
# This may be replaced when dependencies are built.
