file(REMOVE_RECURSE
  "CMakeFiles/transfer_flights.dir/transfer_flights.cpp.o"
  "CMakeFiles/transfer_flights.dir/transfer_flights.cpp.o.d"
  "transfer_flights"
  "transfer_flights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_flights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
