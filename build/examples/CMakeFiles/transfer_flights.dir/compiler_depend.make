# Empty compiler generated dependencies file for transfer_flights.
# This may be replaced when dependencies are built.
