file(REMOVE_RECURSE
  "CMakeFiles/bench_nn.dir/bench_nn.cc.o"
  "CMakeFiles/bench_nn.dir/bench_nn.cc.o.d"
  "bench_nn"
  "bench_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
