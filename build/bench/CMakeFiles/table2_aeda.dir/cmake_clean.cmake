file(REMOVE_RECURSE
  "CMakeFiles/table2_aeda.dir/table2_aeda.cc.o"
  "CMakeFiles/table2_aeda.dir/table2_aeda.cc.o.d"
  "table2_aeda"
  "table2_aeda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_aeda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
