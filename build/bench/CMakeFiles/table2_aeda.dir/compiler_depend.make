# Empty compiler generated dependencies file for table2_aeda.
# This may be replaced when dependencies are built.
