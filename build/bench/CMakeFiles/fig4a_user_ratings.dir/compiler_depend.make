# Empty compiler generated dependencies file for fig4a_user_ratings.
# This may be replaced when dependencies are built.
