file(REMOVE_RECURSE
  "CMakeFiles/fig4a_user_ratings.dir/fig4a_user_ratings.cc.o"
  "CMakeFiles/fig4a_user_ratings.dir/fig4a_user_ratings.cc.o.d"
  "fig4a_user_ratings"
  "fig4a_user_ratings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_user_ratings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
