file(REMOVE_RECURSE
  "CMakeFiles/bench_env.dir/bench_env.cc.o"
  "CMakeFiles/bench_env.dir/bench_env.cc.o.d"
  "bench_env"
  "bench_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
