# Empty dependencies file for bench_env.
# This may be replaced when dependencies are built.
