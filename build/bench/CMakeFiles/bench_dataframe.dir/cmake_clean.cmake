file(REMOVE_RECURSE
  "CMakeFiles/bench_dataframe.dir/bench_dataframe.cc.o"
  "CMakeFiles/bench_dataframe.dir/bench_dataframe.cc.o.d"
  "bench_dataframe"
  "bench_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
