# Empty compiler generated dependencies file for bench_dataframe.
# This may be replaced when dependencies are built.
