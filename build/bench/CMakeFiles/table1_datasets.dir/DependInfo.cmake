
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_datasets.cc" "bench/CMakeFiles/table1_datasets.dir/table1_datasets.cc.o" "gcc" "bench/CMakeFiles/table1_datasets.dir/table1_datasets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/atena_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/atena_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atena_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/atena_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/atena_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/reward/CMakeFiles/atena_reward.dir/DependInfo.cmake"
  "/root/repo/build/src/coherency/CMakeFiles/atena_coherency.dir/DependInfo.cmake"
  "/root/repo/build/src/eda/CMakeFiles/atena_eda.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/atena_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/atena_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atena_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
