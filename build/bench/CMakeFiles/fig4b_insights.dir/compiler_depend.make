# Empty compiler generated dependencies file for fig4b_insights.
# This may be replaced when dependencies are built.
