file(REMOVE_RECURSE
  "CMakeFiles/fig4b_insights.dir/fig4b_insights.cc.o"
  "CMakeFiles/fig4b_insights.dir/fig4b_insights.cc.o.d"
  "fig4b_insights"
  "fig4b_insights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
