# Empty dependencies file for script_parser_test.
# This may be replaced when dependencies are built.
