file(REMOVE_RECURSE
  "CMakeFiles/script_parser_test.dir/script_parser_test.cc.o"
  "CMakeFiles/script_parser_test.dir/script_parser_test.cc.o.d"
  "script_parser_test"
  "script_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
