# Empty dependencies file for notebook_test.
# This may be replaced when dependencies are built.
