file(REMOVE_RECURSE
  "CMakeFiles/notebook_test.dir/notebook_test.cc.o"
  "CMakeFiles/notebook_test.dir/notebook_test.cc.o.d"
  "notebook_test"
  "notebook_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notebook_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
