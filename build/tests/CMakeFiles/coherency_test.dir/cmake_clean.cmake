file(REMOVE_RECURSE
  "CMakeFiles/coherency_test.dir/coherency_test.cc.o"
  "CMakeFiles/coherency_test.dir/coherency_test.cc.o.d"
  "coherency_test"
  "coherency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
