# Empty compiler generated dependencies file for eda_test.
# This may be replaced when dependencies are built.
