file(REMOVE_RECURSE
  "CMakeFiles/eda_test.dir/eda_test.cc.o"
  "CMakeFiles/eda_test.dir/eda_test.cc.o.d"
  "eda_test"
  "eda_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
