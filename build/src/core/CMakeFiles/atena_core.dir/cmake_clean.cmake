file(REMOVE_RECURSE
  "CMakeFiles/atena_core.dir/atena.cc.o"
  "CMakeFiles/atena_core.dir/atena.cc.o.d"
  "CMakeFiles/atena_core.dir/twofold_policy.cc.o"
  "CMakeFiles/atena_core.dir/twofold_policy.cc.o.d"
  "libatena_core.a"
  "libatena_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
