# Empty compiler generated dependencies file for atena_core.
# This may be replaced when dependencies are built.
