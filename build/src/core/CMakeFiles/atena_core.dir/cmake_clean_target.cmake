file(REMOVE_RECURSE
  "libatena_core.a"
)
