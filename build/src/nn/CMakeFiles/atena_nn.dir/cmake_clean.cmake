file(REMOVE_RECURSE
  "CMakeFiles/atena_nn.dir/layers.cc.o"
  "CMakeFiles/atena_nn.dir/layers.cc.o.d"
  "CMakeFiles/atena_nn.dir/matrix.cc.o"
  "CMakeFiles/atena_nn.dir/matrix.cc.o.d"
  "CMakeFiles/atena_nn.dir/optimizer.cc.o"
  "CMakeFiles/atena_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/atena_nn.dir/serialization.cc.o"
  "CMakeFiles/atena_nn.dir/serialization.cc.o.d"
  "libatena_nn.a"
  "libatena_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
