# Empty dependencies file for atena_nn.
# This may be replaced when dependencies are built.
