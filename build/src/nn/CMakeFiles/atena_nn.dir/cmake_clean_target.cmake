file(REMOVE_RECURSE
  "libatena_nn.a"
)
