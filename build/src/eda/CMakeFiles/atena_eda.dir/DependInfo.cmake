
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eda/binning.cc" "src/eda/CMakeFiles/atena_eda.dir/binning.cc.o" "gcc" "src/eda/CMakeFiles/atena_eda.dir/binning.cc.o.d"
  "/root/repo/src/eda/display.cc" "src/eda/CMakeFiles/atena_eda.dir/display.cc.o" "gcc" "src/eda/CMakeFiles/atena_eda.dir/display.cc.o.d"
  "/root/repo/src/eda/environment.cc" "src/eda/CMakeFiles/atena_eda.dir/environment.cc.o" "gcc" "src/eda/CMakeFiles/atena_eda.dir/environment.cc.o.d"
  "/root/repo/src/eda/observation.cc" "src/eda/CMakeFiles/atena_eda.dir/observation.cc.o" "gcc" "src/eda/CMakeFiles/atena_eda.dir/observation.cc.o.d"
  "/root/repo/src/eda/operation.cc" "src/eda/CMakeFiles/atena_eda.dir/operation.cc.o" "gcc" "src/eda/CMakeFiles/atena_eda.dir/operation.cc.o.d"
  "/root/repo/src/eda/session.cc" "src/eda/CMakeFiles/atena_eda.dir/session.cc.o" "gcc" "src/eda/CMakeFiles/atena_eda.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataframe/CMakeFiles/atena_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/atena_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atena_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
