# Empty compiler generated dependencies file for atena_eda.
# This may be replaced when dependencies are built.
