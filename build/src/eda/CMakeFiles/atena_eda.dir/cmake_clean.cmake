file(REMOVE_RECURSE
  "CMakeFiles/atena_eda.dir/binning.cc.o"
  "CMakeFiles/atena_eda.dir/binning.cc.o.d"
  "CMakeFiles/atena_eda.dir/display.cc.o"
  "CMakeFiles/atena_eda.dir/display.cc.o.d"
  "CMakeFiles/atena_eda.dir/environment.cc.o"
  "CMakeFiles/atena_eda.dir/environment.cc.o.d"
  "CMakeFiles/atena_eda.dir/observation.cc.o"
  "CMakeFiles/atena_eda.dir/observation.cc.o.d"
  "CMakeFiles/atena_eda.dir/operation.cc.o"
  "CMakeFiles/atena_eda.dir/operation.cc.o.d"
  "CMakeFiles/atena_eda.dir/session.cc.o"
  "CMakeFiles/atena_eda.dir/session.cc.o.d"
  "libatena_eda.a"
  "libatena_eda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_eda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
