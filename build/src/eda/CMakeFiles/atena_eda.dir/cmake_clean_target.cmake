file(REMOVE_RECURSE
  "libatena_eda.a"
)
