file(REMOVE_RECURSE
  "CMakeFiles/atena_notebook.dir/render.cc.o"
  "CMakeFiles/atena_notebook.dir/render.cc.o.d"
  "libatena_notebook.a"
  "libatena_notebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_notebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
