# Empty dependencies file for atena_notebook.
# This may be replaced when dependencies are built.
