file(REMOVE_RECURSE
  "libatena_notebook.a"
)
