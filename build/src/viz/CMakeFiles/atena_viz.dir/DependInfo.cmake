
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/chart.cc" "src/viz/CMakeFiles/atena_viz.dir/chart.cc.o" "gcc" "src/viz/CMakeFiles/atena_viz.dir/chart.cc.o.d"
  "/root/repo/src/viz/svg.cc" "src/viz/CMakeFiles/atena_viz.dir/svg.cc.o" "gcc" "src/viz/CMakeFiles/atena_viz.dir/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eda/CMakeFiles/atena_eda.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/atena_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/atena_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atena_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
