file(REMOVE_RECURSE
  "libatena_viz.a"
)
