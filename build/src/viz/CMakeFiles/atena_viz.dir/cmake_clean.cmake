file(REMOVE_RECURSE
  "CMakeFiles/atena_viz.dir/chart.cc.o"
  "CMakeFiles/atena_viz.dir/chart.cc.o.d"
  "CMakeFiles/atena_viz.dir/svg.cc.o"
  "CMakeFiles/atena_viz.dir/svg.cc.o.d"
  "libatena_viz.a"
  "libatena_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
