# Empty compiler generated dependencies file for atena_viz.
# This may be replaced when dependencies are built.
