file(REMOVE_RECURSE
  "CMakeFiles/atena_reward.dir/compound.cc.o"
  "CMakeFiles/atena_reward.dir/compound.cc.o.d"
  "CMakeFiles/atena_reward.dir/diversity.cc.o"
  "CMakeFiles/atena_reward.dir/diversity.cc.o.d"
  "CMakeFiles/atena_reward.dir/interestingness.cc.o"
  "CMakeFiles/atena_reward.dir/interestingness.cc.o.d"
  "libatena_reward.a"
  "libatena_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
