file(REMOVE_RECURSE
  "libatena_reward.a"
)
