# Empty compiler generated dependencies file for atena_reward.
# This may be replaced when dependencies are built.
