# Empty compiler generated dependencies file for atena_rl.
# This may be replaced when dependencies are built.
