file(REMOVE_RECURSE
  "CMakeFiles/atena_rl.dir/parallel_trainer.cc.o"
  "CMakeFiles/atena_rl.dir/parallel_trainer.cc.o.d"
  "CMakeFiles/atena_rl.dir/policy.cc.o"
  "CMakeFiles/atena_rl.dir/policy.cc.o.d"
  "CMakeFiles/atena_rl.dir/rollout.cc.o"
  "CMakeFiles/atena_rl.dir/rollout.cc.o.d"
  "CMakeFiles/atena_rl.dir/trainer.cc.o"
  "CMakeFiles/atena_rl.dir/trainer.cc.o.d"
  "libatena_rl.a"
  "libatena_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
