file(REMOVE_RECURSE
  "libatena_rl.a"
)
