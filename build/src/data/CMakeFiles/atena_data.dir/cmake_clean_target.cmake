file(REMOVE_RECURSE
  "libatena_data.a"
)
