# Empty dependencies file for atena_data.
# This may be replaced when dependencies are built.
