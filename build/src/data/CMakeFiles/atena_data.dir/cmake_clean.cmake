file(REMOVE_RECURSE
  "CMakeFiles/atena_data.dir/cyber.cc.o"
  "CMakeFiles/atena_data.dir/cyber.cc.o.d"
  "CMakeFiles/atena_data.dir/flights.cc.o"
  "CMakeFiles/atena_data.dir/flights.cc.o.d"
  "CMakeFiles/atena_data.dir/registry.cc.o"
  "CMakeFiles/atena_data.dir/registry.cc.o.d"
  "libatena_data.a"
  "libatena_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
