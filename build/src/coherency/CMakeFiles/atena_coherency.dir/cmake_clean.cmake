file(REMOVE_RECURSE
  "CMakeFiles/atena_coherency.dir/classifier.cc.o"
  "CMakeFiles/atena_coherency.dir/classifier.cc.o.d"
  "CMakeFiles/atena_coherency.dir/label_model.cc.o"
  "CMakeFiles/atena_coherency.dir/label_model.cc.o.d"
  "CMakeFiles/atena_coherency.dir/rules.cc.o"
  "CMakeFiles/atena_coherency.dir/rules.cc.o.d"
  "libatena_coherency.a"
  "libatena_coherency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_coherency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
