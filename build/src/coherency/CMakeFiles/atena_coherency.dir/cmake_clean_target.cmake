file(REMOVE_RECURSE
  "libatena_coherency.a"
)
