# Empty compiler generated dependencies file for atena_coherency.
# This may be replaced when dependencies are built.
