file(REMOVE_RECURSE
  "libatena_baselines.a"
)
