file(REMOVE_RECURSE
  "CMakeFiles/atena_baselines.dir/factory.cc.o"
  "CMakeFiles/atena_baselines.dir/factory.cc.o.d"
  "CMakeFiles/atena_baselines.dir/flat_policy.cc.o"
  "CMakeFiles/atena_baselines.dir/flat_policy.cc.o.d"
  "CMakeFiles/atena_baselines.dir/greedy.cc.o"
  "CMakeFiles/atena_baselines.dir/greedy.cc.o.d"
  "libatena_baselines.a"
  "libatena_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
