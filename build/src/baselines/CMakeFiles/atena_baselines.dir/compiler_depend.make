# Empty compiler generated dependencies file for atena_baselines.
# This may be replaced when dependencies are built.
