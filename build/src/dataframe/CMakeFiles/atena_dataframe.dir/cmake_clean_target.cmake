file(REMOVE_RECURSE
  "libatena_dataframe.a"
)
