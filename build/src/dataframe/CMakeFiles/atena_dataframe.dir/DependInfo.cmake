
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataframe/column.cc" "src/dataframe/CMakeFiles/atena_dataframe.dir/column.cc.o" "gcc" "src/dataframe/CMakeFiles/atena_dataframe.dir/column.cc.o.d"
  "/root/repo/src/dataframe/csv.cc" "src/dataframe/CMakeFiles/atena_dataframe.dir/csv.cc.o" "gcc" "src/dataframe/CMakeFiles/atena_dataframe.dir/csv.cc.o.d"
  "/root/repo/src/dataframe/describe.cc" "src/dataframe/CMakeFiles/atena_dataframe.dir/describe.cc.o" "gcc" "src/dataframe/CMakeFiles/atena_dataframe.dir/describe.cc.o.d"
  "/root/repo/src/dataframe/ops.cc" "src/dataframe/CMakeFiles/atena_dataframe.dir/ops.cc.o" "gcc" "src/dataframe/CMakeFiles/atena_dataframe.dir/ops.cc.o.d"
  "/root/repo/src/dataframe/stats.cc" "src/dataframe/CMakeFiles/atena_dataframe.dir/stats.cc.o" "gcc" "src/dataframe/CMakeFiles/atena_dataframe.dir/stats.cc.o.d"
  "/root/repo/src/dataframe/table.cc" "src/dataframe/CMakeFiles/atena_dataframe.dir/table.cc.o" "gcc" "src/dataframe/CMakeFiles/atena_dataframe.dir/table.cc.o.d"
  "/root/repo/src/dataframe/value.cc" "src/dataframe/CMakeFiles/atena_dataframe.dir/value.cc.o" "gcc" "src/dataframe/CMakeFiles/atena_dataframe.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atena_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
