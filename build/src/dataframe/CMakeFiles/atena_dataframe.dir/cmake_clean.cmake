file(REMOVE_RECURSE
  "CMakeFiles/atena_dataframe.dir/column.cc.o"
  "CMakeFiles/atena_dataframe.dir/column.cc.o.d"
  "CMakeFiles/atena_dataframe.dir/csv.cc.o"
  "CMakeFiles/atena_dataframe.dir/csv.cc.o.d"
  "CMakeFiles/atena_dataframe.dir/describe.cc.o"
  "CMakeFiles/atena_dataframe.dir/describe.cc.o.d"
  "CMakeFiles/atena_dataframe.dir/ops.cc.o"
  "CMakeFiles/atena_dataframe.dir/ops.cc.o.d"
  "CMakeFiles/atena_dataframe.dir/stats.cc.o"
  "CMakeFiles/atena_dataframe.dir/stats.cc.o.d"
  "CMakeFiles/atena_dataframe.dir/table.cc.o"
  "CMakeFiles/atena_dataframe.dir/table.cc.o.d"
  "CMakeFiles/atena_dataframe.dir/value.cc.o"
  "CMakeFiles/atena_dataframe.dir/value.cc.o.d"
  "libatena_dataframe.a"
  "libatena_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
