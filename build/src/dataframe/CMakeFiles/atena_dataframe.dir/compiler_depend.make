# Empty compiler generated dependencies file for atena_dataframe.
# This may be replaced when dependencies are built.
