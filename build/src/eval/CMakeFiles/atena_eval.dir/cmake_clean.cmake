file(REMOVE_RECURSE
  "CMakeFiles/atena_eval.dir/gold.cc.o"
  "CMakeFiles/atena_eval.dir/gold.cc.o.d"
  "CMakeFiles/atena_eval.dir/insights.cc.o"
  "CMakeFiles/atena_eval.dir/insights.cc.o.d"
  "CMakeFiles/atena_eval.dir/metrics.cc.o"
  "CMakeFiles/atena_eval.dir/metrics.cc.o.d"
  "CMakeFiles/atena_eval.dir/ratings.cc.o"
  "CMakeFiles/atena_eval.dir/ratings.cc.o.d"
  "CMakeFiles/atena_eval.dir/script_parser.cc.o"
  "CMakeFiles/atena_eval.dir/script_parser.cc.o.d"
  "CMakeFiles/atena_eval.dir/traces.cc.o"
  "CMakeFiles/atena_eval.dir/traces.cc.o.d"
  "CMakeFiles/atena_eval.dir/view_signature.cc.o"
  "CMakeFiles/atena_eval.dir/view_signature.cc.o.d"
  "libatena_eval.a"
  "libatena_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
