# Empty compiler generated dependencies file for atena_eval.
# This may be replaced when dependencies are built.
