file(REMOVE_RECURSE
  "libatena_eval.a"
)
