file(REMOVE_RECURSE
  "libatena_common.a"
)
