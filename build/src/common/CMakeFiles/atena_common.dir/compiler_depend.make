# Empty compiler generated dependencies file for atena_common.
# This may be replaced when dependencies are built.
