file(REMOVE_RECURSE
  "CMakeFiles/atena_common.dir/logging.cc.o"
  "CMakeFiles/atena_common.dir/logging.cc.o.d"
  "CMakeFiles/atena_common.dir/math_utils.cc.o"
  "CMakeFiles/atena_common.dir/math_utils.cc.o.d"
  "CMakeFiles/atena_common.dir/random.cc.o"
  "CMakeFiles/atena_common.dir/random.cc.o.d"
  "CMakeFiles/atena_common.dir/status.cc.o"
  "CMakeFiles/atena_common.dir/status.cc.o.d"
  "CMakeFiles/atena_common.dir/string_utils.cc.o"
  "CMakeFiles/atena_common.dir/string_utils.cc.o.d"
  "libatena_common.a"
  "libatena_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atena_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
