#include <gtest/gtest.h>

#include "data/registry.h"
#include "eda/environment.h"
#include "eval/script_parser.h"

namespace atena {
namespace {

const Table& FlightsTable() {
  static const TablePtr table = MakeDataset("flights4").value().table;
  return *table;
}

TEST(ScriptParserTest, ParsesAllOperationKinds) {
  const std::string script =
      "# a comment line\n"
      "GROUP month AVG departure_delay\n"
      "FILTER month == June\n"
      "\n"
      "GROUP origin_airport COUNT\n"
      "FILTER departure_delay > 45.5   # trailing comment\n"
      "BACK\n";
  auto ops = ParseOperationScript(script, FlightsTable());
  ASSERT_TRUE(ops.ok()) << ops.status();
  ASSERT_EQ(ops.value().size(), 5u);
  EXPECT_EQ(ops.value()[0].type, OpType::kGroup);
  EXPECT_EQ(ops.value()[0].group.agg, AggFunc::kAvg);
  EXPECT_EQ(ops.value()[1].type, OpType::kFilter);
  EXPECT_TRUE(ops.value()[1].filter.term == Value(std::string("June")));
  EXPECT_EQ(ops.value()[2].group.agg, AggFunc::kCount);
  EXPECT_EQ(ops.value()[2].group.agg_column, -1);
  EXPECT_TRUE(ops.value()[3].filter.term == Value(45.5));
  EXPECT_EQ(ops.value()[3].filter.op, CompareOp::kGt);
  EXPECT_EQ(ops.value()[4].type, OpType::kBack);
}

TEST(ScriptParserTest, TermTypeInference) {
  auto ops = ParseOperationScript(
      "FILTER distance == 300\n"
      "FILTER departure_delay <= -7.25\n"
      "FILTER month != June\n",
      FlightsTable());
  ASSERT_TRUE(ops.ok());
  EXPECT_TRUE(ops.value()[0].filter.term.is_int());
  EXPECT_TRUE(ops.value()[1].filter.term.is_double());
  EXPECT_TRUE(ops.value()[2].filter.term.is_string());
}

TEST(ScriptParserTest, QuotedTermsForceStringsAndAllowSpaces) {
  auto ops = ParseOperationScript(
      "FILTER month == \"June\"\n"
      "FILTER delay_reason == \"Late Aircraft\"\n",
      FlightsTable());
  ASSERT_TRUE(ops.ok()) << ops.status();
  EXPECT_TRUE(ops.value()[0].filter.term.is_string());
  EXPECT_EQ(ops.value()[1].filter.term.as_string(), "Late Aircraft");
}

TEST(ScriptParserTest, ErrorsCarryLineNumbers) {
  auto bad_column = ParseOperationScript("FILTER nope == 1\n", FlightsTable());
  EXPECT_FALSE(bad_column.ok());
  EXPECT_NE(bad_column.status().message().find("line 1"), std::string::npos);

  auto bad_verb = ParseOperationScript("\nSELECT month\n", FlightsTable());
  EXPECT_FALSE(bad_verb.ok());
  EXPECT_NE(bad_verb.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseOperationScript("FILTER month ~= x\n",
                                    FlightsTable()).ok());
  EXPECT_FALSE(ParseOperationScript("GROUP month MEDIAN distance\n",
                                    FlightsTable()).ok());
  EXPECT_FALSE(ParseOperationScript("GROUP month COUNT distance\n",
                                    FlightsTable()).ok());
  EXPECT_FALSE(ParseOperationScript("GROUP month SUM\n",
                                    FlightsTable()).ok());
  EXPECT_FALSE(ParseOperationScript("BACK now\n", FlightsTable()).ok());
  EXPECT_FALSE(ParseOperationScript("FILTER month == \"unterminated\n",
                                    FlightsTable()).ok());
}

TEST(ScriptParserTest, RoundTripsThroughFormat) {
  const Table& table = FlightsTable();
  std::vector<EdaOperation> ops = {
      EdaOperation::Group(table.FindColumn("month"), AggFunc::kAvg,
                          table.FindColumn("departure_delay")),
      EdaOperation::Filter(table.FindColumn("month"), CompareOp::kEq,
                           Value(std::string("June"))),
      EdaOperation::Filter(table.FindColumn("delay_reason"), CompareOp::kEq,
                           Value(std::string("Late Aircraft"))),
      EdaOperation::Filter(table.FindColumn("distance"), CompareOp::kLe,
                           Value(int64_t{450})),
      EdaOperation::Back(),
      EdaOperation::Group(table.FindColumn("airline"), AggFunc::kCount, -1),
  };
  std::string script = FormatOperationScript(ops, table);
  auto parsed = ParseOperationScript(script, table);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\nscript:\n" << script;
  ASSERT_EQ(parsed.value().size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(parsed.value()[i].type, ops[i].type) << i;
    if (ops[i].type == OpType::kFilter) {
      EXPECT_EQ(parsed.value()[i].filter.column, ops[i].filter.column);
      EXPECT_EQ(parsed.value()[i].filter.op, ops[i].filter.op);
      EXPECT_TRUE(parsed.value()[i].filter.term == ops[i].filter.term) << i;
    }
    if (ops[i].type == OpType::kGroup) {
      EXPECT_EQ(parsed.value()[i].group.group_column,
                ops[i].group.group_column);
      EXPECT_EQ(parsed.value()[i].group.agg, ops[i].group.agg);
      EXPECT_EQ(parsed.value()[i].group.agg_column, ops[i].group.agg_column);
    }
  }
}

TEST(ScriptParserTest, NumericLookingStringTermsSurviveRoundTrip) {
  const Table& table = FlightsTable();
  std::vector<EdaOperation> ops = {
      EdaOperation::Filter(table.FindColumn("month"), CompareOp::kEq,
                           Value(std::string("1234"))),
  };
  std::string script = FormatOperationScript(ops, table);
  auto parsed = ParseOperationScript(script, table);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value()[0].filter.term.is_string());
  EXPECT_EQ(parsed.value()[0].filter.term.as_string(), "1234");
}

TEST(ScriptParserTest, GoldScriptsRoundTripForEveryDataset) {
  for (const auto& id : ExperimentalDatasetIds()) {
    auto dataset = MakeDataset(id);
    ASSERT_TRUE(dataset.ok());
    // Format all gold scripts and re-parse them.
    EnvConfig config;
    config.episode_length = 12;
    EdaEnvironment env(dataset.value(), config);
    auto candidates = env.EnumerateOperations(2);
    std::string script =
        FormatOperationScript(candidates, *dataset.value().table);
    auto parsed = ParseOperationScript(script, *dataset.value().table);
    ASSERT_TRUE(parsed.ok()) << id << ": " << parsed.status();
    EXPECT_EQ(parsed.value().size(), candidates.size()) << id;
  }
}

}  // namespace
}  // namespace atena
