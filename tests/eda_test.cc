#include <gtest/gtest.h>

#include <string>

#include "data/registry.h"
#include "eda/binning.h"
#include "eda/environment.h"
#include "eda/observation.h"
#include "eda/session.h"

namespace atena {
namespace {

Dataset SmallDataset() {
  auto d = MakeDataset("cyber2");  // 348 rows — cheap to step
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig SmallConfig() {
  EnvConfig config;
  config.episode_length = 8;
  config.num_term_bins = 4;
  config.seed = 5;
  return config;
}

// ------------------------------------------------------------ Operation

TEST(OperationTest, DescribeFilter) {
  Dataset d = SmallDataset();
  int uri = d.table->FindColumn("uri");
  EdaOperation op = EdaOperation::Filter(uri, CompareOp::kEq,
                                         Value(std::string("/index.html")));
  EXPECT_EQ(op.Describe(*d.table), "FILTER uri == '/index.html'");
}

TEST(OperationTest, DescribeGroupAndBack) {
  Dataset d = SmallDataset();
  int src = d.table->FindColumn("source_ip");
  int bytes = d.table->FindColumn("response_bytes");
  EdaOperation group = EdaOperation::Group(src, AggFunc::kAvg, bytes);
  EXPECT_EQ(group.Describe(*d.table),
            "GROUP-BY source_ip, AVG(response_bytes)");
  EdaOperation count = EdaOperation::Group(src, AggFunc::kCount, -1);
  EXPECT_EQ(count.Describe(*d.table), "GROUP-BY source_ip, COUNT(*)");
  EXPECT_EQ(EdaOperation::Back().Describe(*d.table), "BACK");
}

// -------------------------------------------------------------- Binning

std::vector<TokenFreq> SyntheticTokens(std::vector<int64_t> counts) {
  std::vector<TokenFreq> tokens;
  int64_t id = 0;
  for (int64_t c : counts) {
    TokenFreq tf;
    tf.token = Value(id++);
    tf.count = c;
    tokens.push_back(tf);
  }
  return tokens;
}

TEST(BinningTest, LogarithmicAssignment) {
  // max=64; halving ranges: bin0 [64..32), ... with 64 itself in bin 0.
  auto tokens = SyntheticTokens({64, 40, 16, 3, 1});
  TermBinning binning(tokens, 4);
  EXPECT_EQ(binning.BinMembers(0).size(), 2u);  // 64, 40
  EXPECT_EQ(binning.BinMembers(2).size(), 1u);  // 16 -> log2(4)=2
  // 3 -> log2(64/3)=4.4 -> clamped to last bin together with 1.
  EXPECT_EQ(binning.BinMembers(3).size(), 2u);
}

TEST(BinningTest, SampleFallsBackToNearestNonEmptyBin) {
  auto tokens = SyntheticTokens({100, 100});
  TermBinning binning(tokens, 8);
  Rng rng(3);
  // Only bin 0 is populated; any requested bin must still yield a token.
  for (int bin = 0; bin < 8; ++bin) {
    int t = binning.SampleToken(bin, &rng);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 2);
  }
}

TEST(BinningTest, EmptyTokenListYieldsNoToken) {
  TermBinning binning({}, 4);
  Rng rng(3);
  EXPECT_EQ(binning.SampleToken(0, &rng), -1);
}

class BinCountTest : public ::testing::TestWithParam<int> {};

TEST_P(BinCountTest, EveryTokenLandsInExactlyOneBin) {
  auto tokens = SyntheticTokens({512, 400, 256, 100, 64, 32, 9, 2, 1, 1});
  TermBinning binning(tokens, GetParam());
  size_t total = 0;
  for (int b = 0; b < binning.num_bins(); ++b) {
    total += binning.BinMembers(b).size();
  }
  EXPECT_EQ(total, tokens.size());
}

INSTANTIATE_TEST_SUITE_P(Bins, BinCountTest, ::testing::Values(1, 2, 4, 8, 16));

// -------------------------------------------------------- Observation

TEST(ObservationTest, Dimensions) {
  Dataset d = SmallDataset();
  ObservationEncoder encoder(d.table, 3);
  EXPECT_EQ(encoder.display_dim(), 4 * d.table->num_columns() + 3);
  EXPECT_EQ(encoder.observation_dim(), 3 * encoder.display_dim());
}

TEST(ObservationTest, ZeroPaddedHistory) {
  Dataset d = SmallDataset();
  ObservationEncoder encoder(d.table, 3);
  Display root;
  root.rows = AllRows(*d.table).value();
  auto vec = encoder.EncodeDisplay(root);
  auto obs = encoder.EncodeObservation({vec});
  ASSERT_EQ(static_cast<int>(obs.size()), encoder.observation_dim());
  // Slot 0 = current display; slots 1 and 2 all-zero.
  for (int i = encoder.display_dim(); i < encoder.observation_dim(); ++i) {
    EXPECT_DOUBLE_EQ(obs[static_cast<size_t>(i)], 0.0);
  }
  for (size_t i = 0; i < vec.size(); ++i) {
    EXPECT_DOUBLE_EQ(obs[i], vec[i]);
  }
}

TEST(ObservationTest, MostRecentDisplayFirst) {
  Dataset d = SmallDataset();
  ObservationEncoder encoder(d.table, 2);
  Display root;
  root.rows = AllRows(*d.table).value();
  Display half = root;
  half.rows = std::vector<int32_t>(root.rows.begin(),
                                   root.rows.begin() +
                                       root.rows.size() / 2);
  auto v_root = encoder.EncodeDisplay(root);
  auto v_half = encoder.EncodeDisplay(half);
  auto obs = encoder.EncodeObservation({v_root, v_half});
  for (size_t i = 0; i < v_half.size(); ++i) {
    EXPECT_DOUBLE_EQ(obs[i], v_half[i]);
  }
}

TEST(ObservationTest, GroupFeaturesPopulatedOnlyWhenGrouped) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  env.StepOperation(EdaOperation::Group(method, AggFunc::kCount, -1));
  const auto& vectors = env.display_vectors();
  const auto& before = vectors[vectors.size() - 2];
  const auto& after = vectors.back();
  const int dim = env.encoder().display_dim();
  // Global features are the last three slots of the display vector.
  EXPECT_DOUBLE_EQ(before[static_cast<size_t>(dim - 3)], 0.0);
  EXPECT_GT(after[static_cast<size_t>(dim - 3)], 0.0);
  // The grouped column's flag flips on.
  EXPECT_DOUBLE_EQ(after[static_cast<size_t>(4 * method + 3)], 1.0);
}

// ---------------------------------------------------------- ActionSpace

TEST(ActionSpaceTest, SegmentLayoutAndCounts) {
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  EdaEnvironment env(d, config);
  const ActionSpace& space = env.action_space();
  auto sizes = space.SegmentSizes();
  ASSERT_EQ(sizes.size(), 7u);
  EXPECT_EQ(sizes[0], kNumOpTypes);
  EXPECT_EQ(sizes[1], d.table->num_columns());
  EXPECT_EQ(sizes[2], kNumCompareOps);
  EXPECT_EQ(sizes[3], config.num_term_bins);
  EXPECT_EQ(sizes[5], kNumAggFuncs);
  const int c = d.table->num_columns();
  EXPECT_EQ(space.TotalParameterNodes(),
            kNumOpTypes + 3 * c + kNumCompareOps + config.num_term_bins +
                kNumAggFuncs);
  // Flat layout is much wider than the pre-output layout (paper §5).
  EXPECT_GT(space.FlatActionCount(10), space.TotalParameterNodes());
}

// ---------------------------------------------------------- Environment

TEST(EnvironmentTest, ResetProducesRootObservation) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  auto obs = env.Reset();
  EXPECT_EQ(static_cast<int>(obs.size()), env.observation_dim());
  EXPECT_EQ(env.step_count(), 0);
  EXPECT_FALSE(env.done());
  EXPECT_EQ(env.display_history().size(), 1u);
  EXPECT_EQ(env.current_display().rows.size(),
            static_cast<size_t>(d.table->num_rows()));
}

TEST(EnvironmentTest, FilterStepNarrowsRows) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  auto outcome = env.StepOperation(EdaOperation::Filter(
      method, CompareOp::kEq, Value(std::string("POST"))));
  EXPECT_TRUE(outcome.valid);
  EXPECT_LT(env.current_display().rows.size(),
            static_cast<size_t>(d.table->num_rows()));
  EXPECT_EQ(env.current_display().filters.size(), 1u);
  EXPECT_EQ(env.display_history().size(), 2u);
}

TEST(EnvironmentTest, EmptyFilterIsInvalidNoOp) {
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  config.invalid_action_penalty = -2.5;
  EdaEnvironment env(d, config);
  env.Reset();
  int method = d.table->FindColumn("method");
  auto outcome = env.StepOperation(EdaOperation::Filter(
      method, CompareOp::kEq, Value(std::string("DELETE"))));
  EXPECT_FALSE(outcome.valid);
  EXPECT_DOUBLE_EQ(outcome.reward, -2.5);
  EXPECT_EQ(env.current_display().filters.size(), 0u);
  // History still advances (a repeated display).
  EXPECT_EQ(env.display_history().size(), 2u);
}

TEST(EnvironmentTest, RepeatedPredicateIsInvalidNoOp) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  EdaOperation filter = EdaOperation::Filter(method, CompareOp::kEq,
                                             Value(std::string("POST")));
  EXPECT_TRUE(env.StepOperation(filter).valid);
  // Re-applying the exact same predicate shows nothing new.
  EXPECT_FALSE(env.StepOperation(filter).valid);
  // A fresh predicate that keeps every row is a legitimate confirmation
  // step (e.g. "all of these are POSTs to the same host").
  int status = d.table->FindColumn("status");
  EXPECT_TRUE(env.StepOperation(EdaOperation::Filter(
      status, CompareOp::kGe, Value(int64_t{0}))).valid);
}

TEST(EnvironmentTest, BackAtRootIsInvalid) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  auto outcome = env.StepOperation(EdaOperation::Back());
  EXPECT_FALSE(outcome.valid);
}

TEST(EnvironmentTest, BackRestoresPreviousDisplay) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  env.StepOperation(EdaOperation::Filter(method, CompareOp::kEq,
                                         Value(std::string("POST"))));
  size_t filtered = env.current_display().rows.size();
  auto outcome = env.StepOperation(EdaOperation::Back());
  EXPECT_TRUE(outcome.valid);
  EXPECT_GT(env.current_display().rows.size(), filtered);
  EXPECT_EQ(env.current_display().filters.size(), 0u);
}

TEST(EnvironmentTest, ConsecutiveGroupsCompose) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  int status = d.table->FindColumn("status");
  EXPECT_TRUE(env.StepOperation(
      EdaOperation::Group(method, AggFunc::kCount, -1)).valid);
  EXPECT_TRUE(env.StepOperation(
      EdaOperation::Group(status, AggFunc::kCount, -1)).valid);
  EXPECT_EQ(env.current_display().group_columns.size(), 2u);
  // Grouping an already-grouped attribute is a no-op.
  EXPECT_FALSE(env.StepOperation(
      EdaOperation::Group(method, AggFunc::kCount, -1)).valid);
}

TEST(EnvironmentTest, GroupDepthIsCapped) {
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  config.max_group_attrs = 2;
  config.episode_length = 10;
  EdaEnvironment env(d, config);
  env.Reset();
  EXPECT_TRUE(env.StepOperation(
      EdaOperation::Group(0, AggFunc::kCount, -1)).valid);
  EXPECT_TRUE(env.StepOperation(
      EdaOperation::Group(1, AggFunc::kCount, -1)).valid);
  EXPECT_FALSE(env.StepOperation(
      EdaOperation::Group(2, AggFunc::kCount, -1)).valid);
}

TEST(EnvironmentTest, FilterAfterGroupRecomputesGroups) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  int src = d.table->FindColumn("source_ip");
  env.StepOperation(EdaOperation::Group(method, AggFunc::kCount, -1));
  size_t groups_before = env.current_display().grouped->groups.size();
  auto outcome = env.StepOperation(EdaOperation::Filter(
      src, CompareOp::kEq, Value(std::string("203.0.113.99"))));
  EXPECT_TRUE(outcome.valid);
  ASSERT_TRUE(env.current_display().grouped != nullptr);
  EXPECT_LE(env.current_display().grouped->groups.size(), groups_before);
}

TEST(EnvironmentTest, EpisodeEndsAfterConfiguredLength) {
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  config.episode_length = 3;
  EdaEnvironment env(d, config);
  env.Reset();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(env.done());
    env.StepOperation(EdaOperation::Back());  // invalid no-ops still count
  }
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.steps().size(), 3u);
}

TEST(EnvironmentTest, ResolveActionCoercesIncompatibleOperators) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  EnvAction action;
  action.type = OpType::kFilter;
  action.filter_column = d.table->FindColumn("uri");  // string column
  action.filter_op = static_cast<int>(CompareOp::kGt);
  EdaOperation op = env.ResolveAction(action);
  EXPECT_EQ(op.filter.op, CompareOp::kEq);

  action.filter_column = d.table->FindColumn("status");  // numeric column
  action.filter_op = static_cast<int>(CompareOp::kContains);
  op = env.ResolveAction(action);
  EXPECT_EQ(op.filter.op, CompareOp::kEq);
}

TEST(EnvironmentTest, ResolveActionCoercesStringAggToCount) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  EnvAction action;
  action.type = OpType::kGroup;
  action.group_column = d.table->FindColumn("method");
  action.agg_func = static_cast<int>(AggFunc::kAvg);
  action.agg_column = d.table->FindColumn("uri");  // string target
  EdaOperation op = env.ResolveAction(action);
  EXPECT_EQ(op.group.agg, AggFunc::kCount);
}

TEST(EnvironmentTest, ResolvedFilterTermComesFromCurrentDisplay) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  EnvAction action;
  action.type = OpType::kFilter;
  action.filter_column = d.table->FindColumn("method");
  action.filter_op = static_cast<int>(CompareOp::kEq);
  action.filter_bin = 0;
  EdaOperation op = env.ResolveAction(action);
  ASSERT_TRUE(op.filter.term.is_string());
  const std::string& term = op.filter.term.as_string();
  EXPECT_TRUE(term == "GET" || term == "POST");
}

TEST(EnvironmentTest, SnapshotRestoreRoundTrip) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  env.StepOperation(EdaOperation::Group(method, AggFunc::kCount, -1));
  auto snapshot = env.SaveSnapshot();
  const size_t history = env.display_history().size();
  env.StepOperation(EdaOperation::Filter(method, CompareOp::kEq,
                                         Value(std::string("POST"))));
  EXPECT_GT(env.display_history().size(), history);
  env.RestoreSnapshot(snapshot);
  EXPECT_EQ(env.display_history().size(), history);
  EXPECT_EQ(env.step_count(), 1);
  EXPECT_TRUE(env.current_display().is_grouped());
}

TEST(EnvironmentTest, EnumerateOperationsCoversAllTypes) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  auto ops = env.EnumerateOperations(2);
  bool has_filter = false, has_group = false, has_back = false;
  for (const auto& op : ops) {
    has_filter |= op.type == OpType::kFilter;
    has_group |= op.type == OpType::kGroup;
    has_back |= op.type == OpType::kBack;
  }
  EXPECT_TRUE(has_filter);
  EXPECT_TRUE(has_group);
  EXPECT_TRUE(has_back);
}

TEST(EnvironmentTest, CapRowsLimitsLargeSelections) {
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  config.stats_row_cap = 100;
  EdaEnvironment env(d, config);
  auto capped = env.CapRows(AllRows(*d.table).value());
  EXPECT_EQ(capped.size(), 100u);
  // Order preserved, strictly increasing stride sample.
  for (size_t i = 1; i < capped.size(); ++i) {
    EXPECT_LT(capped[i - 1], capped[i]);
  }
}

TEST(EnvironmentTest, RewardSignalReceivesConsistentContext) {
  // The op being scored must be steps().back() when Compute runs.
  class ProbeReward final : public RewardSignal {
   public:
    double Compute(const RewardContext& context) override {
      ok = !context.env->steps().empty() &&
           &context.env->steps().back().op == context.op;
      return 0.5;
    }
    bool ok = false;
  };
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  ProbeReward probe;
  env.SetRewardSignal(&probe);
  env.Reset();
  int method = d.table->FindColumn("method");
  auto outcome = env.StepOperation(EdaOperation::Filter(
      method, CompareOp::kEq, Value(std::string("POST"))));
  EXPECT_TRUE(outcome.valid);
  EXPECT_DOUBLE_EQ(outcome.reward, 0.5);
  EXPECT_TRUE(probe.ok);
}

// --------------------------------------------------- Malformed actions

// Every parameterized head, probed at and past its bound: a malformed
// action id must take the penalized no-op path — never assert, never index
// out of range, never consume randomness.
TEST(EnvironmentTest, ValidateActionRejectsEveryOutOfRangeHead) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  const ActionSpace& space = env.action_space();

  EnvAction ok_filter;
  ok_filter.type = OpType::kFilter;
  EXPECT_TRUE(env.ValidateAction(ok_filter).ok());
  EnvAction ok_group;
  ok_group.type = OpType::kGroup;
  EXPECT_TRUE(env.ValidateAction(ok_group).ok());
  EXPECT_TRUE(env.ValidateAction(EnvAction{}).ok());  // kBack

  // The op-type head, exactly at its bound. (Values far outside the
  // enum's bit range would be UB to even form, so the decoder bound is
  // the interesting edge.)
  EnvAction action;
  action.type = static_cast<OpType>(space.num_op_types);
  EXPECT_EQ(env.ValidateAction(action).code(), StatusCode::kOutOfRange);

  struct HeadCase {
    const char* name;
    OpType type;
    int EnvAction::*field;
    int bound;
  };
  const HeadCase cases[] = {
      {"filter column", OpType::kFilter, &EnvAction::filter_column,
       space.num_columns},
      {"filter operator", OpType::kFilter, &EnvAction::filter_op,
       space.num_filter_ops},
      {"filter bin", OpType::kFilter, &EnvAction::filter_bin,
       space.num_term_bins},
      {"group column", OpType::kGroup, &EnvAction::group_column,
       space.num_columns},
      {"agg function", OpType::kGroup, &EnvAction::agg_func,
       space.num_agg_funcs},
      {"agg column", OpType::kGroup, &EnvAction::agg_column,
       space.num_columns},
  };
  for (const HeadCase& c : cases) {
    SCOPED_TRACE(c.name);
    for (int bad : {-1, c.bound, c.bound + 100}) {
      SCOPED_TRACE(bad);
      EnvAction probe;
      probe.type = c.type;
      probe.*(c.field) = bad;
      Status status = env.ValidateAction(probe);
      EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
      EXPECT_NE(status.message().find(c.name), std::string::npos)
          << status.message();
    }
    // The head's last valid index still passes validation.
    EnvAction valid;
    valid.type = c.type;
    valid.*(c.field) = c.bound - 1;
    EXPECT_TRUE(env.ValidateAction(valid).ok());
  }
}

TEST(EnvironmentTest, StepWithMalformedActionIsPenalizedNoOp) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();

  EnvAction bad;
  bad.type = OpType::kFilter;
  bad.filter_column = env.action_space().num_columns;  // at the bound

  const RngState rng_before = env.rng_state();
  StepOutcome outcome = env.Step(bad);
  EXPECT_FALSE(outcome.valid);
  EXPECT_DOUBLE_EQ(outcome.reward, env.config().invalid_action_penalty);
  EXPECT_FALSE(outcome.done);
  EXPECT_EQ(outcome.op.type, OpType::kBack);  // recorded as a no-op
  // Rejection happens before term sampling: zero randomness consumed, so
  // agents emitting garbage ids cannot desynchronize a deterministic run.
  const RngState rng_after = env.rng_state();
  for (int w = 0; w < 4; ++w) EXPECT_EQ(rng_after.words[w], rng_before.words[w]);
  EXPECT_EQ(rng_after.has_spare_gaussian, rng_before.has_spare_gaussian);
  ASSERT_EQ(env.steps().size(), 1u);
  EXPECT_FALSE(env.steps()[0].valid);

  // The episode continues: a subsequent well-formed action still executes.
  EnvAction good;
  good.type = OpType::kGroup;
  StepOutcome next = env.Step(good);
  EXPECT_TRUE(next.valid);
  EXPECT_EQ(env.steps().size(), 2u);
}

TEST(EnvironmentTest, MalformedActionsStillEndTheEpisode) {
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  config.episode_length = 3;
  EdaEnvironment env(d, config);
  env.Reset();
  EnvAction bad;
  bad.type = OpType::kGroup;
  bad.agg_func = -7;
  StepOutcome outcome;
  for (int i = 0; i < 3; ++i) outcome = env.Step(bad);
  EXPECT_TRUE(outcome.done);
  EXPECT_FALSE(outcome.valid);
}

// -------------------------------------------------------------- Session

TEST(SessionTest, NotebookSkipsInvalidSteps) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  env.StepOperation(EdaOperation::Back());  // invalid at root
  env.StepOperation(EdaOperation::Filter(method, CompareOp::kEq,
                                         Value(std::string("POST"))));
  EdaNotebook notebook = NotebookFromSession(env, "test");
  ASSERT_EQ(notebook.entries.size(), 1u);
  EXPECT_EQ(notebook.entries[0].op.type, OpType::kFilter);
  EXPECT_EQ(notebook.generator, "test");
}

TEST(SessionTest, ReplayReproducesOperations) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  int method = d.table->FindColumn("method");
  std::vector<EdaOperation> ops = {
      EdaOperation::Group(method, AggFunc::kCount, -1),
      EdaOperation::Filter(method, CompareOp::kEq,
                           Value(std::string("GET"))),
  };
  double total = 0.0;
  EdaNotebook notebook = ReplayOperations(&env, ops, "replay", &total);
  EXPECT_EQ(notebook.entries.size(), 2u);
  EXPECT_EQ(notebook.dataset_id, "cyber2");
}

}  // namespace
}  // namespace atena
