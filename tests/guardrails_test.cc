// Training-guardrail tests (DESIGN.md §10): anomaly trigger detection, the
// rollback/retry/LR-backoff protocol, the JSONL health log, the
// retry-budget Status exit, and the determinism guarantees — guard-on with
// no anomaly is byte-identical to guard-off, and a rollback-recovered run
// resumes bit-identically across a crash mid-recovery at any thread count.
// Faults are injected through the PpoUpdater corruption hook: NaN into the
// loss, inf into a gradient slot, forced entropy collapse — each fired at
// every update index of a small run.

#include "rl/guardrails.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "rl/checkpoint.h"
#include "rl/parallel_trainer.h"
#include "rl/rollout.h"

namespace atena {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveIfExists(const std::string& path) {
  if (FileExists(path)) std::remove(path.c_str());
}

void RemoveCheckpointFamily(const std::string& path) {
  for (const char* suffix : {"", ".prev", ".new", ".tmp", ".new.tmp"}) {
    RemoveIfExists(path + suffix);
  }
}

std::string ReadWholeFile(const std::string& path) {
  std::string out;
  EXPECT_TRUE(ReadFileToString(path, &out).ok()) << path;
  return out;
}

/// Clears the PpoUpdater fault hook even when a test fails mid-way.
struct FaultHookGuard {
  ~FaultHookGuard() { SetPpoFaultInjectionHookForTesting({}); }
};

UpdateStats CleanStats(double grad_norm = 1.0, double entropy = 0.5) {
  UpdateStats stats;
  stats.policy_loss = 0.1;
  stats.value_loss = 0.2;
  stats.entropy = entropy;
  stats.grad_norm_max = grad_norm;
  stats.minibatches = 4;
  return stats;
}

GuardrailOptions SmallWindows() {
  GuardrailOptions options;
  options.enabled = true;
  options.grad_norm_window = 4;
  options.grad_norm_factor = 10.0;
  options.reward_window = 4;
  options.reward_patience = 2;
  options.reward_drop_abs = 1.0;
  options.reward_drop_frac = 0.0;
  return options;
}

// ---------------------------------------------------------------------------
// Trigger detection (unit level).

TEST(TrainingGuardTest, CleanUpdatesDoNotTrigger) {
  TrainingGuard guard(SmallWindows());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(guard.Check(i, CleanStats(), 5.0, true), GuardTrigger::kNone);
  }
  EXPECT_EQ(guard.summary().events, 0);
  EXPECT_EQ(guard.lr_scale(), 1.0);
}

TEST(TrainingGuardTest, NonFiniteLossTriggers) {
  TrainingGuard guard(SmallWindows());
  UpdateStats stats = CleanStats();
  stats.policy_loss = kNan;
  EXPECT_EQ(guard.Check(0, stats, 0.0, false),
            GuardTrigger::kNonFiniteLoss);
  stats = CleanStats();
  stats.value_loss = kInf;
  EXPECT_EQ(guard.Check(0, stats, 0.0, false),
            GuardTrigger::kNonFiniteLoss);
  stats = CleanStats();
  stats.entropy = kNan;
  EXPECT_EQ(guard.Check(0, stats, 0.0, false),
            GuardTrigger::kNonFiniteLoss);
}

TEST(TrainingGuardTest, NonFiniteGradientTriggers) {
  TrainingGuard guard(SmallWindows());
  UpdateStats stats = CleanStats();
  stats.grad_norm_max = kInf;
  EXPECT_EQ(guard.Check(0, stats, 0.0, false),
            GuardTrigger::kNonFiniteGradient);
  // A finite norm with zeroed-NaN gradient values still names the gradient:
  // the clip pass zeroed data the optimizer silently stepped over.
  stats = CleanStats();
  stats.nonfinite_grad_values = 3;
  EXPECT_EQ(guard.Check(0, stats, 0.0, false),
            GuardTrigger::kNonFiniteGradient);
}

TEST(TrainingGuardTest, ExplodingGradientUsesRollingMedian) {
  TrainingGuard guard(SmallWindows());
  // The detector is unarmed until the window fills: a large early norm is
  // start-of-training noise, not an anomaly.
  EXPECT_EQ(guard.Check(0, CleanStats(50.0), 0.0, false),
            GuardTrigger::kNone);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(guard.Check(i, CleanStats(1.0), 0.0, false),
              GuardTrigger::kNone);
  }
  // Median of the window is now 1.0: 5x passes, >10x trips.
  EXPECT_EQ(guard.Check(5, CleanStats(5.0), 0.0, false), GuardTrigger::kNone);
  EXPECT_EQ(guard.Check(6, CleanStats(20.0), 0.0, false),
            GuardTrigger::kExplodingGradient);
}

TEST(TrainingGuardTest, ExplodingGradientAbsoluteCeiling) {
  TrainingGuard guard(SmallWindows());
  // The absolute ceiling is armed from update 0, window or no window.
  EXPECT_EQ(guard.Check(0, CleanStats(2e9), 0.0, false),
            GuardTrigger::kExplodingGradient);
}

TEST(TrainingGuardTest, EntropyCollapseTriggers) {
  TrainingGuard guard(SmallWindows());
  EXPECT_EQ(guard.Check(0, CleanStats(1.0, 0.5), 0.0, false),
            GuardTrigger::kNone);
  EXPECT_EQ(guard.Check(1, CleanStats(1.0, 1e-4), 0.0, false),
            GuardTrigger::kEntropyCollapse);
}

TEST(TrainingGuardTest, RewardDivergenceNeedsSustainedDrop) {
  TrainingGuard guard(SmallWindows());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(guard.Check(i, CleanStats(), 10.0, true), GuardTrigger::kNone);
  }
  // One bad window mean is a strike, not a trigger (patience = 2)...
  EXPECT_EQ(guard.Check(4, CleanStats(), 2.0, true), GuardTrigger::kNone);
  // ...and recovering resets the strike counter.
  EXPECT_EQ(guard.Check(5, CleanStats(), 10.0, true), GuardTrigger::kNone);
  EXPECT_EQ(guard.Check(6, CleanStats(), 2.0, true), GuardTrigger::kNone);
  EXPECT_EQ(guard.Check(7, CleanStats(), 2.0, true),
            GuardTrigger::kRewardDivergence);
}

// ---------------------------------------------------------------------------
// Recovery policy: retry budget, LR backoff, health log.

TEST(TrainingGuardTest, RetryBudgetExhaustionReturnsStructuredStatus) {
  GuardrailOptions options = SmallWindows();
  options.max_retries = 2;
  options.lr_backoff = 0.5;
  TrainingGuard guard(options);
  UpdateStats bad = CleanStats();
  bad.policy_loss = kNan;

  EXPECT_TRUE(guard.OnAnomaly(GuardTrigger::kNonFiniteLoss, 3, bad, 0.0).ok());
  EXPECT_EQ(guard.lr_scale(), 0.5);
  EXPECT_TRUE(guard.OnAnomaly(GuardTrigger::kNonFiniteLoss, 3, bad, 0.0).ok());
  EXPECT_EQ(guard.lr_scale(), 0.25);

  Status exhausted = guard.OnAnomaly(GuardTrigger::kNonFiniteLoss, 3, bad, 0.0);
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(exhausted.message().find("non_finite_loss"), std::string::npos);
  // The failed attempt does not consume a retry or back the LR off further.
  EXPECT_EQ(guard.lr_scale(), 0.25);
  EXPECT_EQ(guard.summary().rollbacks, 2);
  EXPECT_EQ(guard.summary().events, 3);
}

TEST(TrainingGuardTest, HealthLogIsJsonlWithQuotedNonFinite) {
  const std::string log_path = TempPath("guard_unit_health.jsonl");
  RemoveIfExists(log_path);
  GuardrailOptions options = SmallWindows();
  options.health_log_path = log_path;
  TrainingGuard guard(options);
  guard.NoteGoodUpdate(4);

  UpdateStats bad = CleanStats();
  bad.policy_loss = kNan;
  bad.grad_norm_max = kInf;
  ASSERT_TRUE(guard.OnAnomaly(GuardTrigger::kNonFiniteLoss, 4, bad, 1.5).ok());

  const std::string log = ReadWholeFile(log_path);
  EXPECT_NE(log.find("\"update\":4"), std::string::npos) << log;
  EXPECT_NE(log.find("\"trigger\":\"non_finite_loss\""), std::string::npos);
  EXPECT_NE(log.find("\"action\":\"rollback\""), std::string::npos);
  EXPECT_NE(log.find("\"policy_loss\":\"nan\""), std::string::npos);
  EXPECT_NE(log.find("\"grad_norm_max\":\"inf\""), std::string::npos);
  EXPECT_NE(log.find("\"last_good_update\":4"), std::string::npos);
  EXPECT_NE(log.find("\"lr_scale\":0.5"), std::string::npos);
  // One event == one line of valid JSONL.
  EXPECT_EQ(log.back(), '\n');
  EXPECT_EQ(std::count(log.begin(), log.end(), '\n'), 1);
}

TEST(GuardCheckpointTest, GuardStateRoundTripsThroughPayload) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EnvConfig config;
  config.num_term_bins = 4;
  EdaEnvironment env(dataset.value(), config);
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       policy_options);

  TrainingCheckpoint ckpt;
  ckpt.guard.retries_used = 2;
  ckpt.guard.lr_scale = 0.25;
  ckpt.guard.last_good_update = 5;
  ckpt.guard.events_logged = 7;
  const std::string payload =
      EncodeCheckpointPayload(policy.Parameters(), ckpt);
  TrainingCheckpoint decoded;
  ASSERT_TRUE(DecodeCheckpointPayload(payload, policy.Parameters(), "test",
                                      &decoded)
                  .ok());
  EXPECT_EQ(decoded.guard.retries_used, 2);
  EXPECT_EQ(decoded.guard.lr_scale, 0.25);
  EXPECT_EQ(decoded.guard.last_good_update, 5);
  EXPECT_EQ(decoded.guard.events_logged, 7);

  // Default guard state (no event ever) is not serialized at all, keeping
  // anomaly-free checkpoints byte-identical to guardrails-off ones.
  TrainingCheckpoint clean;
  const std::string clean_payload =
      EncodeCheckpointPayload(policy.Parameters(), clean);
  EXPECT_EQ(clean_payload.find("guard"), std::string::npos);
  TrainingCheckpoint clean_decoded;
  ASSERT_TRUE(DecodeCheckpointPayload(clean_payload, policy.Parameters(),
                                      "test", &clean_decoded)
                  .ok());
  EXPECT_TRUE(clean_decoded.guard.IsDefault());
}

// ---------------------------------------------------------------------------
// End-to-end trainer integration.

EnvConfig ConfigWithSeed(uint64_t seed) {
  EnvConfig config;
  config.episode_length = 7;
  config.num_term_bins = 4;
  config.history_displays = 2;
  config.seed = seed;
  return config;
}

struct TrainSetup {
  Dataset dataset;
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  std::unique_ptr<TwofoldPolicy> policy;
};

TrainSetup MakeSetup(int n_actors) {
  auto dataset = MakeDataset("cyber2");
  EXPECT_TRUE(dataset.ok());
  TrainSetup setup;
  setup.dataset = dataset.value();
  for (int e = 0; e < n_actors; ++e) {
    setup.owned.push_back(std::make_unique<EdaEnvironment>(
        setup.dataset, ConfigWithSeed(100 + static_cast<uint64_t>(e))));
    setup.envs.push_back(setup.owned.back().get());
  }
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  setup.policy = std::make_unique<TwofoldPolicy>(
      setup.envs[0]->observation_dim(), setup.envs[0]->action_space(),
      policy_options);
  return setup;
}

TrainerOptions BaseOptions() {
  TrainerOptions options;
  options.total_steps = 160;
  options.rollout_length = 40;
  options.minibatch_size = 32;
  options.final_eval_episodes = 2;
  options.seed = 17;
  return options;
}

GuardrailOptions EnabledGuardrails(const std::string& health_log_path) {
  GuardrailOptions guardrails;
  guardrails.enabled = true;
  guardrails.health_log_path = health_log_path;
  return guardrails;
}

void ExpectOpsEqual(const std::vector<EdaOperation>& a,
                    const std::vector<EdaOperation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "op " << i;
    EXPECT_EQ(a[i].filter.column, b[i].filter.column) << "op " << i;
    EXPECT_EQ(a[i].filter.op, b[i].filter.op) << "op " << i;
    EXPECT_TRUE(a[i].filter.term == b[i].filter.term) << "op " << i;
    EXPECT_EQ(a[i].group.group_column, b[i].group.group_column) << "op " << i;
    EXPECT_EQ(a[i].group.agg, b[i].group.agg) << "op " << i;
    EXPECT_EQ(a[i].group.agg_column, b[i].group.agg_column) << "op " << i;
  }
}

void ExpectResultsIdentical(const TrainingResult& a, const TrainingResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].step, b.curve[i].step) << "curve point " << i;
    EXPECT_EQ(a.curve[i].mean_episode_reward, b.curve[i].mean_episode_reward)
        << "curve point " << i;
  }
  EXPECT_EQ(a.best_episode_reward, b.best_episode_reward);
  EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.interrupted, b.interrupted);
  ExpectOpsEqual(a.best_episode_ops, b.best_episode_ops);
}

void ExpectWeightsBitIdentical(TwofoldPolicy& a, TwofoldPolicy& b) {
  auto params_a = a.Parameters();
  auto params_b = b.Parameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t k = 0; k < params_a.size(); ++k) {
    const auto& da = params_a[k]->value.data();
    const auto& db = params_b[k]->value.data();
    ASSERT_EQ(da.size(), db.size()) << "param " << k;
    for (size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i], db[i]) << "param " << k << " value " << i;
    }
  }
}

void ExpectAllWeightsFinite(TwofoldPolicy& policy) {
  for (const Parameter* p : policy.Parameters()) {
    for (double w : p->value.data()) {
      ASSERT_TRUE(std::isfinite(w)) << "non-finite weight survived recovery";
    }
  }
}

// With guardrails enabled and no anomaly fired, everything — the training
// result, the final weights, even the checkpoint file bytes — must be
// identical to a guardrails-off run. The guard only observes.
TEST(GuardrailTrainingTest, GuardOnWithNoAnomalyIsByteIdenticalToGuardOff) {
  const std::string path_off = TempPath("guard_off.ckpt");
  const std::string path_on = TempPath("guard_on.ckpt");
  const std::string health = TempPath("guard_noanomaly_health.jsonl");
  RemoveCheckpointFamily(path_off);
  RemoveCheckpointFamily(path_on);
  RemoveIfExists(health);

  TrainSetup off = MakeSetup(2);
  TrainerOptions options_off = BaseOptions();
  options_off.checkpoint_path = path_off;
  ParallelPpoTrainer trainer_off(off.envs, off.policy.get(), options_off);
  TrainingResult result_off = trainer_off.Train();

  TrainSetup on = MakeSetup(2);
  TrainerOptions options_on = BaseOptions();
  options_on.checkpoint_path = path_on;
  options_on.guardrails = EnabledGuardrails(health);
  ParallelPpoTrainer trainer_on(on.envs, on.policy.get(), options_on);
  TrainingResult result_on = trainer_on.Train();

  EXPECT_TRUE(result_on.guard_status.ok());
  EXPECT_EQ(result_on.guard.events, 0);
  EXPECT_EQ(result_on.guard.rollbacks, 0);
  EXPECT_EQ(result_on.guard.lr_scale, 1.0);
  ExpectResultsIdentical(result_off, result_on);
  ExpectWeightsBitIdentical(*off.policy, *on.policy);
  // Same checkpoint bytes: the guard section is omitted until an anomaly.
  EXPECT_EQ(ReadWholeFile(path_off), ReadWholeFile(path_on));
  // No anomaly, no health log.
  EXPECT_FALSE(FileExists(health));
}

const char* FaultTriggerName(GuardFault fault) {
  switch (fault) {
    case GuardFault::kNanLoss:
      return "non_finite_loss";
    case GuardFault::kInfGradient:
      return "non_finite_gradient";
    case GuardFault::kEntropyCollapse:
      return "entropy_collapse";
    case GuardFault::kNone:
      break;
  }
  return "none";
}

// The fault-injection matrix of the issue: each corruption kind fired at
// every update index of a small run. Every run must complete OK with
// all-finite weights and a health-log entry naming the trigger and the
// rollback recovery.
TEST(GuardrailTrainingTest, FaultInjectionMatrixRecoversAtEveryUpdateIndex) {
  FaultHookGuard hook_guard;
  const TrainerOptions base = BaseOptions();
  const int num_updates = base.total_steps / base.rollout_length;
  for (GuardFault fault : {GuardFault::kNanLoss, GuardFault::kInfGradient,
                           GuardFault::kEntropyCollapse}) {
    for (int inject_at = 0; inject_at < num_updates; ++inject_at) {
      SCOPED_TRACE(std::string(FaultTriggerName(fault)) + " at update " +
                   std::to_string(inject_at));
      const std::string health =
          TempPath("guard_matrix_" + std::string(FaultTriggerName(fault)) +
                   "_" + std::to_string(inject_at) + ".jsonl");
      RemoveIfExists(health);
      // A transient fault: corrupts exactly one raw update call, so the
      // retry of the same logical update (the next call) is clean.
      SetPpoFaultInjectionHookForTesting([fault, inject_at](int64_t call) {
        return call == inject_at ? fault : GuardFault::kNone;
      });

      TrainSetup setup = MakeSetup(1);
      TrainerOptions options = base;
      options.guardrails = EnabledGuardrails(health);
      ParallelPpoTrainer trainer(setup.envs, setup.policy.get(), options);
      TrainingResult result = trainer.Train();

      EXPECT_TRUE(result.guard_status.ok()) << result.guard_status;
      EXPECT_FALSE(result.interrupted);
      EXPECT_EQ(result.guard.events, 1);
      EXPECT_EQ(result.guard.rollbacks, 1);
      EXPECT_EQ(result.guard.lr_scale, 0.5);
      // The run trained to its full budget despite the corrupted update.
      EXPECT_EQ(result.curve.size(), static_cast<size_t>(num_updates));
      ExpectAllWeightsFinite(*setup.policy);

      const std::string log = ReadWholeFile(health);
      EXPECT_NE(log.find(std::string("\"trigger\":\"") +
                         FaultTriggerName(fault) + "\""),
                std::string::npos)
          << log;
      EXPECT_NE(log.find("\"action\":\"rollback\""), std::string::npos);
      EXPECT_NE(log.find("\"update\":" + std::to_string(inject_at)),
                std::string::npos);
    }
  }
}

// A persistent fault makes recovery impossible: every retry fails again, so
// after max_retries rollbacks the trainer must exit with a structured
// ResourceExhausted status (not crash, not spin) and all-finite weights.
TEST(GuardrailTrainingTest, PersistentFaultExhaustsRetryBudgetWithStatus) {
  FaultHookGuard hook_guard;
  const std::string health = TempPath("guard_persistent_health.jsonl");
  RemoveIfExists(health);
  SetPpoFaultInjectionHookForTesting(
      [](int64_t) { return GuardFault::kNanLoss; });

  TrainSetup setup = MakeSetup(1);
  TrainerOptions options = BaseOptions();
  options.guardrails = EnabledGuardrails(health);
  options.guardrails.max_retries = 3;
  ParallelPpoTrainer trainer(setup.envs, setup.policy.get(), options);
  TrainingResult result = trainer.Train();

  EXPECT_EQ(result.guard_status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.guard_status.message().find("non_finite_loss"),
            std::string::npos);
  EXPECT_EQ(result.guard.rollbacks, 3);
  EXPECT_EQ(result.guard.events, 4);  // 3 rollbacks + the aborting event
  EXPECT_EQ(result.guard.lr_scale, 0.125);
  // Never got past update 0, and the weights were rolled back to the
  // last-good (initial) snapshot — finite, usable, diagnosable.
  EXPECT_TRUE(result.curve.empty());
  ExpectAllWeightsFinite(*setup.policy);
  const std::string log = ReadWholeFile(health);
  EXPECT_NE(log.find("\"action\":\"abort\""), std::string::npos) << log;
}

// A recovered run is bit-identical at any stepping thread count: the guard
// runs serially after the update, so rollback points and retries land on
// the same update indices regardless of num_threads.
TEST(GuardrailTrainingTest, RecoveredRunIsBitIdenticalAcrossThreadCounts) {
  FaultHookGuard hook_guard;
  auto run = [&](int num_threads) {
    SetPpoFaultInjectionHookForTesting([](int64_t call) {
      return call == 1 ? GuardFault::kInfGradient : GuardFault::kNone;
    });
    TrainSetup setup = MakeSetup(4);
    TrainerOptions options = BaseOptions();
    options.num_threads = num_threads;
    options.guardrails = EnabledGuardrails("");
    ParallelPpoTrainer trainer(setup.envs, setup.policy.get(), options);
    TrainingResult result = trainer.Train();
    EXPECT_TRUE(result.guard_status.ok());
    EXPECT_EQ(result.guard.rollbacks, 1);
    return std::make_pair(std::move(setup), std::move(result));
  };

  auto [serial_setup, serial_result] = run(1);
  for (int num_threads : {2, 4}) {
    SCOPED_TRACE("num_threads = " + std::to_string(num_threads));
    auto [threaded_setup, threaded_result] = run(num_threads);
    ExpectResultsIdentical(serial_result, threaded_result);
    ExpectWeightsBitIdentical(*serial_setup.policy, *threaded_setup.policy);
  }
}

// Crash mid-recovery: the fault fires, the guard rolls back and persists
// its state in the checkpoint, and the process dies before the retry
// completes (emulated via RequestTrainingStop from the fault hook). A
// fresh trainer resuming from that checkpoint — at any thread count — must
// finish bit-identically to a run that recovered without crashing.
TEST(GuardrailTrainingTest, CrashMidRecoveryResumesBitIdentically) {
  FaultHookGuard hook_guard;
  const std::string health_ref = TempPath("guard_crash_ref_health.jsonl");

  // Reference: transient fault at update call 1, recovery runs through.
  SetPpoFaultInjectionHookForTesting([](int64_t call) {
    return call == 1 ? GuardFault::kNanLoss : GuardFault::kNone;
  });
  RemoveIfExists(health_ref);
  TrainSetup ref = MakeSetup(2);
  TrainerOptions ref_options = BaseOptions();
  ref_options.guardrails = EnabledGuardrails(health_ref);
  ParallelPpoTrainer ref_trainer(ref.envs, ref.policy.get(), ref_options);
  TrainingResult ref_result = ref_trainer.Train();
  ASSERT_TRUE(ref_result.guard_status.ok());
  ASSERT_EQ(ref_result.guard.rollbacks, 1);

  for (int resume_threads : {1, 2}) {
    SCOPED_TRACE("resume_threads = " + std::to_string(resume_threads));
    const std::string path =
        TempPath("guard_crash_" + std::to_string(resume_threads) + ".ckpt");
    const std::string health = TempPath(
        "guard_crash_" + std::to_string(resume_threads) + "_health.jsonl");
    RemoveCheckpointFamily(path);
    RemoveIfExists(health);

    // Crashed run: the same fault, plus a stop request raised while the
    // corrupted update runs — training dies on the first tick after the
    // rollback, exactly the window where only the persisted guard state
    // can keep the recovery deterministic.
    SetPpoFaultInjectionHookForTesting([](int64_t call) {
      if (call == 1) {
        RequestTrainingStop();
        return GuardFault::kNanLoss;
      }
      return GuardFault::kNone;
    });
    TrainSetup crashed = MakeSetup(2);
    TrainerOptions crash_options = BaseOptions();
    crash_options.checkpoint_path = path;
    crash_options.guardrails = EnabledGuardrails(health);
    ParallelPpoTrainer crash_trainer(crashed.envs, crashed.policy.get(),
                                     crash_options);
    TrainingResult crash_result = crash_trainer.Train();
    ASSERT_TRUE(crash_result.interrupted);
    ASSERT_TRUE(crash_result.guard_status.ok());

    // Resume with a fresh trainer and no fault; the checkpointed guard
    // state (spent retry, lr scale 0.5, last-good index) must carry the
    // recovery through to the reference result.
    SetPpoFaultInjectionHookForTesting({});
    TrainSetup resumed = MakeSetup(2);
    TrainerOptions resume_options = BaseOptions();
    resume_options.checkpoint_path = path;
    resume_options.resume = true;
    resume_options.num_threads = resume_threads;
    resume_options.guardrails = EnabledGuardrails(health);
    ParallelPpoTrainer resume_trainer(resumed.envs, resumed.policy.get(),
                                      resume_options);
    TrainingResult resumed_result = resume_trainer.Train();

    EXPECT_TRUE(resumed_result.guard_status.ok());
    EXPECT_EQ(resumed_result.guard.rollbacks, 1);
    EXPECT_EQ(resumed_result.guard.lr_scale, 0.5);
    ExpectResultsIdentical(ref_result, resumed_result);
    ExpectWeightsBitIdentical(*ref.policy, *resumed.policy);
    ExpectAllWeightsFinite(*resumed.policy);
    // The health log still names the original recovery after the resume.
    const std::string log = ReadWholeFile(health);
    EXPECT_NE(log.find("\"trigger\":\"non_finite_loss\""), std::string::npos);
    EXPECT_NE(log.find("\"action\":\"rollback\""), std::string::npos);
  }
}

}  // namespace
}  // namespace atena
