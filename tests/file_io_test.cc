#include "common/file_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace atena {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string MustRead(const std::string& path) {
  std::string out;
  Status status = ReadFileToString(path, &out);
  EXPECT_TRUE(status.ok()) << status;
  return out;
}

class FileIoTest : public ::testing::Test {
 protected:
  void TearDown() override { SetFileIoFailureHookForTesting({}); }
};

TEST_F(FileIoTest, AtomicWriteRoundTrip) {
  const std::string path = TempPath("atomic_roundtrip.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "hello\nworld\n").ok());
  EXPECT_EQ(MustRead(path), "hello\nworld\n");
  // Overwrite replaces the contents completely.
  ASSERT_TRUE(AtomicWriteFile(path, "x").ok());
  EXPECT_EQ(MustRead(path), "x");
  // No temp file left behind.
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FileIoTest, ReadMissingFileCarriesErrnoDetail) {
  std::string out = "sentinel";
  Status status = ReadFileToString(TempPath("does_not_exist.txt"), &out);
  ASSERT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("No such file"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("errno"), std::string::npos) << status;
  EXPECT_EQ(out, "sentinel");  // untouched on failure
}

TEST_F(FileIoTest, FailureAtEveryStepPreservesExistingFile) {
  const std::string path = TempPath("atomic_failure.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "previous good contents").ok());

  for (const char* failing_op : {"open", "write", "fsync", "rename"}) {
    SetFileIoFailureHookForTesting(
        [failing_op](const char* op, const std::string&) {
          return std::string(op) == failing_op;
        });
    Status status = AtomicWriteFile(path, "new contents that must not land");
    ASSERT_EQ(status.code(), StatusCode::kIOError) << failing_op;
    EXPECT_NE(status.message().find(failing_op), std::string::npos) << status;
    SetFileIoFailureHookForTesting({});
    // The atomicity contract: the old file survives every failure point,
    // and the temp file is cleaned up.
    EXPECT_EQ(MustRead(path), "previous good contents") << failing_op;
    EXPECT_FALSE(FileExists(path + ".tmp")) << failing_op;
  }
}

TEST_F(FileIoTest, Crc32KnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST_F(FileIoTest, ChecksummedRoundTrip) {
  const std::string path = TempPath("framed.bin");
  const std::string payload("line one\nline two\nbinary \0 byte", 31);
  ASSERT_TRUE(WriteChecksummedFile(path, "TEST-MAGIC v1", payload).ok());
  std::string decoded;
  ASSERT_TRUE(ReadChecksummedFile(path, "TEST-MAGIC v1", &decoded).ok());
  EXPECT_EQ(decoded, payload);
}

TEST_F(FileIoTest, ChecksummedRejectsWrongMagic) {
  const std::string path = TempPath("framed_magic.bin");
  ASSERT_TRUE(WriteChecksummedFile(path, "TEST-MAGIC v1", "payload").ok());
  std::string decoded = "sentinel";
  Status status = ReadChecksummedFile(path, "OTHER-MAGIC v1", &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded, "sentinel");
}

TEST_F(FileIoTest, ChecksummedDetectsTruncationAtEveryOffset) {
  const std::string path = TempPath("framed_trunc.bin");
  ASSERT_TRUE(
      WriteChecksummedFile(path, "TEST-MAGIC v1", "0123456789abcdef").ok());
  const std::string full = MustRead(path);
  const std::string cut_path = TempPath("framed_cut.bin");
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ASSERT_TRUE(AtomicWriteFile(cut_path, full.substr(0, cut)).ok());
    std::string decoded = "sentinel";
    Status status = ReadChecksummedFile(cut_path, "TEST-MAGIC v1", &decoded);
    EXPECT_FALSE(status.ok()) << "truncation at byte " << cut << " accepted";
    EXPECT_EQ(decoded, "sentinel") << "payload modified at cut " << cut;
  }
}

TEST_F(FileIoTest, ChecksummedDetectsEverySingleByteCorruption) {
  const std::string path = TempPath("framed_corrupt.bin");
  ASSERT_TRUE(
      WriteChecksummedFile(path, "TEST-MAGIC v1", "0123456789abcdef").ok());
  const std::string full = MustRead(path);
  const std::string bad_path = TempPath("framed_bad.bin");
  for (size_t i = 0; i < full.size(); ++i) {
    std::string corrupted = full;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    if (corrupted[i] == full[i]) continue;
    ASSERT_TRUE(AtomicWriteFile(bad_path, corrupted).ok());
    std::string decoded;
    Status status = ReadChecksummedFile(bad_path, "TEST-MAGIC v1", &decoded);
    EXPECT_FALSE(status.ok()) << "byte flip at offset " << i << " accepted";
  }
}

}  // namespace
}  // namespace atena
