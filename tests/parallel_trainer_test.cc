#include <gtest/gtest.h>

#include <memory>

#include "baselines/flat_policy.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "reward/compound.h"
#include "rl/parallel_trainer.h"

namespace atena {
namespace {

EnvConfig ConfigWithSeed(uint64_t seed) {
  EnvConfig config;
  config.episode_length = 5;
  config.num_term_bins = 4;
  config.seed = seed;
  return config;
}

TEST(ParallelTrainerTest, LearnsAcrossMultipleActors) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    owned.push_back(std::make_unique<EdaEnvironment>(dataset.value(),
                                                     ConfigWithSeed(seed)));
    envs.push_back(owned.back().get());
  }

  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {16};
  TwofoldPolicy policy(envs[0]->observation_dim(), envs[0]->action_space(),
                       policy_options);

  TrainerOptions options;
  options.total_steps = 2400;
  options.rollout_length = 90;
  options.final_eval_episodes = 4;
  options.seed = 11;
  ParallelPpoTrainer trainer(envs, &policy, options);
  TrainingResult result = trainer.Train();

  ASSERT_GE(result.curve.size(), 2u);
  // With no reward signal attached, all reward comes from the -1 no-op
  // penalty; a learning policy drives the mean toward 0.
  EXPECT_GT(result.final_mean_reward,
            result.curve.front().mean_episode_reward);
  EXPECT_GT(result.episodes, 100);
  EXPECT_FALSE(result.best_episode_ops.empty());
  EXPECT_LE(result.best_episode_ops.size(), 5u);
}

TEST(ParallelTrainerTest, EpisodeAccountingMatchesStepBudget) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  for (uint64_t seed = 5; seed <= 6; ++seed) {
    owned.push_back(std::make_unique<EdaEnvironment>(dataset.value(),
                                                     ConfigWithSeed(seed)));
    envs.push_back(owned.back().get());
  }
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  TwofoldPolicy policy(envs[0]->observation_dim(), envs[0]->action_space(),
                       policy_options);
  TrainerOptions options;
  options.total_steps = 200;  // 40 episodes of 5 steps across 2 actors
  options.rollout_length = 40;
  options.final_eval_episodes = 0;
  ParallelPpoTrainer trainer(envs, &policy, options);
  TrainingResult result = trainer.Train();
  EXPECT_EQ(result.episodes, 40);
  EXPECT_EQ(result.curve.back().step, 200);
}

// Collects `count` distinct observations by running `policy` on `env`.
std::vector<std::vector<double>> CollectObservations(EdaEnvironment* env,
                                                     Policy* policy,
                                                     int count) {
  Rng rng(404);
  std::vector<std::vector<double>> observations;
  std::vector<double> obs = env->Reset();
  for (int i = 0; i < count; ++i) {
    observations.push_back(obs);
    PolicyStep step = policy->Act(obs, &rng);
    StepOutcome outcome = ApplyAction(env, step.action);
    obs = outcome.done ? env->Reset() : std::move(outcome.observation);
  }
  return observations;
}

void ExpectStepsBitIdentical(const PolicyStep& a, const PolicyStep& b) {
  EXPECT_EQ(a.log_prob, b.log_prob);
  EXPECT_EQ(a.entropy, b.entropy);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.action.is_concrete, b.action.is_concrete);
  EXPECT_EQ(a.action.flat_index, b.action.flat_index);
  EXPECT_EQ(static_cast<int>(a.action.structured.type),
            static_cast<int>(b.action.structured.type));
  EXPECT_EQ(a.action.structured.filter_column, b.action.structured.filter_column);
  EXPECT_EQ(a.action.structured.filter_op, b.action.structured.filter_op);
  EXPECT_EQ(a.action.structured.filter_bin, b.action.structured.filter_bin);
  EXPECT_EQ(a.action.structured.group_column, b.action.structured.group_column);
  EXPECT_EQ(a.action.structured.agg_func, b.action.structured.agg_func);
  EXPECT_EQ(a.action.structured.agg_column, b.action.structured.agg_column);
}

// The batched-acting contract: ActBatch over N rows consumes the rng
// exactly as N per-sample Act calls in row order — identical actions,
// log-probs, entropies, and critic values, bit for bit.
TEST(ActBatchTest, MatchesPerSampleActOnSharedRngStream) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment env(dataset.value(), ConfigWithSeed(21));

  TwofoldPolicy::Options twofold_options;
  twofold_options.hidden = {12};
  TwofoldPolicy twofold(env.observation_dim(), env.action_space(),
                        twofold_options);
  FlatPolicy::Options flat_options;
  flat_options.term_mode = FlatPolicy::TermMode::kFrequencyBins;
  flat_options.hidden = {12};
  FlatPolicy flat(env, flat_options);

  for (Policy* policy : std::vector<Policy*>{&twofold, &flat}) {
    auto observations = CollectObservations(&env, policy, 6);
    const int n = static_cast<int>(observations.size());
    Matrix batch(n, static_cast<int>(observations[0].size()));
    for (int r = 0; r < n; ++r) {
      std::copy(observations[static_cast<size_t>(r)].begin(),
                observations[static_cast<size_t>(r)].end(), batch.RowPtr(r));
    }

    Rng rng_batched(777);
    Rng rng_serial(777);
    std::vector<PolicyStep> batched = policy->ActBatch(batch, &rng_batched);
    ASSERT_EQ(batched.size(), static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      PolicyStep serial =
          policy->Act(observations[static_cast<size_t>(r)], &rng_serial);
      ExpectStepsBitIdentical(batched[static_cast<size_t>(r)], serial);
    }
    // Both consumed the same number of draws.
    EXPECT_EQ(rng_batched.NextDouble(), rng_serial.NextDouble());

    // Null rng = greedy, also row-equivalent.
    std::vector<PolicyStep> greedy_batched = policy->ActBatch(batch, nullptr);
    for (int r = 0; r < n; ++r) {
      PolicyStep greedy =
          policy->ActGreedy(observations[static_cast<size_t>(r)]);
      ExpectStepsBitIdentical(greedy_batched[static_cast<size_t>(r)], greedy);
    }
  }
}

// The trainer-core unification contract: a 1-actor ParallelPpoTrainer IS
// the single-env PpoTrainer — identical rng stream (plain seed), identical
// rollout/GAE/update machinery, so training output matches bit for bit.
TEST(ParallelTrainerTest, SingleActorMatchesPpoTrainerBitForBit) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment env_a(dataset.value(), ConfigWithSeed(7));
  EdaEnvironment env_b(dataset.value(), ConfigWithSeed(7));

  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {10};
  TwofoldPolicy policy_a(env_a.observation_dim(), env_a.action_space(),
                         policy_options);
  TwofoldPolicy policy_b(env_b.observation_dim(), env_b.action_space(),
                         policy_options);

  TrainerOptions options;
  options.total_steps = 300;
  options.rollout_length = 60;
  options.final_eval_episodes = 2;
  options.seed = 1234;

  PpoTrainer single(&env_a, &policy_a, options);
  TrainingResult result_single = single.Train();
  ParallelPpoTrainer parallel({&env_b}, &policy_b, options);
  TrainingResult result_parallel = parallel.Train();

  EXPECT_EQ(result_single.episodes, result_parallel.episodes);
  EXPECT_EQ(result_single.best_episode_reward,
            result_parallel.best_episode_reward);
  EXPECT_EQ(result_single.final_mean_reward,
            result_parallel.final_mean_reward);
  ASSERT_EQ(result_single.curve.size(), result_parallel.curve.size());
  for (size_t i = 0; i < result_single.curve.size(); ++i) {
    EXPECT_EQ(result_single.curve[i].step, result_parallel.curve[i].step);
    EXPECT_EQ(result_single.curve[i].mean_episode_reward,
              result_parallel.curve[i].mean_episode_reward);
  }
  ASSERT_EQ(result_single.best_episode_ops.size(),
            result_parallel.best_episode_ops.size());
  for (size_t i = 0; i < result_single.best_episode_ops.size(); ++i) {
    EXPECT_EQ(static_cast<int>(result_single.best_episode_ops[i].type),
              static_cast<int>(result_parallel.best_episode_ops[i].type));
  }
  // The networks ended up with identical weights.
  auto params_a = policy_a.Parameters();
  auto params_b = policy_b.Parameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t k = 0; k < params_a.size(); ++k) {
    ASSERT_EQ(params_a[k]->value.size(), params_b[k]->value.size());
    for (size_t i = 0; i < params_a[k]->value.size(); ++i) {
      EXPECT_EQ(params_a[k]->value.data()[i], params_b[k]->value.data()[i])
          << params_a[k]->name << " element " << i;
    }
  }
}

void ExpectResultsBitIdentical(const TrainingResult& a,
                               const TrainingResult& b) {
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.best_episode_reward, b.best_episode_reward);
  EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].step, b.curve[i].step);
    EXPECT_EQ(a.curve[i].mean_episode_reward, b.curve[i].mean_episode_reward);
  }
  ASSERT_EQ(a.best_episode_ops.size(), b.best_episode_ops.size());
  for (size_t i = 0; i < a.best_episode_ops.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.best_episode_ops[i].type),
              static_cast<int>(b.best_episode_ops[i].type));
  }
}

void ExpectWeightsBitIdentical(TwofoldPolicy& a, TwofoldPolicy& b) {
  auto params_a = a.Parameters();
  auto params_b = b.Parameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t k = 0; k < params_a.size(); ++k) {
    ASSERT_EQ(params_a[k]->value.size(), params_b[k]->value.size());
    for (size_t i = 0; i < params_a[k]->value.size(); ++i) {
      ASSERT_EQ(params_a[k]->value.data()[i], params_b[k]->value.data()[i])
          << params_a[k]->name << " element " << i;
    }
  }
}

// The central determinism guarantee of the parallel stepping path
// (DESIGN.md §9): the worker-thread count is a pure wall-clock knob.
// Training 4 actors at 1, 2 and 4 stepping threads must produce the same
// TrainingResult and the same final network weights, bit for bit.
TEST(ParallelTrainerTest, ThreadCountNeverChangesTrainingOutput) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());

  struct Run {
    TrainingResult result;
    std::unique_ptr<TwofoldPolicy> policy;
  };
  auto train = [&](int num_threads) {
    std::vector<std::unique_ptr<EdaEnvironment>> owned;
    std::vector<EdaEnvironment*> envs;
    for (uint64_t seed = 61; seed <= 64; ++seed) {
      owned.push_back(std::make_unique<EdaEnvironment>(dataset.value(),
                                                       ConfigWithSeed(seed)));
      envs.push_back(owned.back().get());
    }
    TwofoldPolicy::Options policy_options;
    policy_options.hidden = {10};
    Run run;
    run.policy = std::make_unique<TwofoldPolicy>(
        envs[0]->observation_dim(), envs[0]->action_space(), policy_options);
    TrainerOptions options;
    options.total_steps = 400;
    options.rollout_length = 80;
    options.final_eval_episodes = 2;
    options.seed = 97;
    options.num_threads = num_threads;
    ParallelPpoTrainer trainer(envs, run.policy.get(), options);
    EXPECT_EQ(trainer.num_threads(), num_threads);
    run.result = trainer.Train();
    return run;
  };

  Run serial = train(1);
  for (int num_threads : {2, 4}) {
    SCOPED_TRACE("num_threads = " + std::to_string(num_threads));
    Run threaded = train(num_threads);
    ExpectResultsBitIdentical(serial.result, threaded.result);
    ExpectWeightsBitIdentical(*serial.policy, *threaded.policy);
  }
}

// Same guarantee with the full compound reward attached: each actor owns a
// stateful CompoundReward clone around one shared trained classifier — the
// exact wiring RunAtena uses — and concurrent stepping through the shared
// display cache must not perturb a single bit of the result.
TEST(ParallelTrainerTest, ThreadedCompoundRewardMatchesSerial) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());

  // Train the classifier and calibrate the weights once, off to the side.
  EdaEnvironment proto_env(dataset.value(), ConfigWithSeed(71));
  CompoundReward::Options reward_options;
  reward_options.calibration_episodes = 3;
  auto proto = MakeStandardReward(&proto_env, reward_options);
  ASSERT_TRUE(proto.ok());

  auto train = [&](int num_threads) {
    std::vector<std::unique_ptr<EdaEnvironment>> owned;
    std::vector<std::unique_ptr<CompoundReward>> rewards;
    std::vector<EdaEnvironment*> envs;
    for (uint64_t seed = 71; seed <= 73; ++seed) {
      owned.push_back(std::make_unique<EdaEnvironment>(dataset.value(),
                                                       ConfigWithSeed(seed)));
      rewards.push_back(std::make_unique<CompoundReward>(
          proto.value()->coherency(), proto.value()->options()));
      owned.back()->SetRewardSignal(rewards.back().get());
      envs.push_back(owned.back().get());
    }
    TwofoldPolicy::Options policy_options;
    policy_options.hidden = {8};
    auto policy = std::make_unique<TwofoldPolicy>(
        envs[0]->observation_dim(), envs[0]->action_space(), policy_options);
    TrainerOptions options;
    options.total_steps = 150;
    options.rollout_length = 30;
    options.final_eval_episodes = 1;
    options.seed = 3;
    options.num_threads = num_threads;
    ParallelPpoTrainer trainer(envs, policy.get(), options);
    return trainer.Train();
  };

  TrainingResult serial = train(1);
  TrainingResult threaded = train(3);
  ExpectResultsBitIdentical(serial, threaded);
}

// Thread-count resolution: 0 = auto (capped at hardware concurrency),
// explicit values clamp to the actor count.
TEST(ParallelTrainerTest, ThreadCountResolution) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment env_a(dataset.value(), ConfigWithSeed(81));
  EdaEnvironment env_b(dataset.value(), ConfigWithSeed(82));
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  TwofoldPolicy policy(env_a.observation_dim(), env_a.action_space(),
                       policy_options);

  TrainerOptions options;
  options.num_threads = 16;  // explicit: clamped to the 2 actors
  ParallelPpoTrainer clamped({&env_a, &env_b}, &policy, options);
  EXPECT_EQ(clamped.num_threads(), 2);

  options.num_threads = 0;  // auto: min(actors, hardware concurrency)
  ParallelPpoTrainer automatic({&env_a, &env_b}, &policy, options);
  EXPECT_EQ(automatic.num_threads(), ThreadPool::DefaultThreads(2));
  EXPECT_LE(automatic.num_threads(), 2);
}

// Multi-actor acting must cost one network forward per lockstep tick, not
// one per actor — the point of the batched acting path.
TEST(ParallelTrainerTest, FourActorsOneForwardPerTick) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  for (uint64_t seed = 41; seed <= 44; ++seed) {
    owned.push_back(std::make_unique<EdaEnvironment>(dataset.value(),
                                                     ConfigWithSeed(seed)));
    envs.push_back(owned.back().get());
  }
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  TwofoldPolicy policy(envs[0]->observation_dim(), envs[0]->action_space(),
                       policy_options);
  TrainerOptions options;
  options.total_steps = 200;
  options.rollout_length = 40;  // 10 ticks per rollout across 4 actors
  options.epochs_per_update = 1;
  options.minibatch_size = 64;  // one ForwardBatch per update
  options.final_eval_episodes = 0;
  ParallelPpoTrainer trainer(envs, &policy, options);
  trainer.Train();

  // 200 steps / 4 actors = 50 acting ticks; 5 rollouts x 1 update forward.
  // Episodes (length 5) end exactly at each 10-step stream boundary, so no
  // bootstrap forwards. Per-actor acting would instead cost 200+ passes.
  const int64_t acting_ticks = 50;
  const int64_t update_forwards = 5;
  EXPECT_EQ(policy.forward_passes(), acting_ticks + update_forwards);
}

}  // namespace
}  // namespace atena
