#include <gtest/gtest.h>

#include <memory>

#include "core/twofold_policy.h"
#include "data/registry.h"
#include "rl/parallel_trainer.h"

namespace atena {
namespace {

EnvConfig ConfigWithSeed(uint64_t seed) {
  EnvConfig config;
  config.episode_length = 5;
  config.num_term_bins = 4;
  config.seed = seed;
  return config;
}

TEST(ParallelTrainerTest, LearnsAcrossMultipleActors) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    owned.push_back(std::make_unique<EdaEnvironment>(dataset.value(),
                                                     ConfigWithSeed(seed)));
    envs.push_back(owned.back().get());
  }

  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {16};
  TwofoldPolicy policy(envs[0]->observation_dim(), envs[0]->action_space(),
                       policy_options);

  TrainerOptions options;
  options.total_steps = 2400;
  options.rollout_length = 90;
  options.final_eval_episodes = 4;
  options.seed = 11;
  ParallelPpoTrainer trainer(envs, &policy, options);
  TrainingResult result = trainer.Train();

  ASSERT_GE(result.curve.size(), 2u);
  // With no reward signal attached, all reward comes from the -1 no-op
  // penalty; a learning policy drives the mean toward 0.
  EXPECT_GT(result.final_mean_reward,
            result.curve.front().mean_episode_reward);
  EXPECT_GT(result.episodes, 100);
  EXPECT_FALSE(result.best_episode_ops.empty());
  EXPECT_LE(result.best_episode_ops.size(), 5u);
}

TEST(ParallelTrainerTest, EpisodeAccountingMatchesStepBudget) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  for (uint64_t seed = 5; seed <= 6; ++seed) {
    owned.push_back(std::make_unique<EdaEnvironment>(dataset.value(),
                                                     ConfigWithSeed(seed)));
    envs.push_back(owned.back().get());
  }
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  TwofoldPolicy policy(envs[0]->observation_dim(), envs[0]->action_space(),
                       policy_options);
  TrainerOptions options;
  options.total_steps = 200;  // 40 episodes of 5 steps across 2 actors
  options.rollout_length = 40;
  options.final_eval_episodes = 0;
  ParallelPpoTrainer trainer(envs, &policy, options);
  TrainingResult result = trainer.Train();
  EXPECT_EQ(result.episodes, 40);
  EXPECT_EQ(result.curve.back().step, 200);
}

}  // namespace
}  // namespace atena
