#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/math_utils.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_utils.h"

namespace atena {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> input) {
  ATENA_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  auto err = Doubler(Status::IOError("disk"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kIOError);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  ATENA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(19);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t r = rng.NextZipf(10, 1.0);
    EXPECT_LT(r, 10u);
    if (r == 0) ++low;
    if (r == 9) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ----------------------------------------------------------------- Math

TEST(MathTest, SigmoidSymmetry) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(5.0) + Sigmoid(-5.0), 1.0, 1e-12);
  EXPECT_GT(Sigmoid(3.0), 0.95);
}

TEST(MathTest, ScaledSigmoidCenterAndWidth) {
  EXPECT_DOUBLE_EQ(ScaledSigmoid(2.0, 2.0, 1.0), 0.5);
  EXPECT_GT(ScaledSigmoid(4.0, 2.0, 1.0), ScaledSigmoid(4.0, 2.0, 4.0));
}

TEST(MathTest, SigmoidBumpPeaksBetweenCenters) {
  double mid = SigmoidBump(10.0, 2.0, 1.0, 20.0, 2.0);
  double low = SigmoidBump(0.0, 2.0, 1.0, 20.0, 2.0);
  double high = SigmoidBump(40.0, 2.0, 1.0, 20.0, 2.0);
  EXPECT_GT(mid, 0.8);
  EXPECT_LT(low, 0.2);
  EXPECT_LT(high, 0.2);
}

TEST(MathTest, EntropyOfUniformIsLogN) {
  EXPECT_NEAR(Entropy({1, 1, 1, 1}), std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(Entropy({5}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0, 0}), 0.0);
}

TEST(MathTest, NormalizedEntropyInUnitRange) {
  EXPECT_NEAR(NormalizedEntropy({1, 1, 1, 1}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(NormalizedEntropy({10}), 0.0);
  double skewed = NormalizedEntropy({100, 1, 1});
  EXPECT_GT(skewed, 0.0);
  EXPECT_LT(skewed, 1.0);
}

TEST(MathTest, KlDivergenceZeroForIdentical) {
  std::unordered_map<int64_t, double> p = {{1, 10}, {2, 20}, {3, 30}};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-9);
}

TEST(MathTest, KlDivergenceNonNegativeAndFinite) {
  std::unordered_map<int64_t, double> p = {{1, 100}};
  std::unordered_map<int64_t, double> q = {{2, 100}};
  double kl = KlDivergence(p, q);
  EXPECT_GT(kl, 0.0);
  EXPECT_TRUE(std::isfinite(kl));
}

TEST(MathTest, KlDivergenceGrowsWithShift) {
  std::unordered_map<int64_t, double> base = {{1, 50}, {2, 50}};
  std::unordered_map<int64_t, double> mild = {{1, 60}, {2, 40}};
  std::unordered_map<int64_t, double> strong = {{1, 99}, {2, 1}};
  EXPECT_LT(KlDivergence(mild, base), KlDivergence(strong, base));
}

TEST(MathTest, EuclideanDistanceBasics) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 2}, {1, 2}), 0.0);
  // Length mismatch: extra tail measured from zero.
  EXPECT_DOUBLE_EQ(EuclideanDistance({0.0}, {0.0, 3.0}), 3.0);
}

// Pins the documented mismatched-tail semantics: a shorter vector behaves
// exactly as if zero-padded to the longer length, on either side, in any
// combination. The vector index's ball bounds (src/index/) assume these
// distances form a true metric over the zero-padded union space — a
// violation here would silently break its exactness guarantee.
TEST(MathTest, EuclideanDistanceTailSemantics) {
  // a longer, b longer, both directions, multiple tail elements.
  EXPECT_DOUBLE_EQ(EuclideanDistance({3.0, 4.0}, {}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1.0, 2.0, 2.0}, {1.0}),
                   EuclideanDistance({1.0, 2.0, 2.0}, {1.0, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(EuclideanDistance({1.0}, {1.0, 2.0, 2.0}),
                   EuclideanDistance({1.0, 0.0, 0.0}, {1.0, 2.0, 2.0}));
  // Two empties are at distance zero.
  EXPECT_DOUBLE_EQ(EuclideanDistance({}, {}), 0.0);
  // Squared form agrees with the rooted form bit-for-bit.
  const std::vector<double> a = {1.5, -2.25, 0.0, 7.0};
  const std::vector<double> b = {0.5, 3.0};
  EXPECT_EQ(EuclideanDistance(a, b),
            std::sqrt(SquaredEuclideanDistance(a, b)));
  EXPECT_EQ(SquaredEuclideanDistance(a, b), SquaredEuclideanDistance(b, a));
}

TEST(MathTest, SquaredEuclideanDistanceBoundedExactUnderBound) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {0.0, 2.5, -1.0, 4.0};
  const double exact = SquaredEuclideanDistance(a, b);
  // Any bound >= the exact value returns the exact value, bit for bit.
  EXPECT_EQ(SquaredEuclideanDistanceBounded(a, b, exact), exact);
  EXPECT_EQ(SquaredEuclideanDistanceBounded(
                a, b, std::numeric_limits<double>::infinity()),
            exact);
  // A tighter bound early-exits with some partial sum above the bound.
  EXPECT_GT(SquaredEuclideanDistanceBounded(a, b, exact * 0.5), exact * 0.5);
  // Tails participate in the early exit too.
  const std::vector<double> tail = {0.0, 0.0, 0.0, 0.0, 100.0};
  EXPECT_GT(SquaredEuclideanDistanceBounded(a, tail, 1.0), 1.0);
  EXPECT_EQ(SquaredEuclideanDistanceBounded(
                a, tail, std::numeric_limits<double>::infinity()),
            SquaredEuclideanDistance(a, tail));
}

TEST(MathTest, MeanVarMatchesClosedForm) {
  MeanVar mv = ComputeMeanVar({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(mv.mean, 5.0);
  EXPECT_DOUBLE_EQ(mv.variance, 4.0);
  MeanVar empty = ComputeMeanVar({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(MathTest, Log1pNormalizeBehaviour) {
  EXPECT_DOUBLE_EQ(Log1pNormalize(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(Log1pNormalize(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(Log1pNormalize(1000.0, 100.0), 1.0);  // clamped
  double mid = Log1pNormalize(10.0, 100.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

// --------------------------------------------------------------- String

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringTest, JoinRoundTrip) {
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringTest, CaseAndAffixHelpers) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_TRUE(Contains("foobar", "oba"));
  EXPECT_FALSE(Contains("foobar", "baz"));
}

TEST(StringTest, ParseInt64Strict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("42x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4.2", &v));
}

TEST(StringTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(27.650), "27.65");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.126, 2), "0.13");
  EXPECT_EQ(FormatDouble(-0.0001, 2), "0");
}

TEST(StringTest, PadRightFixedWidth) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
}

// -------------------------------------------------------------- Logging

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

}  // namespace
}  // namespace atena
