// Tests of the display-execution memoization cache: LRU/statistics
// mechanics, signature canonicality, and the determinism guarantee — a
// cache hit must be bit-identical to a recompute, whether the cache is
// private, disabled, or shared by every actor of a parallel trainer.
#include "eda/display_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/twofold_policy.h"
#include "data/registry.h"
#include "eda/environment.h"
#include "reward/compound.h"
#include "rl/parallel_trainer.h"

namespace atena {
namespace {

std::shared_ptr<const std::vector<int32_t>> MakeRows(int32_t n) {
  auto rows = std::make_shared<std::vector<int32_t>>();
  for (int32_t i = 0; i < n; ++i) rows->push_back(i);
  return rows;
}

TEST(DisplayCacheTest, RoundTripAndStats) {
  DisplayCache cache({.capacity = 16, .shards = 2});
  EXPECT_EQ(cache.GetRows(42), nullptr);  // miss
  cache.PutRows(42, MakeRows(5));
  auto hit = cache.GetRows(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 5u);

  const DisplayCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.GetRows(42), nullptr);
}

TEST(DisplayCacheTest, EvictsLeastRecentlyUsed) {
  DisplayCache cache({.capacity = 4, .shards = 1});
  for (uint64_t key = 1; key <= 4; ++key) cache.PutRows(key, MakeRows(1));
  // Touch key 1 so key 2 becomes the least recently used.
  ASSERT_NE(cache.GetRows(1), nullptr);
  cache.PutRows(5, MakeRows(1));

  EXPECT_EQ(cache.GetRows(2), nullptr);  // evicted
  EXPECT_NE(cache.GetRows(1), nullptr);  // kept: recently used
  EXPECT_NE(cache.GetRows(5), nullptr);
  const DisplayCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 4u);
}

TEST(DisplayCacheTest, ByteBudgetBoundsResidentMemory) {
  // Million-row tables make a single cached row set ~4 MB, so the entry cap
  // alone cannot bound memory. With a byte budget the cache must stay under
  // it no matter how many large values are inserted.
  constexpr size_t kBudget = 1 << 20;  // 1 MB
  DisplayCache cache({.capacity = 1 << 16, .max_bytes = kBudget,
                      .shards = 1});
  // 64 row sets of 100k int32 rows each = ~25.6 MB offered.
  for (uint64_t key = 1; key <= 64; ++key) {
    cache.PutRows(key, MakeRows(100'000));
    EXPECT_LE(cache.stats().resident_bytes, kBudget) << "after key " << key;
  }
  const DisplayCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LE(stats.resident_bytes, kBudget);
  // The newest entry is resident, the oldest was evicted (LRU order).
  EXPECT_NE(cache.GetRows(64), nullptr);
  EXPECT_EQ(cache.GetRows(1), nullptr);

  // Clearing releases the accounting along with the values.
  cache.Clear();
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(DisplayCacheTest, OversizedEntryStaysResidentAloneWithoutThrashing) {
  // A single value larger than the whole budget is kept (an empty cache
  // would recompute forever) until the next insert displaces it.
  DisplayCache cache({.capacity = 8, .max_bytes = 1024, .shards = 1});
  cache.PutRows(1, MakeRows(10'000));  // ~40 KB >> 1 KB budget
  EXPECT_NE(cache.GetRows(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.PutRows(2, MakeRows(10'000));
  // The older oversized entry is evicted; the newer one survives alone.
  EXPECT_EQ(cache.GetRows(1), nullptr);
  EXPECT_NE(cache.GetRows(2), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(DisplayCacheTest, ResidentBytesTracksAllSections) {
  DisplayCache cache({.capacity = 64, .shards = 1});
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  cache.PutRows(1, MakeRows(1000));
  const uint64_t after_rows = cache.stats().resident_bytes;
  EXPECT_GE(after_rows, 1000 * sizeof(int32_t));
  cache.PutVector(2, std::make_shared<const std::vector<double>>(500, 1.0));
  const uint64_t after_vec = cache.stats().resident_bytes;
  EXPECT_GE(after_vec, after_rows + 500 * sizeof(double));
  auto grouped = std::make_shared<GroupedResult>();
  grouped->groups.resize(3);
  grouped->groups[0].rows = {1, 2, 3};
  cache.PutGrouped(3, grouped);
  EXPECT_GT(cache.stats().resident_bytes, after_vec);
  // Unbounded by default: nothing was evicted.
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(DisplayCacheTest, FilterSignatureIsOrderIndependent) {
  FilterPred a{/*column=*/0, CompareOp::kEq, Value(std::string("SYN"))};
  FilterPred b{/*column=*/2, CompareOp::kGe, Value(int64_t{80})};
  const uint64_t root = 0x9E3779B97F4A7C15ULL;
  // A filter chain selects the conjunction of its predicate set, so the
  // signature must not depend on application order...
  EXPECT_EQ(FilterChildSignature(FilterChildSignature(root, a), b),
            FilterChildSignature(FilterChildSignature(root, b), a));
  // ...but must depend on the predicates themselves.
  EXPECT_NE(FilterChildSignature(root, a), FilterChildSignature(root, b));
  FilterPred a_neq = a;
  a_neq.op = CompareOp::kNeq;
  EXPECT_NE(FilterChildSignature(root, a),
            FilterChildSignature(root, a_neq));
}

EnvConfig CacheTestConfig(uint64_t seed, bool cache_enabled) {
  EnvConfig config;
  config.episode_length = 8;
  config.num_term_bins = 4;
  config.seed = seed;
  config.display_cache_enabled = cache_enabled;
  return config;
}

/// Steps `env` through `actions` and returns (observations ⧺ rewards)
/// flattened, the full bitwise-comparable trace of the episode.
std::vector<double> RunTrace(EdaEnvironment* env,
                             const std::vector<EnvAction>& actions) {
  std::vector<double> trace = env->Reset();
  for (const EnvAction& action : actions) {
    StepOutcome out = env->Step(action);
    trace.insert(trace.end(), out.observation.begin(), out.observation.end());
    trace.push_back(out.reward);
    trace.push_back(out.valid ? 1.0 : 0.0);
  }
  return trace;
}

std::vector<EnvAction> RandomActions(const ActionSpace& space, uint64_t seed,
                                     int count) {
  Rng rng(seed);
  std::vector<EnvAction> actions;
  for (int i = 0; i < count; ++i) {
    actions.push_back(SampleRandomAction(space, &rng));
  }
  return actions;
}

// Statistics counters under concurrency: hammer one cache from several
// threads while the main thread polls stats(). The counters are atomics
// aggregated per shard, so the totals must add up exactly once the workers
// join, every interim poll must be monotone, and the run must be clean
// under TSan (scripts/check.sh sweeps this binary).
TEST(DisplayCacheTest, ConcurrentStatsAreExactAndMonotone) {
  DisplayCache cache({.capacity = 64, .shards = 4});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      // Every 4th op touches a single shared hot key that all threads keep
      // refreshing, so it can never age out of its 64-entry shard and hits
      // are guaranteed even when the scheduler serialises the workers
      // (1-CPU boxes, where a strided walk over ~1064 keys alone revisits
      // every key only after it has been evicted). The remaining ops cycle
      // through the cold keys to keep misses and evictions flowing.
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key =
            (i % 4 == 0) ? 0
                         : static_cast<uint64_t>((i * (t + 3)) % 1064);
        if (cache.GetRows(key) == nullptr) {
          cache.PutRows(key, MakeRows(static_cast<int32_t>(key % 7 + 1)));
        }
      }
    });
  }
  uint64_t last_lookups = 0;
  // Poll until every worker's lookups are visible (each op is exactly one
  // GetRows, so the total converges to kThreads * kOpsPerThread).
  while (true) {
    const DisplayCacheStats stats = cache.stats();
    const uint64_t lookups = stats.hits + stats.misses;
    EXPECT_GE(lookups, last_lookups);
    EXPECT_LE(stats.entries, 64u);
    last_lookups = lookups;
    if (lookups >= static_cast<uint64_t>(kThreads * kOpsPerThread)) break;
    std::this_thread::yield();
  }
  for (auto& worker : workers) worker.join();

  const DisplayCacheStats stats = cache.stats();
  // Every GetRows call is counted exactly once, no lost updates.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 64u);
}

// Snapshot() takes every shard lock before reading anything, so a snapshot
// is one consistent instant: its per-shard occupancy breakdown must always
// sum to its own totals, even while writer threads keep mutating the cache
// (stats(), by contrast, may mix instants across shards). Also swept by
// the TSan run in scripts/check.sh.
TEST(DisplayCacheTest, SnapshotIsInternallyConsistentUnderLoad) {
  DisplayCache cache({.capacity = 64, .shards = 4});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>((i * (t + 3)) % 1064);
        if (cache.GetRows(key) == nullptr) {
          cache.PutRows(key, MakeRows(static_cast<int32_t>(key % 7 + 1)));
        }
      }
    });
  }
  uint64_t last_lookups = 0;
  while (true) {
    const DisplayCacheSnapshot snapshot = cache.Snapshot();
    ASSERT_EQ(snapshot.shard_entries.size(), 4u);
    uint64_t shard_sum = 0;
    for (uint64_t entries : snapshot.shard_entries) shard_sum += entries;
    EXPECT_EQ(snapshot.totals.entries, shard_sum);
    EXPECT_LE(snapshot.totals.entries, 64u);
    const uint64_t lookups = snapshot.totals.hits + snapshot.totals.misses;
    EXPECT_GE(lookups, last_lookups);
    last_lookups = lookups;
    if (lookups >= static_cast<uint64_t>(kThreads * kOpsPerThread)) break;
    std::this_thread::yield();
  }
  for (auto& worker : workers) worker.join();

  // Quiesced: the snapshot and the unlocked aggregate must agree exactly.
  const DisplayCacheSnapshot snapshot = cache.Snapshot();
  const DisplayCacheStats stats = cache.stats();
  EXPECT_EQ(snapshot.totals.hits, stats.hits);
  EXPECT_EQ(snapshot.totals.misses, stats.misses);
  EXPECT_EQ(snapshot.totals.evictions, stats.evictions);
  EXPECT_EQ(snapshot.totals.entries, stats.entries);
  EXPECT_EQ(snapshot.totals.hits + snapshot.totals.misses,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
}

TEST(CacheDeterminismTest, CachedEpisodesMatchUncachedBitwise) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment cached(dataset.value(), CacheTestConfig(3, true));
  EdaEnvironment uncached(dataset.value(), CacheTestConfig(3, false));
  ASSERT_NE(cached.display_cache(), nullptr);
  ASSERT_EQ(uncached.display_cache(), nullptr);
  auto cached_reward = MakeStandardReward(&cached);
  auto uncached_reward = MakeStandardReward(&uncached);
  ASSERT_TRUE(cached_reward.ok());
  ASSERT_TRUE(uncached_reward.ok());
  cached.SetRewardSignal(cached_reward.value().get());
  uncached.SetRewardSignal(uncached_reward.value().get());

  // Several episodes so later ones replay cached prefixes of earlier ones.
  for (uint64_t episode = 0; episode < 6; ++episode) {
    auto actions = RandomActions(cached.action_space(), 100 + episode, 8);
    EXPECT_EQ(RunTrace(&cached, actions), RunTrace(&uncached, actions))
        << "episode " << episode;
  }
  // The cache must actually have been exercised for this test to mean
  // anything.
  EXPECT_GT(cached.display_cache()->stats().hits, 0u);
}

TEST(CacheDeterminismTest, SharedCacheAcrossActorsMatchesUncached) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  constexpr int kActors = 4;
  std::vector<std::unique_ptr<EdaEnvironment>> shared, solo;
  auto cache = std::make_shared<DisplayCache>(DisplayCache::Options{});
  for (int i = 0; i < kActors; ++i) {
    shared.push_back(std::make_unique<EdaEnvironment>(
        dataset.value(), CacheTestConfig(uint64_t(i + 1), true)));
    shared.back()->SetDisplayCache(cache);
    solo.push_back(std::make_unique<EdaEnvironment>(
        dataset.value(), CacheTestConfig(uint64_t(i + 1), false)));
  }

  // Interleave actors within each episode the way a synchronous parallel
  // trainer does, so actors constantly hit entries their peers populated.
  for (uint64_t episode = 0; episode < 4; ++episode) {
    std::vector<std::vector<EnvAction>> actions;
    std::vector<std::vector<double>> shared_traces(kActors), solo_traces(
                                                                 kActors);
    for (int i = 0; i < kActors; ++i) {
      actions.push_back(RandomActions(shared[i]->action_space(),
                                      200 + episode * kActors + uint64_t(i),
                                      8));
      shared_traces[i] = shared[i]->Reset();
      solo_traces[i] = solo[i]->Reset();
    }
    for (size_t step = 0; step < 8; ++step) {
      for (int i = 0; i < kActors; ++i) {
        StepOutcome a = shared[i]->Step(actions[i][step]);
        StepOutcome b = solo[i]->Step(actions[i][step]);
        shared_traces[i].insert(shared_traces[i].end(),
                                a.observation.begin(), a.observation.end());
        shared_traces[i].push_back(a.reward);
        solo_traces[i].insert(solo_traces[i].end(), b.observation.begin(),
                              b.observation.end());
        solo_traces[i].push_back(b.reward);
      }
    }
    for (int i = 0; i < kActors; ++i) {
      EXPECT_EQ(shared_traces[i], solo_traces[i])
          << "actor " << i << " episode " << episode;
    }
  }
  EXPECT_GT(cache->stats().hits, 0u);
}

TrainingResult TrainFourActors(const Dataset& dataset, bool cache_enabled) {
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    owned.push_back(std::make_unique<EdaEnvironment>(
        dataset, CacheTestConfig(seed, cache_enabled)));
    envs.push_back(owned.back().get());
  }
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  policy_options.seed = 5;
  TwofoldPolicy policy(envs[0]->observation_dim(), envs[0]->action_space(),
                       policy_options);
  TrainerOptions options;
  options.total_steps = 640;
  options.rollout_length = 64;
  options.final_eval_episodes = 2;
  options.seed = 17;
  ParallelPpoTrainer trainer(envs, &policy, options);
  return trainer.Train();
}

TEST(CacheDeterminismTest, ParallelTrainerIdenticalWithAndWithoutCache) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  TrainingResult with_cache = TrainFourActors(dataset.value(), true);
  TrainingResult without_cache = TrainFourActors(dataset.value(), false);

  EXPECT_EQ(with_cache.episodes, without_cache.episodes);
  EXPECT_EQ(with_cache.final_mean_reward, without_cache.final_mean_reward);
  ASSERT_EQ(with_cache.curve.size(), without_cache.curve.size());
  for (size_t i = 0; i < with_cache.curve.size(); ++i) {
    EXPECT_EQ(with_cache.curve[i].mean_episode_reward,
              without_cache.curve[i].mean_episode_reward)
        << "curve point " << i;
  }
  ASSERT_EQ(with_cache.best_episode_ops.size(),
            without_cache.best_episode_ops.size());
}

}  // namespace
}  // namespace atena
