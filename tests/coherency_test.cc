#include <gtest/gtest.h>

#include <string>

#include "coherency/classifier.h"
#include "coherency/label_model.h"
#include "coherency/rules.h"
#include "common/random.h"
#include "data/registry.h"

namespace atena {
namespace {

Dataset SmallDataset() {
  auto d = MakeDataset("cyber2");
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig SmallConfig() {
  EnvConfig config;
  config.episode_length = 8;
  config.num_term_bins = 4;
  return config;
}

/// Executes `op` on `env` and returns the context for the step (the op is
/// steps().back() per the environment contract).
RewardContext StepContext(EdaEnvironment* env, const EdaOperation& op) {
  StepOutcome outcome = env->StepOperation(op);
  RewardContext context;
  context.env = env;
  context.op = &env->steps().back().op;
  context.valid = outcome.valid;
  return context;
}

LfVote VoteOf(const std::vector<LabelingFunctionPtr>& rules,
              const std::string& name, const RewardContext& context) {
  for (const auto& rule : rules) {
    if (rule->name() == name) return rule->Vote(context);
  }
  ADD_FAILURE() << "no rule named " << name;
  return LfVote::kAbstain;
}

// ---------------------------------------------------------------- Rules

TEST(RulesTest, GroupOnIdLikeVotesIncoherent) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int id_col = d.table->FindColumn("request_id");
  auto ctx = StepContext(&env, EdaOperation::Group(id_col, AggFunc::kCount,
                                                   -1));
  EXPECT_EQ(VoteOf(rules, "group_on_id_like", ctx), LfVote::kIncoherent);
}

TEST(RulesTest, GroupOnCategoricalAbstains) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  auto ctx = StepContext(&env, EdaOperation::Group(method, AggFunc::kCount,
                                                   -1));
  EXPECT_EQ(VoteOf(rules, "group_on_id_like", ctx), LfVote::kAbstain);
  EXPECT_EQ(VoteOf(rules, "group_on_continuous", ctx), LfVote::kAbstain);
  // A shallow grouping is positively coherent.
  EXPECT_EQ(VoteOf(rules, "group_too_deep", ctx), LfVote::kCoherent);
}

TEST(RulesTest, GroupOnContinuousNumericVotesIncoherent) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int ts = d.table->FindColumn("timestamp");
  auto ctx = StepContext(&env, EdaOperation::Group(ts, AggFunc::kCount, -1));
  EXPECT_EQ(VoteOf(rules, "group_on_continuous", ctx), LfVote::kIncoherent);
}

TEST(RulesTest, FilterOnIdLikeVotesIncoherent) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int id_col = d.table->FindColumn("request_id");
  auto ctx = StepContext(&env, EdaOperation::Filter(id_col, CompareOp::kEq,
                                                    Value(int64_t{5})));
  EXPECT_EQ(VoteOf(rules, "filter_on_id_like", ctx), LfVote::kIncoherent);
}

TEST(RulesTest, OpeningBackVotesIncoherent) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  auto ctx = StepContext(&env, EdaOperation::Back());
  EXPECT_EQ(VoteOf(rules, "consecutive_back", ctx), LfVote::kIncoherent);
  EXPECT_EQ(VoteOf(rules, "invalid_noop", ctx), LfVote::kIncoherent);
}

TEST(RulesTest, RepeatedOperationVotesIncoherent) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  EdaOperation group = EdaOperation::Group(method, AggFunc::kCount, -1);
  StepContext(&env, group);
  env.StepOperation(EdaOperation::Back());
  auto ctx = StepContext(&env, group);
  EXPECT_EQ(VoteOf(rules, "repeated_operation", ctx), LfVote::kIncoherent);
}

TEST(RulesTest, DrillDownPatternVotesCoherent) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  env.StepOperation(EdaOperation::Group(method, AggFunc::kCount, -1));
  auto ctx = StepContext(&env, EdaOperation::Filter(
                                   method, CompareOp::kEq,
                                   Value(std::string("POST"))));
  EXPECT_EQ(VoteOf(rules, "drill_down_pattern", ctx), LfVote::kCoherent);
}

TEST(RulesTest, LongFilterChainVotesIncoherent) {
  Dataset d = SmallDataset();
  auto rules = GeneralCoherencyRules(d.table);
  EnvConfig config = SmallConfig();
  config.episode_length = 12;
  EdaEnvironment env(d, config);
  env.Reset();
  int bytes = d.table->FindColumn("response_bytes");
  RewardContext last;
  for (int i = 0; i < 4; ++i) {
    last = StepContext(&env, EdaOperation::Filter(
                                 bytes, CompareOp::kGt,
                                 Value(int64_t{400 + i * 200})));
  }
  EXPECT_EQ(VoteOf(rules, "filter_chain_too_long", last),
            LfVote::kIncoherent);
}

TEST(RulesTest, FocalAttributeRulesVoteCoherent) {
  Dataset d = SmallDataset();  // focal: source_ip, destination_ip
  auto rules = FocalAttributeRules(d);
  ASSERT_FALSE(rules.empty());
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int src = d.table->FindColumn("source_ip");
  auto ctx = StepContext(&env, EdaOperation::Group(src, AggFunc::kCount, -1));
  EXPECT_EQ(VoteOf(rules, "focal_filter_or_group", ctx), LfVote::kCoherent);
}

TEST(RulesTest, StandardRuleSetCombinesBothKinds) {
  Dataset d = SmallDataset();
  auto general = GeneralCoherencyRules(d.table);
  auto focal = FocalAttributeRules(d);
  auto all = StandardRuleSet(d);
  EXPECT_EQ(all.size(), general.size() + focal.size());
}

// ----------------------------------------------------------- LabelModel

/// Builds a synthetic corpus: a latent truth per example; LF votes flipped
/// with per-LF error rates; some abstentions.
std::vector<std::vector<LfVote>> SyntheticCorpus(
    const std::vector<double>& accuracies, int n, Rng* rng) {
  std::vector<std::vector<LfVote>> corpus;
  for (int i = 0; i < n; ++i) {
    bool truth = rng->NextBool(0.5);
    std::vector<LfVote> votes;
    for (double acc : accuracies) {
      if (rng->NextBool(0.2)) {
        votes.push_back(LfVote::kAbstain);
        continue;
      }
      bool report = rng->NextBool(acc) ? truth : !truth;
      votes.push_back(report ? LfVote::kCoherent : LfVote::kIncoherent);
    }
    corpus.push_back(std::move(votes));
  }
  return corpus;
}

TEST(LabelModelTest, RecoversAccuracyOrdering) {
  Rng rng(4242);
  std::vector<double> true_acc = {0.95, 0.80, 0.60};
  auto corpus = SyntheticCorpus(true_acc, 3000, &rng);
  LabelModel model(3);
  int iters = model.Fit(corpus);
  EXPECT_GT(iters, 0);
  EXPECT_GT(model.accuracy(0), model.accuracy(1));
  EXPECT_GT(model.accuracy(1), model.accuracy(2));
}

TEST(LabelModelTest, PosteriorFollowsReliableVoters) {
  Rng rng(7);
  auto corpus = SyntheticCorpus({0.95, 0.95, 0.55}, 3000, &rng);
  LabelModel model(3);
  model.Fit(corpus);
  // Two reliable coherent votes vs one noisy incoherent vote.
  double p = model.PosteriorCoherent(
      {LfVote::kCoherent, LfVote::kCoherent, LfVote::kIncoherent});
  EXPECT_GT(p, 0.7);
  double q = model.PosteriorCoherent(
      {LfVote::kIncoherent, LfVote::kIncoherent, LfVote::kCoherent});
  EXPECT_LT(q, 0.3);
}

TEST(LabelModelTest, AllAbstainReturnsPrior) {
  LabelModel model(2);
  double p = model.PosteriorCoherent({LfVote::kAbstain, LfVote::kAbstain});
  EXPECT_DOUBLE_EQ(p, model.class_prior());
}

TEST(LabelModelTest, EmptyCorpusIsHandled) {
  LabelModel model(2);
  EXPECT_EQ(model.Fit({}), 0);
  EXPECT_TRUE(model.trained());
}

TEST(LabelModelTest, AccuraciesStayInConfiguredBand) {
  Rng rng(99);
  auto corpus = SyntheticCorpus({0.99, 0.50}, 2000, &rng);
  LabelModel::Options options;
  LabelModel model(2, options);
  model.Fit(corpus);
  for (int j = 0; j < 2; ++j) {
    EXPECT_GE(model.accuracy(j), options.min_accuracy);
    EXPECT_LE(model.accuracy(j), options.max_accuracy);
  }
}

// ----------------------------------------------------------- Classifier

TEST(ClassifierTest, TrainsOnRandomSessions) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  CoherencyClassifier classifier(StandardRuleSet(d));
  ASSERT_TRUE(classifier.Train(&env).ok());
  EXPECT_TRUE(classifier.trained());
  EXPECT_GT(classifier.num_rules(), 8);
}

TEST(ClassifierTest, ScoresIncoherentBelowCoherent) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  CoherencyClassifier classifier(StandardRuleSet(d));
  ASSERT_TRUE(classifier.Train(&env).ok());

  // Coherent: group by a categorical focal attribute.
  env.Reset();
  int src = d.table->FindColumn("source_ip");
  auto good = StepContext(&env, EdaOperation::Group(src, AggFunc::kCount,
                                                    -1));
  double good_score = classifier.Score(good);

  // Incoherent: BACK as the opening move (an invalid no-op too).
  env.Reset();
  auto bad = StepContext(&env, EdaOperation::Back());
  double bad_score = classifier.Score(bad);

  EXPECT_GT(good_score, bad_score);
  EXPECT_GE(good_score, 0.0);
  EXPECT_LE(good_score, 1.0);
}

TEST(ClassifierTest, RejectsEmptyRuleSet) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  CoherencyClassifier classifier({});
  EXPECT_FALSE(classifier.Train(&env).ok());
}

}  // namespace
}  // namespace atena
