#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"

namespace atena {
namespace {

// --------------------------------------------------------------- Matrix

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_EQ(m.ShapeString(), "(2x3)");
}

TEST(MatrixTest, FromRow) {
  Matrix m = Matrix::FromRow({1, 2, 3});
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposedProductsAgreeWithPlainMatMul) {
  Rng rng(3);
  Matrix a(3, 4), b(5, 4), c(3, 6);
  for (double& x : a.data()) x = rng.NextGaussian();
  for (double& x : b.data()) x = rng.NextGaussian();
  for (double& x : c.data()) x = rng.NextGaussian();

  // a * b^T via explicit transpose.
  Matrix bt(4, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) bt(j, i) = b(i, j);
  }
  Matrix expected = MatMul(a, bt);
  Matrix got = MatMulTransposeB(a, b);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }

  // a^T * c via explicit transpose.
  Matrix at(4, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) at(j, i) = a(i, j);
  }
  Matrix expected2 = MatMul(at, c);
  Matrix got2 = MatMulTransposeA(a, c);
  for (size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_NEAR(got2.data()[i], expected2.data()[i], 1e-12);
  }
}

TEST(MatrixTest, IntoVariantsAreBitIdenticalAndReuseBuffers) {
  // Odd row counts exercise both the blocked and the remainder kernels.
  Rng rng(21);
  Matrix a(7, 9), b(9, 5), bt(6, 9);
  for (double& x : a.data()) x = rng.NextGaussian();
  for (double& x : b.data()) x = rng.NextGaussian();
  for (double& x : bt.data()) x = rng.NextGaussian();

  Matrix out;
  MatMulInto(a, b, &out);
  Matrix expected = MatMul(a, b);
  ASSERT_EQ(out.rows(), expected.rows());
  ASSERT_EQ(out.cols(), expected.cols());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out.data()[i], expected.data()[i]) << "element " << i;
  }

  // Re-run into the same (dirty) destination: same result.
  MatMulInto(a, b, &out);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out.data()[i], expected.data()[i]);
  }

  Matrix out2;
  MatMulTransposeBInto(a, bt, &out2);
  Matrix expected2 = MatMulTransposeB(a, bt);
  for (size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_EQ(out2.data()[i], expected2.data()[i]) << "element " << i;
  }
}

TEST(MatrixTest, ResizeReusesCapacityWithoutPreservingValues) {
  Matrix m(4, 4, 1.0);
  const double* buffer = m.data().data();
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m.data().data(), buffer);  // shrink never reallocates
}

TEST(MatrixTest, RowVectorAndColumnSums) {
  Matrix m(2, 3, 1.0);
  Matrix bias(1, 3);
  bias(0, 0) = 1;
  bias(0, 1) = 2;
  bias(0, 2) = 3;
  AddRowVectorInPlace(&m, bias);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
  Matrix sums = ColumnSums(m);
  EXPECT_DOUBLE_EQ(sums(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sums(0, 2), 8.0);
}

TEST(MatrixTest, SoftmaxRangeNormalizes) {
  Matrix m(1, 5);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(0, 3) = 100;  // outside the range; untouched
  m(0, 4) = 100;
  SoftmaxRangeInPlace(&m, 0, 3);
  EXPECT_NEAR(m(0, 0) + m(0, 1) + m(0, 2), 1.0, 1e-12);
  EXPECT_GT(m(0, 2), m(0, 1));
  EXPECT_DOUBLE_EQ(m(0, 3), 100.0);
}

// ------------------------------------------------------------ workspace

TEST(WorkspaceTest, SharedGraphSeparateWorkspaces) {
  // One parameter store, two workspaces: interleaved forward passes must
  // not clobber each other — the core stateless-graph guarantee.
  ParameterStore store;
  Rng rng(31);
  Dense dense(3, 2, &store, "d", &rng);

  Matrix x1(1, 3, 1.0);
  Matrix x2(1, 3, -2.0);
  Workspace ws1, ws2;
  const Matrix& y1 = dense.Forward(x1, &ws1);
  const Matrix& y2 = dense.Forward(x2, &ws2);
  Matrix y1_copy = y1;  // y1 must still be intact after the second pass

  Workspace fresh;
  const Matrix& y1_again = dense.Forward(x1, &fresh);
  for (size_t i = 0; i < y1_copy.size(); ++i) {
    EXPECT_EQ(y1.data()[i], y1_copy.data()[i]);
    EXPECT_EQ(y1_again.data()[i], y1_copy.data()[i]);
  }
  EXPECT_NE(y1.data()[0], y2.data()[0]);
}

TEST(WorkspaceTest, ParameterStoreNamesAndOrder) {
  ParameterStore store;
  Rng rng(32);
  auto net = MakeMlp(4, {5}, 2, &store, "mlp", &rng);
  ASSERT_EQ(store.size(), 4u);
  auto all = store.All();
  EXPECT_EQ(all[0]->name, "mlp.0.weight");
  EXPECT_EQ(all[1]->name, "mlp.0.bias");
  EXPECT_EQ(all[2]->name, "mlp.1.weight");
  EXPECT_EQ(all[3]->name, "mlp.1.bias");
  EXPECT_EQ(store.Find("mlp.1.weight"), all[2]);
  EXPECT_EQ(store.Find("nope"), nullptr);
  EXPECT_EQ(store.NumScalars(), (4 * 5 + 5) + (5 * 2 + 2));
  // Layer-reported parameters match store order.
  EXPECT_EQ(net->Parameters(), all);
}

// ----------------------------------------------------- gradient checks
//
// Finite differences against the manual backprop, under the Workspace API.
// L = sum(network(x) .* coeff) for fixed random coeff.

void CheckGradients(Layer* net, ParameterStore* store, const Matrix& input,
                    double tolerance) {
  Workspace ws;
  Matrix out = net->Forward(input, &ws);  // copy: workspace will be reused
  Matrix coeff(out.rows(), out.cols());
  Rng rng(11);
  for (double& c : coeff.data()) c = rng.NextGaussian();

  ZeroGradients(store->All());
  net->Forward(input, &ws);
  net->Backward(coeff, &ws);

  Workspace fd_ws;
  for (Parameter* p : store->All()) {
    for (size_t i = 0; i < p->value.size(); i += 7) {  // sample positions
      const double eps = 1e-5;
      const double original = p->value.data()[i];
      p->value.data()[i] = original + eps;
      Matrix plus = net->Forward(input, &fd_ws);
      p->value.data()[i] = original - eps;
      Matrix minus = net->Forward(input, &fd_ws);
      p->value.data()[i] = original;
      double numeric = 0.0;
      for (size_t k = 0; k < plus.size(); ++k) {
        numeric += coeff.data()[k] * (plus.data()[k] - minus.data()[k]);
      }
      numeric /= 2 * eps;
      EXPECT_NEAR(p->grad.data()[i], numeric, tolerance)
          << p->name << " element " << i;
    }
  }
}

TEST(GradientTest, DenseLayer) {
  ParameterStore store;
  Rng rng(5);
  Dense dense(4, 3, &store, "d", &rng);
  Matrix input(2, 4);
  for (double& x : input.data()) x = rng.NextGaussian();
  CheckGradients(&dense, &store, input, 1e-6);
}

TEST(GradientTest, MlpWithRelu) {
  ParameterStore store;
  Rng rng(6);
  auto net = MakeMlp(5, {8, 8}, 3, &store, "mlp", &rng);
  Matrix input(3, 5);
  for (double& x : input.data()) x = rng.NextGaussian() + 0.5;
  CheckGradients(net.get(), &store, input, 1e-5);
}

TEST(GradientTest, TanhLayerChain) {
  ParameterStore store;
  Rng rng(7);
  Sequential net;
  net.Add(std::make_unique<Dense>(4, 6, &store, "a", &rng));
  net.Add(std::make_unique<TanhLayer>());
  net.Add(std::make_unique<Dense>(6, 2, &store, "b", &rng));
  Matrix input(2, 4);
  for (double& x : input.data()) x = rng.NextGaussian();
  CheckGradients(&net, &store, input, 1e-6);
}

TEST(GradientTest, DenseInputGradient) {
  ParameterStore store;
  Rng rng(8);
  Dense dense(3, 2, &store, "d", &rng);
  Matrix input(1, 3);
  for (double& x : input.data()) x = rng.NextGaussian();
  Workspace ws;
  dense.Forward(input, &ws);
  Matrix coeff(1, 2);
  coeff(0, 0) = 1.0;
  coeff(0, 1) = -2.0;
  ZeroGradients(store.All());
  Matrix grad_in = dense.Backward(coeff, &ws);
  Workspace fd_ws;
  for (int j = 0; j < 3; ++j) {
    const double eps = 1e-6;
    Matrix bumped = input;
    bumped(0, j) += eps;
    Matrix plus = dense.Forward(bumped, &fd_ws);
    bumped(0, j) -= 2 * eps;
    Matrix minus = dense.Forward(bumped, &fd_ws);
    double numeric =
        (coeff(0, 0) * (plus(0, 0) - minus(0, 0)) +
         coeff(0, 1) * (plus(0, 1) - minus(0, 1))) /
        (2 * eps);
    EXPECT_NEAR(grad_in(0, j), numeric, 1e-6);
  }
}

TEST(GradientTest, ReluInputGradient) {
  // Input gradient of ReLU alone: pass-through on positive inputs, zero on
  // negative ones (inputs kept away from the kink for clean FD).
  Relu relu;
  Matrix input(2, 3);
  input(0, 0) = 1.5;
  input(0, 1) = -2.0;
  input(0, 2) = 0.7;
  input(1, 0) = -0.4;
  input(1, 1) = 3.0;
  input(1, 2) = -1.1;
  Workspace ws;
  relu.Forward(input, &ws);
  Matrix coeff(2, 3);
  Rng rng(14);
  for (double& c : coeff.data()) c = rng.NextGaussian();
  Matrix grad_in = relu.Backward(coeff, &ws);
  Workspace fd_ws;
  for (size_t i = 0; i < input.size(); ++i) {
    const double eps = 1e-6;
    Matrix bumped = input;
    bumped.data()[i] += eps;
    Matrix plus = relu.Forward(bumped, &fd_ws);
    bumped.data()[i] -= 2 * eps;
    Matrix minus = relu.Forward(bumped, &fd_ws);
    double numeric = 0.0;
    for (size_t k = 0; k < plus.size(); ++k) {
      numeric += coeff.data()[k] * (plus.data()[k] - minus.data()[k]);
    }
    numeric /= 2 * eps;
    EXPECT_NEAR(grad_in.data()[i], numeric, 1e-6) << "element " << i;
  }
}

TEST(GradientTest, SoftmaxHeadLogProb) {
  // The policies' head structure: Dense -> softmax -> L = log p[chosen],
  // with the analytic logits gradient (onehot − p) backpropagated through
  // the Dense layer and checked against finite differences on its params.
  ParameterStore store;
  Rng rng(15);
  Dense head(4, 5, &store, "head", &rng);
  Matrix input(1, 4);
  for (double& x : input.data()) x = rng.NextGaussian();
  const int chosen = 2;

  auto loss = [&](Workspace* ws) {
    Matrix probs = head.Forward(input, ws);
    SoftmaxRangeInPlace(&probs, 0, 5);
    return std::log(probs(0, chosen));
  };

  Workspace ws;
  Matrix probs = head.Forward(input, &ws);
  SoftmaxRangeInPlace(&probs, 0, 5);
  Matrix dlogits(1, 5);
  for (int j = 0; j < 5; ++j) {
    dlogits(0, j) = (j == chosen ? 1.0 : 0.0) - probs(0, j);
  }
  ZeroGradients(store.All());
  head.Backward(dlogits, &ws);

  Workspace fd_ws;
  for (Parameter* p : store.All()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      const double eps = 1e-5;
      const double original = p->value.data()[i];
      p->value.data()[i] = original + eps;
      const double plus = loss(&fd_ws);
      p->value.data()[i] = original - eps;
      const double minus = loss(&fd_ws);
      p->value.data()[i] = original;
      const double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, 1e-6)
          << p->name << " element " << i;
    }
  }
}

// ------------------------------------------------------------ training

TEST(OptimizerTest, ZeroGradientsClears) {
  ParameterStore store;
  Rng rng(9);
  Dense dense(2, 2, &store, "d", &rng);
  Matrix input(1, 2, 1.0);
  Workspace ws;
  dense.Forward(input, &ws);
  dense.Backward(Matrix(1, 2, 1.0), &ws);
  ZeroGradients(store.All());
  for (Parameter* p : store.All()) {
    for (double g : p->grad.data()) EXPECT_DOUBLE_EQ(g, 0.0);
  }
}

TEST(OptimizerTest, ClipGradientsByNorm) {
  ParameterStore store;
  Rng rng(10);
  Dense dense(2, 2, &store, "d", &rng);
  for (Parameter* p : store.All()) {
    for (double& g : p->grad.data()) g = 10.0;
  }
  GradClipResult clip = ClipGradientsByNorm(store.All(), 1.0);
  EXPECT_GT(clip.pre_clip_norm, 1.0);
  EXPECT_TRUE(clip.clipped);
  EXPECT_EQ(clip.nonfinite_count, 0);
  double sq = 0.0;
  for (Parameter* p : store.All()) {
    for (double g : p->grad.data()) sq += g * g;
  }
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-9);
}

TEST(OptimizerTest, ClipGradientsZeroNormIsNoOp) {
  ParameterStore store;
  Parameter* p = store.Create("w", 2, 2);
  // All gradients zero: the norm is 0, nothing to scale, no 0/0 NaNs.
  GradClipResult clip = ClipGradientsByNorm(store.All(), 1.0);
  EXPECT_EQ(clip.pre_clip_norm, 0.0);
  EXPECT_FALSE(clip.clipped);
  EXPECT_EQ(clip.nonfinite_count, 0);
  for (double g : p->grad.data()) EXPECT_EQ(g, 0.0);
}

TEST(OptimizerTest, ClipGradientsNonFiniteZeroesEverything) {
  ParameterStore store;
  Parameter* a = store.Create("a", 2, 2);
  Parameter* b = store.Create("b", 1, 3);
  for (double& g : a->grad.data()) g = 1.0;
  b->grad.data()[0] = std::numeric_limits<double>::infinity();
  b->grad.data()[1] = std::numeric_limits<double>::quiet_NaN();
  GradClipResult clip = ClipGradientsByNorm(store.All(), 1.0);
  // The poisoned norm is reported together with exactly how many gradient
  // values were non-finite, and every gradient — including the finite
  // ones — is zeroed so the next optimizer step is a safe no-op.
  EXPECT_FALSE(std::isfinite(clip.pre_clip_norm));
  EXPECT_EQ(clip.nonfinite_count, 2);
  EXPECT_FALSE(clip.clipped);
  for (Parameter* p : store.All()) {
    for (double g : p->grad.data()) EXPECT_EQ(g, 0.0);
  }
}

TEST(OptimizerTest, AdamSetStateRoundTripContinuesBitIdentically) {
  // Drive one Adam for a few steps, snapshot it via the checkpoint
  // accessors, restore into a fresh Adam, and check both produce the same
  // weights bit for bit from then on.
  ParameterStore store_a, store_b;
  Parameter* pa = store_a.Create("w", 2, 3);
  Parameter* pb = store_b.Create("w", 2, 3);
  Adam adam_a(0.01);
  for (int step = 0; step < 5; ++step) {
    for (size_t i = 0; i < pa->grad.data().size(); ++i) {
      pa->grad.data()[i] = 0.1 * static_cast<double>(i) - 0.2 * step;
    }
    adam_a.Step(store_a.All());
  }
  pb->value = pa->value;
  Adam adam_b(0.01);
  adam_b.SetState(adam_a.step_count(), adam_a.first_moments(),
                  adam_a.second_moments());
  EXPECT_EQ(adam_b.step_count(), 5);
  for (int step = 0; step < 3; ++step) {
    for (size_t i = 0; i < pa->grad.data().size(); ++i) {
      const double g = 0.05 * static_cast<double>(i + step);
      pa->grad.data()[i] = g;
      pb->grad.data()[i] = g;
    }
    adam_a.Step(store_a.All());
    adam_b.Step(store_b.All());
    for (size_t i = 0; i < pa->value.data().size(); ++i) {
      EXPECT_EQ(pa->value.data()[i], pb->value.data()[i])
          << "step " << step << " element " << i;
    }
  }
}

/// Both optimizers should fit y = 2x - 1 with a single Dense unit.
template <typename Optimizer>
double FitLinear(Optimizer* optimizer, int steps) {
  ParameterStore store;
  Rng rng(12);
  Dense dense(1, 1, &store, "d", &rng);
  Workspace ws;
  double final_loss = 0.0;
  for (int step = 0; step < steps; ++step) {
    Matrix x(8, 1);
    Matrix target(8, 1);
    for (int i = 0; i < 8; ++i) {
      x(i, 0) = rng.NextDouble(-1, 1);
      target(i, 0) = 2.0 * x(i, 0) - 1.0;
    }
    const Matrix& out = dense.Forward(x, &ws);
    Matrix grad(8, 1);
    final_loss = 0.0;
    for (int i = 0; i < 8; ++i) {
      double diff = out(i, 0) - target(i, 0);
      grad(i, 0) = 2.0 * diff / 8.0;
      final_loss += diff * diff / 8.0;
    }
    ZeroGradients(store.All());
    dense.Backward(grad, &ws);
    optimizer->Step(store.All());
  }
  return final_loss;
}

TEST(OptimizerTest, SgdConvergesOnLinearFit) {
  Sgd sgd(0.1);
  EXPECT_LT(FitLinear(&sgd, 500), 1e-3);
}

TEST(OptimizerTest, AdamConvergesOnLinearFit) {
  Adam adam(0.05);
  EXPECT_LT(FitLinear(&adam, 500), 1e-3);
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(MlpTest, ParameterCountMatchesArchitecture) {
  ParameterStore store;
  Rng rng(13);
  auto net = MakeMlp(10, {16, 8}, 4, &store, "mlp", &rng);
  (void)net;
  // (10*16 + 16) + (16*8 + 8) + (8*4 + 4)
  EXPECT_EQ(store.NumScalars(), 176 + 136 + 36);
}

}  // namespace
}  // namespace atena
