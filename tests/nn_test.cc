#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace atena {
namespace {

// --------------------------------------------------------------- Matrix

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_EQ(m.ShapeString(), "(2x3)");
}

TEST(MatrixTest, FromRow) {
  Matrix m = Matrix::FromRow({1, 2, 3});
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposedProductsAgreeWithPlainMatMul) {
  Rng rng(3);
  Matrix a(3, 4), b(5, 4), c(3, 6);
  for (double& x : a.data()) x = rng.NextGaussian();
  for (double& x : b.data()) x = rng.NextGaussian();
  for (double& x : c.data()) x = rng.NextGaussian();

  // a * b^T via explicit transpose.
  Matrix bt(4, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) bt(j, i) = b(i, j);
  }
  Matrix expected = MatMul(a, bt);
  Matrix got = MatMulTransposeB(a, b);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }

  // a^T * c via explicit transpose.
  Matrix at(4, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) at(j, i) = a(i, j);
  }
  Matrix expected2 = MatMul(at, c);
  Matrix got2 = MatMulTransposeA(a, c);
  for (size_t i = 0; i < expected2.size(); ++i) {
    EXPECT_NEAR(got2.data()[i], expected2.data()[i], 1e-12);
  }
}

TEST(MatrixTest, RowVectorAndColumnSums) {
  Matrix m(2, 3, 1.0);
  Matrix bias(1, 3);
  bias(0, 0) = 1;
  bias(0, 1) = 2;
  bias(0, 2) = 3;
  AddRowVectorInPlace(&m, bias);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
  Matrix sums = ColumnSums(m);
  EXPECT_DOUBLE_EQ(sums(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sums(0, 2), 8.0);
}

TEST(MatrixTest, SoftmaxRangeNormalizes) {
  Matrix m(1, 5);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(0, 3) = 100;  // outside the range; untouched
  m(0, 4) = 100;
  SoftmaxRangeInPlace(&m, 0, 3);
  EXPECT_NEAR(m(0, 0) + m(0, 1) + m(0, 2), 1.0, 1e-12);
  EXPECT_GT(m(0, 2), m(0, 1));
  EXPECT_DOUBLE_EQ(m(0, 3), 100.0);
}

// ----------------------------------------------------- gradient checks

/// Numerically verifies dL/dparam for L = sum(network(x) .* coeff).
void CheckGradients(Layer* net, const Matrix& input, double tolerance) {
  Matrix out = net->Forward(input);
  Matrix coeff(out.rows(), out.cols());
  Rng rng(11);
  for (double& c : coeff.data()) c = rng.NextGaussian();

  ZeroGradients(net->Parameters());
  net->Forward(input);
  net->Backward(coeff);

  for (Parameter* p : net->Parameters()) {
    for (size_t i = 0; i < p->value.size(); i += 7) {  // sample positions
      const double eps = 1e-5;
      const double original = p->value.data()[i];
      p->value.data()[i] = original + eps;
      Matrix plus = net->Forward(input);
      p->value.data()[i] = original - eps;
      Matrix minus = net->Forward(input);
      p->value.data()[i] = original;
      double numeric = 0.0;
      for (size_t k = 0; k < plus.size(); ++k) {
        numeric += coeff.data()[k] * (plus.data()[k] - minus.data()[k]);
      }
      numeric /= 2 * eps;
      EXPECT_NEAR(p->grad.data()[i], numeric, tolerance)
          << "param element " << i;
    }
  }
}

TEST(GradientTest, DenseLayer) {
  Rng rng(5);
  Dense dense(4, 3, &rng);
  Matrix input(2, 4);
  for (double& x : input.data()) x = rng.NextGaussian();
  CheckGradients(&dense, input, 1e-6);
}

TEST(GradientTest, MlpWithRelu) {
  Rng rng(6);
  auto net = MakeMlp(5, {8, 8}, 3, &rng);
  Matrix input(3, 5);
  for (double& x : input.data()) x = rng.NextGaussian() + 0.5;
  CheckGradients(net.get(), input, 1e-5);
}

TEST(GradientTest, TanhLayerChain) {
  Rng rng(7);
  Sequential net;
  net.Add(std::make_unique<Dense>(4, 6, &rng));
  net.Add(std::make_unique<TanhLayer>());
  net.Add(std::make_unique<Dense>(6, 2, &rng));
  Matrix input(2, 4);
  for (double& x : input.data()) x = rng.NextGaussian();
  CheckGradients(&net, input, 1e-6);
}

TEST(GradientTest, DenseInputGradient) {
  Rng rng(8);
  Dense dense(3, 2, &rng);
  Matrix input(1, 3);
  for (double& x : input.data()) x = rng.NextGaussian();
  Matrix out = dense.Forward(input);
  Matrix coeff(1, 2);
  coeff(0, 0) = 1.0;
  coeff(0, 1) = -2.0;
  ZeroGradients(dense.Parameters());
  Matrix grad_in = dense.Backward(coeff);
  for (int j = 0; j < 3; ++j) {
    const double eps = 1e-6;
    Matrix bumped = input;
    bumped(0, j) += eps;
    Matrix plus = dense.Forward(bumped);
    bumped(0, j) -= 2 * eps;
    Matrix minus = dense.Forward(bumped);
    double numeric =
        (coeff(0, 0) * (plus(0, 0) - minus(0, 0)) +
         coeff(0, 1) * (plus(0, 1) - minus(0, 1))) /
        (2 * eps);
    EXPECT_NEAR(grad_in(0, j), numeric, 1e-6);
  }
}

// ------------------------------------------------------------ training

TEST(OptimizerTest, ZeroGradientsClears) {
  Rng rng(9);
  Dense dense(2, 2, &rng);
  Matrix input(1, 2, 1.0);
  dense.Forward(input);
  dense.Backward(Matrix(1, 2, 1.0));
  ZeroGradients(dense.Parameters());
  for (Parameter* p : dense.Parameters()) {
    for (double g : p->grad.data()) EXPECT_DOUBLE_EQ(g, 0.0);
  }
}

TEST(OptimizerTest, ClipGradientsByNorm) {
  Rng rng(10);
  Dense dense(2, 2, &rng);
  for (Parameter* p : dense.Parameters()) {
    for (double& g : p->grad.data()) g = 10.0;
  }
  double norm_before = ClipGradientsByNorm(dense.Parameters(), 1.0);
  EXPECT_GT(norm_before, 1.0);
  double sq = 0.0;
  for (Parameter* p : dense.Parameters()) {
    for (double g : p->grad.data()) sq += g * g;
  }
  EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-9);
}

/// Both optimizers should fit y = 2x - 1 with a single Dense unit.
template <typename Optimizer>
double FitLinear(Optimizer* optimizer, int steps) {
  Rng rng(12);
  Dense dense(1, 1, &rng);
  double final_loss = 0.0;
  for (int step = 0; step < steps; ++step) {
    Matrix x(8, 1);
    Matrix target(8, 1);
    for (int i = 0; i < 8; ++i) {
      x(i, 0) = rng.NextDouble(-1, 1);
      target(i, 0) = 2.0 * x(i, 0) - 1.0;
    }
    Matrix out = dense.Forward(x);
    Matrix grad(8, 1);
    final_loss = 0.0;
    for (int i = 0; i < 8; ++i) {
      double diff = out(i, 0) - target(i, 0);
      grad(i, 0) = 2.0 * diff / 8.0;
      final_loss += diff * diff / 8.0;
    }
    ZeroGradients(dense.Parameters());
    dense.Backward(grad);
    optimizer->Step(dense.Parameters());
  }
  return final_loss;
}

TEST(OptimizerTest, SgdConvergesOnLinearFit) {
  Sgd sgd(0.1);
  EXPECT_LT(FitLinear(&sgd, 500), 1e-3);
}

TEST(OptimizerTest, AdamConvergesOnLinearFit) {
  Adam adam(0.05);
  EXPECT_LT(FitLinear(&adam, 500), 1e-3);
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(MlpTest, ParameterCountMatchesArchitecture) {
  Rng rng(13);
  auto net = MakeMlp(10, {16, 8}, 4, &rng);
  int64_t total = 0;
  for (Parameter* p : net->Parameters()) {
    total += static_cast<int64_t>(p->value.size());
  }
  // (10*16 + 16) + (16*8 + 8) + (8*4 + 4)
  EXPECT_EQ(total, 176 + 136 + 36);
}

}  // namespace
}  // namespace atena
