// Exactness and determinism tests for the display-vector index
// (src/index/, DESIGN.md §14). The contract under test: every query is
// bit-identical to the flat scalar scan it accelerates — over random
// histories of any size, with duplicates, zero vectors and ragged
// dimensions, however the index was grown (batch build, incremental
// insert, serialization round-trip), and end to end through the
// environment, the diversity reward and the multi-threaded serving
// runtime.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/math_utils.h"
#include "common/random.h"
#include "data/registry.h"
#include "eda/environment.h"
#include "index/notebook_store.h"
#include "index/vector_index.h"
#include "reward/diversity.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace atena {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------------------ generators

/// Random history in the shape display vectors actually take: mostly one
/// dimension with occasional ragged strays, duplicate-heavy (BACK and
/// no-op steps repeat earlier displays), sprinkled zero vectors.
std::vector<std::vector<double>> RandomHistory(Rng* rng, size_t count,
                                               size_t dim) {
  std::vector<std::vector<double>> vectors;
  vectors.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t kind = rng->NextBounded(10);
    if (kind == 0 && !vectors.empty()) {
      // Duplicate an earlier vector bit-for-bit.
      vectors.push_back(
          vectors[static_cast<size_t>(rng->NextBounded(vectors.size()))]);
      continue;
    }
    size_t d = dim;
    if (kind == 1) d = dim + rng->NextBounded(3);        // ragged longer
    if (kind == 2 && dim > 1) d = dim - 1;               // ragged shorter
    std::vector<double> v(d);
    if (kind == 3) {
      // Zero vector (the root display of an empty encoding).
    } else {
      for (double& x : v) x = rng->NextDouble(-2.0, 2.0);
    }
    vectors.push_back(std::move(v));
  }
  return vectors;
}

/// The flat reference scan the index must match bit for bit: running min
/// over the same bounded squared-distance kernel, in id order.
double ScalarMinSquared(const std::vector<std::vector<double>>& vectors,
                        const std::vector<double>& query, size_t id_limit) {
  double best = std::numeric_limits<double>::infinity();
  const size_t limit = std::min(id_limit, vectors.size());
  for (size_t i = 0; i < limit; ++i) {
    const double sq = SquaredEuclideanDistanceBounded(query, vectors[i], best);
    if (sq < best) best = sq;
  }
  return best;
}

/// Brute-force top-k under the (squared_distance, id) total order.
std::vector<VectorIndex::Neighbor> ScalarTopK(
    const std::vector<std::vector<double>>& vectors,
    const std::vector<double>& query, int k, size_t id_limit) {
  std::vector<VectorIndex::Neighbor> all;
  const size_t limit = std::min(id_limit, vectors.size());
  for (size_t i = 0; i < limit; ++i) {
    all.push_back(VectorIndex::Neighbor{
        static_cast<int32_t>(i), SquaredEuclideanDistance(query, vectors[i])});
  }
  std::sort(all.begin(), all.end(),
            [](const VectorIndex::Neighbor& a, const VectorIndex::Neighbor& b) {
              return a.squared_distance != b.squared_distance
                         ? a.squared_distance < b.squared_distance
                         : a.id < b.id;
            });
  if (all.size() > static_cast<size_t>(k)) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

void ExpectSameNeighbors(const std::vector<VectorIndex::Neighbor>& got,
                         const std::vector<VectorIndex::Neighbor>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_EQ(got[i].squared_distance, want[i].squared_distance)
        << context << " rank " << i;
  }
}

// ------------------------------------------------- index-vs-scalar exact

TEST(VectorIndexTest, MinDistanceBitIdenticalToScalarScanRandomHistories) {
  Rng rng(2024);
  // Sizes straddle every structural regime: single vector, one unsplit
  // leaf, one split, deep trees; small leaves force many splits.
  const size_t sizes[] = {1, 2, 5, 33, 200, 1500};
  const size_t dims[] = {1, 3, 8, 17};
  VectorIndex::Options options;
  options.branching = 4;
  options.leaf_capacity = 8;
  for (const size_t size : sizes) {
    for (const size_t dim : dims) {
      const auto vectors = RandomHistory(&rng, size, dim);
      VectorIndex index(options);
      for (const auto& v : vectors) index.Insert(v);
      ASSERT_EQ(index.size(), vectors.size());
      for (int q = 0; q < 25; ++q) {
        // Mix of member vectors (distance 0 exists) and fresh queries.
        const std::vector<double> query =
            (q % 2 == 0)
                ? vectors[static_cast<size_t>(rng.NextBounded(vectors.size()))]
                : RandomHistory(&rng, 1, dim)[0];
        const size_t id_limit =
            (q % 3 == 0) ? vectors.size()
                         : 1 + rng.NextBounded(vectors.size());
        const std::string context = "size=" + std::to_string(size) +
                                    " dim=" + std::to_string(dim) +
                                    " query=" + std::to_string(q);
        EXPECT_EQ(index.MinSquaredDistance(query, id_limit),
                  ScalarMinSquared(vectors, query, id_limit))
            << context;
      }
    }
  }
}

TEST(VectorIndexTest, MinDistanceBitIdenticalAtTenThousandVectors) {
  Rng rng(7);
  const auto vectors = RandomHistory(&rng, 10000, 6);
  VectorIndex index = VectorIndex::Build(vectors);
  VectorIndex::QueryStats stats;
  for (int q = 0; q < 10; ++q) {
    const std::vector<double> query =
        vectors[static_cast<size_t>(rng.NextBounded(vectors.size()))];
    EXPECT_EQ(index.MinSquaredDistance(query, vectors.size(), &stats),
              ScalarMinSquared(vectors, query, vectors.size()));
  }
  // The accelerator must actually accelerate: over 10 queries at 10k
  // vectors the ball bounds have to prune the overwhelming majority of
  // candidates (this is a structural property of the tree, not a timing
  // assertion, so it is stable under sanitizers).
  EXPECT_LT(stats.vectors_checked, 10 * 10000 / 5)
      << "pruning is not effective: " << stats.vectors_checked
      << " of 100000 candidates scanned";
}

TEST(VectorIndexTest, TopKMatchesBruteForceUnderTotalOrder) {
  Rng rng(99);
  const auto vectors = RandomHistory(&rng, 700, 5);
  VectorIndex::Options options;
  options.branching = 4;
  options.leaf_capacity = 8;
  VectorIndex incremental(options);
  for (const auto& v : vectors) incremental.Insert(v);
  for (const int k : {1, 3, 10, 699, 700, 900}) {
    for (int q = 0; q < 10; ++q) {
      const std::vector<double> query =
          (q % 2 == 0)
              ? vectors[static_cast<size_t>(rng.NextBounded(vectors.size()))]
              : RandomHistory(&rng, 1, 5)[0];
      const size_t id_limit =
          (q % 3 == 0) ? vectors.size() : 1 + rng.NextBounded(vectors.size());
      ExpectSameNeighbors(incremental.TopK(query, k, id_limit),
                          ScalarTopK(vectors, query, k, id_limit),
                          "k=" + std::to_string(k) +
                              " limit=" + std::to_string(id_limit));
    }
  }
}

TEST(VectorIndexTest, BatchBuildAndIncrementalInsertAnswerIdentically) {
  Rng rng(4242);
  VectorIndex::Options options;
  options.branching = 3;
  options.leaf_capacity = 4;
  for (const size_t size : {1u, 9u, 64u, 500u}) {
    const auto vectors = RandomHistory(&rng, size, 4);
    const VectorIndex batch = VectorIndex::Build(vectors, options);
    VectorIndex incremental(options);
    for (const auto& v : vectors) incremental.Insert(v);
    ASSERT_EQ(batch.size(), incremental.size());
    for (int q = 0; q < 20; ++q) {
      const std::vector<double> query =
          (q % 2 == 0)
              ? vectors[static_cast<size_t>(rng.NextBounded(vectors.size()))]
              : RandomHistory(&rng, 1, 4)[0];
      const std::string context =
          "size=" + std::to_string(size) + " query=" + std::to_string(q);
      EXPECT_EQ(batch.MinSquaredDistance(query),
                incremental.MinSquaredDistance(query))
          << context;
      ExpectSameNeighbors(batch.TopK(query, 7), incremental.TopK(query, 7),
                          context);
    }
  }
}

TEST(VectorIndexTest, DegenerateCases) {
  VectorIndex index;
  // Empty index: no neighbor exists.
  EXPECT_EQ(index.MinSquaredDistance({1.0, 2.0}),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(index.TopK({1.0, 2.0}, 3).empty());

  EXPECT_EQ(index.Insert({1.0, 2.0}), 0);
  // id_limit 0 excludes everything; k <= 0 returns nothing.
  EXPECT_EQ(index.MinSquaredDistance({1.0, 2.0}, 0),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(index.TopK({1.0, 2.0}, 0).empty());
  // Exact self-match.
  EXPECT_EQ(index.MinSquaredDistance({1.0, 2.0}), 0.0);

  index.Clear();
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.MinSquaredDistance({1.0}),
            std::numeric_limits<double>::infinity());
}

TEST(VectorIndexTest, AllDuplicateVectorsStayCorrectPastLeafCapacity) {
  // An unseparable member set can never split; the leaf must stay flat
  // (retry doubling) and keep answering exactly.
  VectorIndex::Options options;
  options.branching = 4;
  options.leaf_capacity = 4;
  VectorIndex index(options);
  const std::vector<double> v = {0.5, -1.5, 3.0};
  for (int i = 0; i < 100; ++i) index.Insert(v);
  EXPECT_EQ(index.MinSquaredDistance(v), 0.0);
  EXPECT_EQ(index.node_count(), 1) << "unseparable leaf must not split";
  const auto top = index.TopK(v, 3);
  ASSERT_EQ(top.size(), 3u);
  // Ties resolve to the lowest ids under the total order.
  EXPECT_EQ(top[0].id, 0);
  EXPECT_EQ(top[1].id, 1);
  EXPECT_EQ(top[2].id, 2);

  // A separable tail arriving later still splits the leaf eventually.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    index.Insert({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
  }
  EXPECT_GT(index.node_count(), 1);
  EXPECT_EQ(index.MinSquaredDistance(v), 0.0);
}

TEST(VectorIndexTest, SaveLoadRoundTripAnswersIdentically) {
  Rng rng(31);
  const auto vectors = RandomHistory(&rng, 300, 5);
  VectorIndex::Options options;
  options.branching = 5;
  options.leaf_capacity = 6;
  VectorIndex index(options);
  for (const auto& v : vectors) index.Insert(v);

  const std::string path = TempPath("vector_index_roundtrip.bin");
  ASSERT_TRUE(index.Save(path).ok());
  Result<VectorIndex> loaded = VectorIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), index.size());
  EXPECT_EQ(loaded.value().options().branching, options.branching);
  for (int q = 0; q < 20; ++q) {
    const std::vector<double> query = RandomHistory(&rng, 1, 5)[0];
    EXPECT_EQ(loaded.value().MinSquaredDistance(query),
              index.MinSquaredDistance(query));
    ExpectSameNeighbors(loaded.value().TopK(query, 9), index.TopK(query, 9),
                        "roundtrip query " + std::to_string(q));
  }
  std::remove(path.c_str());
}

TEST(VectorIndexTest, LoadRejectsCorruptContainers) {
  const std::string path = TempPath("vector_index_corrupt.bin");
  VectorIndex index;
  index.Insert({1.0, 2.0});
  ASSERT_TRUE(index.Save(path).ok());
  // Flip one payload byte: the CRC frame must catch it.
  std::string blob;
  ASSERT_TRUE(ReadFileToString(path, &blob).ok());
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x40);
  ASSERT_TRUE(AtomicWriteFile(path, blob).ok());
  EXPECT_FALSE(VectorIndex::Load(path).ok());
  std::remove(path.c_str());
}

// -------------------------------------------------- reward / environment

/// Reward signal scoring only diversity — the component the index
/// accelerates — so per-step rewards compare the two paths directly.
class DiversityOnlyReward final : public RewardSignal {
 public:
  double Compute(const RewardContext& context) override {
    return DiversityReward(context);
  }
};

EnvConfig IndexedEnvConfig(int episode_length, int threshold) {
  EnvConfig config;
  config.episode_length = episode_length;
  config.num_term_bins = 4;
  config.diversity_index_enabled = threshold >= 0;
  config.diversity_index_threshold = threshold < 0 ? 0 : threshold;
  return config;
}

TEST(IndexedDiversityTest, RewardBitIdenticalWithIndexOnAndOff) {
  Dataset dataset = MakeDataset("cyber2").value();
  const int episode_length = 120;
  // Threshold 8 activates the index mid-episode, covering the dormant →
  // catch-up → incremental transition; -1 disables it entirely.
  EdaEnvironment indexed(dataset, IndexedEnvConfig(episode_length, 8));
  EdaEnvironment scalar(dataset, IndexedEnvConfig(episode_length, -1));
  DiversityOnlyReward reward_a, reward_b;
  indexed.SetRewardSignal(&reward_a);
  scalar.SetRewardSignal(&reward_b);
  indexed.Reset();
  scalar.Reset();

  Rng actions(123);
  for (int step = 0; step < episode_length; ++step) {
    const EnvAction action = SampleRandomAction(indexed.action_space(), &actions);
    const StepOutcome a = indexed.Step(action);
    const StepOutcome b = scalar.Step(action);
    EXPECT_EQ(a.reward, b.reward) << "step " << step;
    EXPECT_EQ(a.valid, b.valid) << "step " << step;
  }
  EXPECT_NE(indexed.display_index(), nullptr)
      << "index never activated: the test lost its point";
  EXPECT_EQ(scalar.display_index(), nullptr);

  // The public entry point agrees with the in-TU scalar reference on the
  // final state too.
  RewardContext context;
  context.env = &indexed;
  EXPECT_EQ(DiversityReward(context),
            ScalarDiversityReward(MakeIndexedRewardContext(context)));
}

TEST(IndexedDiversityTest, RestoreSnapshotRebuildsTheIndex) {
  Dataset dataset = MakeDataset("cyber2").value();
  EdaEnvironment env(dataset, IndexedEnvConfig(60, 4));
  DiversityOnlyReward reward;
  env.SetRewardSignal(&reward);
  env.Reset();

  Rng actions(55);
  std::vector<EnvAction> prefix, suffix;
  for (int i = 0; i < 20; ++i) {
    prefix.push_back(SampleRandomAction(env.action_space(), &actions));
  }
  for (int i = 0; i < 10; ++i) {
    suffix.push_back(SampleRandomAction(env.action_space(), &actions));
  }
  for (const auto& action : prefix) env.Step(action);
  ASSERT_NE(env.display_index(), nullptr);

  // Speculative evaluation à la greedy baselines: snapshot, take the
  // suffix, roll back, take it again — rewards must replay bit-for-bit
  // (term sampling consumes the env Rng, so pin it alongside).
  const EdaEnvironment::Snapshot snapshot = env.SaveSnapshot();
  const RngState rng_state = env.rng_state();
  std::vector<double> first;
  for (const auto& action : suffix) first.push_back(env.Step(action).reward);
  env.RestoreSnapshot(snapshot);
  env.set_rng_state(rng_state);
  ASSERT_NE(env.display_index(), nullptr)
      << "RestoreSnapshot must rebuild the index";
  ASSERT_EQ(env.display_index()->size(), env.display_vectors().size());
  std::vector<double> second;
  for (const auto& action : suffix) second.push_back(env.Step(action).reward);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "replayed step " << i;
  }
}

// --------------------------------------------------------- notebook store

std::vector<std::vector<double>> Notebook(std::vector<double> base,
                                          size_t length) {
  std::vector<std::vector<double>> sequence;
  for (size_t i = 0; i < length; ++i) {
    std::vector<double> v = base;
    v[0] += static_cast<double>(i);
    sequence.push_back(std::move(v));
  }
  return sequence;
}

TEST(NotebookStoreTest, RegisterTopKAndExactDuplicates) {
  NotebookStore store;
  const auto a = Notebook({0.0, 0.0}, 4);
  const auto b = Notebook({10.0, 0.0}, 4);
  const auto c = Notebook({0.5, 0.0}, 4);
  EXPECT_EQ(store.Register(1, 100, a), 0);
  EXPECT_EQ(store.Register(2, 200, b), 1);
  EXPECT_EQ(store.Register(3, 300, c), 2);
  EXPECT_EQ(store.size(), 3u);

  // Too-short sequences are refused and counted.
  EXPECT_EQ(store.Register(4, 400, Notebook({1.0, 1.0}, 1)), -1);
  EXPECT_EQ(store.skipped_registrations(), 1);
  EXPECT_EQ(store.size(), 3u);

  const auto matches = store.TopK(a, 2);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].entry.notebook_id, 0u);  // itself: distance 0
  EXPECT_EQ(matches[0].distance, 0.0);
  EXPECT_EQ(matches[1].entry.notebook_id, 2u);  // c is nearer than b
  EXPECT_LT(matches[1].distance, 1.0);
  EXPECT_EQ(matches[0].entry.session_id, 1u);
  EXPECT_EQ(matches[0].entry.session_seed, 100u);
  EXPECT_EQ(matches[0].entry.length, 4u);

  // Duplicate detection is bitwise, not centroid-near.
  EXPECT_EQ(store.FindDuplicate(a), 0);
  EXPECT_EQ(store.FindDuplicate(b), 1);
  auto almost = a;
  almost[0][0] += 1e-15;
  EXPECT_EQ(store.FindDuplicate(almost), -1);
  EXPECT_EQ(store.sequence(1), b);
}

TEST(NotebookStoreTest, SaveLoadRoundTrip) {
  NotebookStore store;
  Rng rng(8);
  for (uint64_t i = 0; i < 25; ++i) {
    const auto nb = Notebook({rng.NextDouble(), rng.NextDouble()},
                             2 + rng.NextBounded(6));
    ASSERT_GE(store.Register(i, i * 10, nb), 0);
  }
  const std::string path = TempPath("notebook_store_roundtrip.bin");
  ASSERT_TRUE(store.Save(path).ok());
  Result<NotebookStore> loaded = NotebookStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), store.size());
  for (uint64_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded.value().sequence(i), store.sequence(i));
    EXPECT_EQ(loaded.value().entry(i).session_id, store.entry(i).session_id);
  }
  const auto query = Notebook({0.4, 0.4}, 3);
  const auto want = store.TopK(query, 5);
  const auto got = loaded.value().TopK(query, 5);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].entry.notebook_id, want[i].entry.notebook_id);
    EXPECT_EQ(got[i].distance, want[i].distance);
  }
  EXPECT_EQ(loaded.value().FindDuplicate(store.sequence(3)), 3);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- serve path

SnapshotOptions ServeIndexedOptions(bool index_enabled) {
  SnapshotOptions options;
  options.env.episode_length = 6;
  options.env.num_term_bins = 4;
  options.env.diversity_index_enabled = index_enabled;
  // Activate almost immediately so even 6-step serving episodes exercise
  // the indexed path.
  options.env.diversity_index_threshold = 2;
  options.policy.hidden = {24, 24};
  return options;
}

std::vector<SessionConfig> IndexedConfigs(int count) {
  std::vector<SessionConfig> configs;
  for (int i = 0; i < count; ++i) {
    SessionConfig config;
    config.seed = 4400 + static_cast<uint64_t>(i);
    config.max_steps = 4 + (i % 3) * 5;  // spans episode boundaries at 9/14
    config.greedy = (i % 2) == 0;
    configs.push_back(config);
  }
  return configs;
}

std::map<uint64_t, SessionTrace> DrainBySeed(SessionManager& manager) {
  manager.Drain();
  std::map<uint64_t, SessionTrace> by_seed;
  for (auto& outcome : manager.TakeCompleted()) {
    EXPECT_EQ(outcome.reason, RetireReason::kCompleted)
        << RetireReasonName(outcome.reason) << " " << outcome.status.ToString();
    by_seed[outcome.trace.seed] = std::move(outcome.trace);
  }
  return by_seed;
}

void ExpectServeTracesEqual(const SessionTrace& got, const SessionTrace& want,
                            const std::string& context) {
  ASSERT_EQ(got.steps.size(), want.steps.size()) << context;
  for (size_t i = 0; i < got.steps.size(); ++i) {
    EXPECT_EQ(got.steps[i].reward, want.steps[i].reward)
        << context << " step " << i;
    EXPECT_EQ(got.steps[i].display_signature, want.steps[i].display_signature)
        << context << " step " << i;
  }
  EXPECT_EQ(got.total_reward, want.total_reward) << context;
}

TEST(ServeIndexedDiversityTest, TracesIdenticalAcrossThreadsAndIndexOnOff) {
  auto reward_factory = []() { return std::make_shared<DiversityOnlyReward>(); };
  const auto configs = IndexedConfigs(5);

  // Scalar-diversity reference traces (index disabled).
  auto scalar_snapshot = std::make_shared<PolicySnapshot>(
      MakeDataset("cyber2").value(), ServeIndexedOptions(false));
  ServeOptions scalar_options;
  scalar_options.num_threads = 1;
  scalar_options.reward_factory = reward_factory;
  SessionManager scalar_manager(scalar_snapshot, scalar_options);
  for (const auto& config : configs) {
    ASSERT_TRUE(scalar_manager.Admit(config).ok());
  }
  const auto reference = DrainBySeed(scalar_manager);
  ASSERT_EQ(reference.size(), configs.size());

  // Indexed traces must match bit for bit at every thread count.
  for (const int threads : {1, 2, 4}) {
    auto snapshot = std::make_shared<PolicySnapshot>(
        MakeDataset("cyber2").value(), ServeIndexedOptions(true));
    ServeOptions options;
    options.num_threads = threads;
    options.reward_factory = reward_factory;
    options.notebook_store = std::make_shared<NotebookStore>();
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) {
      ASSERT_TRUE(manager.Admit(config).ok());
    }
    const auto by_seed = DrainBySeed(manager);
    ASSERT_EQ(by_seed.size(), configs.size());
    for (const auto& config : configs) {
      ExpectServeTracesEqual(by_seed.at(config.seed),
                             reference.at(config.seed),
                             "threads=" + std::to_string(threads) + " seed=" +
                                 std::to_string(config.seed));
    }
    // Notebook registration is part of the deterministic commit path: one
    // notebook per finished episode plus the final partial one, identical
    // at every thread count. max_steps 4/9/14 against 6-step episodes
    // yield 1, 2 and 3 notebooks respectively.
    int64_t want_notebooks = 0;
    for (const auto& config : configs) {
      want_notebooks += 1 + (config.max_steps - 1) / 6;
    }
    EXPECT_EQ(manager.stats().notebooks_registered, want_notebooks)
        << "threads=" << threads;
    EXPECT_EQ(manager.notebook_store()->size(),
              static_cast<size_t>(want_notebooks));
  }
}

TEST(ServeIndexedDiversityTest, QuerySimilarNotebooksFindsRegisteredSessions) {
  auto snapshot = std::make_shared<PolicySnapshot>(
      MakeDataset("cyber2").value(), ServeIndexedOptions(true));
  ServeOptions options;
  options.reward_factory = []() {
    return std::make_shared<DiversityOnlyReward>();
  };
  options.notebook_store = std::make_shared<NotebookStore>();
  SessionManager manager(snapshot, options);
  SessionConfig config;
  config.seed = 777;
  config.max_steps = 6;
  ASSERT_TRUE(manager.Admit(config).ok());
  manager.Drain();
  manager.TakeCompleted();
  ASSERT_GE(manager.notebook_store()->size(), 1u);

  // Querying with a registered notebook's own sequence returns it first at
  // distance zero; a manager without a store answers empty.
  const auto sequence = manager.notebook_store()->sequence(0);
  const auto matches = manager.QuerySimilarNotebooks(sequence, 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].entry.notebook_id, 0u);
  EXPECT_EQ(matches[0].distance, 0.0);
  EXPECT_EQ(matches[0].entry.session_seed, 777u);
  EXPECT_EQ(manager.notebook_store()->FindDuplicate(sequence), 0);

  SessionManager bare(snapshot, ServeOptions{});
  EXPECT_TRUE(bare.QuerySimilarNotebooks(sequence, 3).empty());
}

}  // namespace
}  // namespace atena
