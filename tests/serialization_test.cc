#include <gtest/gtest.h>

#include <fstream>

#include "common/random.h"
#include "nn/layers.h"
#include "nn/serialization.h"

namespace atena {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripsExactly) {
  ParameterStore store;
  Rng rng(3);
  auto net = MakeMlp(7, {5}, 3, &store, "mlp", &rng);
  const std::string path = TempPath("roundtrip.nn");
  ASSERT_TRUE(SaveParameters(store, path).ok());

  ParameterStore store2;
  Rng rng2(99);  // different init
  auto loaded = MakeMlp(7, {5}, 3, &store2, "mlp", &rng2);
  (void)net;
  (void)loaded;
  ASSERT_TRUE(LoadParameters(&store2, path).ok());

  auto a = store.All();
  auto b = store2.All();
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k]->value.size(), b[k]->value.size());
    for (size_t i = 0; i < a[k]->value.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[k]->value.data()[i], b[k]->value.data()[i]);
    }
  }
}

TEST(SerializationTest, LoadedNetworkComputesIdenticalOutputs) {
  ParameterStore store;
  Rng rng(4);
  auto net = MakeMlp(4, {6}, 2, &store, "mlp", &rng);
  const std::string path = TempPath("outputs.nn");
  ASSERT_TRUE(SaveParameters(store, path).ok());
  ParameterStore store2;
  Rng rng2(5);
  auto loaded = MakeMlp(4, {6}, 2, &store2, "mlp", &rng2);
  ASSERT_TRUE(LoadParameters(&store2, path).ok());

  Matrix input(3, 4);
  Rng data_rng(6);
  for (double& x : input.data()) x = data_rng.NextGaussian();
  Workspace ws_a, ws_b;
  const Matrix& out_a = net->Forward(input, &ws_a);
  const Matrix& out_b = loaded->Forward(input, &ws_b);
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_a.data()[i], out_b.data()[i]);
  }
}

TEST(SerializationTest, LoadsLegacyV1FixtureWrittenByOldFormat) {
  // A checkpoint in the historical positional (nameless) v1 format, written
  // here byte-for-byte as the pre-refactor SaveParameters would have
  // emitted it for a 2->2->1 MLP. The named parameter store must keep
  // loading such files.
  const std::string path = TempPath("legacy_v1.nn");
  std::ofstream(path) << "ATENA-NN v1\n"
                         "4\n"
                         "2 2\n"
                         "0.5 -0.25 1.5 2\n"
                         "1 2\n"
                         "0.125 -1\n"
                         "1 2\n"
                         "3 -0.75\n"
                         "1 1\n"
                         "0.0625\n";

  ParameterStore store;
  Rng rng(17);
  auto net = MakeMlp(2, {2}, 1, &store, "mlp", &rng);
  (void)net;
  ASSERT_TRUE(LoadParameters(&store, path).ok());
  auto all = store.All();
  EXPECT_DOUBLE_EQ(all[0]->value(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(all[0]->value(0, 1), -0.25);
  EXPECT_DOUBLE_EQ(all[0]->value(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(all[0]->value(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(all[1]->value(0, 0), 0.125);
  EXPECT_DOUBLE_EQ(all[1]->value(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(all[2]->value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(all[2]->value(0, 1), -0.75);
  EXPECT_DOUBLE_EQ(all[3]->value(0, 0), 0.0625);

  // And a v2 re-save of the same store round-trips with names.
  const std::string v2_path = TempPath("legacy_resaved.nn");
  ASSERT_TRUE(SaveParameters(store, v2_path).ok());
  std::ifstream in(v2_path);
  std::string magic, first_name;
  std::getline(in, magic);
  EXPECT_EQ(magic, "ATENA-NN v2");
  std::string count_line;
  std::getline(in, count_line);
  in >> first_name;
  EXPECT_EQ(first_name, "mlp.0.weight");
  ASSERT_TRUE(LoadParameters(&store, v2_path).ok());
  EXPECT_DOUBLE_EQ(store.All()[0]->value(0, 0), 0.5);
}

TEST(SerializationTest, NameMismatchIsRejected) {
  ParameterStore store;
  Rng rng(18);
  auto net = MakeMlp(3, {2}, 1, &store, "actor", &rng);
  (void)net;
  const std::string path = TempPath("named.nn");
  ASSERT_TRUE(SaveParameters(store, path).ok());

  // Same shapes, different parameter names: a v2 checkpoint must not load
  // into a differently-named network.
  ParameterStore other;
  Rng rng2(18);
  auto other_net = MakeMlp(3, {2}, 1, &other, "critic", &rng2);
  (void)other_net;
  Status status = LoadParameters(&other, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SerializationTest, ShapeMismatchIsRejectedWithoutModification) {
  ParameterStore small_store;
  Rng rng(7);
  auto small = MakeMlp(4, {3}, 2, &small_store, "mlp", &rng);
  (void)small;
  const std::string path = TempPath("mismatch.nn");
  ASSERT_TRUE(SaveParameters(small_store, path).ok());

  ParameterStore big_store;
  auto big = MakeMlp(4, {5}, 2, &big_store, "mlp", &rng);
  (void)big;
  std::vector<double> before = big_store.All()[0]->value.data();
  Status status = LoadParameters(&big_store, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(big_store.All()[0]->value.data(), before);
}

TEST(SerializationTest, CountMismatchIsRejected) {
  ParameterStore store2;
  Rng rng(8);
  auto two_layer = MakeMlp(4, {3}, 2, &store2, "mlp", &rng);
  (void)two_layer;
  const std::string path = TempPath("count.nn");
  ASSERT_TRUE(SaveParameters(store2, path).ok());
  ParameterStore store3;
  auto three_layer = MakeMlp(4, {3, 3}, 2, &store3, "mlp", &rng);
  (void)three_layer;
  EXPECT_EQ(LoadParameters(&store3, path).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SerializationTest, GarbageFileIsRejected) {
  const std::string path = TempPath("garbage.nn");
  std::ofstream(path) << "not a checkpoint\n";
  ParameterStore store;
  Rng rng(9);
  auto net = MakeMlp(2, {2}, 1, &store, "mlp", &rng);
  (void)net;
  EXPECT_EQ(LoadParameters(&store, path).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadParameters(&store, "/nonexistent/x.nn").code(),
            StatusCode::kIOError);
}

TEST(SerializationTest, TruncatedFileIsRejected) {
  ParameterStore store;
  Rng rng(10);
  auto net = MakeMlp(3, {3}, 2, &store, "mlp", &rng);
  (void)net;
  const std::string path = TempPath("trunc.nn");
  ASSERT_TRUE(SaveParameters(store, path).ok());
  // Chop the file in half.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path) << content.substr(0, content.size() / 2);
  Status status = LoadParameters(&store, path);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace atena
