#include <gtest/gtest.h>

#include <fstream>

#include "common/random.h"
#include "nn/layers.h"
#include "nn/serialization.h"

namespace atena {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripsExactly) {
  Rng rng(3);
  auto net = MakeMlp(7, {5}, 3, &rng);
  const std::string path = TempPath("roundtrip.nn");
  ASSERT_TRUE(SaveParameters(net->Parameters(), path).ok());

  Rng rng2(99);  // different init
  auto loaded = MakeMlp(7, {5}, 3, &rng2);
  ASSERT_TRUE(LoadParameters(loaded->Parameters(), path).ok());

  auto a = net->Parameters();
  auto b = loaded->Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k]->value.size(), b[k]->value.size());
    for (size_t i = 0; i < a[k]->value.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[k]->value.data()[i], b[k]->value.data()[i]);
    }
  }
}

TEST(SerializationTest, LoadedNetworkComputesIdenticalOutputs) {
  Rng rng(4);
  auto net = MakeMlp(4, {6}, 2, &rng);
  const std::string path = TempPath("outputs.nn");
  ASSERT_TRUE(SaveParameters(net->Parameters(), path).ok());
  Rng rng2(5);
  auto loaded = MakeMlp(4, {6}, 2, &rng2);
  ASSERT_TRUE(LoadParameters(loaded->Parameters(), path).ok());

  Matrix input(3, 4);
  Rng data_rng(6);
  for (double& x : input.data()) x = data_rng.NextGaussian();
  Matrix out_a = net->Forward(input);
  Matrix out_b = loaded->Forward(input);
  for (size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_a.data()[i], out_b.data()[i]);
  }
}

TEST(SerializationTest, ShapeMismatchIsRejectedWithoutModification) {
  Rng rng(7);
  auto small = MakeMlp(4, {3}, 2, &rng);
  const std::string path = TempPath("mismatch.nn");
  ASSERT_TRUE(SaveParameters(small->Parameters(), path).ok());

  auto big = MakeMlp(4, {5}, 2, &rng);
  std::vector<double> before = big->Parameters()[0]->value.data();
  Status status = LoadParameters(big->Parameters(), path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(big->Parameters()[0]->value.data(), before);
}

TEST(SerializationTest, CountMismatchIsRejected) {
  Rng rng(8);
  auto two_layer = MakeMlp(4, {3}, 2, &rng);
  const std::string path = TempPath("count.nn");
  ASSERT_TRUE(SaveParameters(two_layer->Parameters(), path).ok());
  auto three_layer = MakeMlp(4, {3, 3}, 2, &rng);
  EXPECT_EQ(LoadParameters(three_layer->Parameters(), path).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SerializationTest, GarbageFileIsRejected) {
  const std::string path = TempPath("garbage.nn");
  std::ofstream(path) << "not a checkpoint\n";
  Rng rng(9);
  auto net = MakeMlp(2, {2}, 1, &rng);
  EXPECT_EQ(LoadParameters(net->Parameters(), path).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LoadParameters(net->Parameters(), "/nonexistent/x.nn").code(),
            StatusCode::kIOError);
}

TEST(SerializationTest, TruncatedFileIsRejected) {
  Rng rng(10);
  auto net = MakeMlp(3, {3}, 2, &rng);
  const std::string path = TempPath("trunc.nn");
  ASSERT_TRUE(SaveParameters(net->Parameters(), path).ok());
  // Chop the file in half.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::ofstream(path) << content.substr(0, content.size() / 2);
  Status status = LoadParameters(net->Parameters(), path);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace atena
