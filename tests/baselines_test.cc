#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "baselines/flat_policy.h"
#include "baselines/greedy.h"
#include "data/registry.h"
#include "nn/optimizer.h"
#include "reward/compound.h"

namespace atena {
namespace {

Dataset SmallDataset() {
  auto d = MakeDataset("cyber2");
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig SmallConfig() {
  EnvConfig config;
  config.episode_length = 6;
  config.num_term_bins = 4;
  return config;
}

// ---------------------------------------------------------- flat policy

TEST(FlatPolicyTest, TokenModeActionCount) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kExplicitTokens;
  options.tokens_per_column = 10;
  options.hidden = {8};
  FlatPolicy policy(env, options);
  // Filters: per column, 9 operators x up-to-10 tokens; groups: C*5*C; +1.
  const int c = d.table->num_columns();
  EXPECT_LE(policy.num_actions(), c * 9 * 10 + c * 5 * c + 1);
  EXPECT_GT(policy.num_actions(), c * 5 * c);  // groups + plenty of filters
}

TEST(FlatPolicyTest, BinModeMatchesFlatActionCount) {
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  EdaEnvironment env(d, config);
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kFrequencyBins;
  options.hidden = {8};
  FlatPolicy policy(env, options);
  EXPECT_EQ(policy.num_actions(),
            env.action_space().FlatActionCount(/*terms_per_column=*/0));
}

TEST(FlatPolicyTest, ActAndEvaluateAgree) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kFrequencyBins;
  options.hidden = {8};
  FlatPolicy policy(env, options);
  Rng rng(31);
  auto obs = env.Reset();
  PolicyStep step = policy.Act(obs, &rng);
  EXPECT_GE(step.action.flat_index, 0);
  Matrix batch = Matrix::FromRow(obs);
  BatchEvaluation eval = policy.ForwardBatch(batch, {step.action});
  EXPECT_NEAR(eval.log_probs[0], step.log_prob, 1e-9);
  EXPECT_NEAR(eval.entropies[0], step.entropy, 1e-9);
}

TEST(FlatPolicyTest, GradientCheck) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kFrequencyBins;
  options.hidden = {4};
  options.seed = 77;
  FlatPolicy policy(env, options);
  Rng rng(32);
  auto obs = env.Reset();
  PolicyStep step = policy.Act(obs, &rng);
  Matrix batch = Matrix::FromRow(obs);
  std::vector<ActionRecord> actions = {step.action};

  const double c_logp = 1.1, c_ent = -0.4, c_val = 0.6;
  auto loss = [&]() {
    BatchEvaluation e = policy.ForwardBatch(batch, actions);
    return c_logp * e.log_probs[0] + c_ent * e.entropies[0] +
           c_val * e.values[0];
  };
  ZeroGradients(policy.Parameters());
  policy.ForwardBatch(batch, actions);
  std::vector<SampleGrad> grads(1);
  grads[0].d_log_prob = c_logp;
  grads[0].d_entropy = c_ent;
  grads[0].d_value = c_val;
  policy.BackwardBatch(grads);

  for (Parameter* p : policy.Parameters()) {
    for (size_t i = 0; i < p->value.size(); i += 211) {
      const double eps = 1e-5;
      const double original = p->value.data()[i];
      p->value.data()[i] = original + eps;
      double plus = loss();
      p->value.data()[i] = original - eps;
      double minus = loss();
      p->value.data()[i] = original;
      EXPECT_NEAR(p->grad.data()[i], (plus - minus) / (2 * eps), 1e-4);
    }
  }
}

TEST(FlatPolicyTest, TokenModeEmitsConcreteFilters) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kExplicitTokens;
  options.hidden = {8};
  FlatPolicy policy(env, options);
  Rng rng(33);
  auto obs = env.Reset();
  bool saw_concrete_filter = false;
  for (int i = 0; i < 200 && !saw_concrete_filter; ++i) {
    PolicyStep step = policy.Act(obs, &rng);
    if (step.action.is_concrete) {
      EXPECT_EQ(step.action.concrete.type, OpType::kFilter);
      EXPECT_FALSE(step.action.concrete.filter.term.is_null());
      saw_concrete_filter = true;
    }
  }
  EXPECT_TRUE(saw_concrete_filter);
}

// --------------------------------------------------------------- greedy

TEST(GreedyTest, ProducesFullValidEpisode) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  auto reward = MakeStandardReward(&env);
  ASSERT_TRUE(reward.ok());
  env.SetRewardSignal(reward.value().get());
  GreedyOptions options;
  EdaNotebook notebook = RunGreedyEpisode(&env, options, "Greedy-CR");
  // Greedy always picks a valid candidate, so every step is an entry.
  EXPECT_EQ(notebook.entries.size(),
            static_cast<size_t>(SmallConfig().episode_length));
  EXPECT_EQ(notebook.generator, "Greedy-CR");
}

TEST(GreedyTest, PicksHighRewardFirstStep) {
  // With the compound reward, greedy's opening move should not be BACK
  // (invalid) and should collect a clearly positive reward.
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  auto reward = MakeStandardReward(&env);
  ASSERT_TRUE(reward.ok());
  env.SetRewardSignal(reward.value().get());
  EdaNotebook notebook = RunGreedyEpisode(&env, GreedyOptions(), "g");
  ASSERT_FALSE(notebook.entries.empty());
  EXPECT_NE(notebook.entries[0].op.type, OpType::kBack);
  EXPECT_GT(notebook.entries[0].reward, 0.0);
}

// -------------------------------------------------------------- factory

TEST(FactoryTest, NamesAreStable) {
  EXPECT_STREQ(BaselineName(BaselineKind::kAtena), "ATENA");
  EXPECT_STREQ(BaselineName(BaselineKind::kOtsDrlB), "OTS-DRL-B");
  EXPECT_EQ(AllBaselines().size(), 6u);
}

class BaselineRunTest : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineRunTest, ProducesNotebook) {
  Dataset d = SmallDataset();
  AtenaOptions options;
  options.env = SmallConfig();
  options.trainer.total_steps = 400;
  options.trainer.rollout_length = 64;
  options.policy.hidden = {8};
  auto run = RunBaseline(GetParam(), d, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run.value().notebook.entries.empty());
  EXPECT_EQ(run.value().notebook.generator,
            std::string(BaselineName(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BaselineRunTest,
    ::testing::Values(BaselineKind::kGreedyIO, BaselineKind::kGreedyCR,
                      BaselineKind::kAtnIO, BaselineKind::kOtsDrl,
                      BaselineKind::kOtsDrlB, BaselineKind::kAtena),
    [](const ::testing::TestParamInfo<BaselineKind>& info) {
      std::string name = BaselineName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace atena
