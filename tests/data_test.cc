#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <string>

#include "common/thread_pool.h"
#include "data/registry.h"
#include "dataframe/kernels.h"
#include "dataframe/ops.h"
#include "dataframe/stats.h"

namespace atena {
namespace {

struct DatasetSpec {
  const char* id;
  int64_t rows;  // paper Table 1
};

class DatasetRowsTest : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(DatasetRowsTest, RowCountMatchesTable1) {
  auto dataset = MakeDataset(GetParam().id);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset.value().table->num_rows(), GetParam().rows);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DatasetRowsTest,
    ::testing::Values(DatasetSpec{"cyber1", 8648}, DatasetSpec{"cyber2", 348},
                      DatasetSpec{"cyber3", 745}, DatasetSpec{"cyber4", 13625},
                      DatasetSpec{"flights1", 5661},
                      DatasetSpec{"flights2", 8172},
                      DatasetSpec{"flights3", 1082},
                      DatasetSpec{"flights4", 2175}),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return std::string(info.param.id);
    });

TEST_P(DatasetRowsTest, ScaleMultipliesRowsDeterministically) {
  constexpr int kScale = 7;
  auto a = MakeDataset(GetParam().id, kScale);
  auto b = MakeDataset(GetParam().id, kScale);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  const Table& ta = *a.value().table;
  const Table& tb = *b.value().table;
  EXPECT_EQ(ta.num_rows(), GetParam().rows * kScale);
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  for (int64_t r = 0; r < ta.num_rows(); r += 997) {
    for (int c = 0; c < ta.num_columns(); ++c) {
      EXPECT_TRUE(ta.column(c)->GetValue(r) == tb.column(c)->GetValue(r))
          << "cell (" << r << "," << c << ") differs at scale " << kScale;
    }
  }
}

TEST_P(DatasetRowsTest, ScaleOneReproducesLegacyTable) {
  auto legacy = MakeDataset(GetParam().id);
  auto scaled = MakeDataset(GetParam().id, 1);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(scaled.ok());
  const Table& ta = *legacy.value().table;
  const Table& tb = *scaled.value().table;
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  for (int64_t r = 0; r < ta.num_rows(); r += 97) {
    for (int c = 0; c < ta.num_columns(); ++c) {
      EXPECT_TRUE(ta.column(c)->GetValue(r) == tb.column(c)->GetValue(r))
          << "cell (" << r << "," << c << ") differs";
    }
  }
}

class DatasetGenericTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetGenericTest, FocalAttributesExistInSchema) {
  auto dataset = MakeDataset(GetParam());
  ASSERT_TRUE(dataset.ok());
  EXPECT_FALSE(dataset.value().info.focal_attributes.empty());
  for (const auto& attr : dataset.value().info.focal_attributes) {
    EXPECT_GE(dataset.value().table->FindColumn(attr), 0)
        << "missing focal attribute " << attr;
  }
}

TEST_P(DatasetGenericTest, GenerationIsDeterministic) {
  auto a = MakeDataset(GetParam());
  auto b = MakeDataset(GetParam());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Table& ta = *a.value().table;
  const Table& tb = *b.value().table;
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  ASSERT_EQ(ta.num_columns(), tb.num_columns());
  // Spot-check a stripe of cells for equality.
  for (int64_t r = 0; r < ta.num_rows(); r += 97) {
    for (int c = 0; c < ta.num_columns(); ++c) {
      EXPECT_TRUE(ta.column(c)->GetValue(r) == tb.column(c)->GetValue(r))
          << "cell (" << r << "," << c << ") differs";
    }
  }
}

TEST_P(DatasetGenericTest, NoColumnIsAllNull) {
  auto dataset = MakeDataset(GetParam());
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_LT(t.column(c)->null_count(), t.num_rows())
        << "column " << t.column_name(c);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetGenericTest,
                         ::testing::Values("cyber1", "cyber2", "cyber3",
                                           "cyber4", "flights1", "flights2",
                                           "flights3", "flights4"));

TEST(RegistryTest, UnknownIdIsNotFound) {
  auto r = MakeDataset("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, MakeAllDatasetsReturnsEight) {
  auto all = MakeAllDatasets();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 8u);
  EXPECT_EQ(ExperimentalDatasetIds().size(), 8u);
}

// ----------------------------------------------- kernel/scalar A/B parity
//
// The acceptance bar for the chunked kernels: on every experimental dataset
// (and scaled variants) every display the environment can request —
// filtered row sets and grouped results — is bit-identical between the
// selection-vector kernel path and the retained scalar reference, at every
// thread count the trainer uses.

void ExpectGroupedBitIdenticalAb(const GroupedResult& a,
                                 const GroupedResult& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  EXPECT_EQ(a.key_names, b.key_names);
  EXPECT_EQ(a.agg_name, b.agg_name);
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].keys, b.groups[g].keys) << "group " << g;
    EXPECT_EQ(a.groups[g].rows, b.groups[g].rows) << "group " << g;
    EXPECT_EQ(a.groups[g].agg_valid, b.groups[g].agg_valid) << "group " << g;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.groups[g].aggregate),
              std::bit_cast<uint64_t>(b.groups[g].aggregate))
        << "group " << g;
  }
}

class KernelAbTest : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelAbTest, DisplaysBitIdenticalScalarVsKernel) {
  for (int scale : {1, 5}) {
    auto dataset = MakeDataset(GetParam(), scale);
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    const Table& t = *dataset.value().table;
    const std::vector<int32_t> all = AllRows(t).value();
    ThreadPool pool2(2);
    ThreadPool pool4(4);
    const std::vector<ThreadPool*> pools = {nullptr, &pool2, &pool4};

    int first_numeric = -1;
    for (int c = 0; c < t.num_columns(); ++c) {
      const Column& col = *t.column(c);

      // Representative predicates drawn from the column's own values, the
      // way the environment's token binning would.
      std::vector<std::pair<CompareOp, Value>> preds;
      if (col.type() == DataType::kString) {
        auto tokens = TokenFrequencies(col, all);
        if (!tokens.empty()) {
          preds.emplace_back(CompareOp::kEq, tokens.front().token);
          preds.emplace_back(CompareOp::kNeq, tokens.back().token);
          const std::string top = tokens.front().token.ToString();
          preds.emplace_back(
              CompareOp::kContains,
              Value(top.substr(0, std::max<size_t>(1, top.size() / 2))));
          preds.emplace_back(CompareOp::kStartsWith,
                             Value(top.substr(0, 1)));
        }
      } else {
        if (first_numeric < 0) first_numeric = c;
        for (int64_t r = 0; r < t.num_rows(); ++r) {
          if (col.IsNull(r)) continue;
          preds.emplace_back(CompareOp::kGt, col.GetValue(r));
          preds.emplace_back(CompareOp::kLe, col.GetValue(r));
          preds.emplace_back(CompareOp::kEq, col.GetValue(r));
          break;
        }
      }
      for (const auto& [op, term] : preds) {
        auto scalar = ScalarFilterRows(t, all, c, op, term);
        auto kernel = FilterRowsKernel(t, all, c, op, term);
        ASSERT_TRUE(scalar.ok()) << scalar.status();
        ASSERT_TRUE(kernel.ok()) << kernel.status();
        EXPECT_EQ(kernel.value(), scalar.value())
            << GetParam() << " scale " << scale << " column "
            << t.column_name(c) << " op " << CompareOpSymbol(op);
      }

      // COUNT(*) grouped by this column at every thread count.
      GroupSpec spec;
      spec.group_columns = {c};
      auto scalar_g = ScalarGroupAggregate(t, all, spec);
      ASSERT_TRUE(scalar_g.ok());
      for (ThreadPool* pool : pools) {
        auto kernel_g = GroupAggregateKernel(t, all, spec, pool);
        ASSERT_TRUE(kernel_g.ok());
        ExpectGroupedBitIdenticalAb(kernel_g.value(), scalar_g.value());
      }
    }

    // One AVG display over the first numeric column, grouped by the first
    // string column — the shape the paper's sessions use most.
    int first_string = -1;
    for (int c = 0; c < t.num_columns(); ++c) {
      if (t.column(c)->type() == DataType::kString) {
        first_string = c;
        break;
      }
    }
    if (first_string >= 0 && first_numeric >= 0) {
      GroupSpec avg;
      avg.group_columns = {first_string};
      avg.agg = AggFunc::kAvg;
      avg.agg_column = first_numeric;
      auto scalar_g = ScalarGroupAggregate(t, all, avg);
      ASSERT_TRUE(scalar_g.ok());
      for (ThreadPool* pool : pools) {
        auto kernel_g = GroupAggregateKernel(t, all, avg, pool);
        ASSERT_TRUE(kernel_g.ok());
        ExpectGroupedBitIdenticalAb(kernel_g.value(), scalar_g.value());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, KernelAbTest,
                         ::testing::Values("cyber1", "cyber2", "cyber3",
                                           "cyber4", "flights1", "flights2",
                                           "flights3", "flights4"));

// ---------------------------------------------------- planted phenomena

/// Helper: COUNT(*) group-by over one column, returning key->count.
std::map<std::string, double> CountBy(const Table& t, const char* column) {
  GroupSpec spec;
  spec.group_columns = {t.FindColumn(column)};
  auto grouped = GroupAggregate(t, AllRows(t).value(), spec);
  EXPECT_TRUE(grouped.ok());
  std::map<std::string, double> out;
  for (const auto& g : grouped.value().groups) {
    out[g.keys[0].ToString()] = g.aggregate;
  }
  return out;
}

/// Helper: AVG(value_column) grouped by key_column.
std::map<std::string, double> AvgBy(const Table& t, const char* key_column,
                                    const char* value_column) {
  GroupSpec spec;
  spec.group_columns = {t.FindColumn(key_column)};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn(value_column);
  auto grouped = GroupAggregate(t, AllRows(t).value(), spec);
  EXPECT_TRUE(grouped.ok());
  std::map<std::string, double> out;
  for (const auto& g : grouped.value().groups) {
    out[g.keys[0].ToString()] = g.aggregate;
  }
  return out;
}

TEST(Cyber1Test, IcmpScanIsPlanted) {
  auto dataset = MakeDataset("cyber1");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;

  auto by_protocol = CountBy(t, "protocol");
  EXPECT_GT(by_protocol["ICMP"], 5000.0);  // the sweep dominates
  auto by_source = CountBy(t, "source_ip");
  EXPECT_GT(by_source["10.0.66.66"], 5000.0);  // single noisy attacker

  // Exactly three hosts send echo replies.
  auto reply_rows = FilterRows(t, AllRows(t).value(), t.FindColumn("info"),
                               CompareOp::kEq,
                               Value(std::string("Echo (ping) reply")));
  ASSERT_TRUE(reply_rows.ok());
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  auto repliers = GroupAggregate(t, reply_rows.value(), spec);
  ASSERT_TRUE(repliers.ok());
  EXPECT_EQ(repliers.value().groups.size(), 3u);
}

TEST(Cyber2Test, RceAttackIsPlanted) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto cgi_rows = FilterRows(t, AllRows(t).value(), t.FindColumn("uri"),
                             CompareOp::kEq,
                             Value(std::string("/cgi-bin/status.cgi")));
  ASSERT_TRUE(cgi_rows.ok());
  EXPECT_EQ(cgi_rows.value().size(), 40u);
  // All from the attacker.
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  auto sources = GroupAggregate(t, cgi_rows.value(), spec);
  ASSERT_TRUE(sources.ok());
  ASSERT_EQ(sources.value().groups.size(), 1u);
  EXPECT_EQ(sources.value().groups[0].keys[0].as_string(), "203.0.113.99");
}

TEST(Cyber3Test, PhishingHostIsPlanted) {
  auto dataset = MakeDataset("cyber3");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto phish = FilterRows(t, AllRows(t).value(), t.FindColumn("host"), CompareOp::kEq,
                          Value(std::string("secure-bank1-login.xyz")));
  ASSERT_TRUE(phish.ok());
  EXPECT_EQ(phish.value().size(), 55u);
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  auto victims = GroupAggregate(t, phish.value(), spec);
  ASSERT_TRUE(victims.ok());
  EXPECT_EQ(victims.value().groups.size(), 6u);
}

TEST(Cyber4Test, PortScanIsPlanted) {
  auto dataset = MakeDataset("cyber4");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto synack = FilterRows(t, AllRows(t).value(), t.FindColumn("tcp_flags"),
                           CompareOp::kEq, Value(std::string("SYN, ACK")));
  ASSERT_TRUE(synack.ok());
  // Open ports answer SYN-ACK: mostly from the victim (plus background).
  auto from_victim = FilterRows(t, synack.value(), t.FindColumn("source_ip"),
                                CompareOp::kEq,
                                Value(std::string("192.168.10.5")));
  ASSERT_TRUE(from_victim.ok());
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_port")};
  auto open_ports = GroupAggregate(t, from_victim.value(), spec);
  ASSERT_TRUE(open_ports.ok());
  EXPECT_EQ(open_ports.value().groups.size(), 4u);  // 22, 80, 443, 445
}

TEST(FlightsTest, JuneDelaysAreLongest) {
  auto dataset = MakeDataset("flights2");
  ASSERT_TRUE(dataset.ok());
  auto by_month = AvgBy(*dataset.value().table, "month", "departure_delay");
  double june = by_month["June"];
  int months_below = 0;
  for (const auto& [month, delay] : by_month) {
    if (month != "June" && delay < june) ++months_below;
  }
  // June tops (essentially) every other month.
  EXPECT_GE(months_below, 10);
}

TEST(FlightsTest, LaxAndAtlSufferExtraJuneDelays) {
  auto dataset = MakeDataset("flights1");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto june_rows = FilterRows(t, AllRows(t).value(), t.FindColumn("month"),
                              CompareOp::kEq, Value(std::string("June")));
  ASSERT_TRUE(june_rows.ok());
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("origin_airport")};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn("departure_delay");
  auto grouped = GroupAggregate(t, june_rows.value(), spec);
  ASSERT_TRUE(grouped.ok());
  double lax = 0, atl = 0, others = 0;
  int other_count = 0;
  for (const auto& g : grouped.value().groups) {
    const std::string& airport = g.keys[0].as_string();
    if (airport == "LAX") {
      lax = g.aggregate;
    } else if (airport == "ATL") {
      atl = g.aggregate;
    } else {
      others += g.aggregate;
      ++other_count;
    }
  }
  ASSERT_GT(other_count, 0);
  others /= other_count;
  EXPECT_GT(lax, others + 5.0);
  EXPECT_GT(atl, others + 5.0);
}

TEST(FlightsTest, ConstraintsHold) {
  auto f1 = MakeDataset("flights1");
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(CountBy(*f1.value().table, "airline").size(), 1u);
  EXPECT_EQ(CountBy(*f1.value().table, "day_of_week").size(), 1u);

  auto f3 = MakeDataset("flights3");
  ASSERT_TRUE(f3.ok());
  auto origins = CountBy(*f3.value().table, "origin_airport");
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(origins.begin()->first, "SFO");

  auto f4 = MakeDataset("flights4");
  ASSERT_TRUE(f4.ok());
  const Table& t = *f4.value().table;
  int dist_col = t.FindColumn("distance");
  int dep_col = t.FindColumn("scheduled_departure");
  for (int64_t r = 0; r < t.num_rows(); r += 53) {
    EXPECT_LE(t.column(dist_col)->GetInt(r), 500);
    int64_t hhmm = t.column(dep_col)->GetInt(r);
    EXPECT_TRUE(hhmm >= 2200 || hhmm < 500) << hhmm;
  }
}

}  // namespace
}  // namespace atena
