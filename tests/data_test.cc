#include <gtest/gtest.h>

#include <map>
#include <string>

#include "data/registry.h"
#include "dataframe/ops.h"
#include "dataframe/stats.h"

namespace atena {
namespace {

struct DatasetSpec {
  const char* id;
  int64_t rows;  // paper Table 1
};

class DatasetRowsTest : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(DatasetRowsTest, RowCountMatchesTable1) {
  auto dataset = MakeDataset(GetParam().id);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset.value().table->num_rows(), GetParam().rows);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DatasetRowsTest,
    ::testing::Values(DatasetSpec{"cyber1", 8648}, DatasetSpec{"cyber2", 348},
                      DatasetSpec{"cyber3", 745}, DatasetSpec{"cyber4", 13625},
                      DatasetSpec{"flights1", 5661},
                      DatasetSpec{"flights2", 8172},
                      DatasetSpec{"flights3", 1082},
                      DatasetSpec{"flights4", 2175}),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return std::string(info.param.id);
    });

class DatasetGenericTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetGenericTest, FocalAttributesExistInSchema) {
  auto dataset = MakeDataset(GetParam());
  ASSERT_TRUE(dataset.ok());
  EXPECT_FALSE(dataset.value().info.focal_attributes.empty());
  for (const auto& attr : dataset.value().info.focal_attributes) {
    EXPECT_GE(dataset.value().table->FindColumn(attr), 0)
        << "missing focal attribute " << attr;
  }
}

TEST_P(DatasetGenericTest, GenerationIsDeterministic) {
  auto a = MakeDataset(GetParam());
  auto b = MakeDataset(GetParam());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Table& ta = *a.value().table;
  const Table& tb = *b.value().table;
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  ASSERT_EQ(ta.num_columns(), tb.num_columns());
  // Spot-check a stripe of cells for equality.
  for (int64_t r = 0; r < ta.num_rows(); r += 97) {
    for (int c = 0; c < ta.num_columns(); ++c) {
      EXPECT_TRUE(ta.column(c)->GetValue(r) == tb.column(c)->GetValue(r))
          << "cell (" << r << "," << c << ") differs";
    }
  }
}

TEST_P(DatasetGenericTest, NoColumnIsAllNull) {
  auto dataset = MakeDataset(GetParam());
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_LT(t.column(c)->null_count(), t.num_rows())
        << "column " << t.column_name(c);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetGenericTest,
                         ::testing::Values("cyber1", "cyber2", "cyber3",
                                           "cyber4", "flights1", "flights2",
                                           "flights3", "flights4"));

TEST(RegistryTest, UnknownIdIsNotFound) {
  auto r = MakeDataset("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, MakeAllDatasetsReturnsEight) {
  auto all = MakeAllDatasets();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 8u);
  EXPECT_EQ(ExperimentalDatasetIds().size(), 8u);
}

// ---------------------------------------------------- planted phenomena

/// Helper: COUNT(*) group-by over one column, returning key->count.
std::map<std::string, double> CountBy(const Table& t, const char* column) {
  GroupSpec spec;
  spec.group_columns = {t.FindColumn(column)};
  auto grouped = GroupAggregate(t, AllRows(t), spec);
  EXPECT_TRUE(grouped.ok());
  std::map<std::string, double> out;
  for (const auto& g : grouped.value().groups) {
    out[g.keys[0].ToString()] = g.aggregate;
  }
  return out;
}

/// Helper: AVG(value_column) grouped by key_column.
std::map<std::string, double> AvgBy(const Table& t, const char* key_column,
                                    const char* value_column) {
  GroupSpec spec;
  spec.group_columns = {t.FindColumn(key_column)};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn(value_column);
  auto grouped = GroupAggregate(t, AllRows(t), spec);
  EXPECT_TRUE(grouped.ok());
  std::map<std::string, double> out;
  for (const auto& g : grouped.value().groups) {
    out[g.keys[0].ToString()] = g.aggregate;
  }
  return out;
}

TEST(Cyber1Test, IcmpScanIsPlanted) {
  auto dataset = MakeDataset("cyber1");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;

  auto by_protocol = CountBy(t, "protocol");
  EXPECT_GT(by_protocol["ICMP"], 5000.0);  // the sweep dominates
  auto by_source = CountBy(t, "source_ip");
  EXPECT_GT(by_source["10.0.66.66"], 5000.0);  // single noisy attacker

  // Exactly three hosts send echo replies.
  auto reply_rows = FilterRows(t, AllRows(t), t.FindColumn("info"),
                               CompareOp::kEq,
                               Value(std::string("Echo (ping) reply")));
  ASSERT_TRUE(reply_rows.ok());
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  auto repliers = GroupAggregate(t, reply_rows.value(), spec);
  ASSERT_TRUE(repliers.ok());
  EXPECT_EQ(repliers.value().groups.size(), 3u);
}

TEST(Cyber2Test, RceAttackIsPlanted) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto cgi_rows = FilterRows(t, AllRows(t), t.FindColumn("uri"),
                             CompareOp::kEq,
                             Value(std::string("/cgi-bin/status.cgi")));
  ASSERT_TRUE(cgi_rows.ok());
  EXPECT_EQ(cgi_rows.value().size(), 40u);
  // All from the attacker.
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  auto sources = GroupAggregate(t, cgi_rows.value(), spec);
  ASSERT_TRUE(sources.ok());
  ASSERT_EQ(sources.value().groups.size(), 1u);
  EXPECT_EQ(sources.value().groups[0].keys[0].as_string(), "203.0.113.99");
}

TEST(Cyber3Test, PhishingHostIsPlanted) {
  auto dataset = MakeDataset("cyber3");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto phish = FilterRows(t, AllRows(t), t.FindColumn("host"), CompareOp::kEq,
                          Value(std::string("secure-bank1-login.xyz")));
  ASSERT_TRUE(phish.ok());
  EXPECT_EQ(phish.value().size(), 55u);
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  auto victims = GroupAggregate(t, phish.value(), spec);
  ASSERT_TRUE(victims.ok());
  EXPECT_EQ(victims.value().groups.size(), 6u);
}

TEST(Cyber4Test, PortScanIsPlanted) {
  auto dataset = MakeDataset("cyber4");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto synack = FilterRows(t, AllRows(t), t.FindColumn("tcp_flags"),
                           CompareOp::kEq, Value(std::string("SYN, ACK")));
  ASSERT_TRUE(synack.ok());
  // Open ports answer SYN-ACK: mostly from the victim (plus background).
  auto from_victim = FilterRows(t, synack.value(), t.FindColumn("source_ip"),
                                CompareOp::kEq,
                                Value(std::string("192.168.10.5")));
  ASSERT_TRUE(from_victim.ok());
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_port")};
  auto open_ports = GroupAggregate(t, from_victim.value(), spec);
  ASSERT_TRUE(open_ports.ok());
  EXPECT_EQ(open_ports.value().groups.size(), 4u);  // 22, 80, 443, 445
}

TEST(FlightsTest, JuneDelaysAreLongest) {
  auto dataset = MakeDataset("flights2");
  ASSERT_TRUE(dataset.ok());
  auto by_month = AvgBy(*dataset.value().table, "month", "departure_delay");
  double june = by_month["June"];
  int months_below = 0;
  for (const auto& [month, delay] : by_month) {
    if (month != "June" && delay < june) ++months_below;
  }
  // June tops (essentially) every other month.
  EXPECT_GE(months_below, 10);
}

TEST(FlightsTest, LaxAndAtlSufferExtraJuneDelays) {
  auto dataset = MakeDataset("flights1");
  ASSERT_TRUE(dataset.ok());
  const Table& t = *dataset.value().table;
  auto june_rows = FilterRows(t, AllRows(t), t.FindColumn("month"),
                              CompareOp::kEq, Value(std::string("June")));
  ASSERT_TRUE(june_rows.ok());
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("origin_airport")};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn("departure_delay");
  auto grouped = GroupAggregate(t, june_rows.value(), spec);
  ASSERT_TRUE(grouped.ok());
  double lax = 0, atl = 0, others = 0;
  int other_count = 0;
  for (const auto& g : grouped.value().groups) {
    const std::string& airport = g.keys[0].as_string();
    if (airport == "LAX") {
      lax = g.aggregate;
    } else if (airport == "ATL") {
      atl = g.aggregate;
    } else {
      others += g.aggregate;
      ++other_count;
    }
  }
  ASSERT_GT(other_count, 0);
  others /= other_count;
  EXPECT_GT(lax, others + 5.0);
  EXPECT_GT(atl, others + 5.0);
}

TEST(FlightsTest, ConstraintsHold) {
  auto f1 = MakeDataset("flights1");
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(CountBy(*f1.value().table, "airline").size(), 1u);
  EXPECT_EQ(CountBy(*f1.value().table, "day_of_week").size(), 1u);

  auto f3 = MakeDataset("flights3");
  ASSERT_TRUE(f3.ok());
  auto origins = CountBy(*f3.value().table, "origin_airport");
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(origins.begin()->first, "SFO");

  auto f4 = MakeDataset("flights4");
  ASSERT_TRUE(f4.ok());
  const Table& t = *f4.value().table;
  int dist_col = t.FindColumn("distance");
  int dep_col = t.FindColumn("scheduled_departure");
  for (int64_t r = 0; r < t.num_rows(); r += 53) {
    EXPECT_LE(t.column(dist_col)->GetInt(r), 500);
    int64_t hhmm = t.column(dep_col)->GetInt(r);
    EXPECT_TRUE(hhmm >= 2200 || hhmm < 500) << hhmm;
  }
}

}  // namespace
}  // namespace atena
