#include <gtest/gtest.h>

#include "data/registry.h"
#include "rl/policy.h"
#include "rl/trainer.h"

namespace atena {
namespace {

Dataset SmallDataset() {
  auto d = MakeDataset("cyber2");
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig SmallConfig() {
  EnvConfig config;
  config.episode_length = 5;
  config.num_term_bins = 4;
  return config;
}

TEST(ApplyActionTest, StructuredActionsGoThroughStep) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  ActionRecord record;
  record.structured.type = OpType::kGroup;
  record.structured.group_column = d.table->FindColumn("method");
  record.structured.agg_func = static_cast<int>(AggFunc::kCount);
  StepOutcome outcome = ApplyAction(&env, record);
  EXPECT_TRUE(outcome.valid);
  EXPECT_EQ(outcome.op.type, OpType::kGroup);
}

TEST(ApplyActionTest, ConcreteActionsGoThroughStepOperation) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  ActionRecord record;
  record.is_concrete = true;
  record.concrete = EdaOperation::Filter(d.table->FindColumn("method"),
                                         CompareOp::kEq,
                                         Value(std::string("POST")));
  StepOutcome outcome = ApplyAction(&env, record);
  EXPECT_TRUE(outcome.valid);
  EXPECT_TRUE(outcome.op.filter.term == Value(std::string("POST")));
}

/// A fixed scripted policy over the structured action space, used to test
/// the trainer's bookkeeping independent of any learning.
class ScriptedPolicy final : public Policy {
 public:
  explicit ScriptedPolicy(std::vector<EnvAction> script)
      : script_(std::move(script)) {}

  PolicyStep Act(const std::vector<double>&, Rng*) override {
    PolicyStep step;
    step.action.structured = script_[index_++ % script_.size()];
    step.log_prob = -1.0;
    step.entropy = 0.5;
    step.value = 0.0;
    return step;
  }
  PolicyStep ActGreedy(const std::vector<double>& obs) override {
    Rng rng(0);
    return Act(obs, &rng);
  }
  BatchEvaluation ForwardBatch(
      const Matrix& observations,
      const std::vector<ActionRecord>& actions) override {
    BatchEvaluation eval;
    eval.log_probs.assign(actions.size(), -1.0);
    eval.entropies.assign(actions.size(), 0.5);
    eval.values.assign(actions.size(), 0.0);
    (void)observations;
    ++forward_batches;
    return eval;
  }
  void BackwardBatch(const std::vector<SampleGrad>& grads) override {
    backward_batches += static_cast<int>(!grads.empty());
  }
  std::vector<Parameter*> Parameters() override { return {&dummy_}; }

  int forward_batches = 0;
  int backward_batches = 0;

 private:
  std::vector<EnvAction> script_;
  size_t index_ = 0;
  Parameter dummy_{Matrix(1, 1), Matrix(1, 1)};
};

TEST(TrainerBookkeepingTest, CountsEpisodesAndTracksBest) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());

  // Alternate GROUP(method) and BACK: all valid, zero reward (no signal).
  EnvAction group;
  group.type = OpType::kGroup;
  group.group_column = d.table->FindColumn("method");
  group.agg_func = static_cast<int>(AggFunc::kCount);
  EnvAction back;
  back.type = OpType::kBack;
  ScriptedPolicy policy({group, back});

  TrainerOptions options;
  options.total_steps = 100;  // 20 episodes of 5 steps
  options.rollout_length = 25;
  options.minibatch_size = 25;
  options.epochs_per_update = 1;
  PpoTrainer trainer(&env, &policy, options);
  TrainingResult result = trainer.Train();

  EXPECT_EQ(result.episodes, 20);
  EXPECT_EQ(result.curve.size(), 4u);  // 100 / 25 rollouts
  EXPECT_EQ(result.best_episode_ops.size(), 5u);
  // 4 rollouts x 1 epoch x 1 minibatch.
  EXPECT_EQ(policy.backward_batches, 4);
  EXPECT_GE(policy.forward_batches, 4);
}

TEST(TrainerBookkeepingTest, BestEpisodeRewardIsMaxOverEpisodes) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  // All-BACK policy: at root, BACK is invalid -> -1 per step. After any
  // valid op it alternates; here every step is invalid, so every episode
  // scores -5 and best == -5.
  EnvAction back;
  back.type = OpType::kBack;
  ScriptedPolicy policy({back});
  TrainerOptions options;
  options.total_steps = 50;
  options.rollout_length = 25;
  options.minibatch_size = 25;
  options.epochs_per_update = 1;
  PpoTrainer trainer(&env, &policy, options);
  TrainingResult result = trainer.Train();
  EXPECT_DOUBLE_EQ(result.best_episode_reward, -5.0);
  EXPECT_DOUBLE_EQ(result.final_mean_reward, -5.0);
}

}  // namespace
}  // namespace atena
