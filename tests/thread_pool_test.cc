#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace atena {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  const int n = 137;  // deliberately not a multiple of the thread count
  std::vector<std::atomic<int>> calls(n);
  pool.ParallelFor(n, [&](int i) { calls[static_cast<size_t>(i)]++; });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(calls[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineInIndexOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyAndSingleTaskJobs) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(-4, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller — `calls` needs no synchronization.
  pool.ParallelFor(1, [&](int) { ++calls; });
  EXPECT_EQ(calls, 1);
}

// The determinism contract in practice: results written to index-addressed
// slots then reduced serially match a plain serial loop exactly, for many
// successive jobs of varying size on one pool (exercises the job
// generation/wakeup logic).
TEST(ThreadPoolTest, IndexAddressedSlotsMatchSerialLoop) {
  ThreadPool pool(4);
  for (int n : {1, 2, 3, 7, 64, 129}) {
    std::vector<double> parallel_out(static_cast<size_t>(n));
    std::vector<double> serial_out(static_cast<size_t>(n));
    auto task = [](int i) {
      double x = 1.0;
      for (int k = 0; k < 50; ++k) x = x * 1.0000001 + static_cast<double>(i);
      return x;
    };
    pool.ParallelFor(n, [&](int i) {
      parallel_out[static_cast<size_t>(i)] = task(i);
    });
    for (int i = 0; i < n; ++i) serial_out[static_cast<size_t>(i)] = task(i);
    // Serial-order reduction over slots is bit-identical either way.
    EXPECT_EQ(std::accumulate(parallel_out.begin(), parallel_out.end(), 0.0),
              std::accumulate(serial_out.begin(), serial_out.end(), 0.0))
        << "n = " << n;
  }
}

// More threads than tasks (and than cores): every task still runs exactly
// once and the pool survives repeated use. This is the shape trainer tests
// use on small CI machines.
TEST(ThreadPoolTest, MoreThreadsThanTasks) {
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(3, [&](int i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), 6);
  }
}

TEST(ThreadPoolTest, DefaultThreadsIsCappedAndPositive) {
  EXPECT_EQ(ThreadPool::DefaultThreads(0), 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(1), 1);
  const int for_eight = ThreadPool::DefaultThreads(8);
  EXPECT_GE(for_eight, 1);
  EXPECT_LE(for_eight, 8);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_LE(for_eight, static_cast<int>(hw));
  }
}

}  // namespace
}  // namespace atena
