// Property-style tests: invariants that must hold for *any* action
// sequence, checked over randomized episodes and parameter sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/twofold_policy.h"
#include "dataframe/csv.h"
#include "data/registry.h"
#include "eval/metrics.h"
#include "eval/view_signature.h"
#include "reward/diversity.h"
#include "reward/interestingness.h"

namespace atena {
namespace {

// ------------------------------------------------ environment invariants

class EnvInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnvInvariantTest, RandomEpisodesPreserveInvariants) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EnvConfig config;
  config.episode_length = 15;
  config.num_term_bins = 6;
  config.seed = GetParam();
  EdaEnvironment env(dataset.value(), config);
  Rng rng(GetParam() * 31 + 7);

  env.Reset();
  const size_t total_rows =
      static_cast<size_t>(dataset.value().table->num_rows());
  while (!env.done()) {
    StepOutcome outcome = env.Step(SampleRandomAction(env.action_space(),
                                                      &rng));
    const Display& display = env.current_display();

    // 1. The display's rows are always a subset of the table, sorted and
    //    unique (filters only ever narrow).
    EXPECT_LE(display.rows.size(), total_rows);
    EXPECT_FALSE(display.rows.empty());
    for (size_t i = 1; i < display.rows.size(); ++i) {
      EXPECT_LT(display.rows[i - 1], display.rows[i]);
    }

    // 2. Grouped state is consistent: grouped result exists iff group
    //    columns are set; groups partition the display rows.
    EXPECT_EQ(display.is_grouped(), display.grouped != nullptr);
    if (display.grouped) {
      size_t partitioned = 0;
      for (const auto& g : display.grouped->groups) {
        partitioned += g.rows.size();
      }
      EXPECT_EQ(partitioned, display.rows.size());
      EXPECT_LE(display.group_columns.size(),
                static_cast<size_t>(config.max_group_attrs));
    }

    // 3. Histories stay aligned: one display and one vector per step + root.
    EXPECT_EQ(env.display_history().size(),
              static_cast<size_t>(env.step_count()) + 1);
    EXPECT_EQ(env.display_vectors().size(), env.display_history().size());

    // 4. Observation values are finite and bounded.
    for (double v : outcome.observation) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, 1.0 + 1e-9);
    }

    // 5. Invalid steps repeat the display exactly.
    if (!outcome.valid) {
      const auto& history = env.display_history();
      EXPECT_EQ(history[history.size() - 1].rows.size(),
                history[history.size() - 2].rows.size());
    }
  }
  EXPECT_EQ(env.steps().size(), static_cast<size_t>(config.episode_length));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvInvariantTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------- reward invariants

class RewardInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewardInvariantTest, ComponentsBoundedOnRandomEpisodes) {
  auto dataset = MakeDataset("flights3");
  ASSERT_TRUE(dataset.ok());
  EnvConfig config;
  config.episode_length = 10;
  config.seed = GetParam();
  EdaEnvironment env(dataset.value(), config);
  Rng rng(GetParam() * 97 + 3);
  env.Reset();
  while (!env.done()) {
    StepOutcome outcome = env.Step(SampleRandomAction(env.action_space(),
                                                      &rng));
    RewardContext context;
    context.env = &env;
    context.op = &env.steps().back().op;
    context.valid = outcome.valid;
    double interest = OperationInterestingness(context);
    double diversity = DiversityReward(context);
    EXPECT_GE(interest, 0.0);
    EXPECT_LE(interest, 1.0);
    EXPECT_GE(diversity, 0.0);
    EXPECT_LE(diversity, 1.0);
    EXPECT_TRUE(std::isfinite(interest));
    EXPECT_TRUE(std::isfinite(diversity));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewardInvariantTest,
                         ::testing::Values(11, 22, 33, 44));

// ----------------------------------------------------- metric invariants

/// Random view-signature generator.
ViewSignature RandomView(Rng* rng) {
  const char* filters[] = {"a == 1", "b == 2", "c > 3", "d contains x"};
  const char* groups[] = {"g1", "g2", "g3"};
  const char* aggs[] = {"", "COUNT(*)", "AVG(x)", "SUM(y)"};
  ViewSignature sig;
  for (int i = 0; i < 4; ++i) {
    if (rng->NextBool(0.4)) sig.filters.push_back(filters[i]);
  }
  for (int i = 0; i < 3; ++i) {
    if (rng->NextBool(0.4)) sig.groups.push_back(groups[i]);
  }
  sig.aggregation = aggs[rng->NextBounded(4)];
  std::sort(sig.filters.begin(), sig.filters.end());
  std::sort(sig.groups.begin(), sig.groups.end());
  return sig;
}

class MetricInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricInvariantTest, ScoresBoundedAndIdentityMaximal) {
  Rng rng(GetParam());
  std::vector<ViewSignature> a, b;
  for (int i = 0; i < 6; ++i) a.push_back(RandomView(&rng));
  for (int i = 0; i < 8; ++i) b.push_back(RandomView(&rng));
  std::vector<std::vector<ViewSignature>> gold = {b};

  AedaScores scores = ComputeAedaScores(a, gold);
  for (double s : {scores.precision, scores.t_bleu_1, scores.t_bleu_2,
                   scores.t_bleu_3, scores.eda_sim}) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
  // Identity dominates any cross-comparison.
  EXPECT_GE(EdaSim(a, a), EdaSim(a, b));
  EXPECT_NEAR(EdaSim(a, a), 1.0, 1e-9);
  // View similarity is symmetric.
  for (const auto& x : a) {
    for (const auto& y : b) {
      EXPECT_NEAR(ViewSimilarity(x, y), ViewSimilarity(y, x), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricInvariantTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// ----------------------------------------------------- policy invariants

class PolicyInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyInvariantTest, LogProbsConsistentAcrossRandomObservations) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EnvConfig config;
  EdaEnvironment env(dataset.value(), config);
  TwofoldPolicy::Options options;
  options.hidden = {12};
  options.seed = GetParam();
  TwofoldPolicy policy(env.observation_dim(), env.action_space(), options);
  Rng rng(GetParam() + 1);

  std::vector<double> obs(static_cast<size_t>(env.observation_dim()));
  for (int trial = 0; trial < 20; ++trial) {
    for (double& v : obs) v = rng.NextDouble();
    PolicyStep step = policy.Act(obs, &rng);
    // log π(a|s) ≤ 0; entropy ≥ 0 and finite; value finite.
    EXPECT_LE(step.log_prob, 1e-9);
    EXPECT_GE(step.entropy, 0.0);
    EXPECT_TRUE(std::isfinite(step.log_prob));
    EXPECT_TRUE(std::isfinite(step.entropy));
    EXPECT_TRUE(std::isfinite(step.value));
    // Re-evaluating the same (obs, action) reproduces the rollout values.
    Matrix batch = Matrix::FromRow(obs);
    BatchEvaluation eval = policy.ForwardBatch(batch, {step.action});
    EXPECT_NEAR(eval.log_probs[0], step.log_prob, 1e-9);
    EXPECT_NEAR(eval.entropies[0], step.entropy, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyInvariantTest,
                         ::testing::Values(7, 17, 27));

// ----------------------------------------------- snapshot determinism

// ------------------------------------------------ hostile CSV numerics

// Every hostile spelling a numeric CSV cell can carry. The invariant: a
// hostile field parses as null or flips the column to string — it must
// never materialize as a non-finite or garbage numeric value.
std::vector<std::string> HostileNumericFields() {
  return {
      "nan",
      "NaN",
      "-nan",
      "inf",
      "-inf",
      "infinity",
      "INF",
      "1e999999",    // double overflow
      "-1e999999",
      std::string("12\0 34", 6),  // embedded NUL
      "-",           // lone sign
      "+",
      "0x10",        // hex is not CSV-numeric
      "1.2.3",
      "--5",
  };
}

void ExpectNoGarbageNumerics(const Table& table) {
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = *table.column(c);
    if (col.type() == DataType::kString) continue;
    for (int64_t r = 0; r < col.length(); ++r) {
      if (col.IsNull(r)) continue;
      const double v = col.type() == DataType::kInt64
                           ? static_cast<double>(col.GetInt(r))
                           : col.GetDouble(r);
      EXPECT_TRUE(std::isfinite(v))
          << "column " << col.name() << " row " << r
          << " holds a non-finite numeric";
    }
  }
}

TEST(CsvHostileFieldTest, HostileCellInsideInferenceWindow) {
  // With the hostile cell inside the inference window the column cannot be
  // inferred numeric (ParseDouble rejects the spelling), so it degrades to
  // a string column — lossless and never non-finite.
  for (const std::string& hostile : HostileNumericFields()) {
    SCOPED_TRACE(hostile);
    const std::string csv = "x,y\n1,1.5\n" + hostile + ",2.5\n3,3.5\n";
    auto table = ReadCsvString(csv, "hostile");
    ASSERT_TRUE(table.ok()) << table.status();
    ASSERT_EQ(table.value()->num_rows(), 3);
    const Column& x = *table.value()->column(0);
    EXPECT_EQ(x.type(), DataType::kString);
    ExpectNoGarbageNumerics(*table.value());
    // The clean neighbour column is unaffected.
    EXPECT_EQ(table.value()->column(1)->type(), DataType::kFloat64);
  }
}

TEST(CsvHostileFieldTest, HostileCellOutsideInferenceWindow) {
  // With inference limited to the clean prefix the column is committed to
  // float64 before the hostile cell arrives; the cell must become null,
  // not a smuggled non-finite.
  CsvOptions options;
  options.inference_rows = 2;
  for (const std::string& hostile : HostileNumericFields()) {
    SCOPED_TRACE(hostile);
    const std::string csv = "x\n1.5\n2.5\n" + hostile + "\n4.5\n";
    auto table = ReadCsvString(csv, "hostile", options);
    ASSERT_TRUE(table.ok()) << table.status();
    const Column& x = *table.value()->column(0);
    ASSERT_EQ(x.type(), DataType::kFloat64);
    ASSERT_EQ(x.length(), 4);
    EXPECT_TRUE(x.IsNull(2)) << "hostile cell must surface as null";
    EXPECT_EQ(x.null_count(), 1);
    ExpectNoGarbageNumerics(*table.value());
    EXPECT_DOUBLE_EQ(x.GetDouble(3), 4.5);  // parsing resumes cleanly
  }
}

TEST(CsvHostileFieldTest, IntOverflowDegradesToFloatNotWraparound) {
  // 2^63 overflows int64 but is a perfectly finite double: inference must
  // pick float64, never wrap the integer.
  const std::string csv = "x\n1\n9223372036854775808\n3\n";
  auto table = ReadCsvString(csv, "overflow");
  ASSERT_TRUE(table.ok()) << table.status();
  const Column& x = *table.value()->column(0);
  ASSERT_EQ(x.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(x.GetDouble(1), 9223372036854775808.0);
  ExpectNoGarbageNumerics(*table.value());
}

TEST(DeterminismTest, IdenticalSeedsYieldIdenticalEpisodes) {
  auto dataset = MakeDataset("cyber3");
  ASSERT_TRUE(dataset.ok());
  EnvConfig config;
  config.episode_length = 8;
  config.seed = 99;

  auto run_episode = [&]() {
    EdaEnvironment env(dataset.value(), config);
    Rng rng(5);
    env.Reset();
    std::vector<std::string> descriptions;
    while (!env.done()) {
      env.Step(SampleRandomAction(env.action_space(), &rng));
      descriptions.push_back(
          env.steps().back().op.Describe(*dataset.value().table));
    }
    return descriptions;
  };
  EXPECT_EQ(run_episode(), run_episode());
}

}  // namespace
}  // namespace atena
