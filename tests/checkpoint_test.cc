// Crash-safety tests for the ATENA-CKPT v1 training checkpoint subsystem:
// resume bit-identity (an interrupted-and-resumed run must be
// indistinguishable from an uninterrupted one), rotation, fault injection
// on the save path, and truncation recovery on the load path.

#include "rl/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "nn/serialization.h"
#include "rl/parallel_trainer.h"

namespace atena {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveIfExists(const std::string& path) {
  if (FileExists(path)) std::remove(path.c_str());
}

// Plain (non-durable) overwrite for planting corrupted test inputs; the
// fsyncs of AtomicWriteFile would dominate the every-offset loops.
void WriteRaw(const std::string& path, const std::string& contents) {
  std::ofstream(path, std::ios::binary | std::ios::trunc) << contents;
}

void RemoveCheckpointFamily(const std::string& path) {
  for (const char* suffix : {"", ".prev", ".new", ".tmp", ".new.tmp"}) {
    RemoveIfExists(path + suffix);
  }
}

// Episode length 7 with rollout 40 puts every actor mid-episode at most
// update boundaries, so resume exercises the episode-replay path, not just
// the aligned case.
EnvConfig ConfigWithSeed(uint64_t seed, int episode_length = 7,
                         int history_displays = 2) {
  EnvConfig config;
  config.episode_length = episode_length;
  config.num_term_bins = 4;
  config.history_displays = history_displays;
  config.seed = seed;
  return config;
}

struct TrainSetup {
  Dataset dataset;
  std::vector<std::unique_ptr<EdaEnvironment>> owned;
  std::vector<EdaEnvironment*> envs;
  std::unique_ptr<TwofoldPolicy> policy;
};

TrainSetup MakeSetup(int n_actors, int episode_length = 7, int hidden = 8,
                     int history_displays = 2) {
  auto dataset = MakeDataset("cyber2");
  EXPECT_TRUE(dataset.ok());
  TrainSetup setup;
  setup.dataset = dataset.value();
  for (int e = 0; e < n_actors; ++e) {
    setup.owned.push_back(std::make_unique<EdaEnvironment>(
        setup.dataset,
        ConfigWithSeed(100 + static_cast<uint64_t>(e), episode_length,
                       history_displays)));
    setup.envs.push_back(setup.owned.back().get());
  }
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {hidden};
  setup.policy = std::make_unique<TwofoldPolicy>(
      setup.envs[0]->observation_dim(), setup.envs[0]->action_space(),
      policy_options);
  return setup;
}

TrainerOptions BaseOptions() {
  TrainerOptions options;
  options.total_steps = 240;
  options.rollout_length = 40;
  options.minibatch_size = 32;
  options.final_eval_episodes = 2;
  options.seed = 17;
  return options;
}

void ExpectOpsEqual(const std::vector<EdaOperation>& a,
                    const std::vector<EdaOperation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "op " << i;
    EXPECT_EQ(a[i].filter.column, b[i].filter.column) << "op " << i;
    EXPECT_EQ(a[i].filter.op, b[i].filter.op) << "op " << i;
    EXPECT_EQ(a[i].filter.term_bin, b[i].filter.term_bin) << "op " << i;
    EXPECT_TRUE(a[i].filter.term == b[i].filter.term) << "op " << i;
    EXPECT_EQ(a[i].group.group_column, b[i].group.group_column) << "op " << i;
    EXPECT_EQ(a[i].group.agg, b[i].group.agg) << "op " << i;
    EXPECT_EQ(a[i].group.agg_column, b[i].group.agg_column) << "op " << i;
  }
}

/// Byte-level equality of two training results: every curve point, the
/// best-episode record, and the aggregates must match exactly.
void ExpectResultsIdentical(const TrainingResult& a, const TrainingResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].step, b.curve[i].step) << "curve point " << i;
    EXPECT_EQ(a.curve[i].mean_episode_reward, b.curve[i].mean_episode_reward)
        << "curve point " << i;
  }
  EXPECT_EQ(a.best_episode_reward, b.best_episode_reward);
  EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.interrupted, b.interrupted);
  ExpectOpsEqual(a.best_episode_ops, b.best_episode_ops);
}

/// Interrupts training after `stop_after_updates` updates (checkpoint
/// flushed), then resumes with a fresh trainer/policy/envs and runs to
/// completion. The combined run must be bit-identical to `baseline`.
/// `first_threads`/`second_threads` set the env-stepping concurrency of the
/// interrupted and the resumed run — snapshots are thread-count agnostic,
/// so any combination must reproduce the serial baseline.
void CheckResumeBitIdentity(int n_actors, int stop_after_updates,
                            int first_threads = 1, int second_threads = 1) {
  const std::string path =
      TempPath("resume_" + std::to_string(n_actors) + "_" +
               std::to_string(stop_after_updates) + "_" +
               std::to_string(first_threads) + "_" +
               std::to_string(second_threads) + ".ckpt");
  RemoveCheckpointFamily(path);

  // Uninterrupted reference run (no checkpointing, serial stepping).
  TrainSetup ref = MakeSetup(n_actors);
  ParallelPpoTrainer ref_trainer(ref.envs, ref.policy.get(), BaseOptions());
  TrainingResult baseline = ref_trainer.Train();

  // Interrupted run: stop via the cooperative flag after k updates.
  TrainSetup first = MakeSetup(n_actors);
  TrainerOptions options = BaseOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_updates = 1;
  options.num_threads = first_threads;
  ParallelPpoTrainer first_trainer(first.envs, first.policy.get(), options);
  int updates_seen = 0;
  first_trainer.SetProgressCallback(
      [&updates_seen, stop_after_updates](const CurvePoint&) {
        if (++updates_seen == stop_after_updates) RequestTrainingStop();
      });
  TrainingResult partial = first_trainer.Train();
  ASSERT_TRUE(partial.interrupted);
  ASSERT_EQ(partial.curve.size(), static_cast<size_t>(stop_after_updates));
  ASSERT_TRUE(FileExists(path));
  // The partial curve must already be a prefix of the uninterrupted run's.
  for (int i = 0; i < stop_after_updates; ++i) {
    EXPECT_EQ(partial.curve[i].step, baseline.curve[i].step);
    EXPECT_EQ(partial.curve[i].mean_episode_reward,
              baseline.curve[i].mean_episode_reward);
  }

  // Resumed run: fresh everything, state restored from the checkpoint.
  TrainSetup second = MakeSetup(n_actors);
  options.resume = true;
  options.num_threads = second_threads;
  ParallelPpoTrainer second_trainer(second.envs, second.policy.get(),
                                    options);
  TrainingResult resumed = second_trainer.Train();
  EXPECT_FALSE(resumed.interrupted);
  ExpectResultsIdentical(baseline, resumed);
  RemoveCheckpointFamily(path);
}

TEST(CheckpointResumeTest, BitIdenticalSingleActor) {
  CheckResumeBitIdentity(/*n_actors=*/1, /*stop_after_updates=*/3);
}

TEST(CheckpointResumeTest, BitIdenticalFourActors) {
  CheckResumeBitIdentity(/*n_actors=*/4, /*stop_after_updates=*/2);
}

// The stepping thread count is a pure wall-clock knob (DESIGN.md §9) and
// deliberately not part of the snapshot: a checkpoint written by a serial
// run resumes bit-identically on 4 threads, and vice versa.
TEST(CheckpointResumeTest, ThreadCountMayChangeAcrossResume) {
  CheckResumeBitIdentity(/*n_actors=*/4, /*stop_after_updates=*/2,
                         /*first_threads=*/1, /*second_threads=*/4);
  CheckResumeBitIdentity(/*n_actors=*/4, /*stop_after_updates=*/2,
                         /*first_threads=*/4, /*second_threads=*/1);
}

/// Counts Compute calls and raises the cooperative stop flag at the Nth —
/// placing the stop request in the middle of a rollout, where only the
/// between-tick poll can see it. `n <= 0` never fires (same reward values,
/// used for the baseline and resumed runs).
class StopAtNthRewardSignal final : public RewardSignal {
 public:
  explicit StopAtNthRewardSignal(int n) : remaining_(n) {}
  double Compute(const RewardContext&) override {
    if (remaining_ > 0 && --remaining_ == 0) RequestTrainingStop();
    return 0.25;  // a constant so every run in the family sees equal rewards
  }

 private:
  int remaining_;
};

// Between-tick stop polling: a stop raised mid-rollout must take effect at
// the next lockstep tick — abandoning the partial rollout, flushing the
// last update-boundary snapshot — and resuming must still complete
// bit-identically. (Boundary-only polling would have run the rollout to
// its end and published one more curve point first.)
TEST(CheckpointResumeTest, MidRolloutStopFlushesLastBoundaryAndResumes) {
  const std::string path = TempPath("mid_rollout_stop.ckpt");
  RemoveCheckpointFamily(path);
  constexpr int kActors = 2;

  auto attach = [](TrainSetup* setup, int stop_at) {
    // Signal on actor 0 only; the other actor gets a never-firing clone so
    // all actors' reward streams are identical across the run family.
    auto signals =
        std::make_shared<std::vector<std::unique_ptr<StopAtNthRewardSignal>>>();
    signals->push_back(std::make_unique<StopAtNthRewardSignal>(stop_at));
    signals->push_back(std::make_unique<StopAtNthRewardSignal>(0));
    for (int e = 0; e < kActors; ++e) {
      setup->envs[static_cast<size_t>(e)]->SetRewardSignal(
          (*signals)[static_cast<size_t>(e)].get());
    }
    return signals;
  };

  // Uninterrupted baseline (stop never fires).
  TrainSetup ref = MakeSetup(kActors);
  auto ref_signals = attach(&ref, 0);
  ParallelPpoTrainer ref_trainer(ref.envs, ref.policy.get(), BaseOptions());
  TrainingResult baseline = ref_trainer.Train();

  // Interrupted run: actor 0 computes one reward per tick, so firing at
  // its 45th Compute raises the flag at global step 90 — strictly inside
  // the third rollout (boundaries at 80 and 120 with rollout_length 40).
  TrainSetup first = MakeSetup(kActors);
  auto first_signals = attach(&first, 45);
  TrainerOptions options = BaseOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_updates = 1;
  ParallelPpoTrainer first_trainer(first.envs, first.policy.get(), options);
  TrainingResult partial = first_trainer.Train();

  ASSERT_TRUE(partial.interrupted);
  // Stopped at the tick after step 90, NOT at the next update boundary:
  // only the two completed updates are published.
  ASSERT_EQ(partial.curve.size(), 2u);
  EXPECT_EQ(partial.curve.back().step, 80);
  ASSERT_TRUE(FileExists(path));

  // Resume (never-firing signals) must finish the run bit-identically —
  // including re-collecting the abandoned partial rollout.
  TrainSetup second = MakeSetup(kActors);
  auto second_signals = attach(&second, 0);
  options.resume = true;
  ParallelPpoTrainer second_trainer(second.envs, second.policy.get(),
                                    options);
  TrainingResult resumed = second_trainer.Train();
  EXPECT_FALSE(resumed.interrupted);
  ExpectResultsIdentical(baseline, resumed);
  RemoveCheckpointFamily(path);
}

TEST(CheckpointResumeTest, ResumeAfterEveryUpdateBoundary) {
  // Interrupt at every possible update boundary of a short 1-actor run;
  // each resume must reproduce the same final result.
  const int total_updates = 240 / 40;
  for (int k = 1; k < total_updates; ++k) {
    CheckResumeBitIdentity(/*n_actors=*/1, /*stop_after_updates=*/k);
  }
}

TEST(CheckpointResumeTest, CheckpointingItselfDoesNotPerturbTraining) {
  TrainSetup plain = MakeSetup(2);
  ParallelPpoTrainer plain_trainer(plain.envs, plain.policy.get(),
                                   BaseOptions());
  TrainingResult without = plain_trainer.Train();

  const std::string path = TempPath("perturb.ckpt");
  RemoveCheckpointFamily(path);
  TrainSetup ckpt = MakeSetup(2);
  TrainerOptions options = BaseOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_updates = 1;
  ParallelPpoTrainer ckpt_trainer(ckpt.envs, ckpt.policy.get(), options);
  TrainingResult with = ckpt_trainer.Train();

  ExpectResultsIdentical(without, with);
  RemoveCheckpointFamily(path);
}

TEST(CheckpointResumeTest, SaveFailuresDoNotAbortTraining) {
  // Every write attempt fails — training must still run to completion and
  // produce the exact no-checkpoint result.
  TrainSetup plain = MakeSetup(1);
  ParallelPpoTrainer plain_trainer(plain.envs, plain.policy.get(),
                                   BaseOptions());
  TrainingResult without = plain_trainer.Train();

  const std::string path = TempPath("disk_on_fire.ckpt");
  RemoveCheckpointFamily(path);
  SetFileIoFailureHookForTesting(
      [](const char* op, const std::string&) {
        return std::string(op) == "write";
      });
  TrainSetup hooked = MakeSetup(1);
  TrainerOptions options = BaseOptions();
  options.checkpoint_path = path;
  options.checkpoint_every_updates = 1;
  ParallelPpoTrainer hooked_trainer(hooked.envs, hooked.policy.get(),
                                    options);
  TrainingResult with = hooked_trainer.Train();
  SetFileIoFailureHookForTesting({});

  EXPECT_FALSE(FileExists(path));
  ExpectResultsIdentical(without, with);
  RemoveCheckpointFamily(path);
}

TEST(CheckpointResumeTest, MismatchedEnvSeedsStartFresh) {
  const std::string path = TempPath("seed_mismatch.ckpt");
  RemoveCheckpointFamily(path);

  TrainSetup first = MakeSetup(1);
  TrainerOptions options = BaseOptions();
  options.total_steps = 80;
  options.checkpoint_path = path;
  options.checkpoint_every_updates = 1;
  ParallelPpoTrainer trainer(first.envs, first.policy.get(), options);
  trainer.Train();
  ASSERT_TRUE(FileExists(path));

  // A trainer over a differently-seeded environment must refuse the
  // snapshot and still complete a full fresh run.
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment other_env(dataset.value(), ConfigWithSeed(999));
  TwofoldPolicy::Options policy_options;
  policy_options.hidden = {8};
  TwofoldPolicy policy(other_env.observation_dim(), other_env.action_space(),
                       policy_options);
  options.resume = true;
  ParallelPpoTrainer other({&other_env}, &policy, options);
  TrainingResult result = other.Train();
  EXPECT_EQ(result.curve.back().step, options.total_steps);
  RemoveCheckpointFamily(path);
}

// ---------------------------------------------------------------------------
// Container-level tests.

class CheckpointContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A real (tiny) training run gives the checkpoint authentic content:
    // curve, best episode, Adam moments, mid-episode actor state. The
    // smallest viable network keeps the every-byte-offset truncation sweep
    // fast — the sweep is quadratic in the file size.
    path_ = TempPath("container.ckpt");
    RemoveCheckpointFamily(path_);
    setup_ = MakeSetup(1, /*episode_length=*/5, /*hidden=*/2,
                       /*history_displays=*/1);
    TrainerOptions options = BaseOptions();
    options.total_steps = 80;
    options.rollout_length = 20;
    options.checkpoint_path = path_;
    options.checkpoint_every_updates = 1;
    ParallelPpoTrainer trainer(setup_.envs, setup_.policy.get(), options);
    trainer.Train();
    ASSERT_TRUE(FileExists(path_));
    ASSERT_TRUE(FileExists(path_ + ".prev"));
  }

  void TearDown() override {
    SetFileIoFailureHookForTesting({});
    RemoveCheckpointFamily(path_);
  }

  std::vector<Parameter*> Params() { return setup_.policy->Parameters(); }

  std::string path_;
  TrainSetup setup_;
};

TEST_F(CheckpointContainerTest, RotationKeepsPreviousSnapshot) {
  TrainingCheckpoint head, prev;
  ASSERT_TRUE(LoadTrainingCheckpoint(path_, Params(), &head).ok());
  // Loading the .prev file directly (as the fallback would).
  std::string prev_payload;
  ASSERT_TRUE(ReadChecksummedFile(path_ + ".prev", "ATENA-CKPT v1",
                                  &prev_payload)
                  .ok());
  ASSERT_TRUE(DecodeCheckpointPayload(prev_payload, Params(),
                                      path_ + ".prev", &prev)
                  .ok());
  EXPECT_GT(head.steps_done, prev.steps_done);
  EXPECT_EQ(head.updates_done, prev.updates_done + 1);
}

TEST_F(CheckpointContainerTest, RoundTripPreservesEverything) {
  TrainingCheckpoint loaded;
  ASSERT_TRUE(LoadTrainingCheckpoint(path_, Params(), &loaded).ok());
  // Re-encode from the loaded image and decode again; the two images must
  // agree field for field (weights included).
  // Param values: stage the loaded weights into scratch parameters so the
  // re-encoded block matches.
  std::vector<Parameter*> params = Params();
  for (size_t k = 0; k < params.size(); ++k) {
    params[k]->value = loaded.param_values[k];
  }
  std::string payload = EncodeCheckpointPayload(params, loaded);
  TrainingCheckpoint again;
  ASSERT_TRUE(
      DecodeCheckpointPayload(payload, params, "round-trip", &again).ok());
  EXPECT_EQ(loaded.steps_done, again.steps_done);
  EXPECT_EQ(loaded.updates_done, again.updates_done);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.trainer_rng.words[i], again.trainer_rng.words[i]);
  }
  EXPECT_EQ(loaded.trainer_rng.has_spare_gaussian,
            again.trainer_rng.has_spare_gaussian);
  EXPECT_EQ(loaded.trainer_rng.spare_gaussian,
            again.trainer_rng.spare_gaussian);
  EXPECT_EQ(loaded.adam_step, again.adam_step);
  ASSERT_EQ(loaded.adam_m.size(), again.adam_m.size());
  for (size_t k = 0; k < loaded.adam_m.size(); ++k) {
    EXPECT_EQ(loaded.adam_m[k].data(), again.adam_m[k].data());
    EXPECT_EQ(loaded.adam_v[k].data(), again.adam_v[k].data());
  }
  ASSERT_EQ(loaded.param_values.size(), again.param_values.size());
  for (size_t k = 0; k < loaded.param_values.size(); ++k) {
    EXPECT_EQ(loaded.param_values[k].data(), again.param_values[k].data());
  }
  ASSERT_EQ(loaded.curve.size(), again.curve.size());
  for (size_t i = 0; i < loaded.curve.size(); ++i) {
    EXPECT_EQ(loaded.curve[i].step, again.curve[i].step);
    EXPECT_EQ(loaded.curve[i].mean_episode_reward,
              again.curve[i].mean_episode_reward);
  }
  EXPECT_EQ(loaded.recent_episode_rewards, again.recent_episode_rewards);
  ExpectOpsEqual(loaded.best_episode_ops, again.best_episode_ops);
  ASSERT_EQ(loaded.actors.size(), again.actors.size());
  for (size_t e = 0; e < loaded.actors.size(); ++e) {
    EXPECT_EQ(loaded.actors[e].env_seed, again.actors[e].env_seed);
    EXPECT_EQ(loaded.actors[e].episode_reward,
              again.actors[e].episode_reward);
    ExpectOpsEqual(loaded.actors[e].episode_ops, again.actors[e].episode_ops);
  }
}

TEST_F(CheckpointContainerTest, TruncationAtEveryOffsetRecoversOrFailsClean) {
  std::string full;
  ASSERT_TRUE(ReadFileToString(path_, &full).ok());
  // Reference image of .prev, which every recovery must reproduce.
  TrainingCheckpoint prev_image;
  {
    std::string prev_payload;
    ASSERT_TRUE(ReadChecksummedFile(path_ + ".prev", "ATENA-CKPT v1",
                                    &prev_payload)
                    .ok());
    ASSERT_TRUE(DecodeCheckpointPayload(prev_payload, Params(),
                                        path_ + ".prev", &prev_image)
                    .ok());
  }
  // Network weights must never be touched by any load.
  std::vector<std::vector<double>> weights_before;
  for (Parameter* p : Params()) weights_before.push_back(p->value.data());

  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteRaw(path_, full.substr(0, cut));
    TrainingCheckpoint loaded;
    CheckpointLoadInfo info;
    Status status = LoadTrainingCheckpoint(path_, Params(), &loaded, &info);
    // Every truncation must be detected and recovered from .prev — never a
    // crash, never a half-loaded snapshot.
    ASSERT_TRUE(status.ok()) << "cut " << cut << ": " << status;
    EXPECT_TRUE(info.recovered_from_prev) << "cut " << cut;
    EXPECT_EQ(loaded.steps_done, prev_image.steps_done) << "cut " << cut;
    EXPECT_EQ(loaded.updates_done, prev_image.updates_done) << "cut " << cut;
  }

  // Without the .prev fallback every truncation must fail with a clean
  // Status and leave the network untouched.
  std::string prev_file;
  ASSERT_TRUE(ReadFileToString(path_ + ".prev", &prev_file).ok());
  RemoveIfExists(path_ + ".prev");
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteRaw(path_, full.substr(0, cut));
    TrainingCheckpoint loaded;
    Status status = LoadTrainingCheckpoint(path_, Params(), &loaded);
    EXPECT_FALSE(status.ok()) << "cut " << cut << " accepted";
  }
  std::vector<Parameter*> params = Params();
  for (size_t k = 0; k < params.size(); ++k) {
    EXPECT_EQ(params[k]->value.data(), weights_before[k])
        << "load modified parameter " << k;
  }
  // Restore the family for TearDown symmetry.
  ASSERT_TRUE(AtomicWriteFile(path_, full).ok());
  ASSERT_TRUE(AtomicWriteFile(path_ + ".prev", prev_file).ok());
}

TEST_F(CheckpointContainerTest, AdamStateRoundTripProducesIdenticalSteps) {
  // Two Adam instances — one stepped continuously, one restored from the
  // serialized checkpoint state — must produce bit-identical updates.
  TrainingCheckpoint loaded;
  ASSERT_TRUE(LoadTrainingCheckpoint(path_, Params(), &loaded).ok());
  ASSERT_GT(loaded.adam_step, 0);
  ASSERT_FALSE(loaded.adam_m.empty());

  // Build two identical parameter sets from the checkpoint weights.
  ParameterStore store_a, store_b;
  std::vector<Parameter*> params_a, params_b;
  for (size_t k = 0; k < loaded.param_values.size(); ++k) {
    const Matrix& w = loaded.param_values[k];
    params_a.push_back(store_a.Create("p" + std::to_string(k), w.rows(),
                                      w.cols()));
    params_b.push_back(store_b.Create("p" + std::to_string(k), w.rows(),
                                      w.cols()));
    params_a.back()->value = w;
    params_b.back()->value = w;
  }

  Adam adam_a, adam_b;
  adam_a.SetState(loaded.adam_step, loaded.adam_m, loaded.adam_v);
  adam_b.SetState(loaded.adam_step, loaded.adam_m, loaded.adam_v);
  EXPECT_EQ(adam_a.step_count(), loaded.adam_step);

  // Apply the same synthetic gradients to both and compare every weight.
  for (int step = 0; step < 3; ++step) {
    for (size_t k = 0; k < params_a.size(); ++k) {
      auto& ga = params_a[k]->grad.data();
      auto& gb = params_b[k]->grad.data();
      for (size_t i = 0; i < ga.size(); ++i) {
        const double g =
            0.01 * static_cast<double>((i + k + 1) % 7) - 0.02 * step;
        ga[i] = g;
        gb[i] = g;
      }
    }
    adam_a.Step(params_a);
    adam_b.Step(params_b);
    for (size_t k = 0; k < params_a.size(); ++k) {
      ASSERT_EQ(params_a[k]->value.data(), params_b[k]->value.data())
          << "step " << step << " parameter " << k;
    }
  }
}

}  // namespace
}  // namespace atena
