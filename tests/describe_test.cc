#include <gtest/gtest.h>

#include "data/registry.h"
#include "dataframe/describe.h"
#include "dataframe/ops.h"

namespace atena {
namespace {

TablePtr MakeScoresTable() {
  TableBuilder b("scores");
  b.AddColumn("name", DataType::kString);
  b.AddColumn("score", DataType::kFloat64);
  EXPECT_TRUE(b.AppendRow({Value(std::string("ana")), Value(9.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("bob")), Value(7.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("cat")), Value::Null()}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("ana")), Value(5.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("dan")), Value(8.0)}).ok());
  return b.Finish().value();
}

// ------------------------------------------------------------------ sort

TEST(SortRowsTest, AscendingNumericWithNullsFirst) {
  auto t = MakeScoresTable();
  auto sorted = SortRows(*t, AllRows(*t).value(), 1, /*ascending=*/true);
  ASSERT_TRUE(sorted.ok());
  // Null row (2) first, then 5.0 (3), 7.0 (1), 8.0 (4), 9.0 (0).
  EXPECT_EQ(sorted.value(), (std::vector<int32_t>{2, 3, 1, 4, 0}));
}

TEST(SortRowsTest, DescendingString) {
  auto t = MakeScoresTable();
  auto sorted = SortRows(*t, AllRows(*t).value(), 0, /*ascending=*/false);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(t->column(0)->GetString(sorted.value().front()), "dan");
  // Nulls-first under ascending = nulls-last under descending; none here.
  EXPECT_EQ(t->column(0)->GetString(sorted.value().back()), "ana");
}

TEST(SortRowsTest, StableAcrossEqualKeys) {
  auto t = MakeScoresTable();
  auto sorted = SortRows(*t, AllRows(*t).value(), 0, /*ascending=*/true);
  ASSERT_TRUE(sorted.ok());
  // Both "ana" rows keep their original relative order (0 before 3).
  std::vector<int32_t> anas;
  for (int32_t r : sorted.value()) {
    if (t->column(0)->GetString(r) == "ana") anas.push_back(r);
  }
  EXPECT_EQ(anas, (std::vector<int32_t>{0, 3}));
}

TEST(SortRowsTest, RejectsBadColumn) {
  auto t = MakeScoresTable();
  EXPECT_FALSE(SortRows(*t, AllRows(*t).value(), 9).ok());
}

// ------------------------------------------------------------------ topk

TEST(TopKRowsTest, LargestAndSmallest) {
  auto t = MakeScoresTable();
  auto top2 = TopKRows(*t, AllRows(*t).value(), 1, 2, /*largest=*/true);
  ASSERT_TRUE(top2.ok());
  EXPECT_EQ(top2.value(), (std::vector<int32_t>{0, 4}));  // 9.0, 8.0
  auto bottom1 = TopKRows(*t, AllRows(*t).value(), 1, 1, /*largest=*/false);
  ASSERT_TRUE(bottom1.ok());
  EXPECT_EQ(bottom1.value(), (std::vector<int32_t>{3}));  // 5.0
}

TEST(TopKRowsTest, KLargerThanInputClamps) {
  auto t = MakeScoresTable();
  auto all = TopKRows(*t, AllRows(*t).value(), 1, 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 4u);  // null row excluded
}

TEST(TopKRowsTest, RejectsStringColumn) {
  auto t = MakeScoresTable();
  EXPECT_FALSE(TopKRows(*t, AllRows(*t).value(), 0, 2).ok());
}

// -------------------------------------------------------------- describe

TEST(DescribeTest, SummarizesEveryColumn) {
  auto t = MakeScoresTable();
  auto described = DescribeTable(*t);
  ASSERT_TRUE(described.ok());
  const Table& d = *described.value();
  EXPECT_EQ(d.num_rows(), 2);  // one row per source column
  EXPECT_EQ(d.column(0)->GetString(0), "name");
  EXPECT_EQ(d.column(0)->GetString(1), "score");

  // name: 5 non-null, 0 nulls, 4 distinct, top = "ana" x2.
  EXPECT_EQ(d.column(d.FindColumn("count"))->GetInt(0), 5);
  EXPECT_EQ(d.column(d.FindColumn("distinct"))->GetInt(0), 4);
  EXPECT_EQ(d.column(d.FindColumn("top_value"))->GetString(0), "ana");
  EXPECT_EQ(d.column(d.FindColumn("top_count"))->GetInt(0), 2);
  EXPECT_TRUE(d.column(d.FindColumn("mean"))->IsNull(0));

  // score: 4 non-null, 1 null, stats over {9,7,5,8}.
  EXPECT_EQ(d.column(d.FindColumn("count"))->GetInt(1), 4);
  EXPECT_EQ(d.column(d.FindColumn("nulls"))->GetInt(1), 1);
  EXPECT_DOUBLE_EQ(d.column(d.FindColumn("min"))->GetDouble(1), 5.0);
  EXPECT_DOUBLE_EQ(d.column(d.FindColumn("max"))->GetDouble(1), 9.0);
  EXPECT_DOUBLE_EQ(d.column(d.FindColumn("mean"))->GetDouble(1), 7.25);
}

TEST(DescribeTest, WorksOnExperimentalDatasets) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  auto described = DescribeTable(*dataset.value().table);
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described.value()->num_rows(),
            dataset.value().table->num_columns());
}

}  // namespace
}  // namespace atena
