#include <gtest/gtest.h>

#include "data/registry.h"
#include "eda/environment.h"
#include "eda/session.h"
#include "notebook/render.h"
#include "viz/chart.h"
#include "viz/svg.h"

namespace atena {
namespace {

Dataset FlightsDataset() {
  auto d = MakeDataset("flights4");
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig Config() {
  EnvConfig config;
  config.episode_length = 8;
  return config;
}

// -------------------------------------------------------- recommendation

TEST(ChartRecommendTest, CategoricalGroupingYieldsBarChart) {
  Dataset d = FlightsDataset();
  EdaEnvironment env(d, Config());
  env.Reset();
  int month = d.table->FindColumn("month");
  int delay = d.table->FindColumn("departure_delay");
  env.StepOperation(EdaOperation::Group(month, AggFunc::kAvg, delay));
  auto chart = RecommendChart(*d.table, env.current_display());
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.value().kind, ChartKind::kBarChart);
  EXPECT_EQ(chart.value().points.size(), 12u);  // one bar per month
  EXPECT_EQ(chart.value().y_label, "AVG(departure_delay)");
  EXPECT_EQ(chart.value().x_label, "month");
}

TEST(ChartRecommendTest, NumericKeyYieldsLineChart) {
  Dataset d = FlightsDataset();
  EdaEnvironment env(d, Config());
  env.Reset();
  int dep = d.table->FindColumn("scheduled_departure");
  int delay = d.table->FindColumn("departure_delay");
  env.StepOperation(EdaOperation::Group(dep, AggFunc::kAvg, delay));
  auto chart = RecommendChart(*d.table, env.current_display());
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.value().kind, ChartKind::kLineChart);
  EXPECT_GT(chart.value().points.size(), 10u);
}

TEST(ChartRecommendTest, UngroupedDisplayYieldsHistogram) {
  Dataset d = FlightsDataset();
  EdaEnvironment env(d, Config());
  env.Reset();
  int delay = d.table->FindColumn("departure_delay");
  env.StepOperation(EdaOperation::Filter(delay, CompareOp::kGt, Value(0.0)));
  auto chart = RecommendChart(*d.table, env.current_display());
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.value().kind, ChartKind::kHistogram);
  EXPECT_EQ(chart.value().x_label, "departure_delay");
  ChartOptions options;
  EXPECT_EQ(chart.value().points.size(),
            static_cast<size_t>(options.histogram_bins));
  // Histogram counts sum to the selection's non-null count.
  double total = 0;
  for (const auto& p : chart.value().points) total += p.value;
  EXPECT_DOUBLE_EQ(total,
                   static_cast<double>(env.current_display().rows.size()));
}

TEST(ChartRecommendTest, SingleGroupIsNotWorthACharting) {
  Dataset d = FlightsDataset();
  EdaEnvironment env(d, Config());
  env.Reset();
  int airline = d.table->FindColumn("airline");
  // flights4 has several airlines; narrow to one, then group by airline.
  env.StepOperation(EdaOperation::Filter(airline, CompareOp::kEq,
                                         Value(std::string("AA"))));
  env.StepOperation(EdaOperation::Group(airline, AggFunc::kCount, -1));
  auto chart = RecommendChart(*d.table, env.current_display());
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.value().kind, ChartKind::kNone);
}

TEST(ChartRecommendTest, ManyCategoriesTruncateToTopBars) {
  Dataset d = FlightsDataset();
  EdaEnvironment env(d, Config());
  env.Reset();
  int flight_number = d.table->FindColumn("flight_number");
  int delay = d.table->FindColumn("departure_delay");
  env.StepOperation(
      EdaOperation::Group(flight_number, AggFunc::kAvg, delay));
  // Numeric key -> line chart, not truncated. Force bar with two keys.
  int month = d.table->FindColumn("month");
  env.StepOperation(EdaOperation::Group(month, AggFunc::kAvg, delay));
  ChartOptions options;
  options.max_bars = 10;
  auto chart = RecommendChart(*d.table, env.current_display(), options);
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.value().kind, ChartKind::kBarChart);
  EXPECT_EQ(chart.value().points.size(), 10u);
  EXPECT_TRUE(chart.value().truncated);
}

TEST(ChartRecommendTest, DeterministicAcrossCalls) {
  Dataset d = FlightsDataset();
  EdaEnvironment env(d, Config());
  env.Reset();
  int month = d.table->FindColumn("month");
  env.StepOperation(EdaOperation::Group(month, AggFunc::kCount, -1));
  auto a = RecommendChart(*d.table, env.current_display());
  auto b = RecommendChart(*d.table, env.current_display());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().points.size(), b.value().points.size());
  for (size_t i = 0; i < a.value().points.size(); ++i) {
    EXPECT_EQ(a.value().points[i].label, b.value().points[i].label);
    EXPECT_DOUBLE_EQ(a.value().points[i].value, b.value().points[i].value);
  }
}

// ----------------------------------------------------------------- SVG

ChartSpec SampleBarSpec() {
  ChartSpec spec;
  spec.kind = ChartKind::kBarChart;
  spec.title = "AVG(delay) by month";
  spec.x_label = "month";
  spec.y_label = "AVG(delay)";
  spec.points = {{"Jan", 4.0}, {"Feb", -2.0}, {"Mar", 9.5}};
  return spec;
}

TEST(SvgTest, BarChartContainsRectsAndLabels) {
  std::string svg = RenderChartSvg(SampleBarSpec());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Three bars.
  size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect class=\"bar\"", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 3u);
  EXPECT_NE(svg.find("AVG(delay) by month"), std::string::npos);
  EXPECT_NE(svg.find("Jan"), std::string::npos);
}

TEST(SvgTest, LineChartContainsPolyline) {
  ChartSpec spec = SampleBarSpec();
  spec.kind = ChartKind::kLineChart;
  std::string svg = RenderChartSvg(spec);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_EQ(svg.find("<rect class=\"bar\""), std::string::npos);
}

TEST(SvgTest, NoneSpecRendersEmpty) {
  ChartSpec spec;
  spec.kind = ChartKind::kNone;
  EXPECT_TRUE(RenderChartSvg(spec).empty());
}

TEST(SvgTest, EscapesMarkupInLabels) {
  ChartSpec spec = SampleBarSpec();
  spec.title = "a < b & c";
  spec.points[0].label = "<script>";
  std::string svg = RenderChartSvg(spec);
  EXPECT_EQ(svg.find("<script>"), std::string::npos);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
}

TEST(SvgTest, NegativeValuesKeepZeroBaseline) {
  std::string svg = RenderChartSvg(SampleBarSpec());
  // The x axis is drawn at the zero line, which requires a y between the
  // min (-2) and max (9.5) mappings — just assert it renders and contains
  // an axis line.
  EXPECT_NE(svg.find("class=\"axis\""), std::string::npos);
}

TEST(HtmlIntegrationTest, NotebookEmbedsChartSvg) {
  Dataset d = FlightsDataset();
  EdaEnvironment env(d, Config());
  int month = d.table->FindColumn("month");
  int delay = d.table->FindColumn("departure_delay");
  std::vector<EdaOperation> ops = {
      EdaOperation::Group(month, AggFunc::kAvg, delay)};
  EdaNotebook notebook = ReplayOperations(&env, ops, "viz-test");
  auto html = RenderHtml(notebook);
  ASSERT_TRUE(html.ok());
  EXPECT_NE(html.value().find("<svg"), std::string::npos);
  EXPECT_NE(html.value().find("AVG(departure_delay) by month"),
            std::string::npos);
}

}  // namespace
}  // namespace atena
