// Determinism and load-path tests for the multi-session serving runtime
// (src/serve/). The contract under test: a session's trace is a pure
// function of its SessionConfig and the snapshot — bit-identical to the
// single-session serial reference no matter how many sessions share the
// batch, which thread count steps them, when they join or leave, or
// whether acting is batched at all.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "nn/serialization.h"
#include "reward/compound.h"
#include "rl/checkpoint.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace atena {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveIfExists(const std::string& path) {
  if (FileExists(path)) std::remove(path.c_str());
}

SnapshotOptions SmallOptions() {
  SnapshotOptions options;
  options.env.episode_length = 6;
  options.env.num_term_bins = 4;
  options.policy.hidden = {24, 24};
  return options;
}

std::shared_ptr<PolicySnapshot> SmallSnapshot(
    const std::string& dataset = "cyber2") {
  return std::make_shared<PolicySnapshot>(MakeDataset(dataset).value(),
                                          SmallOptions());
}

// The mixed workload every determinism test serves: staggered step budgets
// (some spanning several episodes), interleaved greedy and sampling
// sessions.
std::vector<SessionConfig> MixedConfigs(int count) {
  std::vector<SessionConfig> configs;
  for (int i = 0; i < count; ++i) {
    SessionConfig config;
    config.seed = 900 + static_cast<uint64_t>(i);
    config.max_steps = 4 + (i % 3) * 5;  // 4, 9 or 14 steps; episodes are 6.
    config.greedy = (i % 2) == 0;
    configs.push_back(config);
  }
  return configs;
}

void ExpectTracesEqual(const SessionTrace& got, const SessionTrace& want,
                       const Table& table, const std::string& context) {
  ASSERT_EQ(got.steps.size(), want.steps.size()) << context;
  for (size_t i = 0; i < got.steps.size(); ++i) {
    const ServedStep& g = got.steps[i];
    const ServedStep& w = want.steps[i];
    EXPECT_EQ(g.op.Describe(table), w.op.Describe(table))
        << context << " step " << i;
    EXPECT_EQ(g.valid, w.valid) << context << " step " << i;
    EXPECT_EQ(g.reward, w.reward) << context << " step " << i;
    EXPECT_EQ(g.display_signature, w.display_signature)
        << context << " step " << i;
  }
  EXPECT_EQ(got.total_reward, want.total_reward) << context;
}

/// Indexes finished sessions by seed, asserting each completed cleanly —
/// the common case for determinism tests, where any quarantine or
/// deadline retirement is itself a failure.
std::map<uint64_t, SessionTrace> BySeed(std::vector<SessionOutcome> outcomes) {
  std::map<uint64_t, SessionTrace> by_seed;
  for (auto& outcome : outcomes) {
    EXPECT_EQ(outcome.reason, RetireReason::kCompleted)
        << "seed " << outcome.trace.seed << ": "
        << RetireReasonName(outcome.reason) << " "
        << outcome.status.ToString();
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    by_seed[outcome.trace.seed] = std::move(outcome.trace);
  }
  return by_seed;
}

uint64_t MustAdmit(SessionManager& manager, const SessionConfig& config) {
  Result<uint64_t> id = manager.Admit(config);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return id.ok() ? id.value() : 0;
}

TEST(ServeDeterminismTest, BatchedTracesMatchSerialReference) {
  auto snapshot = SmallSnapshot();
  SessionManager manager(snapshot, ServeOptions{});
  const auto configs = MixedConfigs(6);
  for (const auto& config : configs) MustAdmit(manager, config);
  manager.Drain();
  auto by_seed = BySeed(manager.TakeCompleted());
  ASSERT_EQ(by_seed.size(), configs.size());

  const Table& table = *snapshot->dataset().table;
  for (const auto& config : configs) {
    SessionTrace reference =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
    ExpectTracesEqual(by_seed.at(config.seed), reference, table,
                      "seed " + std::to_string(config.seed));
  }
}

TEST(ServeDeterminismTest, ThreadCountDoesNotChangeTraces) {
  auto snapshot = SmallSnapshot();
  const auto configs = MixedConfigs(5);
  std::map<uint64_t, SessionTrace> reference;
  const Table& table = *snapshot->dataset().table;
  for (int threads : {1, 2, 4}) {
    ServeOptions options;
    options.num_threads = threads;
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    manager.Drain();
    auto by_seed = BySeed(manager.TakeCompleted());
    ASSERT_EQ(by_seed.size(), configs.size()) << threads << " threads";
    if (reference.empty()) {
      reference = std::move(by_seed);
      continue;
    }
    for (const auto& [seed, trace] : by_seed) {
      ExpectTracesEqual(trace, reference.at(seed), table,
                        std::to_string(threads) + " threads, seed " +
                            std::to_string(seed));
    }
  }
}

// Sessions joining mid-serving (changing every later batch's composition
// and row order) must not perturb anyone's trace — neither the sessions
// already running nor the late arrivals.
TEST(ServeDeterminismTest, MidServingAdmissionsDoNotChangeTraces) {
  auto snapshot = SmallSnapshot();
  const auto configs = MixedConfigs(6);

  SessionManager manager(snapshot, ServeOptions{});
  size_t admitted = 0;
  for (; admitted < 2; ++admitted) MustAdmit(manager, configs[admitted]);
  // Two ticks alone, then two more joiners, two further ticks, the rest.
  manager.Tick();
  manager.Tick();
  for (; admitted < 4; ++admitted) MustAdmit(manager, configs[admitted]);
  manager.Tick();
  manager.Tick();
  for (; admitted < configs.size(); ++admitted) {
    manager.Admit(configs[admitted]);
  }
  manager.Drain();
  auto by_seed = BySeed(manager.TakeCompleted());
  ASSERT_EQ(by_seed.size(), configs.size());

  const Table& table = *snapshot->dataset().table;
  for (const auto& config : configs) {
    SessionTrace reference =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
    ExpectTracesEqual(by_seed.at(config.seed), reference, table,
                      "staggered seed " + std::to_string(config.seed));
  }
}

TEST(ServeDeterminismTest, UnbatchedActingProducesIdenticalTraces) {
  auto snapshot = SmallSnapshot();
  const auto configs = MixedConfigs(5);
  std::map<uint64_t, SessionTrace> batched;
  const Table& table = *snapshot->dataset().table;
  for (bool batch : {true, false}) {
    ServeOptions options;
    options.batched_acting = batch;
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    manager.Drain();
    auto by_seed = BySeed(manager.TakeCompleted());
    ASSERT_EQ(by_seed.size(), configs.size());
    if (batch) {
      batched = std::move(by_seed);
      continue;
    }
    for (const auto& [seed, trace] : by_seed) {
      ExpectTracesEqual(trace, batched.at(seed), table,
                        "unbatched seed " + std::to_string(seed));
    }
  }
}

// Same contract with real reward scoring attached: per-session rewards are
// part of the trace and must be batch-composition-independent too.
TEST(ServeDeterminismTest, RewardScoredTracesMatchSerialReference) {
  auto snapshot = SmallSnapshot();
  // Train the coherency classifier once; each session gets its own
  // CompoundReward clone around the shared (const) classifier, mirroring
  // what multi-actor training does.
  EnvConfig env_config = snapshot->options().env;
  EdaEnvironment proto_env(snapshot->dataset(), env_config);
  auto proto = MakeStandardReward(&proto_env);
  ASSERT_TRUE(proto.ok()) << proto.status().message();
  auto classifier = proto.value()->coherency();

  ServeOptions options;
  options.reward_factory = [classifier]() {
    return std::make_shared<CompoundReward>(classifier);
  };
  SessionManager manager(snapshot, options);
  const auto configs = MixedConfigs(4);
  for (const auto& config : configs) MustAdmit(manager, config);
  manager.Drain();
  auto by_seed = BySeed(manager.TakeCompleted());
  ASSERT_EQ(by_seed.size(), configs.size());

  const Table& table = *snapshot->dataset().table;
  for (const auto& config : configs) {
    CompoundReward reward(classifier);
    SessionTrace reference =
        ServeSingleSessionSerial(*snapshot, config, &reward);
    ExpectTracesEqual(by_seed.at(config.seed), reference, table,
                      "reward seed " + std::to_string(config.seed));
    EXPECT_NE(by_seed.at(config.seed).total_reward, 0.0);
  }
}

TEST(ServeDeterminismTest, RecycledEnvironmentsServeIdenticalTraces) {
  auto snapshot = SmallSnapshot();
  SessionConfig config;
  config.seed = 77;
  config.max_steps = 9;
  SessionManager manager(snapshot, ServeOptions{});
  // Serve the same session twice: the second admission recycles the first
  // one's environment from the pool and must reproduce the trace exactly.
  MustAdmit(manager, config);
  manager.Drain();
  auto first = manager.TakeCompleted();
  MustAdmit(manager, config);
  manager.Drain();
  auto second = manager.TakeCompleted();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  ExpectTracesEqual(second[0].trace, first[0].trace,
                    *snapshot->dataset().table, "recycled env");
}

// The graceful-drain path of the serving binary: every admitted session
// runs to completion and emits exactly one kCompleted outcome.
TEST(ServeLifecycleTest, DrainEmitsAllOutcomes) {
  auto snapshot = SmallSnapshot();
  SessionManager manager(snapshot, ServeOptions{});
  const auto configs = MixedConfigs(5);
  for (const auto& config : configs) MustAdmit(manager, config);
  manager.Drain();
  EXPECT_EQ(manager.active_sessions(), 0);
  auto outcomes = manager.TakeCompleted();
  ASSERT_EQ(outcomes.size(), configs.size());
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.reason, RetireReason::kCompleted);
    EXPECT_TRUE(outcome.status.ok());
  }
  EXPECT_EQ(manager.stats().completed, static_cast<int64_t>(configs.size()));
  // TakeCompleted moves: a second call is empty.
  EXPECT_TRUE(manager.TakeCompleted().empty());
}

// The second-stop-request path: in-flight sessions are retired immediately
// with their partial notebooks flagged kHardStopped, not kCompleted.
TEST(ServeLifecycleTest, HardStopFlagsPartialOutcomes) {
  auto snapshot = SmallSnapshot();
  SessionManager manager(snapshot, ServeOptions{});
  const auto configs = MixedConfigs(4);
  for (const auto& config : configs) MustAdmit(manager, config);
  manager.Tick();
  manager.Tick();
  manager.Tick();
  // The shortest budget in MixedConfigs is 4 steps, so after 3 ticks
  // every session is still live with a 3-step partial notebook.
  const int live = manager.active_sessions();
  EXPECT_GT(live, 0);
  EXPECT_EQ(manager.HardStop(), live);
  EXPECT_EQ(manager.active_sessions(), 0);

  auto by_seed = std::map<uint64_t, SessionOutcome>();
  for (auto& outcome : manager.TakeCompleted()) {
    by_seed[outcome.trace.seed] = std::move(outcome);
  }
  ASSERT_EQ(by_seed.size(), configs.size());
  int hard_stopped = 0;
  for (const auto& config : configs) {
    const SessionOutcome& outcome = by_seed.at(config.seed);
    EXPECT_TRUE(outcome.status.ok());
    if (outcome.reason == RetireReason::kHardStopped) {
      ++hard_stopped;
      // Partial notebook: exactly the 3 ticks it was stepped through.
      EXPECT_EQ(outcome.trace.steps.size(), 3u) << "seed " << config.seed;
    } else {
      EXPECT_EQ(outcome.reason, RetireReason::kCompleted);
      EXPECT_EQ(outcome.trace.steps.size(),
                static_cast<size_t>(config.max_steps));
    }
  }
  EXPECT_EQ(hard_stopped, live);
  EXPECT_EQ(manager.stats().hard_stopped, static_cast<int64_t>(live));
}

// The serving primitive under the runtime: every row of the per-row-stream
// ActBatch overload is bit-identical to a per-sample Act on that row, and
// entropy (training-only, skipped on the serving path) reads 0.
TEST(ServeActBatchTest, RowsMatchPerSampleActBitExactly) {
  auto snapshot = SmallSnapshot();
  TwofoldPolicy* policy = snapshot->policy();
  EnvConfig env_config = snapshot->options().env;
  EdaEnvironment env(snapshot->dataset(), env_config);

  const int rows = 7;
  Matrix observations(rows, snapshot->observation_dim());
  std::vector<double> obs = env.Reset();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < snapshot->observation_dim(); ++c) {
      observations(r, c) = obs[static_cast<size_t>(c)] + 0.01 * r;
    }
  }

  // Odd rows sample from private streams, even rows are greedy (null).
  std::vector<Rng> streams(rows);
  std::vector<Rng*> rngs(rows, nullptr);
  for (int r = 1; r < rows; r += 2) {
    streams[static_cast<size_t>(r)] = Rng(5000 + static_cast<uint64_t>(r));
    rngs[static_cast<size_t>(r)] = &streams[static_cast<size_t>(r)];
  }
  // Per-sample reference with copies of the same stream states.
  std::vector<Rng> reference_streams = streams;

  std::vector<PolicyStep> batched = policy->ActBatch(observations, rngs);
  ASSERT_EQ(batched.size(), static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    std::vector<double> row(observations.RowPtr(r),
                            observations.RowPtr(r) +
                                snapshot->observation_dim());
    const PolicyStep single =
        rngs[static_cast<size_t>(r)] == nullptr
            ? policy->ActGreedy(row)
            : policy->Act(row, &reference_streams[static_cast<size_t>(r)]);
    const PolicyStep& got = batched[static_cast<size_t>(r)];
    EXPECT_EQ(got.action.structured.type, single.action.structured.type)
        << "row " << r;
    EXPECT_EQ(got.action.structured.filter_column,
              single.action.structured.filter_column)
        << "row " << r;
    EXPECT_EQ(got.action.structured.group_column,
              single.action.structured.group_column)
        << "row " << r;
    EXPECT_EQ(got.log_prob, single.log_prob) << "row " << r;
    EXPECT_EQ(got.value, single.value) << "row " << r;
    EXPECT_EQ(got.entropy, 0.0) << "row " << r;
    // The batched row consumed exactly the same stream draws.
    if (rngs[static_cast<size_t>(r)] != nullptr) {
      EXPECT_EQ(streams[static_cast<size_t>(r)].state().words[0],
                reference_streams[static_cast<size_t>(r)].state().words[0])
          << "row " << r;
    }
  }
}

TEST(ServeSnapshotTest, LoadRoundTripsBareParameterFile) {
  const std::string path = TempPath("serve_nn_roundtrip.bin");
  RemoveIfExists(path);
  auto source = SmallSnapshot();
  ASSERT_TRUE(
      SaveParameters(source->policy()->Parameters(), path).ok());

  SnapshotOptions options = SmallOptions();
  options.policy.seed = 999;  // Different init; the load must overwrite it.
  auto loaded =
      LoadPolicySnapshot(MakeDataset("cyber2").value(), options, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  SessionConfig config;
  config.seed = 31;
  config.max_steps = 8;
  SessionTrace from_source =
      ServeSingleSessionSerial(*source, config, nullptr);
  SessionTrace from_loaded =
      ServeSingleSessionSerial(*loaded.value(), config, nullptr);
  ExpectTracesEqual(from_loaded, from_source, *source->dataset().table,
                    "nn round trip");
  RemoveIfExists(path);
}

TEST(ServeSnapshotTest, LoadRoundTripsTrainingCheckpoint) {
  const std::string path = TempPath("serve_ckpt_roundtrip.bin");
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(path + suffix);
  }
  auto source = SmallSnapshot();
  TrainingCheckpoint ckpt;  // Weights travel separately; rest is default.
  ASSERT_TRUE(
      SaveTrainingCheckpoint(path, source->policy()->Parameters(), ckpt)
          .ok());

  auto loaded = LoadPolicySnapshot(MakeDataset("cyber2").value(),
                                   SmallOptions(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  SessionConfig config;
  config.seed = 32;
  config.max_steps = 8;
  ExpectTracesEqual(ServeSingleSessionSerial(*loaded.value(), config, nullptr),
                    ServeSingleSessionSerial(*source, config, nullptr),
                    *source->dataset().table, "ckpt round trip");
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(path + suffix);
  }
}

TEST(ServeSnapshotTest, LoadRejectsMismatchedArchitecture) {
  const std::string path = TempPath("serve_nn_mismatch.bin");
  RemoveIfExists(path);
  auto source = SmallSnapshot();  // hidden {24, 24}
  ASSERT_TRUE(
      SaveParameters(source->policy()->Parameters(), path).ok());

  SnapshotOptions narrow = SmallOptions();
  narrow.policy.hidden = {8};
  auto loaded =
      LoadPolicySnapshot(MakeDataset("cyber2").value(), narrow, path);
  ASSERT_FALSE(loaded.ok());
  // The error must describe the mismatch, not just fail.
  EXPECT_NE(loaded.status().message().find("mismatch"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("hidden sizes"), std::string::npos)
      << loaded.status().message();
  RemoveIfExists(path);
}

TEST(ServeSnapshotTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("serve_nn_garbage.bin");
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << "not a parameter container";
  auto loaded = LoadPolicySnapshot(MakeDataset("cyber2").value(),
                                   SmallOptions(), path);
  EXPECT_FALSE(loaded.ok());
  RemoveIfExists(path);
}

TEST(ServeSnapshotTest, LoadRejectsMissingFile) {
  auto loaded =
      LoadPolicySnapshot(MakeDataset("cyber2").value(), SmallOptions(),
                         TempPath("serve_nn_nonexistent.bin"));
  EXPECT_FALSE(loaded.ok());
}

// Operators reading a reload failure out of the health log need to know
// WHICH snapshot file to inspect: every loader error names the offending
// path, whatever layer it failed in.
TEST(ServeSnapshotTest, LoadErrorsNameThePath) {
  const std::string missing = TempPath("serve_no_such_snapshot.bin");
  auto not_found = LoadPolicySnapshot(MakeDataset("cyber2").value(),
                                      SmallOptions(), missing);
  ASSERT_FALSE(not_found.ok());
  EXPECT_NE(not_found.status().message().find(missing), std::string::npos)
      << not_found.status().message();

  const std::string garbage = TempPath("serve_garbage_snapshot.bin");
  std::ofstream(garbage, std::ios::binary | std::ios::trunc)
      << "definitely not a parameter container";
  auto corrupt = LoadPolicySnapshot(MakeDataset("cyber2").value(),
                                    SmallOptions(), garbage);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find(garbage), std::string::npos)
      << corrupt.status().message();
  RemoveIfExists(garbage);

  // Architecture mismatch too: the file parsed fine but cannot serve.
  const std::string mismatched = TempPath("serve_mismatch_snapshot.bin");
  RemoveIfExists(mismatched);
  auto source = SmallSnapshot();
  ASSERT_TRUE(SaveParameters(source->policy()->Parameters(), mismatched).ok());
  SnapshotOptions narrow = SmallOptions();
  narrow.policy.hidden = {8};
  auto wrong_arch = LoadPolicySnapshot(MakeDataset("cyber2").value(),
                                       narrow, mismatched);
  ASSERT_FALSE(wrong_arch.ok());
  EXPECT_NE(wrong_arch.status().message().find(mismatched), std::string::npos)
      << wrong_arch.status().message();
  RemoveIfExists(mismatched);
}

}  // namespace
}  // namespace atena
