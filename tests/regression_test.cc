// Deeper cross-module regression tests: behaviours that earlier iterations
// of this codebase got wrong, pinned so they stay fixed.
#include <gtest/gtest.h>

#include "coherency/classifier.h"
#include "coherency/rules.h"
#include "data/registry.h"
#include "dataframe/csv.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "eval/view_signature.h"
#include "notebook/render.h"
#include "reward/compound.h"
#include "reward/interestingness.h"

namespace atena {
namespace {

EnvConfig Config() {
  EnvConfig config;
  config.episode_length = 12;
  return config;
}

RewardContext StepContext(EdaEnvironment* env, const EdaOperation& op) {
  StepOutcome outcome = env->StepOperation(op);
  RewardContext context;
  context.env = env;
  context.op = &env->steps().back().op;
  context.valid = outcome.valid;
  return context;
}

// Regression: range cuts on quasi-key numeric columns used to earn top
// interestingness because the KL ran over the filtered column itself and
// over exact continuous values. Junk must now earn clearly less than an
// expert drill-down.
TEST(RewardRegressionTest, RangeCutOnQuasiKeyEarnsLessThanExpertFilter) {
  auto dataset = MakeDataset("flights4");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment env(dataset.value(), Config());
  const Table& t = *dataset.value().table;

  env.Reset();
  auto expert = StepContext(
      &env, EdaOperation::Filter(t.FindColumn("month"), CompareOp::kEq,
                                 Value(std::string("June"))));
  double expert_score = OperationInterestingness(expert);

  env.Reset();
  auto junk = StepContext(
      &env, EdaOperation::Filter(t.FindColumn("flight_number"),
                                 CompareOp::kGe, Value(int64_t{170})));
  double junk_score = OperationInterestingness(junk);

  EXPECT_GT(expert_score, 2.0 * junk_score);
}

// Regression: on a COUNT-grouped display, a proportional shrink of every
// group used to register as a maximal distribution shift (exact group
// sizes were compared).
TEST(RewardRegressionTest, ProportionalShrinkIsNotMaximallyInteresting) {
  auto dataset = MakeDataset("flights4");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment env(dataset.value(), Config());
  const Table& t = *dataset.value().table;
  env.Reset();
  env.StepOperation(EdaOperation::Group(t.FindColumn("airline"),
                                        AggFunc::kCount, -1));
  // flight_number is independent of airline: cutting it shrinks every
  // airline's count roughly proportionally.
  auto ctx = StepContext(
      &env, EdaOperation::Filter(t.FindColumn("flight_number"),
                                 CompareOp::kGe, Value(int64_t{1500})));
  EXPECT_LT(OperationInterestingness(ctx), 0.6);
}

// Regression: the EM label model used to flip classes on skewed warmup
// corpora, scoring id filters as ~1.0 coherent. With the anchored model an
// id filter must land clearly below a focal categorical group-by.
TEST(CoherencyRegressionTest, IdFilterScoresBelowFocalGroup) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment env(dataset.value(), Config());
  CoherencyClassifier classifier(StandardRuleSet(dataset.value()));
  ASSERT_TRUE(classifier.Train(&env).ok());
  const Table& t = *dataset.value().table;

  env.Reset();
  auto good = StepContext(&env, EdaOperation::Group(
                                    t.FindColumn("source_ip"),
                                    AggFunc::kCount, -1));
  double good_score = classifier.Score(good);

  env.Reset();
  auto bad = StepContext(
      &env, EdaOperation::Filter(t.FindColumn("request_id"), CompareOp::kEq,
                                 Value(int64_t{17})));
  double bad_score = classifier.Score(bad);

  EXPECT_GT(good_score, 0.6);
  EXPECT_LT(bad_score, 0.4);
}

// Regression: the reward signal's context used to be built before the step
// was pushed, so rules disagreed about whether ctx.op was in steps(); and
// the compound weights used to blow per-step rewards up to 10+. Pin the
// overall scale: an expert operation earns a bounded positive reward.
TEST(RewardRegressionTest, PerStepRewardScaleIsBounded) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaEnvironment env(dataset.value(), Config());
  auto reward = MakeStandardReward(&env);
  ASSERT_TRUE(reward.ok());
  env.SetRewardSignal(reward.value().get());
  env.Reset();
  const Table& t = *dataset.value().table;
  StepOutcome outcome = env.StepOperation(EdaOperation::Group(
      t.FindColumn("method"), AggFunc::kCount, -1));
  EXPECT_GT(outcome.reward, 0.5);
  EXPECT_LT(outcome.reward, 8.0);
}

// Regression: ViewSimilarity must give partial credit for a shared column
// with a different operator (exact-string Jaccard gave 0), and must remain
// symmetric (a one-sided greedy matching was not).
TEST(MetricsRegressionTest, FilterPartialCreditAndSymmetry) {
  ViewSignature a, b;
  a.filters = {"month == June"};
  b.filters = {"month == July"};
  double sim = ViewSimilarity(a, b);
  EXPECT_GT(sim, 0.4 * 0.5);  // at least the shared-column credit
  EXPECT_LT(sim, 1.0);
  EXPECT_DOUBLE_EQ(sim, ViewSimilarity(b, a));

  ViewSignature c;
  c.filters = {"airline == AA"};
  EXPECT_LT(ViewSimilarity(a, c), sim);
}

// Regression: CSV nulls round-trip through empty fields even when a row
// ends with a null (trailing delimiter).
TEST(CsvRegressionTest, TrailingNullRoundTrip) {
  TableBuilder b("t");
  b.AddColumn("a", DataType::kInt64);
  b.AddColumn("b", DataType::kString);
  ASSERT_TRUE(b.AppendRow({Value(int64_t{1}), Value::Null()}).ok());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  auto back = ReadCsvString(WriteCsvString(*t.value()), "t");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value()->column(1)->IsNull(0));
}

// Regression: notebooks whose episode ends immediately (all ops invalid)
// must still render.
TEST(RenderRegressionTest, EmptyNotebookRenders) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  EdaNotebook notebook;
  notebook.dataset_id = "cyber2";
  notebook.generator = "empty";
  notebook.table = dataset.value().table;
  EXPECT_TRUE(RenderText(notebook).ok());
  EXPECT_TRUE(RenderMarkdown(notebook).ok());
  EXPECT_TRUE(RenderHtml(notebook).ok());
}

// Regression: gold notebooks must stay measurably closer to each other
// than to an arbitrary session — the reference set is what every Table-2
// metric leans on.
TEST(GoldRegressionTest, GoldSetIsInternallyConsistent) {
  for (const char* id : {"cyber1", "flights4"}) {
    auto dataset = MakeDataset(id);
    ASSERT_TRUE(dataset.ok());
    auto gold = GoldNotebooks(dataset.value(), Config());
    ASSERT_TRUE(gold.ok());
    std::vector<std::vector<ViewSignature>> views;
    for (const auto& g : gold.value()) {
      views.push_back(NotebookSignatures(g));
    }
    double loo = 0.0;
    for (size_t i = 0; i < views.size(); ++i) {
      std::vector<std::vector<ViewSignature>> others;
      for (size_t j = 0; j < views.size(); ++j) {
        if (j != i) others.push_back(views[j]);
      }
      loo += MaxEdaSim(views[i], others);
    }
    loo /= views.size();
    EXPECT_GT(loo, 0.25) << id;
    EXPECT_LT(loo, 1.0) << id;
  }
}

}  // namespace
}  // namespace atena
