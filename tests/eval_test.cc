#include <gtest/gtest.h>

#include "data/registry.h"
#include "eval/gold.h"
#include "eval/insights.h"
#include "eval/metrics.h"
#include "eval/ratings.h"
#include "eval/traces.h"
#include "eval/view_signature.h"

namespace atena {
namespace {

Dataset SmallDataset() {
  auto d = MakeDataset("cyber2");
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig EvalConfig() {
  EnvConfig config;
  config.episode_length = 10;
  config.num_term_bins = 8;
  return config;
}

ViewSignature Sig(std::vector<std::string> filters,
                  std::vector<std::string> groups, std::string agg = "") {
  ViewSignature s;
  s.filters = std::move(filters);
  s.groups = std::move(groups);
  s.aggregation = std::move(agg);
  std::sort(s.filters.begin(), s.filters.end());
  std::sort(s.groups.begin(), s.groups.end());
  return s;
}

// ------------------------------------------------------- view signature

TEST(ViewSignatureTest, CanonicalizationIsOrderInsensitive) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, EvalConfig());
  int method = d.table->FindColumn("method");
  int status = d.table->FindColumn("status");
  int src = d.table->FindColumn("source_ip");

  // Path A: filter then group method, group status.
  env.Reset();
  env.StepOperation(EdaOperation::Filter(src, CompareOp::kEq,
                                         Value(std::string("203.0.113.99"))));
  env.StepOperation(EdaOperation::Group(method, AggFunc::kCount, -1));
  env.StepOperation(EdaOperation::Group(status, AggFunc::kCount, -1));
  auto sig_a = MakeViewSignature(*d.table, env.current_display());

  // Path B: group status, group method, then filter.
  env.Reset();
  env.StepOperation(EdaOperation::Group(status, AggFunc::kCount, -1));
  env.StepOperation(EdaOperation::Group(method, AggFunc::kCount, -1));
  env.StepOperation(EdaOperation::Filter(src, CompareOp::kEq,
                                         Value(std::string("203.0.113.99"))));
  auto sig_b = MakeViewSignature(*d.table, env.current_display());

  EXPECT_TRUE(sig_a == sig_b);
  EXPECT_EQ(sig_a.ToKey(), sig_b.ToKey());
}

TEST(ViewSignatureTest, KeyEncodesAllParts) {
  auto sig = Sig({"a == 1"}, {"g"}, "AVG(x)");
  std::string key = sig.ToKey();
  EXPECT_NE(key.find("a == 1"), std::string::npos);
  EXPECT_NE(key.find("g"), std::string::npos);
  EXPECT_NE(key.find("AVG(x)"), std::string::npos);
}

TEST(ViewSimilarityTest, IdenticalViewsScoreOne) {
  auto sig = Sig({"a == 1"}, {"g"}, "AVG(x)");
  EXPECT_DOUBLE_EQ(ViewSimilarity(sig, sig), 1.0);
  auto empty = Sig({}, {});
  EXPECT_DOUBLE_EQ(ViewSimilarity(empty, empty), 1.0);
}

TEST(ViewSimilarityTest, PartialCreditForSharedComponents) {
  auto a = Sig({"a == 1"}, {"g"}, "AVG(x)");
  auto b = Sig({"a == 1"}, {"h"}, "AVG(x)");
  double sim = ViewSimilarity(a, b);
  EXPECT_GT(sim, 0.4);
  EXPECT_LT(sim, 1.0);
  auto c = Sig({"z == 9"}, {"h"}, "SUM(y)");
  EXPECT_LT(ViewSimilarity(a, c), sim);
}

// --------------------------------------------------------------- metrics

TEST(PrecisionTest, HitsOverDistinctViews) {
  auto v1 = Sig({"a == 1"}, {});
  auto v2 = Sig({}, {"g"}, "COUNT(*)");
  auto v3 = Sig({"b == 2"}, {});
  std::vector<std::vector<ViewSignature>> gold = {{v1, v2}};
  // Candidate: v1 (hit), v3 (miss), v1 duplicated (ignored).
  double p = ViewPrecision({v1, v3, v1}, gold);
  EXPECT_DOUBLE_EQ(p, 0.5);
  EXPECT_DOUBLE_EQ(ViewPrecision({}, gold), 0.0);
}

TEST(TBleuTest, PerfectMatchScoresHigh) {
  auto v1 = Sig({"a == 1"}, {});
  auto v2 = Sig({}, {"g"}, "COUNT(*)");
  auto v3 = Sig({"b == 2"}, {});
  std::vector<ViewSignature> reference = {v1, v2, v3};
  std::vector<std::vector<ViewSignature>> gold = {reference};
  EXPECT_GT(TBleu(reference, gold, 1), 0.99);
  EXPECT_GT(TBleu(reference, gold, 3), 0.99);
}

TEST(TBleuTest, OrderMattersForHigherOrders) {
  auto v1 = Sig({"a == 1"}, {});
  auto v2 = Sig({}, {"g"}, "COUNT(*)");
  auto v3 = Sig({"b == 2"}, {});
  std::vector<std::vector<ViewSignature>> gold = {{v1, v2, v3}};
  std::vector<ViewSignature> shuffled = {v3, v1, v2};
  // Unigram precision is unaffected by order; trigram precision collapses.
  EXPECT_GT(TBleu(shuffled, gold, 1), 0.99);
  EXPECT_LT(TBleu(shuffled, gold, 3), TBleu({v1, v2, v3}, gold, 3));
}

TEST(TBleuTest, BrevityPenaltyAppliesToShortCandidates) {
  auto v1 = Sig({"a == 1"}, {});
  auto v2 = Sig({}, {"g"}, "COUNT(*)");
  auto v3 = Sig({"b == 2"}, {});
  auto v4 = Sig({}, {"h"}, "COUNT(*)");
  std::vector<std::vector<ViewSignature>> gold = {{v1, v2, v3, v4}};
  double full = TBleu({v1, v2, v3, v4}, gold, 1);
  double brief = TBleu({v1}, gold, 1);
  EXPECT_LT(brief, full);
}

TEST(EdaSimTest, IdentityAndBounds) {
  auto v1 = Sig({"a == 1"}, {});
  auto v2 = Sig({}, {"g"}, "COUNT(*)");
  std::vector<ViewSignature> s = {v1, v2};
  EXPECT_DOUBLE_EQ(EdaSim(s, s), 1.0);
  EXPECT_DOUBLE_EQ(EdaSim({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(EdaSim(s, {}), 0.0);
  double cross = EdaSim(s, {v2, v1});
  EXPECT_GT(cross, 0.0);
  EXPECT_LT(cross, 1.0);
}

TEST(EdaSimTest, PartialCreditBeatsDisjoint) {
  auto a = Sig({"a == 1"}, {"g"}, "AVG(x)");
  auto near = Sig({"a == 1"}, {"g"}, "SUM(x)");
  auto far = Sig({"q == 9"}, {"z"}, "MIN(w)");
  EXPECT_GT(EdaSim({a}, {near}), EdaSim({a}, {far}));
}

TEST(EdaSimTest, MaxOverGoldSelectsClosest) {
  auto a = Sig({"a == 1"}, {});
  auto b = Sig({"b == 2"}, {});
  std::vector<std::vector<ViewSignature>> gold = {{b}, {a}};
  EXPECT_DOUBLE_EQ(MaxEdaSim({a}, gold), 1.0);
}

TEST(EdaSimTest, PrunedMaxIsIdenticalToUnprunedLoop) {
  // Synthesize a gold set of many notebooks over a shared view pool, then
  // check the bound-pruned MaxEdaSim against the plain EdaSim loop it
  // replaced. Deterministic LCG so failures reproduce.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state](int bound) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((state >> 33) % static_cast<uint64_t>(bound));
  };
  std::vector<ViewSignature> pool;
  for (int i = 0; i < 12; ++i) {
    pool.push_back(Sig({"c" + std::to_string(next(6)) + " == 1"},
                       {"g" + std::to_string(next(4))},
                       i % 3 == 0 ? "" : "AVG(x" + std::to_string(next(3)) +
                                             ")"));
  }
  auto draw_notebook = [&](int length) {
    std::vector<ViewSignature> notebook;
    for (int i = 0; i < length; ++i) {
      notebook.push_back(pool[static_cast<size_t>(next(
          static_cast<int>(pool.size())))]);
    }
    return notebook;
  };
  std::vector<std::vector<ViewSignature>> gold;
  for (int r = 0; r < 40; ++r) gold.push_back(draw_notebook(3 + next(8)));
  gold.push_back({});  // empty reference exercises the special case

  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<ViewSignature> candidate =
        trial == 0 ? std::vector<ViewSignature>{} : draw_notebook(2 + next(9));
    double reference_best = 0.0;
    for (const auto& notebook : gold) {
      reference_best = std::max(reference_best, EdaSim(candidate, notebook));
    }
    EdaSimPruningStats stats;
    const double pruned_best = MaxEdaSim(candidate, gold, &stats);
    EXPECT_EQ(pruned_best, reference_best) << "trial " << trial;
    EXPECT_EQ(stats.references_total, static_cast<int>(gold.size()));
    EXPECT_EQ(stats.references_evaluated + stats.references_pruned,
              stats.references_total);
  }
}

TEST(EdaSimTest, BoundPruningActuallyFires) {
  // One exact-match reference plus many disjoint ones: the exact match is
  // aligned first (bound 1.0) and every disjoint reference's bound is far
  // below, so the tail is pruned without running its DP.
  auto hit = Sig({"a == 1"}, {"g"}, "AVG(x)");
  std::vector<std::vector<ViewSignature>> gold = {{hit}};
  for (int i = 0; i < 20; ++i) {
    gold.push_back({Sig({"q" + std::to_string(i) + " == 9"},
                        {"z" + std::to_string(i)}, "MIN(w)")});
  }
  EdaSimPruningStats stats;
  EXPECT_DOUBLE_EQ(MaxEdaSim({hit}, gold, &stats), 1.0);
  EXPECT_EQ(stats.references_total, 21);
  EXPECT_GE(stats.references_pruned, 20);
}

TEST(MetricsTest, ComputeAedaScoresBundlesAll) {
  auto v1 = Sig({"a == 1"}, {});
  std::vector<std::vector<ViewSignature>> gold = {{v1}};
  AedaScores scores = ComputeAedaScores({v1}, gold);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  EXPECT_GT(scores.t_bleu_1, 0.99);
  EXPECT_DOUBLE_EQ(scores.eda_sim, 1.0);
}

// ------------------------------------------------------------------ gold

class GoldScriptsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldScriptsTest, ScriptsReplayWithoutInvalidOps) {
  auto dataset = MakeDataset(GetParam());
  ASSERT_TRUE(dataset.ok());
  auto scripts = GoldOperationScripts(dataset.value());
  ASSERT_TRUE(scripts.ok()) << scripts.status();
  EXPECT_GE(scripts.value().size(), 5u);

  EnvConfig config = EvalConfig();
  EdaEnvironment env(dataset.value(), config);
  for (size_t i = 0; i < scripts.value().size(); ++i) {
    const auto& script = scripts.value()[i];
    EXPECT_LE(static_cast<int>(script.size()), config.episode_length)
        << "script " << i << " longer than an episode";
    env.Reset();
    for (size_t j = 0; j < script.size(); ++j) {
      StepOutcome outcome = env.StepOperation(script[j]);
      EXPECT_TRUE(outcome.valid)
          << GetParam() << " script " << i << " op " << j << ": "
          << script[j].Describe(*dataset.value().table);
    }
  }
}

TEST_P(GoldScriptsTest, GoldNotebooksAreNonTrivial) {
  auto dataset = MakeDataset(GetParam());
  ASSERT_TRUE(dataset.ok());
  auto notebooks = GoldNotebooks(dataset.value(), EvalConfig());
  ASSERT_TRUE(notebooks.ok());
  for (const auto& notebook : notebooks.value()) {
    EXPECT_GE(notebook.entries.size(), 4u);
    EXPECT_EQ(notebook.generator, "Gold");
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GoldScriptsTest,
                         ::testing::Values("cyber1", "cyber2", "cyber3",
                                           "cyber4", "flights1", "flights2",
                                           "flights3", "flights4"));

// ---------------------------------------------------------------- traces

TEST(TracesTest, GeneratesRequestedNumberOfTraces) {
  Dataset d = SmallDataset();
  TraceOptions options;
  options.num_traces = 4;
  auto traces = SimulatedTraceNotebooks(d, EvalConfig(), options);
  ASSERT_TRUE(traces.ok());
  EXPECT_EQ(traces.value().size(), 4u);
  for (const auto& t : traces.value()) {
    EXPECT_EQ(t.generator, "EDA-Traces");
    EXPECT_FALSE(t.entries.empty());
  }
}

TEST(TracesTest, TracesAreGoldLikeButNoisier) {
  Dataset d = SmallDataset();
  auto gold = GoldNotebooks(d, EvalConfig());
  ASSERT_TRUE(gold.ok());
  std::vector<std::vector<ViewSignature>> gold_views;
  for (const auto& g : gold.value()) {
    gold_views.push_back(NotebookSignatures(g));
  }
  auto traces = SimulatedTraceNotebooks(d, EvalConfig());
  ASSERT_TRUE(traces.ok());
  double total = 0.0;
  for (const auto& t : traces.value()) {
    total += MaxEdaSim(NotebookSignatures(t), gold_views);
  }
  double mean = total / traces.value().size();
  // Clearly related to gold, clearly below a gold notebook itself.
  EXPECT_GT(mean, 0.15);
  EXPECT_LT(mean, 0.95);
}

// -------------------------------------------------------------- insights

TEST(InsightsTest, CatalogSizesMatchPaperRange) {
  for (const char* id : {"cyber1", "cyber2", "cyber3", "cyber4"}) {
    auto catalog = InsightCatalog(id);
    EXPECT_GE(catalog.size(), 9u) << id;
    EXPECT_LE(catalog.size(), 15u) << id;
  }
  EXPECT_TRUE(InsightCatalog("flights1").empty());
}

TEST(InsightsTest, EmptyNotebookCoversNothing) {
  Dataset d = SmallDataset();
  EdaNotebook empty;
  empty.dataset_id = "cyber2";
  empty.table = d.table;
  EXPECT_DOUBLE_EQ(InsightCoverage(empty, InsightCatalog("cyber2")), 0.0);
}

class GoldCoverageTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldCoverageTest, GoldNotebooksCoverMostInsights) {
  auto dataset = MakeDataset(GetParam());
  ASSERT_TRUE(dataset.ok());
  auto notebooks = GoldNotebooks(dataset.value(), EvalConfig());
  ASSERT_TRUE(notebooks.ok());
  auto catalog = InsightCatalog(GetParam());
  double total = 0.0;
  for (const auto& notebook : notebooks.value()) {
    total += InsightCoverage(notebook, catalog);
  }
  double mean = total / notebooks.value().size();
  EXPECT_GT(mean, 0.45) << "gold notebooks should reveal most insights";
}

INSTANTIATE_TEST_SUITE_P(CyberDatasets, GoldCoverageTest,
                         ::testing::Values("cyber1", "cyber2", "cyber3",
                                           "cyber4"));

TEST(ViewPatternTest, MatchingSemantics) {
  auto view = Sig({"protocol == ICMP", "source_ip == 10.0.66.66"},
                  {"destination_ip"}, "COUNT(*)");
  ViewPattern all_match;
  all_match.filter_substrings = {"protocol == ICMP"};
  all_match.required_groups = {"destination_ip"};
  all_match.agg_substring = "COUNT";
  EXPECT_TRUE(all_match.Matches(view));

  ViewPattern wrong_group = all_match;
  wrong_group.required_groups = {"source_ip"};
  EXPECT_FALSE(wrong_group.Matches(view));

  ViewPattern wrong_filter = all_match;
  wrong_filter.filter_substrings = {"protocol == TCP"};
  EXPECT_FALSE(wrong_filter.Matches(view));

  ViewPattern empty;  // matches anything
  EXPECT_TRUE(empty.Matches(view));
}

// --------------------------------------------------------------- ratings

TEST(RatingsTest, GoldOutratesNoise) {
  Dataset d = SmallDataset();
  EnvConfig config = EvalConfig();
  auto gold = GoldNotebooks(d, config);
  ASSERT_TRUE(gold.ok());

  // A junk notebook: filter chains over the id column.
  EdaEnvironment env(d, config);
  int id_col = d.table->FindColumn("request_id");
  std::vector<EdaOperation> junk_ops;
  for (int i = 0; i < 8; ++i) {
    junk_ops.push_back(EdaOperation::Filter(id_col, CompareOp::kGt,
                                            Value(int64_t{i * 10})));
  }
  EdaNotebook junk = ReplayOperations(&env, junk_ops, "junk");

  auto gold_quality = AssessNotebook(d, gold.value()[0], gold.value(),
                                     config);
  ASSERT_TRUE(gold_quality.ok());
  auto junk_quality = AssessNotebook(d, junk, gold.value(), config);
  ASSERT_TRUE(junk_quality.ok());

  UserRatings gold_ratings = ProxyRatings(gold_quality.value());
  UserRatings junk_ratings = ProxyRatings(junk_quality.value());
  EXPECT_GT(gold_ratings.informativity, junk_ratings.informativity);
  EXPECT_GT(gold_ratings.comprehensibility, junk_ratings.comprehensibility);
  EXPECT_GT(gold_ratings.expertise, junk_ratings.expertise);
  EXPECT_GT(gold_ratings.human_equivalence, junk_ratings.human_equivalence);
}

TEST(RatingsTest, ScaleStaysWithinOneToSeven) {
  NotebookQuality perfect;
  perfect.mean_interestingness = 1.0;
  perfect.mean_coherency = 1.0;
  perfect.mean_diversity = 1.0;
  perfect.eda_sim_to_gold = 1.0;
  perfect.precision_to_gold = 1.0;
  UserRatings top = ProxyRatings(perfect);
  EXPECT_LE(top.informativity, 7.0);
  EXPECT_GT(top.informativity, 6.5);
  UserRatings bottom = ProxyRatings(NotebookQuality{});
  EXPECT_GE(bottom.comprehensibility, 1.0);
  EXPECT_LT(bottom.comprehensibility, 2.0);
}

TEST(RatingsTest, GoldIsScoredLeaveOneOut) {
  Dataset d = SmallDataset();
  auto gold = GoldNotebooks(d, EvalConfig());
  ASSERT_TRUE(gold.ok());
  auto quality = AssessNotebook(d, gold.value()[0], gold.value(),
                                EvalConfig());
  ASSERT_TRUE(quality.ok());
  // Compared against the other four gold notebooks, similarity is high but
  // not the trivial self-match 1.0.
  EXPECT_GT(quality.value().eda_sim_to_gold, 0.2);
  EXPECT_LT(quality.value().eda_sim_to_gold, 1.0);
}

}  // namespace
}  // namespace atena
