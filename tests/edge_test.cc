// Edge-case tests: empty selections, degenerate inputs, boundary values.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "data/registry.h"
#include "dataframe/describe.h"
#include "dataframe/ops.h"
#include "dataframe/stats.h"
#include "eval/metrics.h"

namespace atena {
namespace {

TablePtr TinyTable() {
  TableBuilder b("tiny");
  b.AddColumn("k", DataType::kString);
  b.AddColumn("v", DataType::kInt64);
  EXPECT_TRUE(b.AppendRow({Value(std::string("a")), Value(int64_t{1})}).ok());
  return b.Finish().value();
}

TEST(EdgeTest, FilterOverEmptySelection) {
  auto t = TinyTable();
  auto out = FilterRows(*t, {}, 0, CompareOp::kEq, Value(std::string("a")));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(EdgeTest, GroupOverEmptySelection) {
  auto t = TinyTable();
  GroupSpec spec;
  spec.group_columns = {0};
  auto out = GroupAggregate(*t, {}, spec);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().groups.empty());
  auto table = out.value().ToTable(*t);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_rows(), 0);
}

TEST(EdgeTest, StatsOverEmptySelection) {
  auto t = TinyTable();
  ColumnStats stats = ComputeColumnStats(*t->column(1), {});
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.distinct, 0);
  EXPECT_DOUBLE_EQ(stats.entropy, 0.0);
  EXPECT_TRUE(TokenFrequencies(*t->column(0), {}).empty());
}

TEST(EdgeTest, SingleRowTableOperations) {
  auto t = TinyTable();
  auto rows = AllRows(*t).value();
  GroupSpec spec;
  spec.group_columns = {0};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = 1;
  auto grouped = GroupAggregate(*t, rows, spec);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped.value().groups.size(), 1u);
  EXPECT_DOUBLE_EQ(grouped.value().groups[0].aggregate, 1.0);
}

TEST(EdgeTest, AllNullAggregateIsInvalid) {
  TableBuilder b("nulls");
  b.AddColumn("k", DataType::kString);
  b.AddColumn("v", DataType::kFloat64);
  ASSERT_TRUE(b.AppendRow({Value(std::string("a")), Value::Null()}).ok());
  ASSERT_TRUE(b.AppendRow({Value(std::string("a")), Value::Null()}).ok());
  auto t = b.Finish().value();
  GroupSpec spec;
  spec.group_columns = {0};
  spec.agg = AggFunc::kSum;
  spec.agg_column = 1;
  auto grouped = GroupAggregate(*t, AllRows(*t).value(), spec);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped.value().groups.size(), 1u);
  EXPECT_FALSE(grouped.value().groups[0].agg_valid);
  // The materialized display shows a null aggregate.
  auto table = grouped.value().ToTable(*t);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value()->column(1)->IsNull(0));
}

TEST(EdgeTest, DescribeOfAllNullColumn) {
  TableBuilder b("nulls");
  b.AddColumn("v", DataType::kFloat64);
  ASSERT_TRUE(b.AppendRow({Value::Null()}).ok());
  auto t = b.Finish().value();
  auto described = DescribeTable(*t);
  ASSERT_TRUE(described.ok());
  const Table& d = *described.value();
  EXPECT_TRUE(d.column(d.FindColumn("min"))->IsNull(0));
  EXPECT_TRUE(d.column(d.FindColumn("top_value"))->IsNull(0));
}

TEST(EdgeTest, MetricsWithEmptyGoldSet) {
  ViewSignature v;
  v.groups = {"g"};
  std::vector<std::vector<ViewSignature>> no_gold;
  EXPECT_DOUBLE_EQ(ViewPrecision({v}, no_gold), 0.0);
  EXPECT_DOUBLE_EQ(TBleu({v}, no_gold, 2), 0.0);
  EXPECT_DOUBLE_EQ(MaxEdaSim({v}, no_gold), 0.0);
}

TEST(EdgeTest, KlDivergenceWithOneEmptyHistogram) {
  std::unordered_map<int64_t, double> p = {{1, 10}};
  std::unordered_map<int64_t, double> empty;
  double kl = KlDivergence(p, empty);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GE(kl, 0.0);
}

TEST(EdgeTest, EnvironmentOnTinyDatasetSurvivesFullEpisode) {
  // Build a 3-row dataset and run a random episode: nothing should crash
  // and most actions should be no-ops without ever deadlocking.
  TableBuilder b("micro");
  b.AddColumn("k", DataType::kString);
  b.AddColumn("v", DataType::kInt64);
  ASSERT_TRUE(b.AppendRow({Value(std::string("a")), Value(int64_t{1})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(std::string("b")), Value(int64_t{2})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(std::string("a")), Value(int64_t{3})}).ok());
  Dataset dataset;
  dataset.table = b.Finish().value();
  dataset.info.id = "micro";

  EnvConfig config;
  config.episode_length = 10;
  config.num_term_bins = 4;
  EdaEnvironment env(dataset, config);
  Rng rng(1);
  env.Reset();
  while (!env.done()) {
    env.Step(SampleRandomAction(env.action_space(), &rng));
  }
  EXPECT_EQ(env.steps().size(), 10u);
}

}  // namespace
}  // namespace atena
