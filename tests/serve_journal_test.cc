// Durable serving: the write-ahead session journal (DESIGN.md §15).
//
// The contract under test is bit-identical crash recovery: a manager
// killed at ANY point — between ticks, mid-append (simulated by
// truncating the journal at every byte offset), mid-compaction (every
// file-io failure point), with a corrupt compaction snapshot — must
// recover to a state whose subsequent traces equal an uninterrupted
// run's, bit for bit, at any thread count. Outcomes are re-delivered
// at-least-once after recovery, so every merge here dedupes by session
// id and asserts re-deliveries are bit-identical to the originals.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "data/registry.h"
#include "index/notebook_store.h"
#include "reward/compound.h"
#include "rl/checkpoint.h"
#include "serve/health_log.h"
#include "serve/journal.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace atena {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveIfExists(const std::string& path) {
  if (FileExists(path)) std::remove(path.c_str());
}

/// Removes a journal plus every artifact a run can leave next to it.
void CleanJournalFamily(const std::string& path) {
  for (const char* suffix : {"", ".prev", ".new", ".tmp"}) {
    RemoveIfExists(path + suffix);
  }
  for (int64_t seq = 0; seq < 64; ++seq) {
    RemoveIfExists(JournalSidecarPath(path, seq));
  }
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadRaw(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok()) << path;
  return bytes;
}

SnapshotOptions SmallOptions() {
  SnapshotOptions options;
  options.env.episode_length = 6;
  options.env.num_term_bins = 4;
  options.policy.hidden = {24, 24};
  return options;
}

std::shared_ptr<PolicySnapshot> SmallSnapshot(
    const std::string& dataset = "cyber2") {
  return std::make_shared<PolicySnapshot>(MakeDataset(dataset).value(),
                                          SmallOptions());
}

// The mixed workload of the determinism tests: staggered step budgets
// (some spanning several episodes), interleaved greedy and sampling.
std::vector<SessionConfig> MixedConfigs(int count) {
  std::vector<SessionConfig> configs;
  for (int i = 0; i < count; ++i) {
    SessionConfig config;
    config.seed = 900 + static_cast<uint64_t>(i);
    config.max_steps = 4 + (i % 3) * 5;  // 4, 9 or 14 steps; episodes are 6.
    config.greedy = (i % 2) == 0;
    configs.push_back(config);
  }
  return configs;
}

void ExpectTracesEqual(const SessionTrace& got, const SessionTrace& want,
                       const Table& table, const std::string& context) {
  ASSERT_EQ(got.steps.size(), want.steps.size()) << context;
  for (size_t i = 0; i < got.steps.size(); ++i) {
    const ServedStep& g = got.steps[i];
    const ServedStep& w = want.steps[i];
    EXPECT_EQ(g.op.Describe(table), w.op.Describe(table))
        << context << " step " << i;
    EXPECT_EQ(g.valid, w.valid) << context << " step " << i;
    EXPECT_EQ(g.reward, w.reward) << context << " step " << i;
    EXPECT_EQ(g.display_signature, w.display_signature)
        << context << " step " << i;
  }
  EXPECT_EQ(got.total_reward, want.total_reward) << context;
}

uint64_t MustAdmit(SessionManager& manager, const SessionConfig& config) {
  Result<uint64_t> id = manager.Admit(config);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return id.ok() ? id.value() : 0;
}

SessionManager::RecoveryInfo MustRecover(SessionManager& manager,
                                         const std::string& path) {
  SessionManager::RecoveryInfo info;
  Status status = manager.RecoverFromJournal(path, &info);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return info;
}

/// Folds a batch of outcomes into `merged`, deduping by session id.
/// Recovery re-delivers post-compaction retirements (at-least-once), so a
/// duplicate delivery is expected — but it must be bit-identical to the
/// one already seen.
void MergeOutcomes(std::map<uint64_t, SessionOutcome>* merged,
                   std::vector<SessionOutcome> outcomes, const Table& table,
                   const std::string& context) {
  for (auto& outcome : outcomes) {
    auto it = merged->find(outcome.trace.id);
    if (it != merged->end()) {
      ExpectTracesEqual(outcome.trace, it->second.trace, table,
                        context + " re-delivered id " +
                            std::to_string(outcome.trace.id));
      EXPECT_EQ(outcome.reason, it->second.reason) << context;
      EXPECT_EQ(outcome.final_stage, it->second.final_stage) << context;
      EXPECT_EQ(outcome.degraded_steps, it->second.degraded_steps) << context;
    }
    (*merged)[outcome.trace.id] = std::move(outcome);
  }
}

/// Asserts every merged outcome completed cleanly and matches its serial
/// reference trace bit for bit.
void ExpectMergedMatchesReference(
    const std::map<uint64_t, SessionOutcome>& merged,
    const std::map<uint64_t, SessionTrace>& reference_by_seed,
    const Table& table, const std::string& context) {
  for (const auto& [id, outcome] : merged) {
    EXPECT_EQ(outcome.reason, RetireReason::kCompleted)
        << context << " id " << id << ": "
        << RetireReasonName(outcome.reason) << " "
        << outcome.status.ToString();
    auto it = reference_by_seed.find(outcome.trace.seed);
    ASSERT_NE(it, reference_by_seed.end()) << context << " id " << id;
    ExpectTracesEqual(outcome.trace, it->second, table,
                      context + " seed " + std::to_string(outcome.trace.seed));
  }
}

// ---------------------------------------------------------------------------
// Durable append primitive (common/file_io)

TEST(AppendDurableFileTest, AppendsAccumulateAcrossCalls) {
  const std::string path = TempPath("append_durable_basic.txt");
  RemoveIfExists(path);
  ASSERT_TRUE(AppendDurableFile(path, "one\n").ok());
  ASSERT_TRUE(AppendDurableFile(path, "two\n").ok());
  EXPECT_EQ(ReadRaw(path), "one\ntwo\n");
  RemoveIfExists(path);
}

TEST(AppendDurableFileTest, InjectedFailuresSurfaceAsErrors) {
  const std::string path = TempPath("append_durable_faulty.txt");
  for (const char* op : {"append-open", "append-write", "append-fsync"}) {
    RemoveIfExists(path);
    SetFileIoFailureHookForTesting(
        [op](const char* hook_op, const std::string&) {
          return std::string(hook_op) == op;
        });
    Status status = AppendDurableFile(path, "payload");
    SetFileIoFailureHookForTesting({});
    EXPECT_FALSE(status.ok()) << op;
    if (std::string(op) == "append-open") {
      EXPECT_FALSE(FileExists(path)) << "failed open must not create " << path;
    }
  }
  RemoveIfExists(path);
}

// ---------------------------------------------------------------------------
// Health log: per-event durable appends, torn-line trim, JSON numbers

TEST(HealthLogTest, AppendsOneDurableLinePerEvent) {
  const std::string path = TempPath("health_per_event.jsonl");
  RemoveIfExists(path);
  {
    ServingHealthLog log(path);
    log.Append("\"type\":\"a\"");
    log.Append("\"type\":\"b\"");
    EXPECT_EQ(log.events(), 2);
  }
  const std::string bytes = ReadRaw(path);
  EXPECT_NE(bytes.find("{\"event\":1,\"type\":\"a\"}\n"), std::string::npos)
      << bytes;
  EXPECT_NE(bytes.find("{\"event\":2,\"type\":\"b\"}\n"), std::string::npos)
      << bytes;
  // Reopening resumes numbering after the last complete line.
  ServingHealthLog reopened(path);
  EXPECT_EQ(reopened.events(), 2);
  reopened.Append("\"type\":\"c\"");
  EXPECT_NE(ReadRaw(path).find("{\"event\":3,\"type\":\"c\"}"),
            std::string::npos);
  RemoveIfExists(path);
}

TEST(HealthLogTest, TornFinalLineIsTrimmedOnReopen) {
  const std::string path = TempPath("health_torn.jsonl");
  RemoveIfExists(path);
  {
    ServingHealthLog log(path);
    log.Append("\"type\":\"kept\"");
  }
  const std::string complete = ReadRaw(path);
  // A crash mid-append can only tear the FINAL line (O_APPEND + one write).
  WriteRaw(path, complete + "{\"event\":2,\"type\":\"to");
  ServingHealthLog reopened(path);
  EXPECT_EQ(reopened.events(), 1);
  EXPECT_EQ(ReadRaw(path), complete);
  reopened.Append("\"type\":\"next\"");
  EXPECT_NE(ReadRaw(path).find("{\"event\":2,\"type\":\"next\"}"),
            std::string::npos);
  RemoveIfExists(path);
}

TEST(HealthLogTest, JsonNumberPinsNonFiniteConvention) {
  // The rl/guardrails convention: JSON cannot carry non-finite doubles, so
  // they become quoted strings — e.g. a degraded-step ratio over zero
  // recovered steps (0/0 = NaN) must still produce a parseable line.
  EXPECT_EQ(JsonNumber(std::nan("")), "\"nan\"");
  EXPECT_EQ(JsonNumber(HUGE_VAL), "\"inf\"");
  EXPECT_EQ(JsonNumber(-HUGE_VAL), "\"-inf\"");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(0.0), "0");
}

// ---------------------------------------------------------------------------
// Journal file shape and group commit

TEST(ServeJournalTest, JournaledRunWritesAParseableJournal) {
  auto snapshot = SmallSnapshot();
  const std::string path = TempPath("serve_journal_shape.jnl");
  CleanJournalFamily(path);

  ServeOptions options;
  options.journal_path = path;
  SessionManager manager(snapshot, options);
  const auto configs = MixedConfigs(2);
  for (const auto& config : configs) MustAdmit(manager, config);
  for (int t = 0; t < 3; ++t) manager.Tick();

  ASSERT_TRUE(FileExists(path));
  Result<JournalContents> parsed = ReadJournal(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JournalContents& contents = parsed.value();
  EXPECT_TRUE(contents.has_meta);
  EXPECT_EQ(contents.meta.dataset_id, snapshot->dataset().info.id);
  EXPECT_EQ(contents.meta.observation_dim, snapshot->observation_dim());
  EXPECT_EQ(contents.meta.episode_length, 6);
  EXPECT_TRUE(contents.has_snapshot);
  EXPECT_TRUE(contents.snapshot_valid);
  EXPECT_TRUE(contents.clean_tail);
  // Lazy start: the journal began (empty snapshot) at the first admit, so
  // both admits and all three ticks are records, not snapshot state.
  EXPECT_TRUE(contents.snapshot.sessions.empty());
  int admits = 0, ticks = 0;
  for (const auto& record : contents.records) {
    admits += record.kind == JournalRecord::Kind::kAdmit;
    ticks += record.kind == JournalRecord::Kind::kTick;
  }
  EXPECT_EQ(admits, 2);
  EXPECT_EQ(ticks, 3);

  const ServeStats& stats = manager.stats();
  EXPECT_TRUE(manager.journal_healthy());
  EXPECT_EQ(stats.journal_appends, 5);  // 2 admits + 3 group commits.
  EXPECT_GT(stats.journal_bytes, 0);
  EXPECT_EQ(stats.journal_failures, 0);
  EXPECT_EQ(stats.journal_compactions, 1);  // The lazy initial start.
  CleanJournalFamily(path);
}

TEST(ServeJournalTest, GroupCommitSharesOneFsyncAcrossTicks) {
  auto snapshot = SmallSnapshot();
  const std::string path = TempPath("serve_journal_groupcommit.jnl");
  CleanJournalFamily(path);

  ServeOptions options;
  options.journal_path = path;
  SessionManager manager(snapshot, options);
  for (uint64_t seed : {820, 821, 822}) {
    SessionConfig config;
    config.seed = seed;
    config.max_steps = 6;
    MustAdmit(manager, config);
  }

  // Count durable flushes on the journal during the ticking phase only
  // (admission barriers already happened). The group-commit contract:
  // each tick appends ONE record (not one per stepped session), and the
  // fdatasync is deferred to the next durability barrier — so N ticks
  // with nothing delivered in between cost ZERO flushes, and the single
  // TakeCompleted delivering the finished sessions costs exactly one.
  auto fsyncs = std::make_shared<int>(0);
  SetFileIoFailureHookForTesting(
      [fsyncs, path](const char* op, const std::string& hook_path) {
        if (std::string(op) == "append-fsync" && hook_path == path) {
          ++*fsyncs;
        }
        return false;
      });
  const int kTicks = 4;
  for (int t = 0; t < kTicks; ++t) {
    EXPECT_EQ(manager.Tick(), 3);  // All three sessions stepped...
    EXPECT_TRUE(manager.TakeCompleted().empty());
  }
  EXPECT_EQ(*fsyncs, 0);  // ...without a single flush so far.

  manager.Drain();  // Remaining ticks finish all three sessions.
  const auto outcomes = manager.TakeCompleted();
  EXPECT_EQ(outcomes.size(), 3u);
  SetFileIoFailureHookForTesting({});
  // One barrier made every record — the three admits and every tick —
  // durable before the outcomes became visible.
  EXPECT_EQ(*fsyncs, 1);
  EXPECT_EQ(manager.stats().journal_syncs, 1);
  CleanJournalFamily(path);
}

TEST(ServeJournalTest, JournaledTracesMatchSerialReference) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_overhead_free.jnl");
  CleanJournalFamily(path);

  ServeOptions options;
  options.journal_path = path;
  SessionManager manager(snapshot, options);
  const auto configs = MixedConfigs(4);
  for (const auto& config : configs) MustAdmit(manager, config);
  manager.Drain();

  std::map<uint64_t, SessionOutcome> merged;
  MergeOutcomes(&merged, manager.TakeCompleted(), table, "journaled");
  ASSERT_EQ(merged.size(), configs.size());
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }
  // Journaling must never perturb a trace — it observes commits, it does
  // not participate in them.
  ExpectMergedMatchesReference(merged, reference, table, "journaled");
  CleanJournalFamily(path);
}

// ---------------------------------------------------------------------------
// Crash recovery: bit-identity at every kill point and thread count

TEST(ServeRecoveryTest, KillAtEveryTickRecoversBitIdentically) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const auto configs = MixedConfigs(4);
  const std::string path = TempPath("serve_journal_kill.jnl");

  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }

  const int kMaxTicks = 15;  // Longest session is 14 steps.
  for (int threads : {1, 2, 4}) {
    // Recovery deliberately runs at a DIFFERENT thread count than the
    // crashed run: bit-identity must hold across the crash boundary even
    // when the recovered runtime is shaped differently.
    const int recover_threads = threads == 1 ? 4 : (threads == 2 ? 1 : 2);
    for (int kill_tick = 0; kill_tick <= kMaxTicks; ++kill_tick) {
      const std::string context = std::to_string(threads) + " threads, kill@" +
                                  std::to_string(kill_tick);
      CleanJournalFamily(path);
      std::map<uint64_t, SessionOutcome> merged;
      {
        ServeOptions options;
        options.num_threads = threads;
        options.journal_path = path;
        SessionManager manager(snapshot, options);
        for (const auto& config : configs) MustAdmit(manager, config);
        for (int t = 0; t < kill_tick; ++t) manager.Tick();
        MergeOutcomes(&merged, manager.TakeCompleted(), table, context);
        // Crash: the manager dies here without draining or flushing —
        // everything the recovery sees was already durable.
      }
      ServeOptions options;
      options.num_threads = recover_threads;
      options.journal_path = path;
      SessionManager recovered(snapshot, options);
      SessionManager::RecoveryInfo info = MustRecover(recovered, path);
      EXPECT_FALSE(info.used_prev_fallback) << context;
      recovered.Drain();
      MergeOutcomes(&merged, recovered.TakeCompleted(), table, context);

      ASSERT_EQ(merged.size(), configs.size()) << context;
      ExpectMergedMatchesReference(merged, reference, table, context);
    }
  }
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, HardStopLeavesACleanlyRecoverableJournal) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_hardstop.jnl");
  CleanJournalFamily(path);

  std::map<uint64_t, SessionOutcome> before;
  {
    ServeOptions options;
    options.journal_path = path;
    SessionManager manager(snapshot, options);
    for (const auto& config : MixedConfigs(3)) MustAdmit(manager, config);
    manager.Tick();
    manager.Tick();
    EXPECT_EQ(manager.HardStop(), 3);
    MergeOutcomes(&before, manager.TakeCompleted(), table, "pre-crash");
  }
  ASSERT_EQ(before.size(), 3u);

  ServeOptions options;
  options.journal_path = path;
  SessionManager recovered(snapshot, options);
  MustRecover(recovered, path);
  EXPECT_EQ(recovered.active_sessions(), 0);
  EXPECT_EQ(recovered.stats().hard_stopped, 3);
  // The stop retirements were journaled, so they are re-delivered — with
  // the exact partial traces the pre-crash consumer saw.
  auto redelivered = recovered.TakeCompleted();
  ASSERT_EQ(redelivered.size(), 3u);
  for (const auto& outcome : redelivered) {
    EXPECT_EQ(outcome.reason, RetireReason::kHardStopped);
    auto it = before.find(outcome.trace.id);
    ASSERT_NE(it, before.end());
    ExpectTracesEqual(outcome.trace, it->second.trace, table,
                      "hard-stopped id " + std::to_string(outcome.trace.id));
  }
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, RewardedSessionsReplayAndVerifyBitExactly) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_reward.jnl");
  CleanJournalFamily(path);

  CompoundReward::Options reward_options;
  reward_options.enable_coherency = false;  // No classifier needed.
  auto factory = [reward_options]() {
    return std::make_shared<CompoundReward>(nullptr, reward_options);
  };
  const auto configs = MixedConfigs(4);

  std::map<uint64_t, SessionOutcome> merged;
  {
    ServeOptions options;
    options.journal_path = path;
    options.reward_factory = factory;
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    for (int t = 0; t < 5; ++t) manager.Tick();
    MergeOutcomes(&merged, manager.TakeCompleted(), table, "pre-crash");
  }

  // Replay recomputes every journaled step's reward with a fresh signal
  // and verifies it bit-exactly against the recorded value — nonzero
  // rewards make that verification meaningful.
  ServeOptions options;
  options.journal_path = path;
  options.reward_factory = factory;
  SessionManager recovered(snapshot, options);
  MustRecover(recovered, path);
  recovered.Drain();
  MergeOutcomes(&merged, recovered.TakeCompleted(), table, "recovered");

  ASSERT_EQ(merged.size(), configs.size());
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    CompoundReward reward(nullptr, reward_options);
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, &reward);
  }
  ExpectMergedMatchesReference(merged, reference, table, "rewarded");
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, DegradationLadderStateSurvivesRecovery) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_degraded.jnl");
  CleanJournalFamily(path);

  // The victim overruns its first two steps, walking kNormal →
  // kNoDiversity → kGreedy, then stays (sticky) at kGreedy — a session
  // whose mid-ladder state must survive the crash.
  static constexpr int64_t kDeadline = 1000;
  auto victim_id = std::make_shared<uint64_t>(0);
  auto build_options = [&](const std::string& journal) {
    ServeOptions options;
    options.journal_path = journal;
    options.step_deadline_nanos = kDeadline;
    options.fault_injection.step_duration_nanos =
        [victim_id](uint64_t session_id, int step_index) -> int64_t {
      return (session_id == *victim_id && step_index < 2) ? 5 * kDeadline
                                                          : kDeadline / 10;
    };
    return options;
  };
  std::vector<SessionConfig> configs;
  for (uint64_t seed : {700, 701, 702}) {
    SessionConfig config;
    config.seed = seed;
    config.max_steps = 8;
    configs.push_back(config);
  }
  const size_t victim = 1;

  // Uninterrupted reference run (injected durations are deterministic).
  std::map<uint64_t, SessionOutcome> reference;
  {
    SessionManager manager(snapshot, build_options(""));
    for (size_t i = 0; i < configs.size(); ++i) {
      const uint64_t id = MustAdmit(manager, configs[i]);
      if (i == victim) *victim_id = id;
    }
    manager.Drain();
    for (auto& outcome : manager.TakeCompleted()) {
      reference[outcome.trace.seed] = std::move(outcome);
    }
  }
  ASSERT_EQ(reference.size(), configs.size());
  EXPECT_EQ(reference.at(701).final_stage, DegradeStage::kGreedy);
  EXPECT_GT(reference.at(701).degraded_steps, 0);

  // Crashed run, killed with the victim mid-ladder at kGreedy.
  std::map<uint64_t, SessionOutcome> merged;
  {
    SessionManager manager(snapshot, build_options(path));
    for (size_t i = 0; i < configs.size(); ++i) {
      const uint64_t id = MustAdmit(manager, configs[i]);
      if (i == victim) *victim_id = id;
    }
    for (int t = 0; t < 4; ++t) manager.Tick();
    MergeOutcomes(&merged, manager.TakeCompleted(), table, "pre-crash");
  }
  SessionManager recovered(snapshot, build_options(path));
  MustRecover(recovered, path);
  recovered.Drain();
  MergeOutcomes(&merged, recovered.TakeCompleted(), table, "recovered");

  ASSERT_EQ(merged.size(), configs.size());
  for (const auto& [id, outcome] : merged) {
    const SessionOutcome& want = reference.at(outcome.trace.seed);
    const std::string context = "seed " + std::to_string(outcome.trace.seed);
    EXPECT_EQ(outcome.reason, want.reason) << context;
    EXPECT_EQ(outcome.final_stage, want.final_stage) << context;
    EXPECT_EQ(outcome.degraded_steps, want.degraded_steps) << context;
    ExpectTracesEqual(outcome.trace, want.trace, table, context);
  }
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, ReloadedSnapshotGenerationsSurviveRecovery) {
  Dataset dataset = MakeDataset("cyber2").value();
  auto snapshot = std::make_shared<PolicySnapshot>(dataset, SmallOptions());
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_reload.jnl");
  const std::string retrained_path = TempPath("serve_journal_retrained.bin");
  CleanJournalFamily(path);
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(retrained_path + suffix);
  }

  // The reload target: same architecture, different weights.
  SnapshotOptions retrained_options = SmallOptions();
  retrained_options.policy.seed = 555;
  auto retrained =
      std::make_shared<PolicySnapshot>(dataset, retrained_options);
  ASSERT_TRUE(SaveTrainingCheckpoint(retrained_path,
                                     retrained->policy()->Parameters(),
                                     TrainingCheckpoint{})
                  .ok());

  SessionConfig old_gen;
  old_gen.seed = 800;
  old_gen.max_steps = 9;
  SessionConfig new_gen;
  new_gen.seed = 801;
  new_gen.max_steps = 6;

  // One scripted run: admit on gen 0, hot-reload, admit on gen 1.
  auto run = [&](SessionManager& manager) {
    MustAdmit(manager, old_gen);
    manager.Tick();
    manager.Tick();
    ASSERT_TRUE(manager.ReloadSnapshot(retrained_path).ok());
    MustAdmit(manager, new_gen);
    manager.Tick();
    manager.Tick();
  };

  std::map<uint64_t, SessionTrace> reference;
  {
    SessionManager manager(snapshot, ServeOptions{});
    run(manager);
    manager.Drain();
    for (auto& outcome : manager.TakeCompleted()) {
      EXPECT_EQ(outcome.reason, RetireReason::kCompleted);
      reference[outcome.trace.seed] = std::move(outcome.trace);
    }
  }
  ASSERT_EQ(reference.size(), 2u);

  std::map<uint64_t, SessionOutcome> merged;
  {
    ServeOptions options;
    options.journal_path = path;
    SessionManager manager(snapshot, options);
    run(manager);
    MergeOutcomes(&merged, manager.TakeCompleted(), table, "pre-crash");
  }
  // Recovery re-pins each session to its admission-time generation: the
  // gen-0 session must keep acting on the constructor snapshot, the gen-1
  // session on the retrained weights reloaded from the journaled path.
  ServeOptions options;
  options.journal_path = path;
  SessionManager recovered(snapshot, options);
  MustRecover(recovered, path);
  EXPECT_EQ(recovered.stats().reload_successes, 1);
  recovered.Drain();
  MergeOutcomes(&merged, recovered.TakeCompleted(), table, "recovered");

  ASSERT_EQ(merged.size(), 2u);
  ExpectMergedMatchesReference(merged, reference, table, "reload");
  CleanJournalFamily(path);
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(retrained_path + suffix);
  }
}

TEST(ServeRecoveryTest, NotebookStoreContentsSurviveRecovery) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_notebooks.jnl");
  CleanJournalFamily(path);
  const auto configs = MixedConfigs(4);

  // Uninterrupted reference corpus.
  auto reference_store = std::make_shared<NotebookStore>();
  {
    ServeOptions options;
    options.notebook_store = reference_store;
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    manager.Drain();
    manager.TakeCompleted();
  }
  ASSERT_GT(reference_store->size(), 0u);

  // Crashed run with aggressive auto-compaction, so the store's sidecar
  // is persisted and re-loaded mid-stream (not just at the lazy start).
  {
    ServeOptions options;
    options.journal_path = path;
    options.journal_compact_bytes = 400;
  options.journal_compact_snap_factor = 0;
    options.notebook_store = std::make_shared<NotebookStore>();
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    for (int t = 0; t < 8; ++t) manager.Tick();  // Past episode length 6.
    EXPECT_GT(manager.stats().journal_compactions, 1);
    EXPECT_GT(manager.stats().notebooks_registered, 0);
  }

  // Recovery starts from an EMPTY store: the sidecar restores the
  // pre-compaction corpus, replay re-registers post-compaction notebooks.
  ServeOptions options;
  options.journal_path = path;
  options.journal_compact_bytes = 400;
  options.journal_compact_snap_factor = 0;
  options.notebook_store = std::make_shared<NotebookStore>();
  SessionManager recovered(snapshot, options);
  MustRecover(recovered, path);
  recovered.Drain();
  std::map<uint64_t, SessionOutcome> merged;
  MergeOutcomes(&merged, recovered.TakeCompleted(), table, "notebooks");

  const NotebookStore& got = *recovered.notebook_store();
  ASSERT_EQ(got.size(), reference_store->size());
  for (uint64_t id = 0; id < reference_store->size(); ++id) {
    const NotebookStore::Entry want = reference_store->entry(id);
    const NotebookStore::Entry have = got.entry(id);
    EXPECT_EQ(have.session_id, want.session_id) << "notebook " << id;
    EXPECT_EQ(have.session_seed, want.session_seed) << "notebook " << id;
    EXPECT_EQ(have.length, want.length) << "notebook " << id;
    // Display-vector sequences must survive the sidecar round trip and
    // the replayed re-registrations bit for bit.
    EXPECT_EQ(got.sequence(id), reference_store->sequence(id))
        << "notebook " << id;
  }
  CleanJournalFamily(path);
}

// ---------------------------------------------------------------------------
// Torn, truncated and corrupt journals

/// Runs a small journaled workload and "crashes", returning the journal's
/// bytes. Two sessions, two ticks: big enough to hold admits and group
/// commits, small enough for every-byte matrices.
std::string BuildCrashedJournal(
    const std::shared_ptr<PolicySnapshot>& snapshot, const std::string& path,
    std::vector<SessionConfig>* configs_out) {
  CleanJournalFamily(path);
  std::vector<SessionConfig> configs;
  for (int i = 0; i < 2; ++i) {
    SessionConfig config;
    config.seed = 900 + static_cast<uint64_t>(i);
    config.max_steps = i == 0 ? 4 : 9;
    config.greedy = i == 0;
    configs.push_back(config);
  }
  {
    ServeOptions options;
    options.num_threads = 1;
    options.journal_path = path;
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    manager.Tick();
    manager.Tick();
  }
  if (configs_out) *configs_out = configs;
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok());
  return bytes;
}

TEST(ServeRecoveryTest, TruncationAtEveryByteRecoversOrFailsClean) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_trunc_src.jnl");
  const std::string trunc = TempPath("serve_journal_trunc.jnl");
  std::vector<SessionConfig> configs;
  const std::string full = BuildCrashedJournal(snapshot, path, &configs);
  ASSERT_GT(full.size(), 100u);
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }
  CleanJournalFamily(trunc);  // Especially any stale .prev fallback.

  int recovered_count = 0;
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteRaw(trunc, full.substr(0, cut));
    // Prefix semantics at the parse layer: a truncated file must never be
    // a parse crash, and any snapshot it does yield must be usable.
    Result<JournalContents> parsed = ReadJournal(trunc);
    const bool must_recover = parsed.ok() && parsed.value().has_meta &&
                              parsed.value().snapshot_valid;

    ServeOptions options;
    options.num_threads = 1;  // Journal-less recovery probe.
    SessionManager manager(snapshot, options);
    SessionManager::RecoveryInfo info;
    Status status = manager.RecoverFromJournal(trunc, &info);
    if (must_recover) {
      ASSERT_TRUE(status.ok()) << "cut " << cut << ": " << status.ToString();
    }
    if (!status.ok()) continue;  // A clean error is a valid outcome.
    ++recovered_count;
    // Whatever prefix survived, the recovered runtime must finish it into
    // reference traces — a shorter prefix only means more re-execution.
    manager.Drain();
    std::map<uint64_t, SessionOutcome> merged;
    MergeOutcomes(&merged, manager.TakeCompleted(), table,
                  "cut " + std::to_string(cut));
    ExpectMergedMatchesReference(merged, reference, table,
                                 "cut " + std::to_string(cut));
  }
  // The matrix must actually exercise successful recoveries (at minimum
  // the untruncated file and every cut inside the torn tail).
  EXPECT_GT(recovered_count, 1);
  CleanJournalFamily(path);
  CleanJournalFamily(trunc);
}

TEST(ServeRecoveryTest, ByteCorruptionNeverCrashesAndNeverDiverges) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_flip_src.jnl");
  const std::string flipped = TempPath("serve_journal_flip.jnl");
  std::vector<SessionConfig> configs;
  const std::string full = BuildCrashedJournal(snapshot, path, &configs);
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }
  CleanJournalFamily(flipped);

  // Parse layer: a flipped byte at EVERY offset must yield ok-or-clean-
  // error, never a crash or an accepted corrupt record payload.
  for (size_t offset = 0; offset < full.size(); ++offset) {
    std::string corrupt = full;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x5A);
    WriteRaw(flipped, corrupt);
    Result<JournalContents> parsed = ReadJournal(flipped);
    (void)parsed;  // Any Status is acceptable; not crashing is the test.
  }

  // Recovery layer (sampled): whatever a corrupt journal recovers to must
  // still drain into reference traces — CRC framing guarantees recovery
  // only ever sees a valid prefix, so divergence is impossible.
  for (size_t offset = 0; offset < full.size(); offset += 7) {
    std::string corrupt = full;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x5A);
    WriteRaw(flipped, corrupt);
    ServeOptions options;
    options.num_threads = 1;
    SessionManager manager(snapshot, options);
    Status status = manager.RecoverFromJournal(flipped);
    if (!status.ok()) continue;
    manager.Drain();
    std::map<uint64_t, SessionOutcome> merged;
    MergeOutcomes(&merged, manager.TakeCompleted(), table,
                  "flip " + std::to_string(offset));
    ExpectMergedMatchesReference(merged, reference, table,
                                 "flip " + std::to_string(offset));
  }
  CleanJournalFamily(path);
  CleanJournalFamily(flipped);
}

TEST(ServeRecoveryTest, TornHeaderRecoversToEmptyRuntime) {
  auto snapshot = SmallSnapshot();
  const std::string path = TempPath("serve_journal_torn_header.jnl");
  CleanJournalFamily(path);
  // A crash during the very first journal write can leave any prefix of
  // the header line — nothing was ever durable, so recovery is an empty
  // (but fully usable) runtime, not an error.
  WriteRaw(path, "ATENA-S");
  SessionManager manager(snapshot, ServeOptions{});
  SessionManager::RecoveryInfo info = MustRecover(manager, path);
  EXPECT_TRUE(info.torn_tail);
  EXPECT_EQ(info.sessions_restored, 0);
  SessionConfig config;
  config.seed = 42;
  config.max_steps = 4;
  MustAdmit(manager, config);
  manager.Drain();
  EXPECT_EQ(manager.TakeCompleted().size(), 1u);
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, MissingJournalIsNotFound) {
  auto snapshot = SmallSnapshot();
  const std::string path = TempPath("serve_journal_never_written.jnl");
  CleanJournalFamily(path);
  SessionManager manager(snapshot, ServeOptions{});
  Status status = manager.RecoverFromJournal(path);
  EXPECT_EQ(status.code(), StatusCode::kNotFound) << status.ToString();
}

TEST(ServeRecoveryTest, RecoveryRequiresAFreshManager) {
  auto snapshot = SmallSnapshot();
  const std::string path = TempPath("serve_journal_used_manager.jnl");
  std::vector<SessionConfig> configs;
  BuildCrashedJournal(snapshot, path, &configs);

  SessionManager manager(snapshot, ServeOptions{});
  MustAdmit(manager, configs[0]);
  Status status = manager.RecoverFromJournal(path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, MismatchedConfigurationIsRejected) {
  auto snapshot = SmallSnapshot();
  const std::string path = TempPath("serve_journal_mismatch.jnl");
  BuildCrashedJournal(snapshot, path, nullptr);

  // A journal must never silently replay against a different environment
  // shape (meta binds dataset id + env dimensions).
  SnapshotOptions other = SmallOptions();
  other.env.episode_length = 8;
  auto mismatched = std::make_shared<PolicySnapshot>(
      MakeDataset("cyber2").value(), other);
  SessionManager manager(mismatched, ServeOptions{});
  Status status = manager.RecoverFromJournal(path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
  EXPECT_NE(status.message().find("episode_length"), std::string::npos)
      << status.message();
  CleanJournalFamily(path);
}

// ---------------------------------------------------------------------------
// Compaction: crash-mid-compaction, corrupt snapshot → .prev fallback

TEST(ServeRecoveryTest, CompactedJournalRecoversBitIdentically) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_compacted.jnl");
  CleanJournalFamily(path);
  const auto configs = MixedConfigs(4);
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }

  std::map<uint64_t, SessionOutcome> merged;
  {
    ServeOptions options;
    options.journal_path = path;
    options.journal_compact_bytes = 1;       // Compact after every tick:
    options.journal_compact_snap_factor = 0;  // floor alone decides.
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    for (int t = 0; t < 7; ++t) manager.Tick();
    EXPECT_GT(manager.stats().journal_compactions, 3);
    MergeOutcomes(&merged, manager.TakeCompleted(), table, "pre-crash");
  }
  ASSERT_TRUE(FileExists(path + ".prev"));

  ServeOptions options;
  options.journal_path = path;
  SessionManager recovered(snapshot, options);
  SessionManager::RecoveryInfo info = MustRecover(recovered, path);
  EXPECT_FALSE(info.used_prev_fallback);
  recovered.Drain();
  MergeOutcomes(&merged, recovered.TakeCompleted(), table, "recovered");
  ASSERT_EQ(merged.size(), configs.size());
  ExpectMergedMatchesReference(merged, reference, table, "compacted");
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, CorruptSnapshotFallsBackToPrevJournal) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_fallback.jnl");
  CleanJournalFamily(path);
  const auto configs = MixedConfigs(3);
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }

  std::map<uint64_t, SessionOutcome> merged;
  {
    ServeOptions options;
    options.journal_path = path;
    options.journal_compact_bytes = 1;
    options.journal_compact_snap_factor = 0;
    SessionManager manager(snapshot, options);
    for (const auto& config : configs) MustAdmit(manager, config);
    for (int t = 0; t < 5; ++t) manager.Tick();
    MergeOutcomes(&merged, manager.TakeCompleted(), table, "pre-crash");
  }
  ASSERT_TRUE(FileExists(path + ".prev"));

  // Corrupt one byte INSIDE the snap record's payload, leaving its frame
  // line intact: the CRC rejects the snapshot, but the reader can still
  // skip past it by the declared size. The pre-compaction journal next
  // door replays to the exact state the corrupt snapshot captured.
  std::string bytes = ReadRaw(path);
  const size_t frame = bytes.find("ATJ snap ");
  ASSERT_NE(frame, std::string::npos);
  const size_t payload = bytes.find('\n', frame);
  ASSERT_NE(payload, std::string::npos);
  ASSERT_LT(payload + 1, bytes.size());
  bytes[payload + 1] = static_cast<char>(bytes[payload + 1] ^ 0x5A);
  WriteRaw(path, bytes);

  ServeOptions options;
  options.journal_path = path;
  SessionManager recovered(snapshot, options);
  SessionManager::RecoveryInfo info = MustRecover(recovered, path);
  EXPECT_TRUE(info.used_prev_fallback);
  EXPECT_EQ(recovered.stats().recovery_fallbacks, 1);
  recovered.Drain();
  MergeOutcomes(&merged, recovered.TakeCompleted(), table, "fallback");
  ASSERT_EQ(merged.size(), configs.size());
  ExpectMergedMatchesReference(merged, reference, table, "fallback");
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, CrashAtEveryCompactionFailurePointRecovers) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_midcompact.jnl");
  const auto configs = MixedConfigs(3);
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }

  // Compaction is copy-then-atomic-replace, so a crash (here: an injected
  // EIO) at ANY of its file-io steps leaves either the old journal or the
  // new one intact on disk — never a half-written state.
  for (const char* op : {"open", "write", "fsync", "rename", "dirsync"}) {
    CleanJournalFamily(path);
    std::map<uint64_t, SessionOutcome> merged;
    {
      ServeOptions options;
      options.journal_path = path;
      SessionManager manager(snapshot, options);
      for (const auto& config : configs) MustAdmit(manager, config);
      for (int t = 0; t < 3; ++t) manager.Tick();

      SetFileIoFailureHookForTesting(
          [op, &path](const char* hook_op, const std::string& hook_path) {
            return std::string(hook_op) == op &&
                   hook_path.find(path) != std::string::npos;
          });
      Status compacted = manager.CompactJournal();
      SetFileIoFailureHookForTesting({});
      ASSERT_FALSE(compacted.ok()) << op;
      // The failure disabled journaling; serving continues unjournaled.
      EXPECT_FALSE(manager.journal_healthy()) << op;
      EXPECT_EQ(manager.stats().journal_failures, 1) << op;
      manager.Tick();
      manager.Tick();
      MergeOutcomes(&merged, manager.TakeCompleted(), table, op);
    }

    // Recovery rewinds to the last durable journal state (3 journaled
    // ticks) and re-executes the unjournaled suffix identically.
    ServeOptions options;
    options.journal_path = path;
    SessionManager recovered(snapshot, options);
    MustRecover(recovered, path);
    recovered.Drain();
    MergeOutcomes(&merged, recovered.TakeCompleted(), table, op);
    ASSERT_EQ(merged.size(), configs.size()) << op;
    ExpectMergedMatchesReference(merged, reference, table, op);
  }
  CleanJournalFamily(path);
}

TEST(ServeRecoveryTest, AppendFailureDegradesDurabilityNotServing) {
  auto snapshot = SmallSnapshot();
  const Table& table = *snapshot->dataset().table;
  const std::string path = TempPath("serve_journal_append_fail.jnl");
  CleanJournalFamily(path);
  const auto configs = MixedConfigs(3);

  ServeOptions options;
  options.journal_path = path;
  SessionManager manager(snapshot, options);
  for (const auto& config : configs) MustAdmit(manager, config);
  manager.Tick();
  SetFileIoFailureHookForTesting(
      [&path](const char* op, const std::string& hook_path) {
        return std::string(op) == "append-fsync" &&
               hook_path.find(path) != std::string::npos;
      });
  manager.Drain();  // Ticks append without flushing, so they all succeed...
  std::map<uint64_t, SessionOutcome> merged;
  // ...and the delivery barrier is where the fdatasync fails. The journal
  // breaks, but every outcome is still handed out: durability degrades,
  // serving does not.
  MergeOutcomes(&merged, manager.TakeCompleted(), table, "append-fail");
  SetFileIoFailureHookForTesting({});
  EXPECT_FALSE(manager.journal_healthy());
  EXPECT_EQ(manager.stats().journal_failures, 1);
  ASSERT_EQ(merged.size(), configs.size());
  std::map<uint64_t, SessionTrace> reference;
  for (const auto& config : configs) {
    reference[config.seed] =
        ServeSingleSessionSerial(*snapshot, config, /*reward=*/nullptr);
  }
  ExpectMergedMatchesReference(merged, reference, table, "append-fail");
  CleanJournalFamily(path);
}

}  // namespace
}  // namespace atena
