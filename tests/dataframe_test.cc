#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/file_io.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "dataframe/csv.h"
#include "dataframe/kernels.h"
#include "dataframe/ops.h"
#include "dataframe/stats.h"
#include "dataframe/table.h"

namespace atena {
namespace {

/// A small mixed-type fixture table:
///   city (string), population (int, one null), area (double).
TablePtr MakeCityTable() {
  TableBuilder b("cities");
  b.AddColumn("city", DataType::kString);
  b.AddColumn("population", DataType::kInt64);
  b.AddColumn("area", DataType::kFloat64);
  EXPECT_TRUE(b.AppendRow({Value(std::string("berlin")), Value(int64_t{3600}),
                           Value(891.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("paris")), Value(int64_t{2100}),
                           Value(105.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("berlin")), Value::Null(),
                           Value(890.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("rome")), Value(int64_t{2800}),
                           Value(1285.0)}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("madrid")), Value(int64_t{3200}),
                           Value(604.0)}).ok());
  auto t = b.Finish();
  EXPECT_TRUE(t.ok());
  return t.value();
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  Value i(int64_t{5});
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.as_int(), 5);
  Value d(2.5);
  EXPECT_TRUE(d.is_double());
  Value s(std::string("x"));
  EXPECT_TRUE(s.is_string());
  double out = 0;
  EXPECT_TRUE(i.ToDouble(&out));
  EXPECT_DOUBLE_EQ(out, 5.0);
  EXPECT_FALSE(s.ToDouble(&out));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(2.50).ToString(), "2.5");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "hi");
}

TEST(ValueTest, ValueLessOrdering) {
  EXPECT_TRUE(ValueLess(Value::Null(), Value(int64_t{0})));
  EXPECT_TRUE(ValueLess(Value(int64_t{1}), Value(2.5)));
  EXPECT_TRUE(ValueLess(Value(9.0), Value(std::string("a"))));
  EXPECT_TRUE(ValueLess(Value(std::string("a")), Value(std::string("b"))));
  EXPECT_FALSE(ValueLess(Value(std::string("b")), Value(std::string("a"))));
}

// --------------------------------------------------------------- Column

TEST(ColumnTest, BuilderTypeChecking) {
  ColumnBuilder b("x", DataType::kInt64);
  EXPECT_TRUE(b.AppendInt(1).ok());
  EXPECT_FALSE(b.AppendDouble(1.0).ok());
  EXPECT_FALSE(b.AppendString("a").ok());
}

TEST(ColumnTest, IntWidensIntoFloatColumn) {
  ColumnBuilder b("x", DataType::kFloat64);
  EXPECT_TRUE(b.AppendInt(3).ok());
  auto col = b.Finish();
  EXPECT_DOUBLE_EQ(col->GetDouble(0), 3.0);
}

TEST(ColumnTest, DictionaryEncoding) {
  ColumnBuilder b("s", DataType::kString);
  ASSERT_TRUE(b.AppendString("a").ok());
  ASSERT_TRUE(b.AppendString("b").ok());
  ASSERT_TRUE(b.AppendString("a").ok());
  auto col = b.Finish();
  EXPECT_EQ(col->dictionary_size(), 2);
  EXPECT_EQ(col->GetCode(0), col->GetCode(2));
  EXPECT_NE(col->GetCode(0), col->GetCode(1));
  EXPECT_EQ(col->FindCode("b"), col->GetCode(1));
  EXPECT_EQ(col->FindCode("zzz"), -1);
}

TEST(ColumnTest, NullTracking) {
  ColumnBuilder b("x", DataType::kInt64);
  ASSERT_TRUE(b.AppendInt(1).ok());
  b.AppendNull();
  ASSERT_TRUE(b.AppendInt(3).ok());
  auto col = b.Finish();
  EXPECT_EQ(col->null_count(), 1);
  EXPECT_FALSE(col->IsNull(0));
  EXPECT_TRUE(col->IsNull(1));
  EXPECT_TRUE(col->GetValue(1).is_null());
  EXPECT_TRUE(std::isnan(col->AsDoubleOrNan(1)));
}

TEST(ColumnTest, CellKeyEqualityMatchesValueEquality) {
  ColumnBuilder b("s", DataType::kString);
  ASSERT_TRUE(b.AppendString("x").ok());
  ASSERT_TRUE(b.AppendString("y").ok());
  ASSERT_TRUE(b.AppendString("x").ok());
  b.AppendNull();
  auto col = b.Finish();
  EXPECT_EQ(col->CellKey(0), col->CellKey(2));
  EXPECT_NE(col->CellKey(0), col->CellKey(1));
  EXPECT_NE(col->CellKey(3), col->CellKey(0));
}

// ---------------------------------------------------------------- Table

TEST(TableTest, MakeRejectsMismatchedLengths) {
  ColumnBuilder a("a", DataType::kInt64);
  ASSERT_TRUE(a.AppendInt(1).ok());
  ColumnBuilder b("b", DataType::kInt64);
  ASSERT_TRUE(b.AppendInt(1).ok());
  ASSERT_TRUE(b.AppendInt(2).ok());
  auto t = Table::Make("t", {a.Finish(), b.Finish()});
  EXPECT_FALSE(t.ok());
}

TEST(TableTest, MakeRejectsDuplicateNames) {
  ColumnBuilder a("a", DataType::kInt64);
  ColumnBuilder b("a", DataType::kInt64);
  auto t = Table::Make("t", {a.Finish(), b.Finish()});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, FindColumn) {
  auto t = MakeCityTable();
  EXPECT_EQ(t->FindColumn("city"), 0);
  EXPECT_EQ(t->FindColumn("area"), 2);
  EXPECT_EQ(t->FindColumn("nope"), -1);
}

TEST(TableTest, TakeMaterializesSelection) {
  auto t = MakeCityTable();
  auto taken = t->Take({3, 0}, "sel");
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken.value()->num_rows(), 2);
  EXPECT_EQ(taken.value()->column(0)->GetString(0), "rome");
  EXPECT_EQ(taken.value()->column(0)->GetString(1), "berlin");
}

TEST(TableTest, TakePreservesNulls) {
  auto t = MakeCityTable();
  auto taken = t->Take({2}, "sel");
  ASSERT_TRUE(taken.ok());
  EXPECT_TRUE(taken.value()->column(1)->IsNull(0));
}

TEST(TableTest, TakeRejectsOutOfRange) {
  auto t = MakeCityTable();
  EXPECT_FALSE(t->Take({99}, "sel").ok());
}

TEST(TableTest, ToStringMentionsShape) {
  auto t = MakeCityTable();
  std::string s = t->ToString(2);
  EXPECT_NE(s.find("5 rows"), std::string::npos);
  EXPECT_NE(s.find("city"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(TableBuilderTest, RejectsWrongArity) {
  TableBuilder b("t");
  b.AddColumn("a", DataType::kInt64);
  EXPECT_FALSE(b.AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
}

// -------------------------------------------------------------- Filters

TEST(FilterTest, NumericEquality) {
  auto t = MakeCityTable();
  auto rows = AllRows(*t).value();
  auto out = FilterRows(*t, rows, 1, CompareOp::kEq, Value(int64_t{2100}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0], 1);
}

TEST(FilterTest, NullCellsNeverMatch) {
  auto t = MakeCityTable();
  auto rows = AllRows(*t).value();
  // population != 0 keeps every non-null row but not the null one.
  auto out = FilterRows(*t, rows, 1, CompareOp::kNeq, Value(int64_t{0}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 4u);
}

TEST(FilterTest, StringEqualityViaDictionary) {
  auto t = MakeCityTable();
  auto rows = AllRows(*t).value();
  auto out = FilterRows(*t, rows, 0, CompareOp::kEq,
                        Value(std::string("berlin")));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);
  auto none = FilterRows(*t, rows, 0, CompareOp::kEq,
                         Value(std::string("unknown")));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST(FilterTest, SubstringOperators) {
  auto t = MakeCityTable();
  auto rows = AllRows(*t).value();
  auto contains = FilterRows(*t, rows, 0, CompareOp::kContains,
                             Value(std::string("ar")));
  ASSERT_TRUE(contains.ok());
  EXPECT_EQ(contains.value().size(), 1u);  // paris
  auto starts = FilterRows(*t, rows, 0, CompareOp::kStartsWith,
                           Value(std::string("ma")));
  ASSERT_TRUE(starts.ok());
  EXPECT_EQ(starts.value().size(), 1u);  // madrid
  auto ends = FilterRows(*t, rows, 0, CompareOp::kEndsWith,
                         Value(std::string("in")));
  ASSERT_TRUE(ends.ok());
  EXPECT_EQ(ends.value().size(), 2u);  // berlin x2
}

struct OrderingCase {
  CompareOp op;
  double threshold;
  size_t expected;
};

class FilterOrderingTest : public ::testing::TestWithParam<OrderingCase> {};

TEST_P(FilterOrderingTest, OrderingOperators) {
  auto t = MakeCityTable();
  auto rows = AllRows(*t).value();
  const OrderingCase& c = GetParam();
  auto out = FilterRows(*t, rows, 2, c.op, Value(c.threshold));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Areas, FilterOrderingTest,
    ::testing::Values(OrderingCase{CompareOp::kGt, 800.0, 3},
                      OrderingCase{CompareOp::kGe, 891.0, 2},
                      OrderingCase{CompareOp::kLt, 600.0, 1},
                      OrderingCase{CompareOp::kLe, 604.0, 2}));

TEST(FilterTest, TypeMismatchesRejected) {
  auto t = MakeCityTable();
  auto rows = AllRows(*t).value();
  EXPECT_FALSE(FilterRows(*t, rows, 0, CompareOp::kGt,
                          Value(std::string("berlin"))).ok());
  EXPECT_FALSE(FilterRows(*t, rows, 1, CompareOp::kContains,
                          Value(std::string("2"))).ok());
  EXPECT_FALSE(FilterRows(*t, rows, 1, CompareOp::kEq,
                          Value(std::string("x"))).ok());
  EXPECT_FALSE(FilterRows(*t, rows, 0, CompareOp::kEq,
                          Value(int64_t{1})).ok());
  EXPECT_FALSE(FilterRows(*t, rows, 9, CompareOp::kEq,
                          Value(int64_t{1})).ok());
  EXPECT_FALSE(FilterRows(*t, rows, 0, CompareOp::kEq, Value::Null()).ok());
}

TEST(FilterTest, OperatesOnGivenSubsetOnly) {
  auto t = MakeCityTable();
  std::vector<int32_t> subset = {0, 1};
  auto out = FilterRows(*t, subset, 0, CompareOp::kEq,
                        Value(std::string("berlin")));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 1u);  // row 2 not in subset
}

/// Fixture for null-handling edge cases: a string column with a null cell
/// and a numeric column that is entirely null.
TablePtr MakeNullableTable() {
  TableBuilder b("nullable");
  b.AddColumn("name", DataType::kString);
  b.AddColumn("score", DataType::kFloat64);
  EXPECT_TRUE(b.AppendRow({Value(std::string("a")), Value::Null()}).ok());
  EXPECT_TRUE(b.AppendRow({Value::Null(), Value::Null()}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("b")), Value::Null()}).ok());
  EXPECT_TRUE(b.AppendRow({Value(std::string("a")), Value::Null()}).ok());
  auto t = b.Finish();
  EXPECT_TRUE(t.ok());
  return t.value();
}

TEST(FilterTest, NeqAbsentDictionaryTermKeepsAllNonNullRows) {
  // "zzz" has no dictionary code (FindCode returns -1): != must keep every
  // non-null row, and == must select nothing — without scanning strings.
  auto t = MakeNullableTable();
  auto rows = AllRows(*t).value();
  auto neq = FilterRows(*t, rows, 0, CompareOp::kNeq,
                        Value(std::string("zzz")));
  ASSERT_TRUE(neq.ok());
  EXPECT_EQ(neq.value(), (std::vector<int32_t>{0, 2, 3}));
  auto eq = FilterRows(*t, rows, 0, CompareOp::kEq,
                       Value(std::string("zzz")));
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value().empty());
}

TEST(FilterTest, NullStringCellsExcludedUnderEveryOpFamily) {
  auto t = MakeNullableTable();
  auto rows = AllRows(*t).value();
  auto eq = FilterRows(*t, rows, 0, CompareOp::kEq, Value(std::string("a")));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq.value(), (std::vector<int32_t>{0, 3}));
  auto neq = FilterRows(*t, rows, 0, CompareOp::kNeq,
                        Value(std::string("a")));
  ASSERT_TRUE(neq.ok());
  EXPECT_EQ(neq.value(), (std::vector<int32_t>{2}));  // null row 1 dropped
  // Substring family: an empty needle matches every string, so only the
  // null cell keeps a row out.
  auto contains = FilterRows(*t, rows, 0, CompareOp::kContains,
                             Value(std::string("")));
  ASSERT_TRUE(contains.ok());
  EXPECT_EQ(contains.value(), (std::vector<int32_t>{0, 2, 3}));
  auto starts = FilterRows(*t, rows, 0, CompareOp::kStartsWith,
                           Value(std::string("a")));
  ASSERT_TRUE(starts.ok());
  EXPECT_EQ(starts.value(), (std::vector<int32_t>{0, 3}));
  auto ends = FilterRows(*t, rows, 0, CompareOp::kEndsWith,
                         Value(std::string("b")));
  ASSERT_TRUE(ends.ok());
  EXPECT_EQ(ends.value(), (std::vector<int32_t>{2}));
}

TEST(FilterTest, NullNumericCellsExcludedUnderOrderingOps) {
  auto t = MakeCityTable();  // population has one null (row 2)
  auto rows = AllRows(*t).value();
  for (CompareOp op :
       {CompareOp::kGt, CompareOp::kGe, CompareOp::kLt, CompareOp::kLe}) {
    auto out = FilterRows(*t, rows, 1, op, Value(int64_t{2100}));
    ASSERT_TRUE(out.ok());
    for (int32_t r : out.value()) EXPECT_NE(r, 2) << "op " << int(op);
  }
  // A threshold below every value: > keeps all four non-null rows only.
  auto all = FilterRows(*t, rows, 1, CompareOp::kGt, Value(int64_t{0}));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), (std::vector<int32_t>{0, 1, 3, 4}));
}

TEST(FilterTest, OrderingOpsOnAllNullNumericColumnSelectNothing) {
  auto t = MakeNullableTable();
  auto rows = AllRows(*t).value();
  for (CompareOp op : {CompareOp::kGt, CompareOp::kGe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kEq, CompareOp::kNeq}) {
    auto out = FilterRows(*t, rows, 1, op, Value(0.0));
    ASSERT_TRUE(out.ok()) << "op " << int(op);
    EXPECT_TRUE(out.value().empty()) << "op " << int(op);
  }
}

// -------------------------------------------------------------- GroupBy

TEST(GroupTest, CountPerGroup) {
  auto t = MakeCityTable();
  GroupSpec spec;
  spec.group_columns = {0};
  auto out = GroupAggregate(*t, AllRows(*t).value(), spec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().groups.size(), 4u);  // berlin, madrid, paris, rome
  // Sorted by key: berlin first with 2 rows.
  EXPECT_EQ(out.value().groups[0].keys[0].as_string(), "berlin");
  EXPECT_DOUBLE_EQ(out.value().groups[0].aggregate, 2.0);
  EXPECT_EQ(out.value().agg_name, "COUNT(*)");
}

struct AggCase {
  AggFunc func;
  double berlin_expected;
};

class GroupAggTest : public ::testing::TestWithParam<AggCase> {};

TEST_P(GroupAggTest, NumericAggregations) {
  auto t = MakeCityTable();
  GroupSpec spec;
  spec.group_columns = {0};
  spec.agg = GetParam().func;
  spec.agg_column = 2;  // area
  auto out = GroupAggregate(*t, AllRows(*t).value(), spec);
  ASSERT_TRUE(out.ok());
  // Group 0 is berlin (areas 891, 890).
  EXPECT_DOUBLE_EQ(out.value().groups[0].aggregate,
                   GetParam().berlin_expected);
}

INSTANTIATE_TEST_SUITE_P(
    BerlinAreas, GroupAggTest,
    ::testing::Values(AggCase{AggFunc::kSum, 1781.0},
                      AggCase{AggFunc::kMin, 890.0},
                      AggCase{AggFunc::kMax, 891.0},
                      AggCase{AggFunc::kAvg, 890.5}));

TEST(GroupTest, NullAggInputsSkipped) {
  auto t = MakeCityTable();
  GroupSpec spec;
  spec.group_columns = {0};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = 1;  // population (berlin has one null)
  auto out = GroupAggregate(*t, AllRows(*t).value(), spec);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value().groups[0].aggregate, 3600.0);
  EXPECT_TRUE(out.value().groups[0].agg_valid);
}

TEST(GroupTest, MultiColumnGrouping) {
  auto t = MakeCityTable();
  GroupSpec spec;
  spec.group_columns = {0, 1};
  auto out = GroupAggregate(*t, AllRows(*t).value(), spec);
  ASSERT_TRUE(out.ok());
  // berlin splits into (berlin,null) and (berlin,3600).
  EXPECT_EQ(out.value().groups.size(), 5u);
}

TEST(GroupTest, RequiresGroupColumns) {
  auto t = MakeCityTable();
  GroupSpec spec;
  EXPECT_FALSE(GroupAggregate(*t, AllRows(*t).value(), spec).ok());
}

TEST(GroupTest, RejectsStringAggColumn) {
  auto t = MakeCityTable();
  GroupSpec spec;
  spec.group_columns = {1};
  spec.agg = AggFunc::kSum;
  spec.agg_column = 0;
  EXPECT_FALSE(GroupAggregate(*t, AllRows(*t).value(), spec).ok());
}

TEST(GroupTest, ToTableShape) {
  auto t = MakeCityTable();
  GroupSpec spec;
  spec.group_columns = {0};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = 2;
  auto grouped = GroupAggregate(*t, AllRows(*t).value(), spec);
  ASSERT_TRUE(grouped.ok());
  auto table = grouped.value().ToTable(*t);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_columns(), 2);
  EXPECT_EQ(table.value()->num_rows(), 4);
  EXPECT_EQ(table.value()->column_name(1), "AVG(area)");
}

TEST(GroupTest, GroupSizes) {
  auto t = MakeCityTable();
  GroupSpec spec;
  spec.group_columns = {0};
  auto grouped = GroupAggregate(*t, AllRows(*t).value(), spec);
  ASSERT_TRUE(grouped.ok());
  auto sizes = grouped.value().GroupSizes();
  double total = 0;
  for (double s : sizes) total += s;
  EXPECT_DOUBLE_EQ(total, 5.0);
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, ColumnStatsBasics) {
  auto t = MakeCityTable();
  auto rows = AllRows(*t).value();
  ColumnStats stats = ComputeColumnStats(*t->column(0), rows);
  EXPECT_EQ(stats.distinct, 4);
  EXPECT_EQ(stats.nulls, 0);
  EXPECT_EQ(stats.count, 5);
  EXPECT_GT(stats.normalized_entropy, 0.9);  // nearly uniform

  ColumnStats pop = ComputeColumnStats(*t->column(1), rows);
  EXPECT_EQ(pop.nulls, 1);
  EXPECT_EQ(pop.distinct, 4);
}

TEST(StatsTest, TokenFrequenciesSortedByCount) {
  auto t = MakeCityTable();
  auto tokens = TokenFrequencies(*t->column(0), AllRows(*t).value());
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].token.as_string(), "berlin");
  EXPECT_EQ(tokens[0].count, 2);
  // Ties broken by value order.
  EXPECT_EQ(tokens[1].token.as_string(), "madrid");
}

TEST(StatsTest, ValueHistogramExcludesNulls) {
  auto t = MakeCityTable();
  auto hist = ValueHistogram(*t->column(1), AllRows(*t).value());
  double total = 0;
  for (const auto& [k, v] : hist) {
    (void)k;
    total += v;
  }
  EXPECT_DOUBLE_EQ(total, 4.0);
}

// ------------------------------------------------------------------ CSV

TEST(CsvTest, ParsesTypedColumns) {
  const std::string csv = "name,age,score\nana,31,9.5\nbob,22,7\n";
  auto t = ReadCsvString(csv, "people");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->num_rows(), 2);
  EXPECT_EQ(t.value()->column(0)->type(), DataType::kString);
  EXPECT_EQ(t.value()->column(1)->type(), DataType::kInt64);
  EXPECT_EQ(t.value()->column(2)->type(), DataType::kFloat64);
  EXPECT_EQ(t.value()->column(0)->GetString(1), "bob");
  EXPECT_EQ(t.value()->column(1)->GetInt(0), 31);
}

TEST(CsvTest, EmptyFieldsBecomeNulls) {
  const std::string csv = "a,b\n1,\n,2\n";
  auto t = ReadCsvString(csv, "t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value()->column(1)->IsNull(0));
  EXPECT_TRUE(t.value()->column(0)->IsNull(1));
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndQuotes) {
  const std::string csv = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n";
  auto t = ReadCsvString(csv, "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->column(0)->GetString(0), "x,y");
  EXPECT_EQ(t.value()->column(1)->GetString(0), "he said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvString("a,b\n1,2,3\n", "t").ok());
  EXPECT_FALSE(ReadCsvString("", "t").ok());
}

TEST(CsvTest, RoundTripPreservesData) {
  auto t = MakeCityTable();
  std::string csv = WriteCsvString(*t);
  auto back = ReadCsvString(csv, "cities");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->num_rows(), t->num_rows());
  EXPECT_EQ(back.value()->num_columns(), t->num_columns());
  EXPECT_EQ(back.value()->column(0)->GetString(0), "berlin");
  EXPECT_TRUE(back.value()->column(1)->IsNull(2));
  // Integral-looking floats re-infer as int64 on the way back; the value is
  // preserved under the numeric view.
  EXPECT_DOUBLE_EQ(back.value()->column(2)->AsDoubleOrNan(3), 1285.0);
}

TEST(CsvTest, FileRoundTrip) {
  auto t = MakeCityTable();
  const std::string path = ::testing::TempDir() + "/atena_cities.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->num_rows(), 5);
  EXPECT_EQ(back.value()->name(), "atena_cities");
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/definitely_missing.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  // The message carries the OS-level reason.
  EXPECT_NE(r.status().message().find("No such file"), std::string::npos)
      << r.status();
}

TEST(CsvTest, RaggedRowErrorNamesLineAndCounts) {
  // Row on (1-based) line 3 has 3 cells against a 2-column header.
  auto r = ReadCsvString("a,b\n1,2\n1,2,3\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  const std::string& message = r.status().message();
  EXPECT_NE(message.find("line 3"), std::string::npos) << r.status();
  EXPECT_NE(message.find("3 columns"), std::string::npos) << r.status();
  EXPECT_NE(message.find("expected 2"), std::string::npos) << r.status();
}

TEST(CsvTest, RaggedRowLineNumberCountsQuotedNewlines) {
  // The quoted cell on line 2 spans lines 2-3, so the ragged record is
  // reported at the physical line where it starts: line 4.
  auto r = ReadCsvString("a,b\n\"multi\nline\",2\n5\n", "t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos)
      << r.status();
}

TEST(CsvTest, MissingTrailingNewlineParsesLastRow) {
  auto t = ReadCsvString("a,b\n1,2\n3,4", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->num_rows(), 2);
  EXPECT_EQ(t.value()->column(1)->GetInt(1), 4);
}

TEST(CsvTest, QuotedDelimiterDoesNotSplitCell) {
  auto t = ReadCsvString("a,b\n\"1,000\",2\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->num_columns(), 2);
  EXPECT_EQ(t.value()->column(0)->GetString(0), "1,000");
}

TEST(CsvTest, MalformedNumericOutsideInferenceWindowBecomesNull) {
  // With a 2-row inference window the column types as int64; the "oops" on
  // a later row cannot retroactively change the type, so it lands as null
  // instead of corrupting the column or aborting the load.
  CsvOptions options;
  options.inference_rows = 2;
  auto t = ReadCsvString("a\n1\n2\noops\n4\n", "t", options);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t.value()->column(0)->type(), DataType::kInt64);
  EXPECT_EQ(t.value()->column(0)->GetInt(1), 2);
  EXPECT_TRUE(t.value()->column(0)->IsNull(2));
  EXPECT_EQ(t.value()->column(0)->GetInt(3), 4);
}

TEST(CsvTest, WriteFailurePreservesExistingFile) {
  auto t = MakeCityTable();
  const std::string path = ::testing::TempDir() + "/atena_cities_keep.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path).ok());
  SetFileIoFailureHookForTesting(
      [](const char* op, const std::string&) {
        return std::string(op) == "write";
      });
  Status failed = WriteCsvFile(*t, path);
  SetFileIoFailureHookForTesting({});
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  // The previous contents survived the failed overwrite.
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->num_rows(), 5);
}

// ------------------------------------------------------- Kernel parity
//
// The chunked selection-vector kernels (dataframe/kernels.h) must be
// bit-identical to the retained scalar reference on any table, selection,
// operator and thread count. These property tests throw randomized tables
// at both paths: nulls, a fully-null chunk, NaNs, multi-chunk sizes with a
// ragged tail, selections with whole-chunk gaps, and shuffled (unsorted)
// selections that force the kernel off its sorted fast path.

TablePtr MakeRandomTable(uint64_t seed, int64_t rows) {
  Rng rng(seed);
  ColumnBuilder ints("ints", DataType::kInt64);
  ColumnBuilder doubles("doubles", DataType::kFloat64);
  ColumnBuilder strings("strings", DataType::kString);
  const std::vector<std::string> vocab = {"alpha", "beta", "gamma", "delta",
                                          "epsilon"};
  for (int64_t r = 0; r < rows; ++r) {
    // Chunk 2 is fully null in every column: the zone maps must classify it
    // as skippable for every operator except string !=.
    const bool null_block =
        r >= 2 * kColumnChunkSize && r < 3 * kColumnChunkSize;
    if (null_block || rng.NextBool(0.1)) {
      ints.AppendNull();
    } else {
      EXPECT_TRUE(ints.AppendInt(rng.NextInt(-50, 50)).ok());
    }
    if (null_block || rng.NextBool(0.1)) {
      doubles.AppendNull();
    } else if (rng.NextBool(0.05)) {
      EXPECT_TRUE(
          doubles.AppendDouble(std::numeric_limits<double>::quiet_NaN()).ok());
    } else {
      EXPECT_TRUE(doubles.AppendDouble(rng.NextDouble(-10.0, 10.0)).ok());
    }
    if (null_block || rng.NextBool(0.1)) {
      strings.AppendNull();
    } else {
      EXPECT_TRUE(
          strings.AppendString(vocab[rng.NextBounded(vocab.size())]).ok());
    }
  }
  std::vector<ColumnPtr> columns;
  columns.push_back(ints.Finish());
  columns.push_back(doubles.Finish());
  columns.push_back(strings.Finish());
  auto t = Table::Make("random", std::move(columns));
  EXPECT_TRUE(t.ok());
  return t.value();
}

/// Selections that stress every ChunkedScan mode: the identity selection,
/// a sorted-sparse selection with a whole-chunk gap (chunk 1 absent), and a
/// deterministically shuffled unsorted selection.
std::vector<std::vector<int32_t>> StressSelections(int64_t rows,
                                                   uint64_t seed) {
  const auto n = static_cast<int32_t>(rows);
  std::vector<std::vector<int32_t>> selections;
  std::vector<int32_t> all(static_cast<size_t>(n));
  for (int32_t r = 0; r < n; ++r) all[static_cast<size_t>(r)] = r;
  selections.push_back(all);
  std::vector<int32_t> gapped;
  for (int32_t r = 0; r < n; r += 2) {
    if (r >= kColumnChunkSize && r < 2 * kColumnChunkSize) continue;
    gapped.push_back(r);
  }
  selections.push_back(std::move(gapped));
  Rng rng(seed ^ 0xC0FFEE);
  std::vector<int32_t> shuffled = all;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  selections.push_back(std::move(shuffled));
  selections.push_back({});  // empty selection
  return selections;
}

TEST(KernelParityTest, FilterMatchesScalarOnRandomTables) {
  constexpr int64_t kRows = 4 * kColumnChunkSize + 1000;
  for (uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    TablePtr t = MakeRandomTable(seed, kRows);
    const auto selections = StressSelections(kRows, seed);

    struct Case {
      int column;
      CompareOp op;
      Value term;
    };
    std::vector<Case> cases;
    for (CompareOp op : {CompareOp::kEq, CompareOp::kNeq, CompareOp::kGt,
                         CompareOp::kGe, CompareOp::kLt, CompareOp::kLe}) {
      for (const Value& term :
           {Value(int64_t{0}), Value(int64_t{-50}), Value(3.5),
            Value(int64_t{999})}) {
        cases.push_back({0, op, term});
        cases.push_back({1, op, term});
      }
    }
    for (CompareOp op :
         {CompareOp::kEq, CompareOp::kNeq, CompareOp::kContains,
          CompareOp::kStartsWith, CompareOp::kEndsWith}) {
      for (const char* term : {"beta", "a", "zzz-absent", ""}) {
        cases.push_back({2, op, Value(std::string(term))});
      }
    }

    for (const auto& c : cases) {
      for (const auto& rows : selections) {
        auto scalar = ScalarFilterRows(*t, rows, c.column, c.op, c.term);
        auto kernel = FilterRowsKernel(*t, rows, c.column, c.op, c.term);
        ASSERT_TRUE(scalar.ok());
        ASSERT_TRUE(kernel.ok());
        EXPECT_EQ(kernel.value(), scalar.value())
            << "column " << c.column << " op "
            << CompareOpSymbol(c.op) << " term " << c.term.ToString();
      }
    }
  }
}

TEST(KernelParityTest, FilterErrorsMatchScalar) {
  TablePtr t = MakeCityTable();
  std::vector<int32_t> rows = AllRows(*t).value();
  struct Case {
    int column;
    CompareOp op;
    Value term;
  };
  // Every validation branch: bad column, null term, ordering over strings,
  // substring over numerics, non-numeric term for ordering.
  const std::vector<Case> cases = {
      {9, CompareOp::kEq, Value(int64_t{1})},
      {0, CompareOp::kEq, Value::Null()},
      {0, CompareOp::kGt, Value(std::string("x"))},
      {1, CompareOp::kContains, Value(std::string("x"))},
      {1, CompareOp::kGe, Value(std::string("x"))},
  };
  for (const auto& c : cases) {
    auto scalar = ScalarFilterRows(*t, rows, c.column, c.op, c.term);
    auto kernel = FilterRowsKernel(*t, rows, c.column, c.op, c.term);
    ASSERT_FALSE(scalar.ok());
    ASSERT_FALSE(kernel.ok());
    EXPECT_EQ(kernel.status(), scalar.status());
  }
}

/// Value equality at the bit level: NaN keys compare equal to themselves
/// (operator== follows IEEE and would report identical NaN groups unequal).
bool ValueBitEq(const Value& x, const Value& y) {
  if (x.is_double() && y.is_double()) {
    return std::bit_cast<uint64_t>(x.as_double()) ==
           std::bit_cast<uint64_t>(y.as_double());
  }
  return x == y;
}

void ExpectGroupedBitIdentical(const GroupedResult& a,
                               const GroupedResult& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  EXPECT_EQ(a.key_names, b.key_names);
  EXPECT_EQ(a.agg_name, b.agg_name);
  for (size_t g = 0; g < a.groups.size(); ++g) {
    ASSERT_EQ(a.groups[g].keys.size(), b.groups[g].keys.size());
    for (size_t k = 0; k < a.groups[g].keys.size(); ++k) {
      EXPECT_TRUE(ValueBitEq(a.groups[g].keys[k], b.groups[g].keys[k]))
          << "group " << g << " key " << k << ": "
          << a.groups[g].keys[k].ToString() << " vs "
          << b.groups[g].keys[k].ToString();
    }
    EXPECT_EQ(a.groups[g].rows, b.groups[g].rows) << "group " << g;
    EXPECT_EQ(a.groups[g].agg_valid, b.groups[g].agg_valid) << "group " << g;
    // Bit-exact, not approximately-equal: the kernel must preserve the
    // scalar accumulation order.
    EXPECT_EQ(std::bit_cast<uint64_t>(a.groups[g].aggregate),
              std::bit_cast<uint64_t>(b.groups[g].aggregate))
        << "group " << g;
  }
}

TEST(KernelParityTest, GroupAggregateMatchesScalarAtAnyThreadCount) {
  constexpr int64_t kRows = 3 * kColumnChunkSize + 777;
  TablePtr t = MakeRandomTable(11, kRows);
  const auto selections = StressSelections(kRows, 11);

  std::vector<GroupSpec> specs;
  specs.push_back({{2}, AggFunc::kCount, -1});       // strings, dense path
  specs.push_back({{0}, AggFunc::kAvg, 1});          // ints, dense path
  specs.push_back({{1}, AggFunc::kSum, 0});          // doubles, hash path
  specs.push_back({{2, 0}, AggFunc::kMin, 1});       // multi-key, hash path
  specs.push_back({{0, 2}, AggFunc::kMax, 0});

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    for (const auto& spec : specs) {
      for (const auto& rows : selections) {
        auto scalar = ScalarGroupAggregate(*t, rows, spec);
        ASSERT_TRUE(scalar.ok());
        auto serial = GroupAggregateKernel(*t, rows, spec, nullptr);
        ASSERT_TRUE(serial.ok());
        ExpectGroupedBitIdentical(serial.value(), scalar.value());
        auto parallel = GroupAggregateKernel(*t, rows, spec, &pool);
        ASSERT_TRUE(parallel.ok());
        ExpectGroupedBitIdentical(parallel.value(), scalar.value());
      }
    }
  }
}

TEST(KernelParityTest, GroupAggregateErrorsMatchScalar) {
  TablePtr t = MakeCityTable();
  std::vector<int32_t> rows = AllRows(*t).value();
  const std::vector<GroupSpec> cases = {
      {{}, AggFunc::kCount, -1},       // no group columns
      {{9}, AggFunc::kCount, -1},      // bad group column
      {{0}, AggFunc::kSum, 9},         // bad agg column
      {{0}, AggFunc::kAvg, 0},         // AVG over string column
  };
  for (const auto& spec : cases) {
    auto scalar = ScalarGroupAggregate(*t, rows, spec);
    auto kernel = GroupAggregateKernel(*t, rows, spec, nullptr);
    ASSERT_FALSE(scalar.ok());
    ASSERT_FALSE(kernel.ok());
    EXPECT_EQ(kernel.status(), scalar.status());
  }
}

TEST(FilterKernelStatsTest, ZoneMapSkipAndAllMatchCounters) {
  // Three full chunks of constant values 1 / 5 / 9. Filtering > 6 must
  // skip the first two chunks from the zone map alone and emit the third
  // without per-row tests.
  ColumnBuilder b("v", DataType::kInt64);
  for (int64_t r = 0; r < 3 * kColumnChunkSize; ++r) {
    ASSERT_TRUE(b.AppendInt(1 + 4 * (r >> kColumnChunkShift)).ok());
  }
  std::vector<ColumnPtr> columns;
  columns.push_back(b.Finish());
  TablePtr t = Table::Make("zones", std::move(columns)).value();
  std::vector<int32_t> rows = AllRows(*t).value();

  FilterKernelStats stats;
  auto result =
      FilterRowsKernel(*t, rows, 0, CompareOp::kGt, Value(int64_t{6}), &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), static_cast<size_t>(kColumnChunkSize));
  EXPECT_EQ(result.value().front(), 2 * kColumnChunkSize);
  EXPECT_EQ(stats.chunks_total, 3);
  EXPECT_EQ(stats.chunks_skipped, 2);
  EXPECT_EQ(stats.chunks_all_match, 1);
  EXPECT_EQ(stats.chunks_scanned, 0);
  EXPECT_DOUBLE_EQ(stats.skip_rate(), 2.0 / 3.0);

  // On a constant chunk even equality is decidable from the zone map alone
  // (min == max == term), so nothing is ever scanned.
  FilterKernelStats eq;
  ASSERT_TRUE(
      FilterRowsKernel(*t, rows, 0, CompareOp::kEq, Value(int64_t{5}), &eq)
          .ok());
  EXPECT_EQ(eq.chunks_skipped, 2);
  EXPECT_EQ(eq.chunks_all_match, 1);
  EXPECT_EQ(eq.chunks_scanned, 0);

  // A chunk whose range straddles the threshold must be genuinely scanned.
  ColumnBuilder mixed("v", DataType::kInt64);
  for (int64_t r = 0; r < kColumnChunkSize; ++r) {
    ASSERT_TRUE(mixed.AppendInt(r % 2 == 0 ? 1 : 9).ok());
  }
  std::vector<ColumnPtr> mixed_columns;
  mixed_columns.push_back(mixed.Finish());
  TablePtr tm = Table::Make("mixed", std::move(mixed_columns)).value();
  std::vector<int32_t> mrows = AllRows(*tm).value();
  FilterKernelStats scanned;
  auto odd = FilterRowsKernel(*tm, mrows, 0, CompareOp::kGt,
                              Value(int64_t{6}), &scanned);
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd.value().size(), static_cast<size_t>(kColumnChunkSize / 2));
  EXPECT_EQ(scanned.chunks_total, 1);
  EXPECT_EQ(scanned.chunks_skipped, 0);
  EXPECT_EQ(scanned.chunks_all_match, 0);
  EXPECT_EQ(scanned.chunks_scanned, 1);
}

// ------------------------------------------------------ AllRows boundary

TEST(AllRowsTest, Int32BoundaryIsEnforced) {
  const int64_t limit = std::numeric_limits<int32_t>::max();
  // Exactly INT32_MAX rows is still addressable; one more is not. The
  // validator takes a row count, so the boundary is testable without
  // materializing a 2^31-row table.
  EXPECT_TRUE(ValidateInt32RowRange(limit, "AllRows: row count").ok());
  Status over = ValidateInt32RowRange(limit + 1, "AllRows: row count");
  EXPECT_EQ(over.code(), StatusCode::kOutOfRange);
  EXPECT_NE(over.message().find("2147483648 rows"), std::string::npos);

  auto result = AllRowsForCount(limit + 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);

  auto small = AllRowsForCount(3);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value(), (std::vector<int32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace atena
