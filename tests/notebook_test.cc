#include <gtest/gtest.h>

#include "data/registry.h"
#include "eda/session.h"
#include "notebook/render.h"

namespace atena {
namespace {

EdaNotebook MakeNotebook() {
  auto dataset = MakeDataset("cyber2");
  EXPECT_TRUE(dataset.ok());
  EnvConfig config;
  config.episode_length = 8;
  EdaEnvironment env(dataset.value(), config);
  const Table& t = *dataset.value().table;
  std::vector<EdaOperation> ops = {
      EdaOperation::Group(t.FindColumn("method"), AggFunc::kCount, -1),
      EdaOperation::Filter(t.FindColumn("method"), CompareOp::kEq,
                           Value(std::string("POST"))),
      EdaOperation::Group(t.FindColumn("source_ip"), AggFunc::kAvg,
                          t.FindColumn("response_bytes")),
      EdaOperation::Back(),
      EdaOperation::Filter(t.FindColumn("status"), CompareOp::kEq,
                           Value(int64_t{200})),
  };
  return ReplayOperations(&env, ops, "test-gen");
}

TEST(RenderTextTest, ContainsOperationsAndTree) {
  auto notebook = MakeNotebook();
  auto text = RenderText(notebook);
  ASSERT_TRUE(text.ok());
  const std::string& s = text.value();
  EXPECT_NE(s.find("Auto EDA notebook for cyber2"), std::string::npos);
  EXPECT_NE(s.find("test-gen"), std::string::npos);
  EXPECT_NE(s.find("GROUP-BY method, COUNT(*)"), std::string::npos);
  EXPECT_NE(s.find("FILTER method == 'POST'"), std::string::npos);
  EXPECT_NE(s.find("Exploration tree:"), std::string::npos);
}

TEST(RenderTextTest, IncludeRewardsOption) {
  auto notebook = MakeNotebook();
  RenderOptions options;
  options.include_rewards = true;
  auto text = RenderText(notebook, options);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("(reward"), std::string::npos);
}

TEST(RenderMarkdownTest, ProducesTablesAndHeadings) {
  auto notebook = MakeNotebook();
  auto md = RenderMarkdown(notebook);
  ASSERT_TRUE(md.ok());
  const std::string& s = md.value();
  EXPECT_NE(s.find("# Auto EDA notebook: cyber2"), std::string::npos);
  EXPECT_NE(s.find("## Step 1:"), std::string::npos);
  EXPECT_NE(s.find("| method "), std::string::npos);
  EXPECT_NE(s.find("| --- "), std::string::npos);
}

TEST(RenderHtmlTest, WellFormedEnvelopeAndEscaping) {
  auto notebook = MakeNotebook();
  auto html = RenderHtml(notebook);
  ASSERT_TRUE(html.ok());
  const std::string& s = html.value();
  EXPECT_EQ(s.find("<!DOCTYPE html>"), 0u);
  EXPECT_NE(s.find("</html>"), std::string::npos);
  // Operation descriptions contain no raw angle brackets after escaping.
  EXPECT_EQ(s.find("FILTER status <"), std::string::npos);
}

TEST(RenderTreeTest, BackClimbsUp) {
  auto notebook = MakeNotebook();
  std::string tree = RenderTree(notebook);
  // After BACK, the next operation appears at the same depth as the one
  // before the popped branch: count leading spaces of relevant lines.
  auto depth_of = [&tree](const std::string& needle) {
    size_t pos = tree.find(needle);
    EXPECT_NE(pos, std::string::npos) << needle;
    size_t line_start = tree.rfind('\n', pos) + 1;
    int spaces = 0;
    while (tree[line_start + spaces] == ' ') ++spaces;
    return spaces;
  };
  int group_depth = depth_of("GROUP-BY source_ip");
  int after_back_depth = depth_of("FILTER status");
  EXPECT_EQ(after_back_depth, group_depth);
}

TEST(RenderTest, GroupedDisplayShowsAggregateColumn) {
  auto notebook = MakeNotebook();
  auto text = RenderText(notebook);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("AVG(response_bytes)"), std::string::npos);
}

}  // namespace
}  // namespace atena
