#include <gtest/gtest.h>

#include <cmath>

#include "core/atena.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "nn/optimizer.h"

namespace atena {
namespace {

Dataset SmallDataset() {
  auto d = MakeDataset("cyber2");
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig SmallConfig() {
  EnvConfig config;
  config.episode_length = 6;
  config.num_term_bins = 4;
  return config;
}

TwofoldPolicy::Options TinyPolicy() {
  TwofoldPolicy::Options options;
  options.hidden = {16};
  options.seed = 3;
  return options;
}

// ------------------------------------------------------ twofold policy

TEST(TwofoldPolicyTest, PreOutputWidthMatchesPaperFormula) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  // |OP| + Σ_p |V(p)| — dramatically smaller than the flat Cartesian count.
  EXPECT_EQ(policy.pre_output_width(),
            env.action_space().TotalParameterNodes());
  EXPECT_LT(policy.pre_output_width(),
            env.action_space().FlatActionCount(10));
}

TEST(TwofoldPolicyTest, ActProducesValidStructuredActions) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  Rng rng(21);
  auto obs = env.Reset();
  const ActionSpace& space = env.action_space();
  for (int i = 0; i < 50; ++i) {
    PolicyStep step = policy.Act(obs, &rng);
    EXPECT_FALSE(step.action.is_concrete);
    const EnvAction& a = step.action.structured;
    EXPECT_GE(static_cast<int>(a.type), 0);
    EXPECT_LT(static_cast<int>(a.type), space.num_op_types);
    EXPECT_LT(a.filter_column, space.num_columns);
    EXPECT_LT(a.filter_op, space.num_filter_ops);
    EXPECT_LT(a.filter_bin, space.num_term_bins);
    EXPECT_LT(a.group_column, space.num_columns);
    EXPECT_LT(a.agg_func, space.num_agg_funcs);
    EXPECT_LT(a.agg_column, space.num_columns);
    EXPECT_LE(step.log_prob, 0.0);
    EXPECT_GE(step.entropy, 0.0);
  }
}

TEST(TwofoldPolicyTest, GreedyActionIsDeterministic) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  auto obs = env.Reset();
  PolicyStep a = policy.ActGreedy(obs);
  PolicyStep b = policy.ActGreedy(obs);
  EXPECT_EQ(static_cast<int>(a.action.structured.type),
            static_cast<int>(b.action.structured.type));
  EXPECT_EQ(a.action.structured.filter_column,
            b.action.structured.filter_column);
  EXPECT_DOUBLE_EQ(a.log_prob, b.log_prob);
}

TEST(TwofoldPolicyTest, ForwardBatchMatchesActProbabilities) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  Rng rng(22);
  auto obs = env.Reset();
  PolicyStep step = policy.Act(obs, &rng);

  Matrix batch = Matrix::FromRow(obs);
  BatchEvaluation eval = policy.ForwardBatch(batch, {step.action});
  EXPECT_NEAR(eval.log_probs[0], step.log_prob, 1e-9);
  EXPECT_NEAR(eval.entropies[0], step.entropy, 1e-9);
  EXPECT_NEAR(eval.values[0], step.value, 1e-9);
}

TEST(TwofoldPolicyTest, EntropyBoundedByLogActionCount) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  auto obs = env.Reset();
  PolicyStep step = policy.ActGreedy(obs);
  // Joint entropy cannot exceed log of the flat action count with bins.
  const double bound = std::log(static_cast<double>(
      env.action_space().FlatActionCount(0)));
  EXPECT_LE(step.entropy, bound + 1e-9);
}

/// Finite-difference check of the policy-gradient path: perturb each
/// sampled parameter and compare d(logp)/dθ and d(entropy)/dθ and
/// d(value)/dθ against the analytic BackwardBatch.
TEST(TwofoldPolicyTest, BackwardBatchGradientCheck) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy::Options options;
  options.hidden = {6};
  options.seed = 19;
  TwofoldPolicy policy(env.observation_dim(), env.action_space(), options);
  Rng rng(23);
  auto obs = env.Reset();

  std::vector<ActionRecord> actions;
  Matrix batch(2, static_cast<int>(obs.size()));
  for (int b = 0; b < 2; ++b) {
    PolicyStep step = policy.Act(obs, &rng);
    actions.push_back(step.action);
    for (size_t i = 0; i < obs.size(); ++i) {
      batch(b, static_cast<int>(i)) = obs[i] + 0.01 * b;
    }
  }

  const double c_logp = 0.7, c_ent = -0.3, c_val = 0.5;
  auto loss = [&]() {
    BatchEvaluation e = policy.ForwardBatch(batch, actions);
    double total = 0.0;
    for (int b = 0; b < 2; ++b) {
      total += c_logp * e.log_probs[b] + c_ent * e.entropies[b] +
               c_val * e.values[b];
    }
    return total;
  };

  ZeroGradients(policy.Parameters());
  policy.ForwardBatch(batch, actions);
  std::vector<SampleGrad> grads(2);
  for (auto& g : grads) {
    g.d_log_prob = c_logp;
    g.d_entropy = c_ent;
    g.d_value = c_val;
  }
  policy.BackwardBatch(grads);

  int checked = 0;
  for (Parameter* p : policy.Parameters()) {
    for (size_t i = 0; i < p->value.size(); i += 23) {
      const double eps = 1e-5;
      const double original = p->value.data()[i];
      p->value.data()[i] = original + eps;
      double plus = loss();
      p->value.data()[i] = original - eps;
      double minus = loss();
      p->value.data()[i] = original;
      double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, 1e-4)
          << "parameter element " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(TwofoldPolicyTest, ParameterCountReported) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  EXPECT_GT(policy.NumParameters(), 0);
}

// -------------------------------------------------------------- trainer

TEST(TrainerTest, LearnsToAvoidInvalidActions) {
  // Reward 0 for any valid action, the env penalty (-1) for no-ops: the
  // agent should learn to keep its actions valid (e.g. not BACK at root).
  Dataset d = SmallDataset();
  EnvConfig config = SmallConfig();
  EdaEnvironment env(d, config);

  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  TrainerOptions trainer_options;
  trainer_options.total_steps = 2500;
  trainer_options.rollout_length = 96;
  trainer_options.seed = 9;
  PpoTrainer trainer(&env, &policy, trainer_options);
  TrainingResult result = trainer.Train();

  ASSERT_FALSE(result.curve.empty());
  EXPECT_GT(result.episodes, 100);
  // Early mean reward is strongly negative (random policy hits many
  // no-ops); the final mean should be clearly better.
  double early = result.curve.front().mean_episode_reward;
  EXPECT_GT(result.final_mean_reward, early);
  EXPECT_GT(result.final_mean_reward, -2.0);
  EXPECT_FALSE(result.best_episode_ops.empty());
}

TEST(TrainerTest, CurveIsMonotoneInSteps) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                       TinyPolicy());
  TrainerOptions options;
  options.total_steps = 600;
  options.rollout_length = 64;
  PpoTrainer trainer(&env, &policy, options);
  TrainingResult result = trainer.Train();
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GT(result.curve[i].step, result.curve[i - 1].step);
  }
  EXPECT_EQ(result.curve.back().step, 600);
}

// ---------------------------------------------------------------- ATENA

TEST(AtenaTest, EndToEndProducesNotebook) {
  Dataset d = SmallDataset();
  AtenaOptions options;
  options.env = SmallConfig();
  options.trainer.total_steps = 800;
  options.trainer.rollout_length = 96;
  options.policy = TinyPolicy();
  auto result = RunAtena(d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result.value().notebook.entries.empty());
  EXPECT_EQ(result.value().notebook.generator, "ATENA");
  EXPECT_EQ(result.value().notebook.dataset_id, "cyber2");
  EXPECT_GT(result.value().training.episodes, 0);
}

TEST(AtenaTest, TrainStepsEnvOverride) {
  AtenaOptions options;
  options.trainer.total_steps = 123;
  setenv("ATENA_TRAIN_STEPS", "456", 1);
  ApplyTrainStepsFromEnv(&options);
  EXPECT_EQ(options.trainer.total_steps, 456);
  unsetenv("ATENA_TRAIN_STEPS");
  ApplyTrainStepsFromEnv(&options);
  EXPECT_EQ(options.trainer.total_steps, 456);  // unchanged when unset
}

}  // namespace
}  // namespace atena
