// End-to-end pipeline test: dataset → reward assembly → DRL training →
// notebook → A-EDA scoring → rendering. Uses a scaled-down configuration so
// the whole flow runs in seconds; the benches run the full-size version.
#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "data/registry.h"
#include "eval/gold.h"
#include "eval/insights.h"
#include "eval/metrics.h"
#include "eval/ratings.h"
#include "eval/traces.h"
#include "notebook/render.h"

namespace atena {
namespace {

AtenaOptions FastOptions() {
  AtenaOptions options;
  options.env.episode_length = 8;
  options.env.num_term_bins = 4;
  options.trainer.total_steps = 2000;
  options.trainer.rollout_length = 96;
  options.policy.hidden = {24};
  return options;
}

TEST(IntegrationTest, AtenaPipelineProducesScoredRenderableNotebook) {
  auto dataset = MakeDataset("cyber2");
  ASSERT_TRUE(dataset.ok());
  AtenaOptions options = FastOptions();

  auto result = RunAtena(dataset.value(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  const EdaNotebook& notebook = result.value().notebook;
  ASSERT_FALSE(notebook.entries.empty());

  // Learning happened: final mean reward beats the first rollout's.
  const auto& curve = result.value().training.curve;
  ASSERT_GE(curve.size(), 2u);
  EXPECT_GT(curve.back().mean_episode_reward,
            curve.front().mean_episode_reward);

  // Score against gold.
  auto gold = GoldNotebooks(dataset.value(), options.env);
  ASSERT_TRUE(gold.ok());
  std::vector<std::vector<ViewSignature>> gold_views;
  for (const auto& g : gold.value()) {
    gold_views.push_back(NotebookSignatures(g));
  }
  AedaScores scores =
      ComputeAedaScores(NotebookSignatures(notebook), gold_views);
  EXPECT_GE(scores.eda_sim, 0.0);
  EXPECT_LE(scores.eda_sim, 1.0);
  EXPECT_GE(scores.precision, 0.0);

  // Insight coverage is a valid fraction.
  double coverage = InsightCoverage(notebook, InsightCatalog("cyber2"));
  EXPECT_GE(coverage, 0.0);
  EXPECT_LE(coverage, 1.0);

  // Quality profile and proxy ratings are well-formed.
  auto quality = AssessNotebook(dataset.value(), notebook, gold.value(),
                                options.env);
  ASSERT_TRUE(quality.ok());
  UserRatings ratings = ProxyRatings(quality.value());
  EXPECT_GE(ratings.informativity, 1.0);
  EXPECT_LE(ratings.informativity, 7.0);

  // All three renderers accept the notebook.
  EXPECT_TRUE(RenderText(notebook).ok());
  EXPECT_TRUE(RenderMarkdown(notebook).ok());
  EXPECT_TRUE(RenderHtml(notebook).ok());
}

TEST(IntegrationTest, TrainedAtenaBeatsUntrainedPolicyReward) {
  auto dataset = MakeDataset("flights4");
  ASSERT_TRUE(dataset.ok());
  AtenaOptions options = FastOptions();
  options.trainer.total_steps = 3000;

  auto result = RunAtena(dataset.value(), options);
  ASSERT_TRUE(result.ok());
  const auto& curve = result.value().training.curve;
  ASSERT_GE(curve.size(), 3u);
  // The best episode clearly beats the random-ish early policy mean.
  EXPECT_GT(result.value().training.best_episode_reward,
            curve.front().mean_episode_reward);
}

TEST(IntegrationTest, GoldTracesAndGeneratedNotebooksAreComparable) {
  auto dataset = MakeDataset("cyber3");
  ASSERT_TRUE(dataset.ok());
  EnvConfig env_config;
  env_config.episode_length = 10;

  auto gold = GoldNotebooks(dataset.value(), env_config);
  ASSERT_TRUE(gold.ok());
  std::vector<std::vector<ViewSignature>> gold_views;
  for (const auto& g : gold.value()) {
    gold_views.push_back(NotebookSignatures(g));
  }

  auto traces = SimulatedTraceNotebooks(dataset.value(), env_config);
  ASSERT_TRUE(traces.ok());
  double traces_sim = 0.0;
  for (const auto& t : traces.value()) {
    traces_sim += MaxEdaSim(NotebookSignatures(t), gold_views);
  }
  traces_sim /= traces.value().size();

  // A gold notebook scored leave-one-out still beats the noisy traces on
  // average (the paper's gold > traces ordering).
  double gold_sim = 0.0;
  for (size_t i = 0; i < gold_views.size(); ++i) {
    std::vector<std::vector<ViewSignature>> others;
    for (size_t j = 0; j < gold_views.size(); ++j) {
      if (j != i) others.push_back(gold_views[j]);
    }
    gold_sim += MaxEdaSim(gold_views[i], others);
  }
  gold_sim /= gold_views.size();
  EXPECT_GT(gold_sim, traces_sim);
}

}  // namespace
}  // namespace atena
