// Fault-domain tests for the serving runtime (DESIGN.md §13): session
// quarantine isolation, the deadline degradation ladder, admission control
// and load shedding, hot snapshot reload with last-good fallback, and the
// serving health log. The central contract: a fault retires exactly the
// session it belongs to, and the survivors' traces are bit-identical to a
// run where the failed session was never admitted — at any thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "reward/compound.h"
#include "rl/checkpoint.h"
#include "rl/policy.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace atena {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveIfExists(const std::string& path) {
  if (FileExists(path)) std::remove(path.c_str());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

SnapshotOptions SmallOptions() {
  SnapshotOptions options;
  options.env.episode_length = 6;
  options.env.num_term_bins = 4;
  options.policy.hidden = {24, 24};
  return options;
}

/// The smallest policy this stack can serve — used by the corrupt-reload
/// matrix, which loads a container once per corrupted byte offset.
SnapshotOptions TinyOptions() {
  SnapshotOptions options;
  options.env.episode_length = 4;
  options.env.num_term_bins = 2;
  options.env.history_displays = 1;
  options.policy.hidden = {4};
  return options;
}

std::shared_ptr<PolicySnapshot> SmallSnapshot() {
  return std::make_shared<PolicySnapshot>(MakeDataset("cyber2").value(),
                                          SmallOptions());
}

std::vector<SessionConfig> FaultConfigs(int count) {
  std::vector<SessionConfig> configs;
  for (int i = 0; i < count; ++i) {
    SessionConfig config;
    config.seed = 700 + static_cast<uint64_t>(i);
    config.max_steps = 5 + (i % 2) * 3;  // 5 or 8 steps; episodes are 6.
    config.greedy = (i % 2) == 0;
    configs.push_back(config);
  }
  return configs;
}

void ExpectTracesEqual(const SessionTrace& got, const SessionTrace& want,
                       const Table& table, const std::string& context) {
  ASSERT_EQ(got.steps.size(), want.steps.size()) << context;
  for (size_t i = 0; i < got.steps.size(); ++i) {
    const ServedStep& g = got.steps[i];
    const ServedStep& w = want.steps[i];
    EXPECT_EQ(g.op.Describe(table), w.op.Describe(table))
        << context << " step " << i;
    EXPECT_EQ(g.valid, w.valid) << context << " step " << i;
    EXPECT_EQ(g.reward, w.reward) << context << " step " << i;
    EXPECT_EQ(g.display_signature, w.display_signature)
        << context << " step " << i;
  }
  EXPECT_EQ(got.total_reward, want.total_reward) << context;
}

uint64_t MustAdmit(SessionManager& manager, const SessionConfig& config) {
  Result<uint64_t> id = manager.Admit(config);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  return id.ok() ? id.value() : 0;
}

std::map<uint64_t, SessionOutcome> OutcomesBySeed(
    std::vector<SessionOutcome> outcomes) {
  std::map<uint64_t, SessionOutcome> by_seed;
  for (auto& outcome : outcomes) {
    by_seed[outcome.trace.seed] = std::move(outcome);
  }
  return by_seed;
}

// ---------------------------------------------------------------------------
// Quarantine isolation

// The fault-injection matrix: an env-step failure at every (victim, step)
// position, at every thread count, quarantines exactly that session with
// its partial notebook — and every survivor's trace is bit-identical to a
// run where the victim was never admitted.
TEST(ServeQuarantineTest, EnvStepFaultIsolatesExactlyOneSession) {
  auto snapshot = SmallSnapshot();
  const auto configs = FaultConfigs(4);
  const Table& table = *snapshot->dataset().table;

  // Reference runs: the same workload with the victim never admitted.
  std::vector<std::map<uint64_t, SessionOutcome>> without_victim(
      configs.size());
  for (size_t victim = 0; victim < configs.size(); ++victim) {
    SessionManager manager(snapshot, ServeOptions{});
    for (size_t i = 0; i < configs.size(); ++i) {
      if (i != victim) MustAdmit(manager, configs[i]);
    }
    manager.Drain();
    without_victim[victim] = OutcomesBySeed(manager.TakeCompleted());
  }

  for (size_t victim = 0; victim < configs.size(); ++victim) {
    for (int fault_step : {0, 2, 4}) {
      for (int threads : {1, 2, 4}) {
        const std::string context =
            "victim " + std::to_string(victim) + " fault_step " +
            std::to_string(fault_step) + " threads " + std::to_string(threads);
        // The hook is keyed by the raw call's identity — (session id,
        // step index) — so the fault lands on the same logical step at
        // any thread count. The victim's id is known before serving
        // starts (ids are assigned in admission order).
        auto victim_id = std::make_shared<uint64_t>(0);
        ServeOptions options;
        options.num_threads = threads;
        options.fault_injection.env_step =
            [victim_id, fault_step](uint64_t session_id,
                                    int step_index) -> Status {
          if (session_id == *victim_id && step_index == fault_step) {
            return Status::Internal("injected env-step fault");
          }
          return Status::OK();
        };
        SessionManager manager(snapshot, options);
        for (size_t i = 0; i < configs.size(); ++i) {
          const uint64_t id = MustAdmit(manager, configs[i]);
          if (i == victim) *victim_id = id;
        }
        manager.Drain();
        auto by_seed = OutcomesBySeed(manager.TakeCompleted());
        ASSERT_EQ(by_seed.size(), configs.size()) << context;
        EXPECT_EQ(manager.stats().quarantined, 1) << context;

        const SessionOutcome& failed = by_seed.at(configs[victim].seed);
        EXPECT_EQ(failed.reason, RetireReason::kQuarantined) << context;
        EXPECT_EQ(failed.status.code(), StatusCode::kInternal) << context;
        EXPECT_NE(failed.status.message().find("injected"), std::string::npos)
            << context;
        // Partial notebook: exactly the steps before the fault.
        EXPECT_EQ(failed.trace.steps.size(), static_cast<size_t>(fault_step))
            << context;

        for (size_t i = 0; i < configs.size(); ++i) {
          if (i == victim) continue;
          const SessionOutcome& survivor = by_seed.at(configs[i].seed);
          EXPECT_EQ(survivor.reason, RetireReason::kCompleted) << context;
          ExpectTracesEqual(
              survivor.trace,
              without_victim[victim].at(configs[i].seed).trace, table,
              context + " survivor seed " + std::to_string(configs[i].seed));
        }
      }
    }
  }
}

/// A reward signal that emits NaN on its Nth Compute call (0 = never) —
/// the "poisoned reward" fault the quarantine screen must catch before it
/// reaches the shared batch.
class PoisonReward final : public RewardSignal {
 public:
  explicit PoisonReward(int poison_at_call) : poison_at_(poison_at_call) {}
  double Compute(const RewardContext&) override {
    ++calls_;
    if (poison_at_ > 0 && calls_ == poison_at_) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return 0.25;
  }

 private:
  int poison_at_;
  int calls_ = 0;
};

TEST(ServeQuarantineTest, NonFiniteRewardQuarantinesOnlyThatSession) {
  auto snapshot = SmallSnapshot();
  const auto configs = FaultConfigs(3);
  const size_t victim = 1;
  constexpr int kPoisonCall = 3;

  ServeOptions options;
  auto factory_calls = std::make_shared<int>(0);
  options.reward_factory = [factory_calls]() -> std::shared_ptr<RewardSignal> {
    // Sessions are admitted in config order; the victim's factory call is
    // the victim'th one.
    const int index = (*factory_calls)++;
    return std::make_shared<PoisonReward>(
        index == static_cast<int>(victim) ? kPoisonCall : 0);
  };
  SessionManager manager(snapshot, options);
  for (const auto& config : configs) MustAdmit(manager, config);
  manager.Drain();
  auto by_seed = OutcomesBySeed(manager.TakeCompleted());
  ASSERT_EQ(by_seed.size(), configs.size());
  EXPECT_EQ(manager.stats().quarantined, 1);

  const SessionOutcome& failed = by_seed.at(configs[victim].seed);
  EXPECT_EQ(failed.reason, RetireReason::kQuarantined);
  EXPECT_NE(failed.status.message().find("non-finite reward"),
            std::string::npos)
      << failed.status.message();
  // The poisoned step never entered the notebook.
  EXPECT_EQ(failed.trace.steps.size(), static_cast<size_t>(kPoisonCall - 1));
  for (size_t i = 0; i < configs.size(); ++i) {
    if (i == victim) continue;
    EXPECT_EQ(by_seed.at(configs[i].seed).reason, RetireReason::kCompleted);
    EXPECT_EQ(by_seed.at(configs[i].seed).trace.steps.size(),
              static_cast<size_t>(configs[i].max_steps));
  }
}

// ---------------------------------------------------------------------------
// Deadline degradation ladder

TEST(ServeDeadlineTest, OverrunWalksFullLadderThenRetires) {
  auto snapshot = SmallSnapshot();
  std::vector<SessionConfig> configs;
  for (uint64_t seed : {50, 51, 52}) {
    SessionConfig config;
    config.seed = seed;
    config.max_steps = 8;
    configs.push_back(config);
  }
  const size_t victim = 1;
  constexpr int64_t kDeadline = 1000;

  auto victim_id = std::make_shared<uint64_t>(0);
  ServeOptions options;
  options.step_deadline_nanos = kDeadline;
  options.fault_injection.step_duration_nanos =
      [victim_id](uint64_t session_id, int /*step_index*/) -> int64_t {
    return session_id == *victim_id ? 5 * kDeadline : kDeadline / 10;
  };
  SessionManager manager(snapshot, options);
  for (size_t i = 0; i < configs.size(); ++i) {
    const uint64_t id = MustAdmit(manager, configs[i]);
    if (i == victim) *victim_id = id;
  }
  manager.Drain();
  auto by_seed = OutcomesBySeed(manager.TakeCompleted());
  ASSERT_EQ(by_seed.size(), configs.size());

  // The victim overruns every step: step 0 at kNormal (escalate), step 1
  // at kNoDiversity (escalate), step 2 at kGreedy (retire). Each executed
  // step stays in the notebook.
  const SessionOutcome& degraded = by_seed.at(configs[victim].seed);
  EXPECT_EQ(degraded.reason, RetireReason::kDeadlineExceeded);
  EXPECT_EQ(degraded.final_stage, DegradeStage::kGreedy);
  EXPECT_EQ(degraded.trace.steps.size(), 3u);
  EXPECT_EQ(degraded.degraded_steps, 2);
  EXPECT_EQ(degraded.status.code(), StatusCode::kResourceExhausted);

  const ServeStats& stats = manager.stats();
  EXPECT_EQ(stats.deadline_retired, 1);
  EXPECT_EQ(stats.degrade_transitions, 3);
  EXPECT_EQ(stats.degraded_steps, 2);
  EXPECT_EQ(stats.degraded_greedy_steps, 1);

  // The other sessions never overran and are served to completion,
  // bit-identical to the serial reference — a neighbour's degradation is
  // invisible.
  const Table& table = *snapshot->dataset().table;
  for (size_t i = 0; i < configs.size(); ++i) {
    if (i == victim) continue;
    const SessionOutcome& outcome = by_seed.at(configs[i].seed);
    EXPECT_EQ(outcome.reason, RetireReason::kCompleted);
    ExpectTracesEqual(outcome.trace,
                      ServeSingleSessionSerial(*snapshot, configs[i], nullptr),
                      table, "seed " + std::to_string(configs[i].seed));
  }
  // Before any escalation the victim acts exactly like its reference.
  SessionTrace reference =
      ServeSingleSessionSerial(*snapshot, configs[victim], nullptr);
  ExpectTracesEqual(
      SessionTrace{0, configs[victim].seed,
                   {degraded.trace.steps[0]},
                   degraded.trace.steps[0].reward},
      SessionTrace{0, configs[victim].seed,
                   {reference.steps[0]},
                   reference.steps[0].reward},
      table, "victim step 0");
}

// Degraded mode on the compound reward skips exactly the diversity
// component — the O(session history) min-distance scan — and nothing else.
TEST(ServeDeadlineTest, DegradedRewardSkipsDiversityScan) {
  auto snapshot = SmallSnapshot();
  EnvConfig env_config = snapshot->options().env;
  env_config.seed = 17;

  CompoundReward::Options reward_options;
  reward_options.enable_coherency = false;  // No classifier needed.
  CompoundReward normal(nullptr, reward_options);
  CompoundReward degraded(nullptr, reward_options);
  degraded.SetDegradedMode(true);
  EXPECT_TRUE(degraded.degraded_mode());
  EXPECT_FALSE(normal.degraded_mode());

  // Two identical environments stepped through the same sampled action
  // sequence, one scored normally and one degraded.
  EdaEnvironment env_a(snapshot->dataset(), env_config);
  EdaEnvironment env_b(snapshot->dataset(), env_config);
  env_a.SetRewardSignal(&normal);
  env_b.SetRewardSignal(&degraded);
  std::vector<double> obs_a = env_a.Reset();
  std::vector<double> obs_b = env_b.Reset();
  Rng rng_a(4141), rng_b(4141);
  TwofoldPolicy* policy = snapshot->policy();

  bool saw_nonzero_diversity = false;
  for (int step = 0; step < 6; ++step) {
    const PolicyStep act_a = policy->Act(obs_a, &rng_a);
    const PolicyStep act_b = policy->Act(obs_b, &rng_b);
    StepOutcome out_a = ApplyAction(&env_a, act_a.action);
    StepOutcome out_b = ApplyAction(&env_b, act_b.action);
    // Identical environments and streams: same operation either way.
    ASSERT_EQ(out_a.op.Describe(*snapshot->dataset().table),
              out_b.op.Describe(*snapshot->dataset().table))
        << "step " << step;
    EXPECT_EQ(degraded.last_components().diversity, 0.0) << "step " << step;
    EXPECT_EQ(normal.last_components().interestingness,
              degraded.last_components().interestingness)
        << "step " << step;
    if (normal.last_components().diversity != 0.0) {
      saw_nonzero_diversity = true;
    }
    obs_a = std::move(out_a.observation);
    obs_b = std::move(out_b.observation);
  }
  // The normal-mode run must actually have scored diversity somewhere,
  // or this test proves nothing.
  EXPECT_TRUE(saw_nonzero_diversity);
}

// ---------------------------------------------------------------------------
// Admission control and load shedding

TEST(ServeAdmissionTest, OverAdmissionIsRefusedWithoutPerturbingSessions) {
  auto snapshot = SmallSnapshot();
  const auto configs = FaultConfigs(4);
  ServeOptions options;
  options.max_sessions = 3;
  SessionManager manager(snapshot, options);
  for (size_t i = 0; i < 3; ++i) MustAdmit(manager, configs[i]);

  // The 4th admission is a structured refusal naming the limit...
  Result<uint64_t> refused = manager.Admit(configs[3]);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("max_sessions"),
            std::string::npos)
      << refused.status().message();

  // ...also mid-serving...
  manager.Tick();
  manager.Tick();
  EXPECT_FALSE(manager.Admit(configs[3]).ok());
  EXPECT_EQ(manager.stats().shed, 2);

  // ...and the sessions it bounced off are served exactly as if nothing
  // had knocked.
  manager.Drain();
  auto by_seed = OutcomesBySeed(manager.TakeCompleted());
  ASSERT_EQ(by_seed.size(), 3u);
  const Table& table = *snapshot->dataset().table;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(by_seed.at(configs[i].seed).reason, RetireReason::kCompleted);
    ExpectTracesEqual(by_seed.at(configs[i].seed).trace,
                      ServeSingleSessionSerial(*snapshot, configs[i], nullptr),
                      table, "seed " + std::to_string(configs[i].seed));
  }
  // Capacity freed: the refused session is admissible now.
  MustAdmit(manager, configs[3]);
  manager.Drain();
  EXPECT_EQ(manager.stats().admitted, 4);
}

TEST(ServeAdmissionTest, WatermarkShedsOnlyWhileOverloaded) {
  auto snapshot = SmallSnapshot();
  ServeOptions options;
  options.max_sessions = 8;
  options.shed_watermark = 0.25;  // Watermark at 2 live sessions.
  options.step_deadline_nanos = 1000;
  // Every step overruns the deadline: after the first tick the runtime
  // reports itself overloaded.
  options.fault_injection.step_duration_nanos =
      [](uint64_t, int) -> int64_t { return 10 * 1000; };
  SessionManager manager(snapshot, options);

  SessionConfig config;
  config.max_steps = 8;
  config.seed = 60;
  MustAdmit(manager, config);
  config.seed = 61;
  // Not overloaded yet: the watermark alone does not shed.
  MustAdmit(manager, config);

  manager.Tick();
  config.seed = 62;
  Result<uint64_t> shed = manager.Admit(config);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("watermark"), std::string::npos)
      << shed.status().message();
  EXPECT_EQ(manager.stats().shed, 1);

  // Both sessions walk the ladder and retire; once the runtime is below
  // the watermark the same admission succeeds even though the last tick
  // was overloaded.
  manager.Drain();
  EXPECT_EQ(manager.stats().deadline_retired, 2);
  MustAdmit(manager, config);
}

// ---------------------------------------------------------------------------
// Hot snapshot reload

/// Serves one session on `manager` and returns its trace.
SessionTrace ServeOne(SessionManager& manager, uint64_t seed) {
  SessionConfig config;
  config.seed = seed;
  config.max_steps = 4;
  MustAdmit(manager, config);
  manager.Drain();
  auto outcomes = manager.TakeCompleted();
  EXPECT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].reason, RetireReason::kCompleted);
  return std::move(outcomes[0].trace);
}

TEST(ServeReloadTest, CorruptReloadAtEveryByteKeepsLastGood) {
  const std::string good_path = TempPath("serve_reload_good.bin");
  const std::string corrupt_path = TempPath("serve_reload_corrupt.bin");
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(good_path + suffix);
  }

  Dataset dataset = MakeDataset("cyber2").value();
  const SnapshotOptions options = TinyOptions();
  auto serving = std::make_shared<PolicySnapshot>(dataset, options);
  // The reload target: same architecture, different weights.
  SnapshotOptions retrained_options = options;
  retrained_options.policy.seed = 555;
  auto retrained =
      std::make_shared<PolicySnapshot>(dataset, retrained_options);
  ASSERT_TRUE(SaveTrainingCheckpoint(good_path,
                                     retrained->policy()->Parameters(),
                                     TrainingCheckpoint{})
                  .ok());
  std::string good_bytes;
  ASSERT_TRUE(ReadFileToString(good_path, &good_bytes).ok());

  ServeOptions serve_options;
  serve_options.reload_retries = 0;  // The matrix needs no backoff.
  SessionManager manager(serving, serve_options);
  const SessionTrace before = ServeOne(manager, 300);
  const PolicySnapshot* last_good = manager.snapshot().get();

  // Loader-level matrix: a single flipped byte at EVERY offset of the
  // CRC-framed container must be rejected (into scratch parameters, so
  // each probe costs a read + CRC, not a snapshot construction).
  auto scratch = std::make_shared<PolicySnapshot>(dataset, options);
  for (size_t offset = 0; offset < good_bytes.size(); ++offset) {
    std::string corrupt = good_bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xFF);
    WriteBytes(corrupt_path, corrupt);
    Status loaded =
        LoadPolicyParameters(corrupt_path, scratch->policy()->Parameters());
    ASSERT_FALSE(loaded.ok()) << "flipped byte at offset " << offset
                              << " was accepted";
  }

  // Runtime-level matrix: ReloadSnapshot keeps the last-good snapshot on
  // corruption (sampled across the file) and on truncation.
  std::vector<size_t> probe_offsets = {0, 1, good_bytes.size() / 2,
                                       good_bytes.size() - 1};
  for (size_t offset = 7; offset < good_bytes.size();
       offset += good_bytes.size() / 16 + 1) {
    probe_offsets.push_back(offset);
  }
  int failed_reloads = 0;
  for (size_t offset : probe_offsets) {
    std::string corrupt = good_bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xFF);
    WriteBytes(corrupt_path, corrupt);
    Status reloaded = manager.ReloadSnapshot(corrupt_path);
    EXPECT_FALSE(reloaded.ok()) << "offset " << offset;
    EXPECT_NE(reloaded.message().find(corrupt_path), std::string::npos)
        << reloaded.message();
    EXPECT_EQ(manager.snapshot().get(), last_good) << "offset " << offset;
    ++failed_reloads;
  }
  for (size_t length : {size_t{0}, size_t{1}, good_bytes.size() / 2,
                        good_bytes.size() - 1}) {
    WriteBytes(corrupt_path, good_bytes.substr(0, length));
    EXPECT_FALSE(manager.ReloadSnapshot(corrupt_path).ok())
        << "truncated to " << length;
    EXPECT_EQ(manager.snapshot().get(), last_good)
        << "truncated to " << length;
    ++failed_reloads;
  }
  EXPECT_EQ(manager.stats().reload_failures, failed_reloads);

  // Still serving the last-good snapshot, bit for bit.
  ExpectTracesEqual(ServeOne(manager, 300), before,
                    *serving->dataset().table, "after corrupt reloads");

  // And an intact file swaps over: new sessions serve the new weights.
  ASSERT_TRUE(manager.ReloadSnapshot(good_path).ok());
  EXPECT_EQ(manager.stats().reload_successes, 1);
  SessionConfig config;
  config.seed = 300;
  config.max_steps = 4;
  ExpectTracesEqual(ServeOne(manager, 300),
                    ServeSingleSessionSerial(*retrained, config, nullptr),
                    *serving->dataset().table, "after good reload");

  RemoveIfExists(corrupt_path);
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(good_path + suffix);
  }
}

TEST(ServeReloadTest, TransientFailureRetriesWithBackoffThenSucceeds) {
  const std::string good_path = TempPath("serve_reload_retry_good.bin");
  const std::string flaky_path = TempPath("serve_reload_retry_flaky.bin");
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(good_path + suffix);
  }

  Dataset dataset = MakeDataset("cyber2").value();
  auto serving = std::make_shared<PolicySnapshot>(dataset, TinyOptions());
  ASSERT_TRUE(SaveTrainingCheckpoint(good_path,
                                     serving->policy()->Parameters(),
                                     TrainingCheckpoint{})
                  .ok());
  std::string good_bytes;
  ASSERT_TRUE(ReadFileToString(good_path, &good_bytes).ok());

  // A half-written file, as a concurrent trainer mid-save would leave it.
  WriteBytes(flaky_path, good_bytes.substr(0, good_bytes.size() / 2));

  auto sleeps = std::make_shared<std::vector<int64_t>>();
  ServeOptions options;
  options.reload_retries = 3;
  options.reload_backoff_nanos = 1000;
  options.reload_sleep = [sleeps, flaky_path, good_bytes](int64_t nanos) {
    sleeps->push_back(nanos);
    // The save completes while the reload is backing off.
    if (sleeps->size() == 2) WriteBytes(flaky_path, good_bytes);
  };
  SessionManager manager(serving, options);
  ASSERT_TRUE(manager.ReloadSnapshot(flaky_path).ok());
  // Attempt 0 and 1 failed; the backoff doubles between attempts.
  ASSERT_EQ(sleeps->size(), 2u);
  EXPECT_EQ((*sleeps)[0], 1000);
  EXPECT_EQ((*sleeps)[1], 2000);
  EXPECT_EQ(manager.stats().reload_successes, 1);
  EXPECT_EQ(manager.stats().reload_failures, 0);

  RemoveIfExists(flaky_path);
  for (const char* suffix : {"", ".prev", ".new"}) {
    RemoveIfExists(good_path + suffix);
  }
}

TEST(ServeReloadTest, GivesUpAfterRetryBudgetAndKeepsServing) {
  auto serving = std::make_shared<PolicySnapshot>(
      MakeDataset("cyber2").value(), TinyOptions());
  auto sleeps = std::make_shared<std::vector<int64_t>>();
  ServeOptions options;
  options.reload_retries = 2;
  options.reload_backoff_nanos = 500;
  options.reload_sleep = [sleeps](int64_t nanos) {
    sleeps->push_back(nanos);
  };
  SessionManager manager(serving, options);
  const PolicySnapshot* last_good = manager.snapshot().get();

  Status reloaded =
      manager.ReloadSnapshot(TempPath("serve_reload_never_exists.bin"));
  ASSERT_FALSE(reloaded.ok());
  ASSERT_EQ(sleeps->size(), 2u);
  EXPECT_EQ((*sleeps)[0], 500);
  EXPECT_EQ((*sleeps)[1], 1000);
  EXPECT_EQ(manager.stats().reload_failures, 1);
  EXPECT_EQ(manager.snapshot().get(), last_good);
  // Serving continues on the last-good snapshot.
  EXPECT_EQ(ServeOne(manager, 42).steps.size(), 4u);
}

// ---------------------------------------------------------------------------
// Health log

TEST(ServeHealthLogTest, FaultDomainEventsAreLogged) {
  const std::string log_path = TempPath("serve_health_log.jsonl");
  RemoveIfExists(log_path);
  auto snapshot = SmallSnapshot();

  auto victim_id = std::make_shared<uint64_t>(0);
  ServeOptions options;
  options.max_sessions = 1;
  options.health_log_path = log_path;
  options.reload_retries = 0;
  options.fault_injection.env_step = [victim_id](uint64_t session_id,
                                                 int step_index) -> Status {
    if (session_id == *victim_id && step_index == 2) {
      return Status::IOError("disk gremlin");
    }
    return Status::OK();
  };
  SessionManager manager(snapshot, options);

  SessionConfig config;
  config.seed = 80;
  config.max_steps = 6;
  *victim_id = MustAdmit(manager, config);
  config.seed = 81;
  EXPECT_FALSE(manager.Admit(config).ok());  // Shed at max_sessions.
  EXPECT_FALSE(
      manager.ReloadSnapshot(TempPath("serve_health_missing.bin")).ok());
  manager.Drain();

  std::string log;
  ASSERT_TRUE(ReadFileToString(log_path, &log).ok());
  for (const char* needle :
       {"\"type\":\"shed\"", "\"type\":\"quarantine\"",
        "\"type\":\"reload_fail\"", "\"type\":\"reload_giveup\"",
        "disk gremlin", "\"session\":"}) {
    EXPECT_NE(log.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << log;
  }
  // Every line is one {...} object with a monotonically increasing id.
  std::istringstream lines(log);
  std::string line;
  int expected_event = 1;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_EQ(line.find("{\"event\":" + std::to_string(expected_event)), 0u)
        << line;
    ++expected_event;
  }
  EXPECT_GE(expected_event - 1, 4);
  RemoveIfExists(log_path);
}

}  // namespace
}  // namespace atena
