#include <gtest/gtest.h>

#include "coherency/rules.h"
#include "data/registry.h"
#include "reward/compound.h"
#include "reward/diversity.h"
#include "reward/interestingness.h"

namespace atena {
namespace {

Dataset SmallDataset() {
  auto d = MakeDataset("cyber2");
  EXPECT_TRUE(d.ok());
  return d.value();
}

EnvConfig SmallConfig() {
  EnvConfig config;
  config.episode_length = 8;
  config.num_term_bins = 4;
  return config;
}

RewardContext StepContext(EdaEnvironment* env, const EdaOperation& op) {
  StepOutcome outcome = env->StepOperation(op);
  RewardContext context;
  context.env = env;
  context.op = &env->steps().back().op;
  context.valid = outcome.valid;
  return context;
}

// ----------------------------------------------- group interestingness

TEST(GroupInterestingnessTest, DegenerateGroupingsScoreLow) {
  // One group over everything: nothing was separated.
  EXPECT_LT(GroupInterestingness(1, 1, 1000), 0.15);
  // Singleton groups: nothing was summarized.
  EXPECT_LT(GroupInterestingness(1000, 1, 1000), 0.15);
  // Zero cases.
  EXPECT_DOUBLE_EQ(GroupInterestingness(0, 1, 100), 0.0);
  EXPECT_DOUBLE_EQ(GroupInterestingness(5, 1, 0), 0.0);
}

TEST(GroupInterestingnessTest, CompactCoveringGroupingScoresHigh) {
  EXPECT_GT(GroupInterestingness(8, 1, 1000), 0.7);
  EXPECT_GT(GroupInterestingness(5, 2, 500), 0.5);
}

TEST(GroupInterestingnessTest, DeepGroupingsArePenalized) {
  double shallow = GroupInterestingness(10, 1, 1000);
  double deep = GroupInterestingness(10, 5, 1000);
  EXPECT_GT(shallow, deep * 2);
}

TEST(GroupInterestingnessTest, BoundedToUnitInterval) {
  for (int64_t g : {1, 2, 10, 100, 10000}) {
    for (int a : {1, 2, 4, 6}) {
      double v = GroupInterestingness(g, a, 20000);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

// ---------------------------------------------- filter interestingness

TEST(FilterInterestingnessTest, SelectiveFilterBeatsNoOp) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int src = d.table->FindColumn("source_ip");
  // Selecting the attacker flips the distribution of method/uri/user_agent.
  auto strong = StepContext(&env, EdaOperation::Filter(
                                      src, CompareOp::kEq,
                                      Value(std::string("203.0.113.99"))));
  double strong_score = OperationInterestingness(strong);
  EXPECT_GT(strong_score, 0.5);

  env.Reset();
  int status = d.table->FindColumn("status");
  // status != 404 keeps ~94% of rows: barely any deviation.
  auto weak = StepContext(&env, EdaOperation::Filter(
                                    status, CompareOp::kNeq,
                                    Value(int64_t{404})));
  double weak_score = OperationInterestingness(weak);
  EXPECT_GT(strong_score, weak_score);
}

TEST(FilterInterestingnessTest, BackAndInvalidScoreZero) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  auto back = StepContext(&env, EdaOperation::Back());
  EXPECT_DOUBLE_EQ(OperationInterestingness(back), 0.0);
}

TEST(FilterInterestingnessTest, GroupedDisplayUsesAggregatedAttribute) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  int bytes = d.table->FindColumn("response_bytes");
  env.StepOperation(EdaOperation::Group(method, AggFunc::kAvg, bytes));
  auto ctx = StepContext(&env, EdaOperation::Filter(
                                   method, CompareOp::kEq,
                                   Value(std::string("POST"))));
  double score = OperationInterestingness(ctx);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(GroupOperationTest, GroupScoreMatchesDirectComputation) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  auto ctx = StepContext(&env, EdaOperation::Group(method, AggFunc::kCount,
                                                   -1));
  const Display& display = env.current_display();
  double expected = GroupInterestingness(
      static_cast<int64_t>(display.grouped->groups.size()),
      1, static_cast<int64_t>(display.rows.size()));
  EXPECT_DOUBLE_EQ(OperationInterestingness(ctx), expected);
}

// ------------------------------------------------------------ diversity

TEST(DiversityTest, FirstDisplayScoresZero) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  RewardContext ctx;
  ctx.env = &env;
  EXPECT_DOUBLE_EQ(DiversityReward(ctx), 0.0);
}

TEST(DiversityTest, DuplicateDisplayScoresZero) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int method = d.table->FindColumn("method");
  StepContext(&env, EdaOperation::Group(method, AggFunc::kCount, -1));
  // BACK returns to the root display, which is already in the history.
  auto ctx = StepContext(&env, EdaOperation::Back());
  EXPECT_DOUBLE_EQ(DiversityReward(ctx), 0.0);
}

TEST(DiversityTest, NovelDisplayScoresPositive) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  env.Reset();
  int src = d.table->FindColumn("source_ip");
  auto ctx = StepContext(&env, EdaOperation::Filter(
                                   src, CompareOp::kEq,
                                   Value(std::string("203.0.113.99"))));
  EXPECT_GT(DiversityReward(ctx), 0.0);
  EXPECT_LE(DiversityReward(ctx), 1.0);
}

// ------------------------------------------------------------- compound

TEST(CompoundRewardTest, RequiresClassifierWhenCoherencyEnabled) {
  CompoundReward::Options options;
  options.enable_coherency = false;
  CompoundReward reward(nullptr, options);  // must not crash
  SUCCEED();
}

TEST(CompoundRewardTest, ComponentsAreSwitchable) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  CompoundReward::Options options;
  options.enable_diversity = false;
  options.enable_coherency = false;
  CompoundReward reward(nullptr, options);
  env.SetRewardSignal(&reward);
  env.Reset();
  int method = d.table->FindColumn("method");
  env.StepOperation(EdaOperation::Group(method, AggFunc::kCount, -1));
  EXPECT_DOUBLE_EQ(reward.last_components().diversity, 0.0);
  EXPECT_DOUBLE_EQ(reward.last_components().coherency, 0.0);
  EXPECT_GT(reward.last_components().interestingness, 0.0);
}

TEST(CompoundRewardTest, CalibrationBalancesComponentShares) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  auto reward = MakeStandardReward(&env);
  ASSERT_TRUE(reward.ok());
  env.SetRewardSignal(reward.value().get());

  // Replay random sessions and accumulate weighted component magnitudes.
  Rng rng(31);
  double sum_i = 0, sum_d = 0, sum_c = 0;
  for (int episode = 0; episode < 10; ++episode) {
    env.Reset();
    while (!env.done()) {
      StepOutcome outcome = env.Step(SampleRandomAction(env.action_space(),
                                                        &rng));
      if (!outcome.valid) continue;
      const auto& c = reward.value()->last_components();
      const auto& o = reward.value()->options();
      sum_i += std::abs(o.weight_interestingness * c.interestingness);
      sum_d += std::abs(o.weight_diversity * c.diversity);
      sum_c += std::abs(o.weight_coherency * c.coherency);
    }
  }
  const double total = sum_i + sum_d + sum_c;
  ASSERT_GT(total, 0.0);
  // Paper §6.1: no component below 10% of the total reward mass.
  EXPECT_GT(sum_i / total, 0.10);
  EXPECT_GT(sum_d / total, 0.10);
  EXPECT_GT(sum_c / total, 0.10);
}

TEST(CompoundRewardTest, IncoherentOperationsArePenalized) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  auto reward = MakeStandardReward(&env);
  ASSERT_TRUE(reward.ok());
  env.SetRewardSignal(reward.value().get());
  env.Reset();
  int id_col = d.table->FindColumn("request_id");
  // Filtering on a row id: id-like + (usually) tiny effect.
  StepOutcome outcome = env.StepOperation(EdaOperation::Filter(
      id_col, CompareOp::kEq, Value(int64_t{17})));
  ASSERT_TRUE(outcome.valid);
  EXPECT_LT(reward.value()->last_components().coherency, 0.0);
}

TEST(CompoundRewardTest, MakeStandardRewardLeavesEnvReset) {
  Dataset d = SmallDataset();
  EdaEnvironment env(d, SmallConfig());
  auto reward = MakeStandardReward(&env);
  ASSERT_TRUE(reward.ok());
  EXPECT_EQ(env.step_count(), 0);
  EXPECT_EQ(env.display_history().size(), 1u);
}

}  // namespace
}  // namespace atena
