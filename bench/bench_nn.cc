// Micro-benchmarks of the neural substrate and the two actor
// architectures: forward/backward passes and optimizer steps at the sizes
// used by the experiments — including the pre-output vs flat-output width
// comparison at the heart of paper §5, and the per-sample vs batched
// acting comparison that motivates the stateless-graph substrate (one
// shared parameter store, per-call workspaces, ActBatch across actors).
// Writes BENCH_nn.json next to the working directory.
#include <benchmark/benchmark.h>

#include "baselines/flat_policy.h"
#include "bench_json.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "nn/optimizer.h"

namespace atena {
namespace {

constexpr int kInFeatures = 128;
constexpr int kOutFeatures = 32;

std::unique_ptr<Sequential> BenchMlp(ParameterStore* store, Rng* rng) {
  return MakeMlp(kInFeatures, {64, 64}, kOutFeatures, store, "mlp", rng);
}

// ------------------------------------------------- forward: per-sample
// The historical acting pattern: one 1-row forward per sample.
void BM_MlpForwardPerSample(benchmark::State& state) {
  ParameterStore store;
  Rng rng(1);
  const int batch = static_cast<int>(state.range(0));
  auto net = BenchMlp(&store, &rng);
  Matrix input(batch, kInFeatures);
  for (double& x : input.data()) x = rng.NextGaussian();
  Workspace ws;
  Matrix row(1, kInFeatures);
  for (auto _ : state) {
    double sink = 0.0;
    for (int r = 0; r < batch; ++r) {
      std::copy(input.RowPtr(r), input.RowPtr(r) + kInFeatures,
                row.RowPtr(0));
      sink += net->Forward(row, &ws)(0, 0);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardPerSample)->Arg(1)->Arg(8)->Arg(64);

// --------------------------------------------------- forward: batched
void BM_MlpForwardBatched(benchmark::State& state) {
  ParameterStore store;
  Rng rng(1);
  const int batch = static_cast<int>(state.range(0));
  auto net = BenchMlp(&store, &rng);
  Matrix input(batch, kInFeatures);
  for (double& x : input.data()) x = rng.NextGaussian();
  Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->Forward(input, &ws)(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBatched)->Arg(1)->Arg(8)->Arg(64);

// -------------------------------------------- forward+backward: batched
void BM_MlpForwardBackward(benchmark::State& state) {
  ParameterStore store;
  Rng rng(1);
  const int batch = static_cast<int>(state.range(0));
  auto net = BenchMlp(&store, &rng);
  Matrix input(batch, kInFeatures);
  for (double& x : input.data()) x = rng.NextGaussian();
  Matrix grad(batch, kOutFeatures, 0.01);
  Workspace ws;
  for (auto _ : state) {
    ZeroGradients(store.All());
    net->Forward(input, &ws);
    benchmark::DoNotOptimize(net->Backward(grad, &ws).size());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBackward)->Arg(1)->Arg(8)->Arg(64);

void BM_AdamStep(benchmark::State& state) {
  ParameterStore store;
  Rng rng(2);
  auto net = BenchMlp(&store, &rng);
  Matrix input(16, kInFeatures, 0.1);
  Workspace ws;
  net->Forward(input, &ws);
  net->Backward(Matrix(16, kOutFeatures, 0.01), &ws);
  Adam adam(1e-3);
  for (auto _ : state) {
    adam.Step(store.All());
  }
}
BENCHMARK(BM_AdamStep);

// ----------------------------------------------------- acting throughput
// Multi-actor lockstep acting: one Act call per actor (the historical
// trainer loop) vs a single ActBatch forward for all actors. The batched
// variant must be >= 2x the per-sample one at 4+ actors.

void BM_TwofoldActPerSample(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  const int actors = static_cast<int>(state.range(0));
  TwofoldPolicy policy(env.observation_dim(), env.action_space());
  Rng rng(3);
  auto obs = env.Reset();
  for (auto _ : state) {
    double sink = 0.0;
    for (int a = 0; a < actors; ++a) {
      sink += policy.Act(obs, &rng).log_prob;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * actors);
}
BENCHMARK(BM_TwofoldActPerSample)->Arg(1)->Arg(4)->Arg(16);

void BM_TwofoldActBatch(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  const int actors = static_cast<int>(state.range(0));
  TwofoldPolicy policy(env.observation_dim(), env.action_space());
  Rng rng(3);
  auto obs = env.Reset();
  Matrix observations(actors, static_cast<int>(obs.size()));
  for (int a = 0; a < actors; ++a) {
    std::copy(obs.begin(), obs.end(), observations.RowPtr(a));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.ActBatch(observations, &rng).back().log_prob);
  }
  state.SetItemsProcessed(state.iterations() * actors);
}
BENCHMARK(BM_TwofoldActBatch)->Arg(1)->Arg(4)->Arg(16);

void BM_FlatPolicyAct(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kExplicitTokens;
  FlatPolicy policy(env, options);
  Rng rng(4);
  auto obs = env.Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Act(obs, &rng).log_prob);
  }
}
BENCHMARK(BM_FlatPolicyAct);

void BM_FlatActBatch(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  const int actors = static_cast<int>(state.range(0));
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kExplicitTokens;
  FlatPolicy policy(env, options);
  Rng rng(4);
  auto obs = env.Reset();
  Matrix observations(actors, static_cast<int>(obs.size()));
  for (int a = 0; a < actors; ++a) {
    std::copy(obs.begin(), obs.end(), observations.RowPtr(a));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.ActBatch(observations, &rng).back().log_prob);
  }
  state.SetItemsProcessed(state.iterations() * actors);
}
BENCHMARK(BM_FlatActBatch)->Arg(4)->Arg(16);

void BM_TwofoldBatchUpdate(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  TwofoldPolicy policy(env.observation_dim(), env.action_space());
  Rng rng(5);
  auto obs = env.Reset();
  const int batch = 64;
  Matrix observations(batch, static_cast<int>(obs.size()));
  std::vector<ActionRecord> actions;
  std::vector<SampleGrad> grads(batch);
  for (int b = 0; b < batch; ++b) {
    PolicyStep step = policy.Act(obs, &rng);
    actions.push_back(step.action);
    for (size_t i = 0; i < obs.size(); ++i) {
      observations(b, static_cast<int>(i)) = obs[i];
    }
    grads[static_cast<size_t>(b)] = SampleGrad{0.01, -0.001, 0.02};
  }
  for (auto _ : state) {
    ZeroGradients(policy.Parameters());
    policy.ForwardBatch(observations, actions);
    policy.BackwardBatch(grads);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TwofoldBatchUpdate);

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atena::bench::JsonFileReporter reporter("BENCH_nn.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
