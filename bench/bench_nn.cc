// Micro-benchmarks of the neural substrate and the two actor
// architectures: forward/backward passes and optimizer steps at the sizes
// used by the experiments — including the pre-output vs flat-output width
// comparison at the heart of paper §5.
#include <benchmark/benchmark.h>

#include "baselines/flat_policy.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "nn/optimizer.h"

namespace atena {
namespace {

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(1);
  const int batch = static_cast<int>(state.range(0));
  auto net = MakeMlp(128, {64, 64}, 32, &rng);
  Matrix input(batch, 128);
  for (double& x : input.data()) x = rng.NextGaussian();
  Matrix grad(batch, 32, 0.01);
  for (auto _ : state) {
    ZeroGradients(net->Parameters());
    Matrix out = net->Forward(input);
    benchmark::DoNotOptimize(net->Backward(grad).size());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBackward)->Arg(1)->Arg(64)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(2);
  auto net = MakeMlp(128, {64, 64}, 32, &rng);
  Matrix input(16, 128, 0.1);
  net->Forward(input);
  net->Backward(Matrix(16, 32, 0.01));
  Adam adam(1e-3);
  for (auto _ : state) {
    adam.Step(net->Parameters());
  }
}
BENCHMARK(BM_AdamStep);

void BM_TwofoldPolicyAct(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  TwofoldPolicy policy(env.observation_dim(), env.action_space());
  Rng rng(3);
  auto obs = env.Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Act(obs, &rng).log_prob);
  }
}
BENCHMARK(BM_TwofoldPolicyAct);

void BM_FlatPolicyAct(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  FlatPolicy::Options options;
  options.term_mode = FlatPolicy::TermMode::kExplicitTokens;
  FlatPolicy policy(env, options);
  Rng rng(4);
  auto obs = env.Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Act(obs, &rng).log_prob);
  }
}
BENCHMARK(BM_FlatPolicyAct);

void BM_TwofoldBatchUpdate(benchmark::State& state) {
  auto dataset = MakeDataset("cyber2").value();
  EnvConfig config;
  EdaEnvironment env(dataset, config);
  TwofoldPolicy policy(env.observation_dim(), env.action_space());
  Rng rng(5);
  auto obs = env.Reset();
  const int batch = 64;
  Matrix observations(batch, static_cast<int>(obs.size()));
  std::vector<ActionRecord> actions;
  std::vector<SampleGrad> grads(batch);
  for (int b = 0; b < batch; ++b) {
    PolicyStep step = policy.Act(obs, &rng);
    actions.push_back(step.action);
    for (size_t i = 0; i < obs.size(); ++i) {
      observations(b, static_cast<int>(i)) = obs[i];
    }
    grads[static_cast<size_t>(b)] = SampleGrad{0.01, -0.001, 0.02};
  }
  for (auto _ : state) {
    ZeroGradients(policy.Parameters());
    policy.ForwardBatch(observations, actions);
    policy.BackwardBatch(grads);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TwofoldBatchUpdate);

}  // namespace
}  // namespace atena

BENCHMARK_MAIN();
