#ifndef ATENA_BENCH_BENCH_JSON_H_
#define ATENA_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace atena {
namespace bench {

/// Attaches p50/p95/p99 latency counters (milliseconds) computed from
/// per-event durations in seconds. Counters flow into the console table
/// and — via JsonFileReporter below — into the BENCH_*.json summary, so
/// any bench binary that collects per-step/per-query samples reports tail
/// latency the same way.
inline void AddLatencyPercentiles(benchmark::State& state,
                                  const std::vector<double>& seconds,
                                  const std::string& prefix = "latency") {
  const double to_ms = 1e3;
  state.counters[prefix + "_p50_ms"] =
      benchmark::Counter(Percentile(seconds, 50.0) * to_ms);
  state.counters[prefix + "_p95_ms"] =
      benchmark::Counter(Percentile(seconds, 95.0) * to_ms);
  state.counters[prefix + "_p99_ms"] =
      benchmark::Counter(Percentile(seconds, 99.0) * to_ms);
}

/// Console reporter that additionally records every iteration run and, at
/// Finalize, writes a compact machine-readable JSON summary (per-iteration
/// times, items/sec and all user counters such as cache_hit_rate). The
/// micro-bench binaries write BENCH_env.json / BENCH_dataframe.json next to
/// their working directory so the perf trajectory is tracked across PRs.
class JsonFileReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonFileReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type == Run::RT_Iteration && !run.error_occurred) {
        runs_.push_back(run);
      }
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < runs_.size(); ++i) {
      const Run& run = runs_[i];
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"iterations\": %lld, "
                   "\"real_time_sec\": %.9g, \"cpu_time_sec\": %.9g",
                   run.benchmark_name().c_str(),
                   static_cast<long long>(run.iterations),
                   run.real_accumulated_time / iters,
                   run.cpu_accumulated_time / iters);
      for (const auto& [name, counter] : run.counters) {
        std::fprintf(out, ", \"%s\": %.9g", name.c_str(),
                     static_cast<double>(counter));
      }
      std::fprintf(out, "}%s\n", i + 1 < runs_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu benchmarks)\n", path_.c_str(), runs_.size());
  }

 private:
  std::string path_;
  std::vector<Run> runs_;
};

}  // namespace bench
}  // namespace atena

#endif  // ATENA_BENCH_BENCH_JSON_H_
