// Regenerates paper Figure 4a: user ratings (1–7) for Informativity,
// Comprehensibility, Expertise and Human-Equivalence across Gold-Standard,
// EDA-Traces, Greedy-IO, OTS-DRL-B and ATENA notebooks — via the proxy
// rating model (DESIGN.md substitution #6; the paper ran a 40-participant
// study). Averaged across all 8 datasets.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "eval/ratings.h"

namespace atena {
namespace {

struct Accumulator {
  UserRatings total;
  int count = 0;
  void Add(const UserRatings& r) {
    total.informativity += r.informativity;
    total.comprehensibility += r.comprehensibility;
    total.expertise += r.expertise;
    total.human_equivalence += r.human_equivalence;
    ++count;
  }
  std::vector<double> Mean() const {
    const double n = count > 0 ? count : 1;
    return {total.informativity / n, total.comprehensibility / n,
            total.expertise / n, total.human_equivalence / n};
  }
};

int Run() {
  AtenaOptions options = bench::ExperimentOptions();
  auto datasets = MakeAllDatasets();
  if (!datasets.ok()) return 1;

  // Figure 4a compares the gold standard, EDA traces, and one
  // representative of each automatic family (the strongest per §6.2).
  const std::vector<BaselineKind> kinds = {
      BaselineKind::kGreedyIO, BaselineKind::kOtsDrlB, BaselineKind::kAtena};

  std::map<std::string, Accumulator> rows;
  for (const auto& dataset : datasets.value()) {
    auto gold = GoldNotebooks(dataset, options.env);
    if (!gold.ok()) return 1;

    auto assess = [&](const EdaNotebook& notebook, const std::string& row) {
      auto quality = AssessNotebook(dataset, notebook, gold.value(),
                                    options.env);
      if (quality.ok()) {
        rows[row].Add(ProxyRatings(quality.value()));
      }
    };

    for (const auto& g : gold.value()) assess(g, "Gold");
    auto traces = SimulatedTraceNotebooks(dataset, options.env);
    if (traces.ok()) {
      for (const auto& t : traces.value()) assess(t, "EDA-Traces");
    }
    for (BaselineKind kind : kinds) {
      auto run = RunBaseline(kind, dataset, options);
      if (!run.ok()) return 1;
      assess(run.value().notebook, BaselineName(kind));
      std::fprintf(stderr, "  [%s] %s rated\n", dataset.info.id.c_str(),
                   BaselineName(kind));
    }
  }

  std::printf("Figure 4a: User ratings of examined notebooks (1-7 scale,\n");
  std::printf("proxy rating model; mean over 8 datasets)\n");
  bench::PrintHeader("Baseline", {"Informat.", "Comprehens.", "Expertise",
                                  "HumanEquiv"}, 12);
  for (const auto& name :
       {"Gold", "ATENA", "EDA-Traces", "OTS-DRL-B", "Greedy-IO"}) {
    bench::PrintRow(name, rows[name].Mean(), 12);
  }
  return 0;
}

}  // namespace
}  // namespace atena

int main() { return atena::Run(); }
