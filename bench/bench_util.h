#ifndef ATENA_BENCH_BENCH_UTIL_H_
#define ATENA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/string_utils.h"
#include "data/registry.h"
#include "eval/gold.h"
#include "eval/metrics.h"
#include "eval/traces.h"

namespace atena {
namespace bench {

/// Shared experiment configuration. Scaled down from the paper's 2.5M-step
/// runs (DESIGN.md substitution #7); override the training budget with
/// ATENA_TRAIN_STEPS.
inline AtenaOptions ExperimentOptions() {
  AtenaOptions options;
  options.env.episode_length = 12;
  options.env.num_term_bins = 8;
  options.trainer.total_steps = 12000;
  options.trainer.rollout_length = 192;
  options.policy.hidden = {64, 64};
  ApplyTrainStepsFromEnv(&options);
  return options;
}

/// Gold reference views for a dataset.
inline Result<std::vector<std::vector<ViewSignature>>> GoldViews(
    const Dataset& dataset, const EnvConfig& env_config) {
  ATENA_ASSIGN_OR_RETURN(auto notebooks, GoldNotebooks(dataset, env_config));
  std::vector<std::vector<ViewSignature>> views;
  views.reserve(notebooks.size());
  for (const auto& notebook : notebooks) {
    views.push_back(NotebookSignatures(notebook));
  }
  return views;
}

/// The `p`-th percentile (p in [0, 100]) of `samples` with linear
/// interpolation between closest ranks. Takes the vector by value: the
/// sort happens on the copy, so callers can keep accumulating into their
/// own buffer between calls. Returns 0 for an empty sample set.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  const double rank =
      clamped / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// Prints one row of a fixed-width table.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& cells, int width = 11) {
  std::printf("%-12s", label.c_str());
  for (double cell : cells) {
    std::printf("%*s", width, FormatDouble(cell, 3).c_str());
  }
  std::printf("\n");
}

inline void PrintHeader(const std::string& label,
                        const std::vector<std::string>& columns,
                        int width = 11) {
  std::printf("%-12s", label.c_str());
  for (const auto& column : columns) {
    std::printf("%*s", width, column.c_str());
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace atena

#endif  // ATENA_BENCH_BENCH_UTIL_H_
