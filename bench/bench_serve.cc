// Macro-benchmark of the multi-session serving runtime (src/serve/): N
// concurrent EDA sessions driven by one shared policy snapshot, with
// mixed arrival/departure — sessions get staggered step budgets and every
// retirement admits a replacement until the simulated workload is
// exhausted, so the batch composition changes while the clock runs.
//
// Each config runs both acting modes: batched=1 issues one ActBatch
// forward per tick across every live session (the point of the runtime),
// batched=0 falls back to one forward per session per tick. The
// batched_speedup counter is aggregate steps/sec relative to the
// batched=0 run of the same session count (benchmarks run in
// registration order, so the baseline always lands first). Results go to
// BENCH_serve.json with sessions_per_sec, steps_per_sec, p50/p95/p99
// per-step latency and the shared display cache's hit rate.
//
// Sessions are served without a reward signal: reward scoring is
// per-session work whose cost is measured by bench_env, and it would only
// dilute what this bench isolates — the serial-act/parallel-step
// scheduler and cross-session batched inference. Per-step latency is
// sampled per tick (every session stepped in a tick experiences that
// tick's duration as its step latency).
//
// Scale overrides: ATENA_SERVE_SESSIONS adds a large run at the given
// concurrency (e.g. 100000) on top of the registered 4/64/1024 configs;
// ATENA_SERVE_STEPS replaces the default 12-step session budget.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "data/registry.h"
#include "eda/reward_interface.h"
#include "reward/diversity.h"
#include "serve/journal.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace atena {
namespace {

constexpr uint64_t kSeedBase = 4242;

int StepsPerSession() {
  if (const char* env = std::getenv("ATENA_SERVE_STEPS")) {
    const int steps = std::atoi(env);
    if (steps > 0) return steps;
  }
  return 12;
}

/// Session step budgets are staggered so retirements (and the admissions
/// replacing them) spread across ticks instead of emptying the runtime in
/// one step — the mixed arrival/departure pattern the runtime exists for.
SessionConfig SessionAt(uint64_t index, int base_steps) {
  SessionConfig config;
  config.seed = kSeedBase + index;
  config.max_steps = base_steps + static_cast<int>(index % 5);
  // Serving extracts notebooks with greedy acting (sampling is the
  // training-time mode; its per-row-stream batching is covered by
  // tests/serve_test.cc). Greedy also mirrors a *trained* policy's
  // serving profile: sessions repeat each other's operation paths, so
  // the shared cache absorbs most display work.
  config.greedy = true;
  return config;
}

const std::shared_ptr<const PolicySnapshot>& SharedSnapshot() {
  static const auto* snapshot = [] {
    SnapshotOptions options;
    options.env.episode_length = 12;
    options.env.num_term_bins = 8;
    // Serving-shaped workload: a trained-policy-sized network and tightly
    // capped per-display statistics keep the tick inference-bound — the
    // regime cross-session batching exists for (display execution costs
    // are measured on their own in bench_env).
    options.env.stats_row_cap = 256;
    return new std::shared_ptr<const PolicySnapshot>(
        std::make_shared<PolicySnapshot>(MakeDataset("flights4").value(),
                                         options));
  }();
  return *snapshot;
}

/// steps_per_sec of the batched=0 run per session count — the
/// batched_speedup baseline.
std::map<int, double>& BaselineStepsPerSec() {
  static std::map<int, double> baselines;
  return baselines;
}

void BM_ServeSessions(benchmark::State& state) {
  const int concurrent = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  const int base_steps = StepsPerSession();
  // 50% churn beyond the initial cohort.
  const uint64_t total_sessions =
      static_cast<uint64_t>(concurrent) + static_cast<uint64_t>(concurrent) / 2;

  double measured_seconds = 0.0;
  int64_t total_steps = 0;
  uint64_t total_finished = 0;
  std::vector<double> tick_seconds;
  double hit_rate = 0.0;
  // One manager for the whole run, like a production serving runtime:
  // iterations drain and re-admit sessions, so after the first iteration
  // the display cache is warm and admissions recycle pooled environments —
  // the steady state this bench measures. Only Tick() calls are timed.
  ServeOptions options;
  options.batched_acting = batched;
  SessionManager manager(SharedSnapshot(), options);
  for (auto _ : state) {
    uint64_t admitted = 0;
    for (; admitted < static_cast<uint64_t>(concurrent); ++admitted) {
      manager.Admit(SessionAt(admitted, base_steps)).value();
    }

    double iteration_seconds = 0.0;
    while (manager.active_sessions() > 0) {
      const auto start = std::chrono::steady_clock::now();
      total_steps += manager.Tick();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      iteration_seconds += elapsed.count();
      tick_seconds.push_back(elapsed.count());
      // Departure → arrival: keep concurrency level until the simulated
      // workload runs out of sessions.
      const auto finished = manager.TakeCompleted();
      total_finished += finished.size();
      for (size_t f = 0; f < finished.size() && admitted < total_sessions;
           ++f, ++admitted) {
        manager.Admit(SessionAt(admitted, base_steps)).value();
      }
    }
    state.SetIterationTime(iteration_seconds);
    measured_seconds += iteration_seconds;
    hit_rate = manager.display_cache()->Snapshot().totals.hit_rate();
  }

  state.counters["concurrent_sessions"] = static_cast<double>(concurrent);
  state.counters["cache_hit_rate"] = hit_rate;
  state.SetItemsProcessed(total_steps);
  const double steps_per_sec =
      measured_seconds > 0.0
          ? static_cast<double>(total_steps) / measured_seconds
          : 0.0;
  state.counters["steps_per_sec"] = steps_per_sec;
  state.counters["sessions_per_sec"] =
      measured_seconds > 0.0
          ? static_cast<double>(total_finished) / measured_seconds
          : 0.0;
  bench::AddLatencyPercentiles(state, tick_seconds, "step_latency");

  auto& baselines = BaselineStepsPerSec();
  if (!batched) baselines[concurrent] = steps_per_sec;
  const auto baseline = baselines.find(concurrent);
  if (baseline != baselines.end() && baseline->second > 0.0) {
    state.counters["batched_speedup"] = steps_per_sec / baseline->second;
  }
}
BENCHMARK(BM_ServeSessions)
    ->ArgNames({"sessions", "batched"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// The fault-domain regime (DESIGN.md §13): the same mixed-churn workload
/// with a deterministic slow-session population (forced past the step
/// deadline via the duration hook, so they walk the degradation ladder), a
/// sparse env-fault population (quarantined mid-session), an admission cap
/// with over-admission pressure (sheds), and the health log active. What
/// this measures is the overhead and steady-state throughput of serving
/// *around* faults — shed / quarantined / degraded counts and the
/// degraded-mode per-step latency land in BENCH_serve.json.
void BM_ServeDegraded(benchmark::State& state) {
  const int concurrent = static_cast<int>(state.range(0));
  const int base_steps = StepsPerSession();
  const uint64_t total_sessions =
      static_cast<uint64_t>(concurrent) + static_cast<uint64_t>(concurrent) / 2;
  constexpr int64_t kDeadlineNanos = 2 * 1000 * 1000;  // 2ms

  double measured_seconds = 0.0;
  int64_t total_steps = 0;
  uint64_t total_finished = 0;
  std::vector<double> tick_seconds;

  ServeOptions options;
  options.max_sessions = concurrent;
  options.step_deadline_nanos = kDeadlineNanos;
  // Deterministic fault populations, keyed by session identity so they
  // land identically at any thread count: every 8th session overruns the
  // deadline on each step (and walks the full ladder to retirement);
  // every 16th fails its 3rd env step and is quarantined.
  options.fault_injection.step_duration_nanos =
      [](uint64_t session_id, int /*step_index*/) -> int64_t {
    return session_id % 8 == 0 ? 2 * kDeadlineNanos : kDeadlineNanos / 4;
  };
  options.fault_injection.env_step = [](uint64_t session_id,
                                        int step_index) -> Status {
    if (session_id % 16 == 5 && step_index == 3) {
      return Status::Internal("injected env fault");
    }
    return Status::OK();
  };
  SessionManager manager(SharedSnapshot(), options);
  for (auto _ : state) {
    uint64_t offered = 0;
    auto offer = [&]() {
      // Over-admit by one past the cap each wave to exercise the shed
      // path under pressure.
      manager.Admit(SessionAt(offered, base_steps)).ok();
      ++offered;
    };
    for (int i = 0; i < concurrent + 1; ++i) offer();

    double iteration_seconds = 0.0;
    while (manager.active_sessions() > 0) {
      const auto start = std::chrono::steady_clock::now();
      total_steps += manager.Tick();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      iteration_seconds += elapsed.count();
      tick_seconds.push_back(elapsed.count());
      const auto finished = manager.TakeCompleted();
      total_finished += finished.size();
      for (size_t f = 0; f < finished.size() && offered < total_sessions;
           ++f) {
        offer();
      }
    }
    state.SetIterationTime(iteration_seconds);
    measured_seconds += iteration_seconds;
  }

  const ServeStats& stats = manager.stats();
  state.counters["concurrent_sessions"] = static_cast<double>(concurrent);
  state.counters["shed"] = static_cast<double>(stats.shed);
  state.counters["quarantined"] = static_cast<double>(stats.quarantined);
  state.counters["deadline_retired"] =
      static_cast<double>(stats.deadline_retired);
  state.counters["degraded_steps"] = static_cast<double>(stats.degraded_steps);
  state.counters["degrade_transitions"] =
      static_cast<double>(stats.degrade_transitions);
  state.SetItemsProcessed(total_steps);
  state.counters["steps_per_sec"] =
      measured_seconds > 0.0
          ? static_cast<double>(total_steps) / measured_seconds
          : 0.0;
  state.counters["sessions_per_sec"] =
      measured_seconds > 0.0
          ? static_cast<double>(total_finished) / measured_seconds
          : 0.0;
  bench::AddLatencyPercentiles(state, tick_seconds, "degraded_step_latency");
}
BENCHMARK(BM_ServeDegraded)
    ->ArgNames({"sessions"})
    ->Args({64})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// The durability regime (DESIGN.md §15): the same mixed-churn workload
/// with the write-ahead session journal on — every admission and every
/// tick's group commit is an unflushed append, with the shared fdatasync
/// paid at the delivery barrier (TakeCompleted). journaled=0 runs the
/// identical workload without a journal, purely for its own latency and
/// throughput numbers. The journaled=1 run measures overhead *paired*:
/// it drains an identical unjournaled twin manager interleaved with its
/// own iterations, in the same run under the same machine conditions,
/// and reports journal_overhead_pct (journaled p50 tick latency over the
/// twin's) and journal_slowdown (twin steps/sec over journaled
/// steps/sec) into BENCH_serve.json. Comparing against a separately-run
/// baseline benchmark would couple the metric to minutes-apart machine
/// drift, which on a shared VM dwarfs the journaling cost itself.
void BM_ServeJournaled(benchmark::State& state) {
  const int concurrent = static_cast<int>(state.range(0));
  const bool journaled = state.range(1) != 0;
  const int base_steps = StepsPerSession();
  const uint64_t total_sessions =
      static_cast<uint64_t>(concurrent) + static_cast<uint64_t>(concurrent) / 2;

  const std::string journal_path = "BENCH_serve_journal.jnl";
  auto clean_journal = [&journal_path]() {
    std::remove(journal_path.c_str());
    std::remove((journal_path + ".prev").c_str());
    for (int64_t seq = 0; seq < 64; ++seq) {
      std::remove(JournalSidecarPath(journal_path, seq).c_str());
    }
  };
  if (journaled) clean_journal();

  ServeOptions options;
  if (journaled) options.journal_path = journal_path;
  SessionManager manager(SharedSnapshot(), options);
  std::unique_ptr<SessionManager> twin;
  if (journaled) {
    twin = std::make_unique<SessionManager>(SharedSnapshot(), ServeOptions{});
  }

  // One churn drain: admit `concurrent`, tick to empty, refill retired
  // sessions up to 50% churn. Appends this drain's per-tick latencies to
  // `ticks` and returns {timed seconds, steps executed}.
  auto drain = [&](SessionManager& m, std::vector<double>& ticks) {
    uint64_t admitted = 0;
    for (; admitted < static_cast<uint64_t>(concurrent); ++admitted) {
      m.Admit(SessionAt(admitted, base_steps)).value();
    }
    double seconds = 0.0;
    int64_t steps = 0;
    uint64_t finished_count = 0;
    while (m.active_sessions() > 0) {
      const auto start = std::chrono::steady_clock::now();
      steps += m.Tick();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      seconds += elapsed.count();
      ticks.push_back(elapsed.count());
      const auto finished = m.TakeCompleted();
      finished_count += finished.size();
      for (size_t f = 0; f < finished.size() && admitted < total_sessions;
           ++f, ++admitted) {
        m.Admit(SessionAt(admitted, base_steps)).value();
      }
    }
    return std::tuple<double, int64_t, uint64_t>(seconds, steps,
                                                 finished_count);
  };

  double measured_seconds = 0.0;
  int64_t total_steps = 0;
  uint64_t total_finished = 0;
  std::vector<double> tick_seconds;
  double twin_seconds = 0.0;
  int64_t twin_steps = 0;
  std::vector<double> twin_ticks;
  for (auto _ : state) {
    if (twin) {
      const auto [seconds, steps, finished] = drain(*twin, twin_ticks);
      twin_seconds += seconds;
      twin_steps += steps;
      (void)finished;
    }
    const auto [seconds, steps, finished] = drain(manager, tick_seconds);
    state.SetIterationTime(seconds);
    measured_seconds += seconds;
    total_steps += steps;
    total_finished += finished;
  }

  state.counters["concurrent_sessions"] = static_cast<double>(concurrent);
  state.SetItemsProcessed(total_steps);
  const double steps_per_sec =
      measured_seconds > 0.0
          ? static_cast<double>(total_steps) / measured_seconds
          : 0.0;
  state.counters["steps_per_sec"] = steps_per_sec;
  state.counters["sessions_per_sec"] =
      measured_seconds > 0.0
          ? static_cast<double>(total_finished) / measured_seconds
          : 0.0;
  bench::AddLatencyPercentiles(state, tick_seconds, "step_latency");

  if (journaled) {
    const ServeStats& stats = manager.stats();
    state.counters["journal_appends"] =
        static_cast<double>(stats.journal_appends);
    state.counters["journal_syncs"] = static_cast<double>(stats.journal_syncs);
    state.counters["journal_bytes"] = static_cast<double>(stats.journal_bytes);
    state.counters["journal_compactions"] =
        static_cast<double>(stats.journal_compactions);
    const double p50 = bench::Percentile(tick_seconds, 50.0);
    const double base_p50 = bench::Percentile(twin_ticks, 50.0);
    if (base_p50 > 0.0) {
      state.counters["journal_overhead_pct"] = (p50 / base_p50 - 1.0) * 100.0;
    }
    const double twin_steps_per_sec =
        twin_seconds > 0.0 ? static_cast<double>(twin_steps) / twin_seconds
                           : 0.0;
    if (steps_per_sec > 0.0 && twin_steps_per_sec > 0.0) {
      state.counters["journal_slowdown"] = twin_steps_per_sec / steps_per_sec;
    }
    clean_journal();
  }
}
BENCHMARK(BM_ServeJournaled)
    ->ArgNames({"sessions", "journaled"})
    ->Args({64, 0})
    ->Args({64, 1})
    // The group-commit payoff case: one fsync covers 16x the sessions, so
    // the per-step overhead amortizes toward the encode cost alone.
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Diversity-only reward: the one signal whose cost grows with session
/// history, which is exactly what the long-session bench isolates.
class DiversityOnlyReward final : public RewardSignal {
 public:
  double Compute(const RewardContext& context) override {
    return DiversityReward(context);
  }
};

int LongSessionSteps() {
  if (const char* env = std::getenv("ATENA_SERVE_LONG_STEPS")) {
    const int steps = std::atoi(env);
    if (steps > 0) return steps;
  }
  return 10000;
}

/// steps_per_sec of the indexed=0 long run — the indexed_speedup baseline.
double& LongSessionBaseline() {
  static double baseline = 0.0;
  return baseline;
}

/// The regime the display-vector index exists for (DESIGN.md §14): few
/// sessions, one very long episode each, with a diversity-scoring reward
/// attached, so per-step cost is dominated by the min-distance query
/// against the growing display history. indexed=0 serves with the scalar
/// scan (per-step cost linear in history → per-step latency climbs as the
/// session ages); indexed=1 uses the per-session index (flat). The
/// p99_late_over_early counter compares the p99 tick latency of the second
/// half of each session against the first half: ~1.0 means flat.
void BM_ServeLongSessions(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  const int steps = LongSessionSteps();
  constexpr int kSessions = 2;

  SnapshotOptions snapshot_options;
  snapshot_options.env.episode_length = steps;
  snapshot_options.env.num_term_bins = 8;
  snapshot_options.env.stats_row_cap = 256;
  snapshot_options.env.diversity_index_enabled = indexed;
  const auto snapshot = std::make_shared<const PolicySnapshot>(
      MakeDataset("flights4").value(), snapshot_options);

  ServeOptions options;
  options.reward_factory = [] {
    return std::make_shared<DiversityOnlyReward>();
  };
  SessionManager manager(snapshot, options);

  double measured_seconds = 0.0;
  int64_t total_steps = 0;
  std::vector<double> tick_seconds, early_ticks, late_ticks;
  for (auto _ : state) {
    for (uint64_t i = 0; i < kSessions; ++i) {
      // Uniform budgets (no stagger): every live session has the same
      // history length, so tick index == history length and the
      // early/late split below is meaningful.
      SessionConfig config;
      config.seed = kSeedBase + i;
      config.max_steps = steps;
      // Sampled acting, not greedy: a greedy demo policy settles into a
      // display cycle, the min distance hits zero, and the scalar scan
      // early-breaks in one block — no history-length signal for either
      // path. Sampling keeps the history duplicate-heavy but varied,
      // the distribution the diversity scan actually faces.
      config.greedy = false;
      manager.Admit(config).value();
    }

    double iteration_seconds = 0.0;
    int tick = 0;
    while (manager.active_sessions() > 0) {
      const auto start = std::chrono::steady_clock::now();
      total_steps += manager.Tick();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      iteration_seconds += elapsed.count();
      tick_seconds.push_back(elapsed.count());
      (tick < steps / 2 ? early_ticks : late_ticks).push_back(elapsed.count());
      ++tick;
      manager.TakeCompleted();
    }
    state.SetIterationTime(iteration_seconds);
    measured_seconds += iteration_seconds;
  }

  state.counters["session_steps"] = static_cast<double>(steps);
  state.SetItemsProcessed(total_steps);
  const double steps_per_sec =
      measured_seconds > 0.0
          ? static_cast<double>(total_steps) / measured_seconds
          : 0.0;
  state.counters["steps_per_sec"] = steps_per_sec;
  bench::AddLatencyPercentiles(state, tick_seconds, "step_latency");
  if (!early_ticks.empty() && !late_ticks.empty()) {
    // Second-half vs first-half tick latency growth. The median isolates
    // the diversity scan (the typical tick's only history-dependent
    // cost): scalar grows ~linearly with history, indexed stays near
    // flat. The p99 tail is dominated by expensive display recomputes,
    // which deepen with session length identically under both paths.
    const double early_p50 = bench::Percentile(early_ticks, 50.0);
    if (early_p50 > 0.0) {
      state.counters["p50_late_over_early"] =
          bench::Percentile(late_ticks, 50.0) / early_p50;
    }
    const double early_p99 = bench::Percentile(early_ticks, 99.0);
    if (early_p99 > 0.0) {
      state.counters["p99_late_over_early"] =
          bench::Percentile(late_ticks, 99.0) / early_p99;
    }
  }
  if (!indexed) {
    LongSessionBaseline() = steps_per_sec;
  } else if (LongSessionBaseline() > 0.0) {
    state.counters["indexed_speedup"] = steps_per_sec / LongSessionBaseline();
  }
}
BENCHMARK(BM_ServeLongSessions)
    ->ArgNames({"indexed"})
    ->Args({0})
    ->Args({1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (const char* env = std::getenv("ATENA_SERVE_SESSIONS")) {
    const long scale = std::atol(env);
    if (scale > 0) {
      benchmark::RegisterBenchmark("BM_ServeSessions",
                                   atena::BM_ServeSessions)
          ->ArgNames({"sessions", "batched"})
          ->Args({scale, 0})
          ->Args({scale, 1})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  atena::bench::JsonFileReporter reporter("BENCH_serve.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
