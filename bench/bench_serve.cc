// Macro-benchmark of the multi-session serving runtime (src/serve/): N
// concurrent EDA sessions driven by one shared policy snapshot, with
// mixed arrival/departure — sessions get staggered step budgets and every
// retirement admits a replacement until the simulated workload is
// exhausted, so the batch composition changes while the clock runs.
//
// Each config runs both acting modes: batched=1 issues one ActBatch
// forward per tick across every live session (the point of the runtime),
// batched=0 falls back to one forward per session per tick. The
// batched_speedup counter is aggregate steps/sec relative to the
// batched=0 run of the same session count (benchmarks run in
// registration order, so the baseline always lands first). Results go to
// BENCH_serve.json with sessions_per_sec, steps_per_sec, p50/p95/p99
// per-step latency and the shared display cache's hit rate.
//
// Sessions are served without a reward signal: reward scoring is
// per-session work whose cost is measured by bench_env, and it would only
// dilute what this bench isolates — the serial-act/parallel-step
// scheduler and cross-session batched inference. Per-step latency is
// sampled per tick (every session stepped in a tick experiences that
// tick's duration as its step latency).
//
// Scale overrides: ATENA_SERVE_SESSIONS adds a large run at the given
// concurrency (e.g. 100000) on top of the registered 4/64/1024 configs;
// ATENA_SERVE_STEPS replaces the default 12-step session budget.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "data/registry.h"
#include "serve/session_manager.h"
#include "serve/snapshot.h"

namespace atena {
namespace {

constexpr uint64_t kSeedBase = 4242;

int StepsPerSession() {
  if (const char* env = std::getenv("ATENA_SERVE_STEPS")) {
    const int steps = std::atoi(env);
    if (steps > 0) return steps;
  }
  return 12;
}

/// Session step budgets are staggered so retirements (and the admissions
/// replacing them) spread across ticks instead of emptying the runtime in
/// one step — the mixed arrival/departure pattern the runtime exists for.
SessionConfig SessionAt(uint64_t index, int base_steps) {
  SessionConfig config;
  config.seed = kSeedBase + index;
  config.max_steps = base_steps + static_cast<int>(index % 5);
  // Serving extracts notebooks with greedy acting (sampling is the
  // training-time mode; its per-row-stream batching is covered by
  // tests/serve_test.cc). Greedy also mirrors a *trained* policy's
  // serving profile: sessions repeat each other's operation paths, so
  // the shared cache absorbs most display work.
  config.greedy = true;
  return config;
}

const std::shared_ptr<const PolicySnapshot>& SharedSnapshot() {
  static const auto* snapshot = [] {
    SnapshotOptions options;
    options.env.episode_length = 12;
    options.env.num_term_bins = 8;
    // Serving-shaped workload: a trained-policy-sized network and tightly
    // capped per-display statistics keep the tick inference-bound — the
    // regime cross-session batching exists for (display execution costs
    // are measured on their own in bench_env).
    options.env.stats_row_cap = 256;
    return new std::shared_ptr<const PolicySnapshot>(
        std::make_shared<PolicySnapshot>(MakeDataset("flights4").value(),
                                         options));
  }();
  return *snapshot;
}

/// steps_per_sec of the batched=0 run per session count — the
/// batched_speedup baseline.
std::map<int, double>& BaselineStepsPerSec() {
  static std::map<int, double> baselines;
  return baselines;
}

void BM_ServeSessions(benchmark::State& state) {
  const int concurrent = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  const int base_steps = StepsPerSession();
  // 50% churn beyond the initial cohort.
  const uint64_t total_sessions =
      static_cast<uint64_t>(concurrent) + static_cast<uint64_t>(concurrent) / 2;

  double measured_seconds = 0.0;
  int64_t total_steps = 0;
  uint64_t total_finished = 0;
  std::vector<double> tick_seconds;
  double hit_rate = 0.0;
  // One manager for the whole run, like a production serving runtime:
  // iterations drain and re-admit sessions, so after the first iteration
  // the display cache is warm and admissions recycle pooled environments —
  // the steady state this bench measures. Only Tick() calls are timed.
  ServeOptions options;
  options.batched_acting = batched;
  SessionManager manager(SharedSnapshot(), options);
  for (auto _ : state) {
    uint64_t admitted = 0;
    for (; admitted < static_cast<uint64_t>(concurrent); ++admitted) {
      manager.Admit(SessionAt(admitted, base_steps)).value();
    }

    double iteration_seconds = 0.0;
    while (manager.active_sessions() > 0) {
      const auto start = std::chrono::steady_clock::now();
      total_steps += manager.Tick();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      iteration_seconds += elapsed.count();
      tick_seconds.push_back(elapsed.count());
      // Departure → arrival: keep concurrency level until the simulated
      // workload runs out of sessions.
      const auto finished = manager.TakeCompleted();
      total_finished += finished.size();
      for (size_t f = 0; f < finished.size() && admitted < total_sessions;
           ++f, ++admitted) {
        manager.Admit(SessionAt(admitted, base_steps)).value();
      }
    }
    state.SetIterationTime(iteration_seconds);
    measured_seconds += iteration_seconds;
    hit_rate = manager.display_cache()->Snapshot().totals.hit_rate();
  }

  state.counters["concurrent_sessions"] = static_cast<double>(concurrent);
  state.counters["cache_hit_rate"] = hit_rate;
  state.SetItemsProcessed(total_steps);
  const double steps_per_sec =
      measured_seconds > 0.0
          ? static_cast<double>(total_steps) / measured_seconds
          : 0.0;
  state.counters["steps_per_sec"] = steps_per_sec;
  state.counters["sessions_per_sec"] =
      measured_seconds > 0.0
          ? static_cast<double>(total_finished) / measured_seconds
          : 0.0;
  bench::AddLatencyPercentiles(state, tick_seconds, "step_latency");

  auto& baselines = BaselineStepsPerSec();
  if (!batched) baselines[concurrent] = steps_per_sec;
  const auto baseline = baselines.find(concurrent);
  if (baseline != baselines.end() && baseline->second > 0.0) {
    state.counters["batched_speedup"] = steps_per_sec / baseline->second;
  }
}
BENCHMARK(BM_ServeSessions)
    ->ArgNames({"sessions", "batched"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// The fault-domain regime (DESIGN.md §13): the same mixed-churn workload
/// with a deterministic slow-session population (forced past the step
/// deadline via the duration hook, so they walk the degradation ladder), a
/// sparse env-fault population (quarantined mid-session), an admission cap
/// with over-admission pressure (sheds), and the health log active. What
/// this measures is the overhead and steady-state throughput of serving
/// *around* faults — shed / quarantined / degraded counts and the
/// degraded-mode per-step latency land in BENCH_serve.json.
void BM_ServeDegraded(benchmark::State& state) {
  const int concurrent = static_cast<int>(state.range(0));
  const int base_steps = StepsPerSession();
  const uint64_t total_sessions =
      static_cast<uint64_t>(concurrent) + static_cast<uint64_t>(concurrent) / 2;
  constexpr int64_t kDeadlineNanos = 2 * 1000 * 1000;  // 2ms

  double measured_seconds = 0.0;
  int64_t total_steps = 0;
  uint64_t total_finished = 0;
  std::vector<double> tick_seconds;

  ServeOptions options;
  options.max_sessions = concurrent;
  options.step_deadline_nanos = kDeadlineNanos;
  // Deterministic fault populations, keyed by session identity so they
  // land identically at any thread count: every 8th session overruns the
  // deadline on each step (and walks the full ladder to retirement);
  // every 16th fails its 3rd env step and is quarantined.
  options.fault_injection.step_duration_nanos =
      [](uint64_t session_id, int /*step_index*/) -> int64_t {
    return session_id % 8 == 0 ? 2 * kDeadlineNanos : kDeadlineNanos / 4;
  };
  options.fault_injection.env_step = [](uint64_t session_id,
                                        int step_index) -> Status {
    if (session_id % 16 == 5 && step_index == 3) {
      return Status::Internal("injected env fault");
    }
    return Status::OK();
  };
  SessionManager manager(SharedSnapshot(), options);
  for (auto _ : state) {
    uint64_t offered = 0;
    auto offer = [&]() {
      // Over-admit by one past the cap each wave to exercise the shed
      // path under pressure.
      manager.Admit(SessionAt(offered, base_steps)).ok();
      ++offered;
    };
    for (int i = 0; i < concurrent + 1; ++i) offer();

    double iteration_seconds = 0.0;
    while (manager.active_sessions() > 0) {
      const auto start = std::chrono::steady_clock::now();
      total_steps += manager.Tick();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      iteration_seconds += elapsed.count();
      tick_seconds.push_back(elapsed.count());
      const auto finished = manager.TakeCompleted();
      total_finished += finished.size();
      for (size_t f = 0; f < finished.size() && offered < total_sessions;
           ++f) {
        offer();
      }
    }
    state.SetIterationTime(iteration_seconds);
    measured_seconds += iteration_seconds;
  }

  const ServeStats& stats = manager.stats();
  state.counters["concurrent_sessions"] = static_cast<double>(concurrent);
  state.counters["shed"] = static_cast<double>(stats.shed);
  state.counters["quarantined"] = static_cast<double>(stats.quarantined);
  state.counters["deadline_retired"] =
      static_cast<double>(stats.deadline_retired);
  state.counters["degraded_steps"] = static_cast<double>(stats.degraded_steps);
  state.counters["degrade_transitions"] =
      static_cast<double>(stats.degrade_transitions);
  state.SetItemsProcessed(total_steps);
  state.counters["steps_per_sec"] =
      measured_seconds > 0.0
          ? static_cast<double>(total_steps) / measured_seconds
          : 0.0;
  state.counters["sessions_per_sec"] =
      measured_seconds > 0.0
          ? static_cast<double>(total_finished) / measured_seconds
          : 0.0;
  bench::AddLatencyPercentiles(state, tick_seconds, "degraded_step_latency");
}
BENCHMARK(BM_ServeDegraded)
    ->ArgNames({"sessions"})
    ->Args({64})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (const char* env = std::getenv("ATENA_SERVE_SESSIONS")) {
    const long scale = std::atol(env);
    if (scale > 0) {
      benchmark::RegisterBenchmark("BM_ServeSessions",
                                   atena::BM_ServeSessions)
          ->ArgNames({"sessions", "batched"})
          ->Args({scale, 0})
          ->Args({scale, 1})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  atena::bench::JsonFileReporter reporter("BENCH_serve.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
