// Micro-benchmarks of the dataframe substrate: filter, group-by/aggregate
// and column-statistics kernels on the largest experimental dataset.
// Results are written to BENCH_dataframe.json (see bench_json.h).
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "data/registry.h"
#include "dataframe/ops.h"
#include "dataframe/stats.h"

namespace atena {
namespace {

const Dataset& BigDataset() {
  static const Dataset& dataset = *new Dataset(
      MakeDataset("cyber4").value());
  return dataset;
}

void BM_FilterStringEq(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  int col = t.FindColumn("tcp_flags");
  for (auto _ : state) {
    auto out = FilterRows(t, rows, col, CompareOp::kEq,
                          Value(std::string("SYN")));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FilterStringEq);

void BM_FilterNumericRange(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  int col = t.FindColumn("destination_port");
  for (auto _ : state) {
    auto out = FilterRows(t, rows, col, CompareOp::kLe, Value(int64_t{1024}));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FilterNumericRange);

void BM_GroupBySingleColumn(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  for (auto _ : state) {
    auto out = GroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBySingleColumn);

void BM_GroupByTwoColumnsAvg(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip"), t.FindColumn("tcp_flags")};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn("length");
  for (auto _ : state) {
    auto out = GroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupByTwoColumnsAvg);

void BM_ColumnStats(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  const Column& col = *t.column(t.FindColumn("destination_port"));
  for (auto _ : state) {
    auto stats = ComputeColumnStats(col, rows);
    benchmark::DoNotOptimize(stats.entropy);
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_ColumnStats);

void BM_TokenFrequencies(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  const Column& col = *t.column(t.FindColumn("source_ip"));
  for (auto _ : state) {
    auto tokens = TokenFrequencies(col, rows);
    benchmark::DoNotOptimize(tokens.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_TokenFrequencies);

void BM_FilterStringNeq(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  int col = t.FindColumn("tcp_flags");
  for (auto _ : state) {
    auto out = FilterRows(t, rows, col, CompareOp::kNeq,
                          Value(std::string("SYN")));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FilterStringNeq);

void BM_GroupByThreeColumns(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t);
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip"), t.FindColumn("tcp_flags"),
                        t.FindColumn("destination_port")};
  for (auto _ : state) {
    auto out = GroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupByThreeColumns);

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atena::bench::JsonFileReporter reporter("BENCH_dataframe.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
