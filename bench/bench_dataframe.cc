// Micro-benchmarks of the dataframe substrate: filter, group-by/aggregate
// and column-statistics kernels on the largest experimental dataset, plus
// million-row scalar-vs-kernel pairs on a scaled variant (row count
// overridable via ATENA_BENCH_ROWS). Results are written to
// BENCH_dataframe.json (see bench_json.h).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>

#include "bench_json.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "dataframe/kernels.h"
#include "dataframe/ops.h"
#include "dataframe/stats.h"

namespace atena {
namespace {

const Dataset& BigDataset() {
  static const Dataset& dataset = *new Dataset(
      MakeDataset("cyber4").value());
  return dataset;
}

/// cyber4 scaled to at least ATENA_BENCH_ROWS rows (default 1M). The env
/// override lets the ctest smoke run keep this to a few thousand rows.
const Dataset& MillionRowDataset() {
  static const Dataset& dataset = *[] {
    int64_t target = 1'000'000;
    if (const char* env = std::getenv("ATENA_BENCH_ROWS")) {
      target = std::max<int64_t>(int64_t{1}, std::atoll(env));
    }
    const int scale = static_cast<int>((target + 13624) / 13625);
    return new Dataset(MakeDataset("cyber4", scale).value());
  }();
  return dataset;
}

void ReportSkipRate(benchmark::State& state, const FilterKernelStats& stats) {
  state.counters["skip_rate"] = stats.skip_rate();
  state.counters["chunks_all_match"] =
      static_cast<double>(stats.chunks_all_match);
}

void BM_FilterStringEq(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("tcp_flags");
  for (auto _ : state) {
    auto out = FilterRows(t, rows, col, CompareOp::kEq,
                          Value(std::string("SYN")));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FilterStringEq);

void BM_FilterNumericRange(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("destination_port");
  for (auto _ : state) {
    auto out = FilterRows(t, rows, col, CompareOp::kLe, Value(int64_t{1024}));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FilterNumericRange);

void BM_GroupBySingleColumn(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  for (auto _ : state) {
    auto out = GroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBySingleColumn);

void BM_GroupByTwoColumnsAvg(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip"), t.FindColumn("tcp_flags")};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn("length");
  for (auto _ : state) {
    auto out = GroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupByTwoColumnsAvg);

void BM_ColumnStats(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  const Column& col = *t.column(t.FindColumn("destination_port"));
  for (auto _ : state) {
    auto stats = ComputeColumnStats(col, rows);
    benchmark::DoNotOptimize(stats.entropy);
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_ColumnStats);

void BM_TokenFrequencies(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  const Column& col = *t.column(t.FindColumn("source_ip"));
  for (auto _ : state) {
    auto tokens = TokenFrequencies(col, rows);
    benchmark::DoNotOptimize(tokens.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_TokenFrequencies);

void BM_FilterStringNeq(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("tcp_flags");
  for (auto _ : state) {
    auto out = FilterRows(t, rows, col, CompareOp::kNeq,
                          Value(std::string("SYN")));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FilterStringNeq);

void BM_GroupByThreeColumns(benchmark::State& state) {
  const Table& t = *BigDataset().table;
  auto rows = AllRows(t).value();
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip"), t.FindColumn("tcp_flags"),
                        t.FindColumn("destination_port")};
  for (auto _ : state) {
    auto out = GroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupByThreeColumns);

// ------------------------------------------- million-row scalar vs kernel
//
// Each pair runs the identical operation through the retained scalar
// reference and the chunked selection-vector kernel on the scaled table;
// items_per_second is the rows/sec figure the roadmap tracks, and kernel
// variants report the zone-map skip rate.

void BM_Filter1M_NumericRange_Scalar(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("destination_port");
  for (auto _ : state) {
    auto out = ScalarFilterRows(t, rows, col, CompareOp::kLe,
                                Value(int64_t{1024}));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_Filter1M_NumericRange_Scalar);

void BM_Filter1M_NumericRange_Kernel(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("destination_port");
  FilterKernelStats stats;
  for (auto _ : state) {
    stats = {};
    auto out = FilterRowsKernel(t, rows, col, CompareOp::kLe,
                                Value(int64_t{1024}), &stats);
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
  ReportSkipRate(state, stats);
}
BENCHMARK(BM_Filter1M_NumericRange_Kernel);

void BM_Filter1M_StringEq_Scalar(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("tcp_flags");
  for (auto _ : state) {
    auto out = ScalarFilterRows(t, rows, col, CompareOp::kEq,
                                Value(std::string("SYN")));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_Filter1M_StringEq_Scalar);

void BM_Filter1M_StringEq_Kernel(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("tcp_flags");
  FilterKernelStats stats;
  for (auto _ : state) {
    stats = {};
    auto out = FilterRowsKernel(t, rows, col, CompareOp::kEq,
                                Value(std::string("SYN")), &stats);
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
  ReportSkipRate(state, stats);
}
BENCHMARK(BM_Filter1M_StringEq_Kernel);

void BM_Filter1M_Contains_Scalar(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("tcp_flags");
  for (auto _ : state) {
    auto out = ScalarFilterRows(t, rows, col, CompareOp::kContains,
                                Value(std::string("ACK")));
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_Filter1M_Contains_Scalar);

void BM_Filter1M_Contains_Kernel(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  int col = t.FindColumn("tcp_flags");
  FilterKernelStats stats;
  for (auto _ : state) {
    stats = {};
    auto out = FilterRowsKernel(t, rows, col, CompareOp::kContains,
                                Value(std::string("ACK")), &stats);
    benchmark::DoNotOptimize(out.value().size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
  ReportSkipRate(state, stats);
}
BENCHMARK(BM_Filter1M_Contains_Kernel);

void BM_GroupBy1M_Count_Scalar(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  for (auto _ : state) {
    auto out = ScalarGroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBy1M_Count_Scalar);

void BM_GroupBy1M_Count_Kernel(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  for (auto _ : state) {
    auto out = GroupAggregateKernel(t, rows, spec, nullptr);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBy1M_Count_Kernel);

void BM_GroupBy1M_Count_Parallel(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  ThreadPool pool(ThreadPool::DefaultThreads(4));
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  for (auto _ : state) {
    auto out = GroupAggregateKernel(t, rows, spec, &pool);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBy1M_Count_Parallel);

void BM_GroupBy1M_Avg_Scalar(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn("length");
  for (auto _ : state) {
    auto out = ScalarGroupAggregate(t, rows, spec);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBy1M_Avg_Scalar);

void BM_GroupBy1M_Avg_Kernel(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn("length");
  for (auto _ : state) {
    auto out = GroupAggregateKernel(t, rows, spec, nullptr);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBy1M_Avg_Kernel);

void BM_GroupBy1M_Avg_Parallel(benchmark::State& state) {
  const Table& t = *MillionRowDataset().table;
  auto rows = AllRows(t).value();
  ThreadPool pool(ThreadPool::DefaultThreads(4));
  GroupSpec spec;
  spec.group_columns = {t.FindColumn("source_ip")};
  spec.agg = AggFunc::kAvg;
  spec.agg_column = t.FindColumn("length");
  for (auto _ : state) {
    auto out = GroupAggregateKernel(t, rows, spec, &pool);
    benchmark::DoNotOptimize(out.value().groups.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBy1M_Avg_Parallel);

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atena::bench::JsonFileReporter reporter("BENCH_dataframe.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
