// Reward-component ablation (supports the paper's §6.3 conclusion that the
// compound signal — not interestingness alone — is what makes notebooks
// useful): trains ATENA with each reward component removed in turn and
// reports A-EDA scores against the gold notebooks on two representative
// datasets.
#include <cstdio>

#include "bench_util.h"

namespace atena {
namespace {

struct Variant {
  const char* name;
  bool interestingness;
  bool diversity;
  bool coherency;
};

int Run() {
  const Variant variants[] = {
      {"full", true, true, true},
      {"-interest", false, true, true},
      {"-diversity", true, false, true},
      {"-coherency", true, true, false},
      {"only-inter", true, false, false},
  };

  std::printf("Reward-component ablation (A-EDA scores, ATENA agent)\n");
  bench::PrintHeader("Variant", {"Precision", "T-BLEU-1", "T-BLEU-2",
                                 "T-BLEU-3", "EDA-Sim"});
  for (const Variant& variant : variants) {
    AedaScores total{};
    int count = 0;
    for (const char* id : {"flights4", "cyber2"}) {
      auto dataset = MakeDataset(id);
      if (!dataset.ok()) return 1;
      AtenaOptions options = bench::ExperimentOptions();
      options.reward.enable_interestingness = variant.interestingness;
      options.reward.enable_diversity = variant.diversity;
      options.reward.enable_coherency = variant.coherency;
      auto gold = bench::GoldViews(dataset.value(), options.env);
      if (!gold.ok()) return 1;
      auto result = RunAtena(dataset.value(), options);
      if (!result.ok()) {
        std::fprintf(stderr, "ablation %s failed: %s\n", variant.name,
                     result.status().ToString().c_str());
        return 1;
      }
      AedaScores s = ComputeAedaScores(
          NotebookSignatures(result.value().notebook), gold.value());
      total.precision += s.precision;
      total.t_bleu_1 += s.t_bleu_1;
      total.t_bleu_2 += s.t_bleu_2;
      total.t_bleu_3 += s.t_bleu_3;
      total.eda_sim += s.eda_sim;
      ++count;
    }
    bench::PrintRow(variant.name,
                    {total.precision / count, total.t_bleu_1 / count,
                     total.t_bleu_2 / count, total.t_bleu_3 / count,
                     total.eda_sim / count});
  }
  return 0;
}

}  // namespace
}  // namespace atena

int main() { return atena::Run(); }
