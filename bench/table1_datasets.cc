// Regenerates paper Table 1: the experimental datasets — name, size (rows)
// and the planted scenario description — plus schema/focal-attribute details
// that situate each dataset.
#include <cstdio>

#include "bench_util.h"

int main() {
  std::printf("Table 1: Experimental Datasets\n");
  std::printf("%-12s %-12s %-34s %-8s %s\n", "Dataset", "Size (rows)",
              "Description", "Columns", "Focal attributes");
  auto datasets = atena::MakeAllDatasets();
  if (!datasets.ok()) {
    std::fprintf(stderr, "error: %s\n", datasets.status().ToString().c_str());
    return 1;
  }
  for (const auto& dataset : datasets.value()) {
    std::string focal = atena::JoinStrings(dataset.info.focal_attributes,
                                           ", ");
    std::printf("%-12s %-12lld %-34s %-8d %s\n", dataset.info.title.c_str(),
                static_cast<long long>(dataset.table->num_rows()),
                dataset.info.description.c_str(),
                dataset.table->num_columns(), focal.c_str());
  }
  return 0;
}
