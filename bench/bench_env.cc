// Micro-benchmarks of the EDA environment: observation encoding, single
// steps of each operation type, full episodes on cold (random-action) and
// hot (converged-policy replay) workloads, and the compound-reward path.
// Results are written to BENCH_env.json (see bench_json.h), including the
// display-cache hit rate of each episode workload.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>

#include "bench_json.h"
#include "data/registry.h"
#include "eda/environment.h"
#include "eda/session.h"
#include "reward/compound.h"

namespace atena {
namespace {

EnvConfig BenchConfig() {
  EnvConfig config;
  config.episode_length = 1 << 20;  // benches manage episode boundaries
  return config;
}

/// Dataset scale for the *_Scaled benches: ATENA_BENCH_SCALE (default 100,
/// ~1.36M cyber4 rows). The ctest smoke run overrides this down to 2.
int BenchScale() {
  if (const char* env = std::getenv("ATENA_BENCH_SCALE")) {
    return std::max(1, std::atoi(env));
  }
  return 100;
}

const Dataset& ScaledDataset() {
  static const Dataset& dataset =
      *new Dataset(MakeDataset("cyber4", BenchScale()).value());
  return dataset;
}

/// Cache hit-rate over the benchmark's own lookups (delta across the run).
void ReportCacheHitRate(benchmark::State& state, const EdaEnvironment& env,
                        const DisplayCacheStats& before) {
  if (!env.display_cache()) return;
  const DisplayCacheStats after = env.display_cache()->stats();
  const uint64_t hits = after.hits - before.hits;
  const uint64_t lookups = hits + (after.misses - before.misses);
  state.counters["cache_hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(lookups);
}

void BM_EnvReset(benchmark::State& state) {
  auto dataset = MakeDataset("cyber4").value();
  EdaEnvironment env(dataset, BenchConfig());
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.Reset().size());
  }
}
BENCHMARK(BM_EnvReset);

void BM_EnvStepFilter(benchmark::State& state) {
  auto dataset = MakeDataset("cyber4").value();
  EdaEnvironment env(dataset, BenchConfig());
  int col = dataset.table->FindColumn("tcp_flags");
  EdaOperation filter =
      EdaOperation::Filter(col, CompareOp::kEq, Value(std::string("SYN")));
  for (auto _ : state) {
    env.Reset();
    benchmark::DoNotOptimize(env.StepOperation(filter).valid);
  }
}
BENCHMARK(BM_EnvStepFilter);

void BM_EnvStepGroup(benchmark::State& state) {
  auto dataset = MakeDataset("cyber4").value();
  EdaEnvironment env(dataset, BenchConfig());
  int col = dataset.table->FindColumn("source_ip");
  EdaOperation group = EdaOperation::Group(col, AggFunc::kCount, -1);
  for (auto _ : state) {
    env.Reset();
    benchmark::DoNotOptimize(env.StepOperation(group).valid);
  }
}
BENCHMARK(BM_EnvStepGroup);

// Scaled variants of the single-step benches: the same operations on a
// ~1.36M-row table. The display cache plus the chunked kernels are what
// keep these within a small factor of the small-table steps — the first
// execution pays the (zone-map-accelerated) scan, steady state is a
// signature lookup.

void BM_EnvStepFilterScaled(benchmark::State& state) {
  const Dataset& dataset = ScaledDataset();
  EdaEnvironment env(dataset, BenchConfig());
  int col = dataset.table->FindColumn("tcp_flags");
  EdaOperation filter =
      EdaOperation::Filter(col, CompareOp::kEq, Value(std::string("SYN")));
  for (auto _ : state) {
    env.Reset();
    benchmark::DoNotOptimize(env.StepOperation(filter).valid);
  }
  state.counters["table_rows"] =
      static_cast<double>(dataset.table->num_rows());
}
BENCHMARK(BM_EnvStepFilterScaled);

void BM_EnvStepGroupScaled(benchmark::State& state) {
  const Dataset& dataset = ScaledDataset();
  EdaEnvironment env(dataset, BenchConfig());
  int col = dataset.table->FindColumn("source_ip");
  EdaOperation group = EdaOperation::Group(col, AggFunc::kCount, -1);
  for (auto _ : state) {
    env.Reset();
    benchmark::DoNotOptimize(env.StepOperation(group).valid);
  }
  state.counters["table_rows"] =
      static_cast<double>(dataset.table->num_rows());
}
BENCHMARK(BM_EnvStepGroupScaled);

/// Cold workload: uniformly random actions, never-repeating trajectories.
/// The display cache helps only when sampled prefixes recur by chance.
void BM_EnvRandomEpisode(benchmark::State& state) {
  auto dataset = MakeDataset("flights4").value();
  EnvConfig config;
  config.episode_length = 12;
  EdaEnvironment env(dataset, config);
  Rng rng(1);
  const DisplayCacheStats before =
      env.display_cache() ? env.display_cache()->stats() : DisplayCacheStats{};
  for (auto _ : state) {
    env.Reset();
    while (!env.done()) {
      env.Step(SampleRandomAction(env.action_space(), &rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * config.episode_length);
  ReportCacheHitRate(state, env, before);
}
BENCHMARK(BM_EnvRandomEpisode);

/// Same cold workload with the cache disabled: the recompute-everything
/// floor the cached variants are compared against.
void BM_EnvRandomEpisodeNoCache(benchmark::State& state) {
  auto dataset = MakeDataset("flights4").value();
  EnvConfig config;
  config.episode_length = 12;
  config.display_cache_enabled = false;
  EdaEnvironment env(dataset, config);
  Rng rng(1);
  for (auto _ : state) {
    env.Reset();
    while (!env.done()) {
      env.Step(SampleRandomAction(env.action_space(), &rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * config.episode_length);
}
BENCHMARK(BM_EnvRandomEpisodeNoCache);

/// Hot workload: one concrete episode (as produced by a converged policy,
/// which replays a narrow action set) re-executed with the full compound
/// reward attached — the regime RL training spends most wall-clock in.
void BM_EnvConvergedReplay(benchmark::State& state) {
  auto dataset = MakeDataset("flights4").value();
  EnvConfig config;
  config.episode_length = 12;
  EdaEnvironment env(dataset, config);
  auto reward = MakeStandardReward(&env).value();
  env.SetRewardSignal(reward.get());
  Rng rng(7);
  std::vector<EdaOperation> ops;
  env.Reset();
  while (!env.done()) {
    ops.push_back(env.Step(SampleRandomAction(env.action_space(), &rng)).op);
  }
  const DisplayCacheStats before =
      env.display_cache() ? env.display_cache()->stats() : DisplayCacheStats{};
  for (auto _ : state) {
    env.Reset();
    double total = 0.0;
    for (const auto& op : ops) total += env.StepOperation(op).reward;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * config.episode_length);
  ReportCacheHitRate(state, env, before);
}
BENCHMARK(BM_EnvConvergedReplay);

void BM_CompoundRewardEpisode(benchmark::State& state) {
  auto dataset = MakeDataset("flights4").value();
  EnvConfig config;
  config.episode_length = 12;
  EdaEnvironment env(dataset, config);
  auto reward = MakeStandardReward(&env).value();
  env.SetRewardSignal(reward.get());
  Rng rng(2);
  const DisplayCacheStats before =
      env.display_cache() ? env.display_cache()->stats() : DisplayCacheStats{};
  for (auto _ : state) {
    env.Reset();
    while (!env.done()) {
      env.Step(SampleRandomAction(env.action_space(), &rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * config.episode_length);
  ReportCacheHitRate(state, env, before);
}
BENCHMARK(BM_CompoundRewardEpisode);

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atena::bench::JsonFileReporter reporter("BENCH_env.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
