// Micro-benchmarks of the EDA environment: observation encoding, single
// steps of each operation type, and the compound-reward evaluation path.
#include <benchmark/benchmark.h>

#include "data/registry.h"
#include "eda/environment.h"
#include "reward/compound.h"

namespace atena {
namespace {

EnvConfig BenchConfig() {
  EnvConfig config;
  config.episode_length = 1 << 20;  // benches manage episode boundaries
  return config;
}

void BM_EnvReset(benchmark::State& state) {
  auto dataset = MakeDataset("cyber4").value();
  EdaEnvironment env(dataset, BenchConfig());
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.Reset().size());
  }
}
BENCHMARK(BM_EnvReset);

void BM_EnvStepFilter(benchmark::State& state) {
  auto dataset = MakeDataset("cyber4").value();
  EdaEnvironment env(dataset, BenchConfig());
  int col = dataset.table->FindColumn("tcp_flags");
  EdaOperation filter =
      EdaOperation::Filter(col, CompareOp::kEq, Value(std::string("SYN")));
  for (auto _ : state) {
    env.Reset();
    benchmark::DoNotOptimize(env.StepOperation(filter).valid);
  }
}
BENCHMARK(BM_EnvStepFilter);

void BM_EnvStepGroup(benchmark::State& state) {
  auto dataset = MakeDataset("cyber4").value();
  EdaEnvironment env(dataset, BenchConfig());
  int col = dataset.table->FindColumn("source_ip");
  EdaOperation group = EdaOperation::Group(col, AggFunc::kCount, -1);
  for (auto _ : state) {
    env.Reset();
    benchmark::DoNotOptimize(env.StepOperation(group).valid);
  }
}
BENCHMARK(BM_EnvStepGroup);

void BM_EnvRandomEpisode(benchmark::State& state) {
  auto dataset = MakeDataset("flights4").value();
  EnvConfig config;
  config.episode_length = 12;
  EdaEnvironment env(dataset, config);
  Rng rng(1);
  for (auto _ : state) {
    env.Reset();
    while (!env.done()) {
      env.Step(SampleRandomAction(env.action_space(), &rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * config.episode_length);
}
BENCHMARK(BM_EnvRandomEpisode);

void BM_CompoundRewardEpisode(benchmark::State& state) {
  auto dataset = MakeDataset("flights4").value();
  EnvConfig config;
  config.episode_length = 12;
  EdaEnvironment env(dataset, config);
  auto reward = MakeStandardReward(&env).value();
  env.SetRewardSignal(reward.get());
  Rng rng(2);
  for (auto _ : state) {
    env.Reset();
    while (!env.done()) {
      env.Step(SampleRandomAction(env.action_space(), &rng));
    }
  }
  state.SetItemsProcessed(state.iterations() * config.episode_length);
}
BENCHMARK(BM_CompoundRewardEpisode);

}  // namespace
}  // namespace atena

BENCHMARK_MAIN();
