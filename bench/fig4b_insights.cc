// Regenerates paper Figure 4b: the percentage of ground-truth insights a
// reader gathers from each notebook type, on the four cyber-security
// datasets (their challenge solutions define 9–15 insights each). An
// insight counts as gathered when the notebook contains a view revealing it
// (DESIGN.md substitution #6).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "eval/insights.h"

namespace atena {
namespace {

int Run() {
  AtenaOptions options = bench::ExperimentOptions();
  const std::vector<std::string> cyber = {"cyber1", "cyber2", "cyber3",
                                          "cyber4"};
  const std::vector<BaselineKind> kinds = {
      BaselineKind::kGreedyIO, BaselineKind::kOtsDrlB, BaselineKind::kAtena};

  std::map<std::string, double> total;
  std::map<std::string, int> count;
  auto add = [&](const std::string& row, double coverage) {
    total[row] += coverage;
    ++count[row];
  };

  for (const auto& id : cyber) {
    auto dataset = MakeDataset(id);
    if (!dataset.ok()) return 1;
    auto catalog = InsightCatalog(id);

    auto gold = GoldNotebooks(dataset.value(), options.env);
    if (!gold.ok()) return 1;
    for (const auto& g : gold.value()) {
      add("Gold", InsightCoverage(g, catalog));
    }
    auto traces = SimulatedTraceNotebooks(dataset.value(), options.env);
    if (!traces.ok()) return 1;
    for (const auto& t : traces.value()) {
      add("EDA-Traces", InsightCoverage(t, catalog));
    }
    for (BaselineKind kind : kinds) {
      auto run = RunBaseline(kind, dataset.value(), options);
      if (!run.ok()) return 1;
      add(BaselineName(kind),
          InsightCoverage(run.value().notebook, catalog));
      std::fprintf(stderr, "  [%s] %s coverage %.0f%%\n", id.c_str(),
                   BaselineName(kind),
                   100.0 * InsightCoverage(run.value().notebook, catalog));
    }
  }

  std::printf("Figure 4b: %% of gathered insights (cyber datasets)\n");
  bench::PrintHeader("Baseline", {"% insights"}, 12);
  for (const auto& name :
       {"Gold", "ATENA", "EDA-Traces", "OTS-DRL-B", "Greedy-IO"}) {
    bench::PrintRow(name, {100.0 * total[name] /
                           (count[name] > 0 ? count[name] : 1)},
                    12);
  }
  return 0;
}

}  // namespace
}  // namespace atena

int main() { return atena::Run(); }
