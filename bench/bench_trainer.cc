// Macro-benchmark of ParallelPpoTrainer's lockstep training loop: full
// PPO training slices (batched acting + concurrent env stepping + update)
// at 1/2/4/8 actors across stepping-thread counts. Results go to
// BENCH_trainer.json with a steps_per_sec counter and, for multi-thread
// configs, scaling_efficiency relative to the same actor count at one
// thread (1.0 = perfect linear scaling; expect ~1/threads on machines
// with a single core — the thread count changes wall-clock only, never
// the training output).
//
// Every iteration builds fresh environments (hence a fresh, cold display
// cache) so configs are comparable: a warm shared cache would make later
// iterations — and later configs — progressively cheaper. Setup is
// excluded from the measurement via manual timing.
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "core/twofold_policy.h"
#include "data/registry.h"
#include "eda/environment.h"
#include "reward/compound.h"
#include "rl/parallel_trainer.h"

namespace atena {
namespace {

constexpr int kTotalSteps = 96;
constexpr uint64_t kEnvSeed = 9001;

/// The coherency classifier and calibrated component weights are shared
/// across all configs and iterations (training them dominates setup and
/// their scoring is stateless); each environment still gets its own
/// stateful CompoundReward clone, exactly as RunAtena wires multi-actor
/// training.
struct Fixture {
  Dataset dataset;
  std::shared_ptr<CompoundReward> reward_proto;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture{MakeDataset("flights4").value(), nullptr};
    EnvConfig config;
    config.seed = kEnvSeed;
    EdaEnvironment env(f->dataset, config);
    f->reward_proto = MakeStandardReward(&env).value();
    return f;
  }();
  return *fixture;
}

/// steps_per_sec of the single-thread run per actor count, used as the
/// scaling-efficiency baseline. Benchmarks run sequentially in
/// registration order, so the (a, 1) config always lands before (a, t>1).
std::map<int, double>& BaselineStepsPerSec() {
  static std::map<int, double> baselines;
  return baselines;
}

void BM_TrainerSteps(benchmark::State& state) {
  const int actors = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Fixture& fixture = SharedFixture();

  double measured_seconds = 0.0;
  for (auto _ : state) {
    // Unmeasured setup: fresh envs (cold shared cache), reward clones,
    // policy, trainer.
    std::vector<std::unique_ptr<EdaEnvironment>> envs;
    std::vector<std::unique_ptr<CompoundReward>> rewards;
    std::vector<EdaEnvironment*> env_ptrs;
    for (int e = 0; e < actors; ++e) {
      EnvConfig config;
      config.seed = kEnvSeed + static_cast<uint64_t>(e);
      envs.push_back(std::make_unique<EdaEnvironment>(fixture.dataset, config));
      rewards.push_back(std::make_unique<CompoundReward>(
          fixture.reward_proto->coherency(), fixture.reward_proto->options()));
      envs.back()->SetRewardSignal(rewards.back().get());
      env_ptrs.push_back(envs.back().get());
    }
    TwofoldPolicy policy(env_ptrs[0]->observation_dim(),
                         env_ptrs[0]->action_space(),
                         TwofoldPolicy::Options());
    TrainerOptions options;
    options.total_steps = kTotalSteps;
    options.rollout_length = 48;
    options.minibatch_size = 32;
    options.final_eval_episodes = 0;
    options.num_threads = threads;
    ParallelPpoTrainer trainer(env_ptrs, &policy, options);

    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(trainer.Train().episodes);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(elapsed.count());
    measured_seconds += elapsed.count();
  }

  state.SetItemsProcessed(state.iterations() * kTotalSteps);
  const double steps_per_sec =
      measured_seconds > 0.0
          ? static_cast<double>(state.iterations() * kTotalSteps) /
                measured_seconds
          : 0.0;
  state.counters["steps_per_sec"] = steps_per_sec;
  auto& baselines = BaselineStepsPerSec();
  if (threads == 1) baselines[actors] = steps_per_sec;
  const auto baseline = baselines.find(actors);
  if (baseline != baselines.end() && baseline->second > 0.0) {
    state.counters["scaling_efficiency"] = steps_per_sec / baseline->second;
  }
}
BENCHMARK(BM_TrainerSteps)
    ->ArgNames({"actors", "threads"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({8, 8})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atena::bench::JsonFileReporter reporter("BENCH_trainer.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
