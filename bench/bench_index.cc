// Micro-benchmark of the display-vector index (src/index/, DESIGN.md §14):
// exact min-distance queries (the diversity reward's inner loop) scalar vs
// indexed at growing history lengths, and top-k notebook retrieval at
// growing corpus sizes. Both paths return bit-identical results
// (tests/index_test.cc); this bench measures only the cost.
//
// The diversity histories are real: each one is the display_vectors() of
// an EdaEnvironment driven for N random-action steps over flights4 — the
// duplicate-heavy, clustered distribution the index actually serves (BACK
// and repeated operations reproduce earlier displays bit-for-bit), not a
// synthetic uniform cloud. Queries replay the reward's access pattern:
// display i against displays 0..i-1.
//
// The headline counter is `indexed_speedup` on the 10000-step history —
// the scalar scan is linear in history length while the ball-bounded
// descent re-checks a near-constant candidate set (`vectors_checked` is
// emitted per config so the sub-linear claim is visible directly, not
// just through wall-clock). Results go to BENCH_index.json.
//
// Scale overrides: ATENA_BENCH_INDEX_MAX drops registered history/corpus
// sizes above the given value (the smoke test pins 1000 so ctest stays
// fast); ATENA_BENCH_HISTORY / ATENA_BENCH_CORPUS each add one extra
// size; ATENA_BENCH_DIM sets the synthetic notebook-corpus dimension.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/math_utils.h"
#include "common/random.h"
#include "data/registry.h"
#include "eda/environment.h"
#include "index/notebook_store.h"
#include "index/vector_index.h"

namespace atena {
namespace {

long EnvScale(const char* name, long fallback) {
  if (const char* env = std::getenv(name)) {
    const long value = std::atol(env);
    if (value > 0) return value;
  }
  return fallback;
}

/// Display history of a real session: one EdaEnvironment stepped `count`
/// times with seeded random actions. Cached — both the scalar and the
/// indexed run (and every repetition) measure against the same vectors.
const std::vector<std::vector<double>>& RealHistory(size_t count) {
  static auto* cache =
      new std::map<size_t, std::vector<std::vector<double>>>();
  const auto it = cache->find(count);
  if (it != cache->end()) return it->second;

  EnvConfig config;
  config.episode_length = static_cast<int>(count);
  config.stats_row_cap = 256;
  // The generator itself must not pay for (or depend on) the index.
  config.diversity_index_enabled = false;
  EdaEnvironment env(MakeDataset("flights4").value(), config);
  env.Reset();
  Rng actions(count);
  for (size_t i = 0; i < count; ++i) {
    env.Step(SampleRandomAction(env.action_space(), &actions));
  }
  return (*cache)[count] = env.display_vectors();
}

/// Synthetic notebook corpus vectors: clustered around a few dozen
/// operation neighborhoods with exact duplicates mixed in — the shape of
/// display sequences across many retired sessions.
std::vector<std::vector<double>> SyntheticSequence(size_t count, size_t dim,
                                                   Rng* rng) {
  constexpr size_t kClusters = 32;
  constexpr double kNoise = 0.05;
  static auto* centers = [] {
    Rng center_rng(0xc0ffee);
    auto* all = new std::vector<std::vector<double>>(kClusters);
    for (auto& center : *all) {
      center.resize(256);
      for (double& x : center) x = center_rng.NextDouble(-1.0, 1.0);
    }
    return all;
  }();
  std::vector<std::vector<double>> vectors;
  vectors.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> v(dim);
    const auto& center = (*centers)[static_cast<size_t>(rng->NextBounded(kClusters))];
    for (size_t d = 0; d < dim; ++d) {
      v[d] = center[d % center.size()] + rng->NextDouble(-kNoise, kNoise);
    }
    vectors.push_back(std::move(v));
  }
  return vectors;
}

/// seconds/query of the scalar run per history length — the
/// indexed_speedup baseline (benchmarks run in registration order, so the
/// scalar run of each length lands first).
std::map<int64_t, double>& ScalarSecondsPerQuery() {
  static auto* baselines = new std::map<int64_t, double>();
  return *baselines;
}

/// The flat scan DiversityReward's scalar path performs: running min over
/// the bounded kernel in id order.
double ScalarMinSquared(const std::vector<std::vector<double>>& vectors,
                        const std::vector<double>& query, size_t id_limit) {
  double best = std::numeric_limits<double>::infinity();
  const size_t limit = std::min(id_limit, vectors.size());
  for (size_t i = 0; i < limit; ++i) {
    const double sq = SquaredEuclideanDistanceBounded(query, vectors[i], best);
    if (sq < best) best = sq;
  }
  return best;
}

void BM_DiversityMinDistance(benchmark::State& state) {
  const size_t history = static_cast<size_t>(state.range(0));
  const bool indexed = state.range(1) != 0;
  const auto& vectors = RealHistory(history);
  VectorIndex index;
  if (indexed) {
    // Incremental growth, exactly like the environment's per-session
    // index (one Insert per step).
    for (const auto& v : vectors) index.Insert(v);
  }

  VectorIndex::QueryStats stats;
  size_t cursor = 0;
  int64_t queries = 0;
  double total_seconds = 0.0;
  for (auto _ : state) {
    cursor = cursor + 1 < vectors.size() ? cursor + 1 : 1;
    const auto start = std::chrono::steady_clock::now();
    const double min_sq =
        indexed ? index.MinSquaredDistance(vectors[cursor], cursor, &stats)
                : ScalarMinSquared(vectors, vectors[cursor], cursor);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(min_sq);
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    state.SetIterationTime(seconds);
    total_seconds += seconds;
    ++queries;
  }

  state.SetItemsProcessed(queries);
  state.counters["history"] = static_cast<double>(vectors.size());
  const double seconds_per_query =
      queries > 0 ? total_seconds / static_cast<double>(queries) : 0.0;
  if (!indexed) {
    // Benchmarks run in registration order, so the scalar run of each
    // history length lands before its indexed twin.
    ScalarSecondsPerQuery()[state.range(0)] = seconds_per_query;
  } else if (seconds_per_query > 0.0) {
    const auto baseline = ScalarSecondsPerQuery().find(state.range(0));
    if (baseline != ScalarSecondsPerQuery().end()) {
      state.counters["indexed_speedup"] =
          baseline->second / seconds_per_query;
    }
  }
  if (indexed && queries > 0) {
    state.counters["vectors_checked_per_query"] =
        static_cast<double>(stats.vectors_checked) /
        static_cast<double>(queries);
    state.counters["nodes_visited_per_query"] =
        static_cast<double>(stats.nodes_visited) /
        static_cast<double>(queries);
    state.counters["nodes_pruned_per_query"] =
        static_cast<double>(stats.nodes_pruned) /
        static_cast<double>(queries);
  }
}

void BM_NotebookTopK(benchmark::State& state) {
  const size_t corpus = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(EnvScale("ATENA_BENCH_DIM", 48));
  NotebookStore store;
  Rng rng(corpus);
  for (size_t i = 0; i < corpus; ++i) {
    store.Register(i, i, SyntheticSequence(8, dim, &rng));
  }
  Rng query_rng(0xfeed);
  const auto query = SyntheticSequence(8, dim, &query_rng);
  int64_t queries = 0;
  for (auto _ : state) {
    const auto matches = store.TopK(query, 5);
    benchmark::DoNotOptimize(matches);
    ++queries;
  }
  state.SetItemsProcessed(queries);
  state.counters["corpus"] = static_cast<double>(corpus);
}

void RegisterBenchmarks() {
  const long max_size = EnvScale("ATENA_BENCH_INDEX_MAX",
                                 std::numeric_limits<long>::max());
  std::vector<long> histories = {100, 1000, 10000};
  const long extra_history = EnvScale("ATENA_BENCH_HISTORY", 0);
  if (extra_history > 0) histories.push_back(extra_history);
  auto* diversity = benchmark::RegisterBenchmark("BM_DiversityMinDistance",
                                                 BM_DiversityMinDistance);
  diversity->ArgNames({"history", "indexed"});
  for (long history : histories) {
    if (history > max_size) continue;
    diversity->Args({history, 0})->Args({history, 1});
  }
  diversity->UseManualTime()->Unit(benchmark::kMicrosecond);

  std::vector<long> corpora = {100, 1000, 10000};
  const long extra_corpus = EnvScale("ATENA_BENCH_CORPUS", 0);
  if (extra_corpus > 0) corpora.push_back(extra_corpus);
  auto* retrieval =
      benchmark::RegisterBenchmark("BM_NotebookTopK", BM_NotebookTopK);
  retrieval->ArgNames({"corpus"});
  for (long corpus : corpora) {
    if (corpus > max_size) continue;
    retrieval->Args({corpus});
  }
  retrieval->Unit(benchmark::kMicrosecond);
}

}  // namespace
}  // namespace atena

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  atena::RegisterBenchmarks();
  atena::bench::JsonFileReporter reporter("BENCH_index.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
