// Regenerates paper Figure 5: learning-convergence comparison — mean
// episode reward as a function of training steps for ATENA, OTS-DRL,
// OTS-DRL-B, and the non-learning Greedy-CR horizontal reference — on the
// paper's two representative datasets, Flights #4 and Cyber #2. Prints one
// CSV-style series per (dataset, architecture).
#include <cstdio>

#include "baselines/flat_policy.h"
#include "baselines/greedy.h"
#include "bench_util.h"
#include "core/twofold_policy.h"
#include "reward/compound.h"

namespace atena {
namespace {

Result<TrainingResult> TrainArchitecture(const Dataset& dataset,
                                         const std::string& name,
                                         const AtenaOptions& options) {
  EdaEnvironment env(dataset, options.env);
  ATENA_ASSIGN_OR_RETURN(auto reward,
                         MakeStandardReward(&env, options.reward));
  env.SetRewardSignal(reward.get());

  std::unique_ptr<Policy> policy;
  if (name == "ATENA") {
    policy = std::make_unique<TwofoldPolicy>(env.observation_dim(),
                                             env.action_space(),
                                             options.policy);
  } else {
    FlatPolicy::Options flat;
    flat.term_mode = (name == "OTS-DRL")
                         ? FlatPolicy::TermMode::kExplicitTokens
                         : FlatPolicy::TermMode::kFrequencyBins;
    flat.hidden = options.policy.hidden;
    flat.seed = options.policy.seed;
    policy = std::make_unique<FlatPolicy>(env, flat);
  }
  PpoTrainer trainer(&env, policy.get(), options.trainer);
  return trainer.Train();
}

/// Mean greedy-CR episode reward (non-learning: a horizontal line).
Result<double> GreedyReference(const Dataset& dataset,
                               const AtenaOptions& options) {
  EdaEnvironment env(dataset, options.env);
  ATENA_ASSIGN_OR_RETURN(auto reward,
                         MakeStandardReward(&env, options.reward));
  env.SetRewardSignal(reward.get());
  GreedyOptions greedy;
  EdaNotebook notebook = RunGreedyEpisode(&env, greedy, "Greedy-CR");
  double total = 0.0;
  for (const auto& step : env.steps()) total += step.reward;
  return total;
}

int Run() {
  AtenaOptions options = bench::ExperimentOptions();
  std::printf("Figure 5: Learning convergence comparison\n");
  std::printf("series,dataset,step,mean_episode_reward\n");
  for (const char* id : {"flights4", "cyber2"}) {
    auto dataset = MakeDataset(id);
    if (!dataset.ok()) return 1;

    auto greedy = GreedyReference(dataset.value(), options);
    if (!greedy.ok()) return 1;
    std::printf("Greedy-CR,%s,0,%.4f\n", id, greedy.value());
    std::printf("Greedy-CR,%s,%d,%.4f\n", id, options.trainer.total_steps,
                greedy.value());

    for (const char* arch : {"ATENA", "OTS-DRL", "OTS-DRL-B"}) {
      auto result = TrainArchitecture(dataset.value(), arch, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", arch, id,
                     result.status().ToString().c_str());
        return 1;
      }
      for (const auto& point : result.value().curve) {
        std::printf("%s,%s,%d,%.4f\n", arch, id, point.step,
                    point.mean_episode_reward);
      }
      std::fprintf(stderr, "  [%s] %s final mean reward %.3f\n", id, arch,
                   result.value().final_mean_reward);
    }
  }
  return 0;
}

}  // namespace
}  // namespace atena

int main() { return atena::Run(); }
