// Regenerates paper Table 2: overall A-EDA benchmark results — Precision,
// T-BLEU-1/2/3 and EDA-Sim for every automatic baseline plus EDA-Traces,
// averaged across the 8 experimental datasets. Set ATENA_TRAIN_STEPS to
// scale the DRL training budget (default 12000 steps per agent).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/logging.h"

namespace atena {
namespace {

struct Accumulator {
  AedaScores total;
  int count = 0;
  void Add(const AedaScores& s) {
    total.precision += s.precision;
    total.t_bleu_1 += s.t_bleu_1;
    total.t_bleu_2 += s.t_bleu_2;
    total.t_bleu_3 += s.t_bleu_3;
    total.eda_sim += s.eda_sim;
    ++count;
  }
  std::vector<double> Mean() const {
    const double n = count > 0 ? count : 1;
    return {total.precision / n, total.t_bleu_1 / n, total.t_bleu_2 / n,
            total.t_bleu_3 / n, total.eda_sim / n};
  }
};

int Run() {
  AtenaOptions options = bench::ExperimentOptions();
  auto datasets = MakeAllDatasets();
  if (!datasets.ok()) {
    std::fprintf(stderr, "error: %s\n", datasets.status().ToString().c_str());
    return 1;
  }

  // Paper row order.
  const std::vector<BaselineKind> kinds = {
      BaselineKind::kAtnIO,    BaselineKind::kGreedyIO,
      BaselineKind::kOtsDrl,   BaselineKind::kGreedyCR,
      BaselineKind::kOtsDrlB,  BaselineKind::kAtena};

  std::map<std::string, Accumulator> rows;
  for (const auto& dataset : datasets.value()) {
    auto gold = bench::GoldViews(dataset, options.env);
    if (!gold.ok()) {
      std::fprintf(stderr, "gold error (%s): %s\n", dataset.info.id.c_str(),
                   gold.status().ToString().c_str());
      return 1;
    }

    for (BaselineKind kind : kinds) {
      auto run = RunBaseline(kind, dataset, options);
      if (!run.ok()) {
        std::fprintf(stderr, "baseline %s failed on %s: %s\n",
                     BaselineName(kind), dataset.info.id.c_str(),
                     run.status().ToString().c_str());
        return 1;
      }
      AedaScores scores = ComputeAedaScores(
          NotebookSignatures(run.value().notebook), gold.value());
      rows[BaselineName(kind)].Add(scores);
      std::fprintf(stderr, "  [%s] %s done (eda_sim %.3f)\n",
                   dataset.info.id.c_str(), BaselineName(kind),
                   scores.eda_sim);
    }

    auto traces = SimulatedTraceNotebooks(dataset, options.env);
    if (!traces.ok()) return 1;
    for (const auto& trace : traces.value()) {
      rows["EDA-Traces"].Add(
          ComputeAedaScores(NotebookSignatures(trace), gold.value()));
    }
  }

  std::printf(
      "Table 2: Overall A-EDA Benchmark Results (mean over 8 datasets)\n");
  bench::PrintHeader("Baseline", {"Precision", "T-BLEU-1", "T-BLEU-2",
                                  "T-BLEU-3", "EDA-Sim"});
  const std::vector<std::string> order = {"ATN-IO",    "Greedy-IO", "OTS-DRL",
                                          "Greedy-CR", "OTS-DRL-B",
                                          "EDA-Traces", "ATENA"};
  for (const auto& name : order) {
    bench::PrintRow(name, rows[name].Mean());
  }
  return 0;
}

}  // namespace
}  // namespace atena

int main() { return atena::Run(); }
