// Frequency-binning ablation (paper §5): sweeps the number of logarithmic
// filter-term bins B and reports the trained agent's final mean episode
// reward and A-EDA similarity on a representative dataset. B=1 collapses
// the term choice to "any token, uniformly"; large B approaches per-token
// resolution while growing the pre-output layer.
#include <cstdio>

#include "bench_util.h"

namespace atena {
namespace {

int Run() {
  std::printf("Binning ablation on flights4 (bins -> reward, EDA-Sim,\n");
  std::printf("pre-output width)\n");
  bench::PrintHeader("Bins", {"MeanReward", "EDA-Sim", "PreOutW"});
  for (int bins : {1, 2, 4, 8, 16, 32}) {
    auto dataset = MakeDataset("flights4");
    if (!dataset.ok()) return 1;
    AtenaOptions options = bench::ExperimentOptions();
    options.env.num_term_bins = bins;
    auto gold = bench::GoldViews(dataset.value(), options.env);
    if (!gold.ok()) return 1;
    auto result = RunAtena(dataset.value(), options);
    if (!result.ok()) return 1;
    AedaScores scores = ComputeAedaScores(
        NotebookSignatures(result.value().notebook), gold.value());
    EdaEnvironment env(dataset.value(), options.env);
    bench::PrintRow(std::to_string(bins),
                    {result.value().training.final_mean_reward,
                     scores.eda_sim,
                     static_cast<double>(
                         env.action_space().TotalParameterNodes())});
  }
  return 0;
}

}  // namespace
}  // namespace atena

int main() { return atena::Run(); }
