#ifndef ATENA_BASELINES_GREEDY_H_
#define ATENA_BASELINES_GREEDY_H_

#include <string>

#include "eda/session.h"

namespace atena {

/// Options of the greedy (non-learning) baselines (paper 3A and 4C).
struct GreedyOptions {
  /// How many of the most frequent tokens per column enter the candidate
  /// filter set at each step.
  int tokens_per_column = 3;
  /// Upper bound on candidates evaluated per step; larger candidate sets
  /// are subsampled deterministically. Keeps greedy search tractable on the
  /// larger datasets (the paper's greedy baselines enumerated "all possible
  /// operations" — over the same kind of restricted term set).
  int max_candidates = 128;
  uint64_t seed = 41;
};

/// Runs a greedy episode on `env`: at every step, speculatively executes
/// each candidate operation, keeps the one with the highest immediate
/// reward under the environment's attached reward signal, and commits it.
/// With an interestingness-only reward this is Greedy-IO; with the full
/// compound reward it is Greedy-CR. Returns the resulting notebook.
EdaNotebook RunGreedyEpisode(EdaEnvironment* env, const GreedyOptions& options,
                             std::string generator);

}  // namespace atena

#endif  // ATENA_BASELINES_GREEDY_H_
