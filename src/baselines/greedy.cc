#include "baselines/greedy.h"

#include "common/random.h"

namespace atena {

EdaNotebook RunGreedyEpisode(EdaEnvironment* env, const GreedyOptions& options,
                             std::string generator) {
  Rng rng(options.seed);
  env->Reset();
  while (!env->done()) {
    auto candidates = env->EnumerateOperations(options.tokens_per_column);
    if (static_cast<int>(candidates.size()) > options.max_candidates) {
      rng.Shuffle(candidates);
      candidates.resize(static_cast<size_t>(options.max_candidates));
    }
    EdaEnvironment::Snapshot snapshot = env->SaveSnapshot();
    double best_reward = -1e18;
    const EdaOperation* best = nullptr;
    for (const auto& candidate : candidates) {
      StepOutcome outcome = env->StepOperation(candidate);
      env->RestoreSnapshot(snapshot);
      if (outcome.valid && outcome.reward > best_reward) {
        best_reward = outcome.reward;
        best = &candidate;
      }
    }
    if (best == nullptr) {
      // Every candidate was a no-op (can only happen on degenerate data);
      // burn a step so the episode still terminates.
      env->StepOperation(EdaOperation::Back());
      continue;
    }
    env->StepOperation(*best);
  }
  return NotebookFromSession(*env, std::move(generator));
}

}  // namespace atena
