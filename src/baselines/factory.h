#ifndef ATENA_BASELINES_FACTORY_H_
#define ATENA_BASELINES_FACTORY_H_

#include <string>
#include <vector>

#include "core/atena.h"
#include "eda/session.h"
#include "rl/trainer.h"

namespace atena {

/// Identifiers of all automatic notebook generators compared in the paper's
/// evaluation (§6.1), in Table 2 row order (human baselines excluded).
enum class BaselineKind {
  kAtnIO,     // 3B: ATENA architecture, interestingness-only reward
  kGreedyIO,  // 3A: greedy argmax of interestingness
  kOtsDrl,    // 4A: flat softmax, explicit top-10 tokens per column
  kGreedyCR,  // 4C: greedy argmax of the compound reward
  kOtsDrlB,   // 4B: flat softmax over frequency bins
  kAtena,     // the full system
};

const char* BaselineName(BaselineKind kind);
std::vector<BaselineKind> AllBaselines();

/// Output of one baseline run. `training` is empty (no curve) for the
/// greedy baselines.
struct BaselineRun {
  BaselineKind kind = BaselineKind::kAtena;
  EdaNotebook notebook;
  TrainingResult training;
};

/// Runs the requested generator end-to-end on `dataset` with shared
/// hyper-parameters from `options` (episode length, training steps, seeds),
/// so the comparison isolates architecture/reward differences exactly as
/// the paper's evaluation does.
Result<BaselineRun> RunBaseline(BaselineKind kind, const Dataset& dataset,
                                const AtenaOptions& options);

}  // namespace atena

#endif  // ATENA_BASELINES_FACTORY_H_
