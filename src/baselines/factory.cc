#include "baselines/factory.h"

#include "baselines/flat_policy.h"
#include "baselines/greedy.h"
#include "common/logging.h"

namespace atena {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kAtnIO:
      return "ATN-IO";
    case BaselineKind::kGreedyIO:
      return "Greedy-IO";
    case BaselineKind::kOtsDrl:
      return "OTS-DRL";
    case BaselineKind::kGreedyCR:
      return "Greedy-CR";
    case BaselineKind::kOtsDrlB:
      return "OTS-DRL-B";
    case BaselineKind::kAtena:
      return "ATENA";
  }
  return "?";
}

std::vector<BaselineKind> AllBaselines() {
  return {BaselineKind::kAtnIO,    BaselineKind::kGreedyIO,
          BaselineKind::kOtsDrl,   BaselineKind::kGreedyCR,
          BaselineKind::kOtsDrlB,  BaselineKind::kAtena};
}

namespace {

CompoundReward::Options InterestingnessOnly(CompoundReward::Options base) {
  base.enable_diversity = false;
  base.enable_coherency = false;
  base.weight_interestingness = 1.0;
  return base;
}

/// Shared DRL driver for the non-ATENA learned baselines: trains `policy`
/// on `env` and extracts the best episode's notebook.
Result<BaselineRun> TrainAndExtract(BaselineKind kind, EdaEnvironment* env,
                                    Policy* policy,
                                    const TrainerOptions& trainer_options) {
  PpoTrainer trainer(env, policy, trainer_options);
  BaselineRun run;
  run.kind = kind;
  run.training = trainer.Train();
  double replay_reward = 0.0;
  run.notebook = ReplayOperations(env, run.training.best_episode_ops,
                                  BaselineName(kind), &replay_reward);
  return run;
}

}  // namespace

Result<BaselineRun> RunBaseline(BaselineKind kind, const Dataset& dataset,
                                const AtenaOptions& options) {
  // The full system reuses the core pipeline directly.
  if (kind == BaselineKind::kAtena) {
    ATENA_ASSIGN_OR_RETURN(AtenaResult result, RunAtena(dataset, options));
    BaselineRun run;
    run.kind = kind;
    run.notebook = std::move(result.notebook);
    run.training = std::move(result.training);
    return run;
  }

  EdaEnvironment env(dataset, options.env);

  // Reward: interestingness-only for the 3A/3B baselines, the full
  // compound signal otherwise.
  CompoundReward::Options reward_options = options.reward;
  if (kind == BaselineKind::kAtnIO || kind == BaselineKind::kGreedyIO) {
    reward_options = InterestingnessOnly(reward_options);
  }
  ATENA_ASSIGN_OR_RETURN(auto reward,
                         MakeStandardReward(&env, reward_options));
  env.SetRewardSignal(reward.get());

  switch (kind) {
    case BaselineKind::kGreedyIO:
    case BaselineKind::kGreedyCR: {
      GreedyOptions greedy;
      greedy.seed = options.trainer.seed;
      BaselineRun run;
      run.kind = kind;
      run.notebook = RunGreedyEpisode(&env, greedy, BaselineName(kind));
      return run;
    }
    case BaselineKind::kAtnIO: {
      TwofoldPolicy policy(env.observation_dim(), env.action_space(),
                           options.policy);
      return TrainAndExtract(kind, &env, &policy, options.trainer);
    }
    case BaselineKind::kOtsDrl: {
      FlatPolicy::Options flat;
      flat.term_mode = FlatPolicy::TermMode::kExplicitTokens;
      flat.hidden = options.policy.hidden;
      flat.seed = options.policy.seed;
      FlatPolicy policy(env, flat);
      return TrainAndExtract(kind, &env, &policy, options.trainer);
    }
    case BaselineKind::kOtsDrlB: {
      FlatPolicy::Options flat;
      flat.term_mode = FlatPolicy::TermMode::kFrequencyBins;
      flat.hidden = options.policy.hidden;
      flat.seed = options.policy.seed;
      FlatPolicy policy(env, flat);
      return TrainAndExtract(kind, &env, &policy, options.trainer);
    }
    case BaselineKind::kAtena:
      break;  // handled above
  }
  return Status::Internal("unreachable baseline kind");
}

}  // namespace atena
