#include "baselines/flat_policy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dataframe/stats.h"

namespace atena {

namespace {

double SafeLog(double p) { return std::log(std::max(p, 1e-12)); }

}  // namespace

FlatPolicy::FlatPolicy(const EdaEnvironment& env, Options options)
    : options_(std::move(options)) {
  BuildActionTable(env);

  Rng rng(options_.seed);
  trunk_ = std::make_unique<Sequential>();
  int prev = env.observation_dim();
  int idx = 0;
  for (int h : options_.hidden) {
    trunk_->Add(std::make_unique<Dense>(prev, h, &store_,
                                        "trunk." + std::to_string(idx++),
                                        &rng));
    trunk_->Add(std::make_unique<Relu>());
    prev = h;
  }
  policy_head_ = std::make_unique<Dense>(prev, num_actions(), &store_,
                                         "policy_head", &rng);
  value_head_ = std::make_unique<Dense>(prev, 1, &store_, "value_head", &rng);
}

void FlatPolicy::BuildActionTable(const EdaEnvironment& env) {
  const Table& table = env.table();
  const ActionSpace& space = env.action_space();
  auto all_rows = AllRows(table).value();

  // FILTER actions.
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = *table.column(c);
    const bool string_col = col.type() == DataType::kString;
    for (int op_index = 0; op_index < space.num_filter_ops; ++op_index) {
      CompareOp op = static_cast<CompareOp>(op_index);
      // Coerce type-incompatible operators to equality, mirroring the
      // environment's own fallback so flat and twofold agents face the same
      // semantics (only the output-layer architecture differs).
      const bool ordering = op == CompareOp::kGt || op == CompareOp::kGe ||
                            op == CompareOp::kLt || op == CompareOp::kLe;
      const bool substring = op == CompareOp::kContains ||
                             op == CompareOp::kStartsWith ||
                             op == CompareOp::kEndsWith;
      if ((string_col && ordering) || (!string_col && substring)) {
        op = CompareOp::kEq;
      }
      if (options_.term_mode == TermMode::kExplicitTokens) {
        auto tokens = TokenFrequencies(col, all_rows);
        const int limit = std::min<int>(options_.tokens_per_column,
                                        static_cast<int>(tokens.size()));
        for (int t = 0; t < limit; ++t) {
          ActionRecord record;
          record.is_concrete = true;
          record.concrete = EdaOperation::Filter(c, op, tokens[t].token);
          actions_.push_back(std::move(record));
        }
      } else {
        for (int bin = 0; bin < space.num_term_bins; ++bin) {
          ActionRecord record;
          record.structured.type = OpType::kFilter;
          record.structured.filter_column = c;
          record.structured.filter_op = static_cast<int>(op);
          record.structured.filter_bin = bin;
          actions_.push_back(std::move(record));
        }
      }
    }
  }
  // GROUP actions.
  for (int g = 0; g < table.num_columns(); ++g) {
    for (int f = 0; f < space.num_agg_funcs; ++f) {
      for (int a = 0; a < table.num_columns(); ++a) {
        ActionRecord record;
        record.structured.type = OpType::kGroup;
        record.structured.group_column = g;
        record.structured.agg_func = f;
        record.structured.agg_column = a;
        actions_.push_back(std::move(record));
      }
    }
  }
  // BACK.
  {
    ActionRecord record;
    record.structured.type = OpType::kBack;
    actions_.push_back(std::move(record));
  }
  for (size_t i = 0; i < actions_.size(); ++i) {
    actions_[i].flat_index = static_cast<int>(i);
  }
  ATENA_LOG(kInfo) << "flat policy: " << actions_.size()
                   << " output nodes (" << env.dataset().info.id << ")";
}

const Matrix* FlatPolicy::ForwardGraph(const Matrix& observations) {
  const Matrix& h = trunk_->Forward(observations, &ws_);
  const Matrix& logits = policy_head_->Forward(h, &ws_);
  const Matrix& values = value_head_->Forward(h, &ws_);
  probs_buf_ = logits;
  SoftmaxRangeInPlace(&probs_buf_, 0, num_actions());
  ++forward_passes_;
  return &values;
}

PolicyStep FlatPolicy::StepFromRow(const double* probs, double value,
                                   Rng* rng) const {
  const int n = static_cast<int>(actions_.size());
  int index = 0;
  if (rng == nullptr) {
    for (int i = 1; i < n; ++i) {
      if (probs[i] > probs[index]) index = i;
    }
  } else {
    double target = rng->NextDouble();
    double acc = 0.0;
    index = n - 1;
    for (int i = 0; i < n; ++i) {
      acc += probs[i];
      if (target < acc) {
        index = i;
        break;
      }
    }
  }

  double entropy = 0.0;
  for (int i = 0; i < n; ++i) {
    if (probs[i] > 0.0) entropy -= probs[i] * SafeLog(probs[i]);
  }

  PolicyStep step;
  step.action = actions_[static_cast<size_t>(index)];
  step.log_prob = SafeLog(probs[index]);
  step.entropy = entropy;
  step.value = value;
  return step;
}

PolicyStep FlatPolicy::MakeStep(const std::vector<double>& observation,
                                Rng* rng) {
  Matrix obs = Matrix::FromRow(observation);
  const Matrix* values = ForwardGraph(obs);
  return StepFromRow(probs_buf_.RowPtr(0), (*values)(0, 0), rng);
}

PolicyStep FlatPolicy::Act(const std::vector<double>& observation, Rng* rng) {
  return MakeStep(observation, rng);
}

PolicyStep FlatPolicy::ActGreedy(const std::vector<double>& observation) {
  return MakeStep(observation, /*rng=*/nullptr);
}

std::vector<PolicyStep> FlatPolicy::ActBatch(const Matrix& observations,
                                             Rng* rng) {
  // One forward pass for every actor; rows are sampled in order, each
  // consuming `rng` exactly as a per-sample Act would (bit-identical).
  const Matrix* values = ForwardGraph(observations);
  std::vector<PolicyStep> steps;
  steps.reserve(static_cast<size_t>(observations.rows()));
  for (int r = 0; r < observations.rows(); ++r) {
    steps.push_back(StepFromRow(probs_buf_.RowPtr(r), (*values)(r, 0), rng));
  }
  return steps;
}

std::vector<PolicyStep> FlatPolicy::ActBatch(const Matrix& observations,
                                             const std::vector<Rng*>& rngs) {
  ATENA_CHECK(static_cast<int>(rngs.size()) == observations.rows())
      << "ActBatch needs one Rng slot per observation row ("
      << rngs.size() << " vs " << observations.rows() << ")";
  // One forward pass; each row samples from its own stream (null = greedy),
  // so a row's step is independent of the batch composition (src/serve/).
  const Matrix* values = ForwardGraph(observations);
  std::vector<PolicyStep> steps;
  steps.reserve(static_cast<size_t>(observations.rows()));
  for (int r = 0; r < observations.rows(); ++r) {
    steps.push_back(StepFromRow(probs_buf_.RowPtr(r), (*values)(r, 0),
                                rngs[static_cast<size_t>(r)]));
    // Per the overload's contract, entropy is not part of the result.
    steps.back().entropy = 0.0;
  }
  return steps;
}

BatchEvaluation FlatPolicy::ForwardBatch(
    const Matrix& observations, const std::vector<ActionRecord>& actions) {
  const int batch = observations.rows();
  const Matrix* values = ForwardGraph(observations);

  batch_probs_.clear();
  batch_probs_.reserve(static_cast<size_t>(batch));
  batch_indices_.clear();
  batch_indices_.reserve(static_cast<size_t>(batch));
  batch_size_ = batch;

  BatchEvaluation eval;
  eval.log_probs.resize(static_cast<size_t>(batch));
  eval.entropies.resize(static_cast<size_t>(batch));
  eval.values.resize(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    const double* probs = probs_buf_.RowPtr(b);
    const int index = actions[static_cast<size_t>(b)].flat_index;
    ATENA_CHECK(index >= 0 && index < num_actions())
        << "flat policy evaluated with a foreign action";
    double entropy = 0.0;
    for (int i = 0; i < num_actions(); ++i) {
      if (probs[i] > 0.0) entropy -= probs[i] * SafeLog(probs[i]);
    }
    eval.log_probs[static_cast<size_t>(b)] = SafeLog(probs[index]);
    eval.entropies[static_cast<size_t>(b)] = entropy;
    eval.values[static_cast<size_t>(b)] = (*values)(b, 0);
    batch_probs_.emplace_back(probs, probs + num_actions());
    batch_indices_.push_back(index);
  }
  return eval;
}

void FlatPolicy::BackwardBatch(const std::vector<SampleGrad>& grads) {
  ATENA_CHECK(static_cast<int>(grads.size()) == batch_size_)
      << "BackwardBatch called with mismatched batch";
  Matrix dlogits(batch_size_, num_actions());
  Matrix dvalues(batch_size_, 1);
  for (int b = 0; b < batch_size_; ++b) {
    const SampleGrad& g = grads[static_cast<size_t>(b)];
    const auto& probs = batch_probs_[static_cast<size_t>(b)];
    const int chosen = batch_indices_[static_cast<size_t>(b)];
    double* drow = dlogits.RowPtr(b);
    dvalues(b, 0) = g.d_value;

    double entropy = 0.0;
    if (g.d_entropy != 0.0) {
      for (double p : probs) {
        if (p > 0.0) entropy -= p * SafeLog(p);
      }
    }
    for (int j = 0; j < num_actions(); ++j) {
      const double p = probs[static_cast<size_t>(j)];
      const double indicator = (j == chosen) ? 1.0 : 0.0;
      drow[j] = g.d_log_prob * (indicator - p);
      if (g.d_entropy != 0.0) {
        drow[j] += g.d_entropy * (-p * (SafeLog(p) + entropy));
      }
    }
  }
  Matrix grad_h = policy_head_->Backward(dlogits, &ws_);
  AxpyInPlace(&grad_h, value_head_->Backward(dvalues, &ws_), 1.0);
  trunk_->Backward(grad_h, &ws_);
}

std::vector<Parameter*> FlatPolicy::Parameters() { return store_.All(); }

void FlatPolicy::PrepareForServing() {
  trunk_->PrepareForServing();
  policy_head_->PrepareForServing();
  value_head_->PrepareForServing();
}

}  // namespace atena
