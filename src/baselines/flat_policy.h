#ifndef ATENA_BASELINES_FLAT_POLICY_H_
#define ATENA_BASELINES_FLAT_POLICY_H_

#include <memory>
#include <vector>

#include "rl/policy.h"

namespace atena {

/// Off-the-shelf DRL actor (paper baselines 4A/4B): a standard architecture
/// whose output layer has one softmax node per *distinct* flattened action.
///
///  * TermMode::kExplicitTokens — OTS-DRL: filter terms are the ten most
///    common tokens of each column (paper footnote 2), so every filter
///    action is fully concrete.
///  * TermMode::kFrequencyBins  — OTS-DRL-B: the same flat layout but the
///    term dimension uses ATENA's frequency bins instead of tokens.
///
/// Shares the trunk/value-head structure with TwofoldPolicy; only the
/// output layer differs — which is exactly the paper's ablation of the
/// twofold architecture. Like TwofoldPolicy, all learnable tensors live in
/// a ParameterStore, the layer graph is stateless, and ActBatch serves any
/// number of actors with a single forward pass.
class FlatPolicy final : public Policy {
 public:
  enum class TermMode { kExplicitTokens, kFrequencyBins };

  struct Options {
    TermMode term_mode = TermMode::kExplicitTokens;
    int tokens_per_column = 10;
    std::vector<int> hidden = {64, 64};
    uint64_t seed = 29;
  };

  /// Enumerates the flat action table from `env`'s dataset (tokens are
  /// taken over the full table, as restricting terms is what makes the
  /// flat layout feasible at all).
  FlatPolicy(const EdaEnvironment& env, Options options);

  int num_actions() const { return static_cast<int>(actions_.size()); }

  PolicyStep Act(const std::vector<double>& observation, Rng* rng) override;
  PolicyStep ActGreedy(const std::vector<double>& observation) override;
  std::vector<PolicyStep> ActBatch(const Matrix& observations,
                                   Rng* rng) override;
  std::vector<PolicyStep> ActBatch(const Matrix& observations,
                                   const std::vector<Rng*>& rngs) override;
  BatchEvaluation ForwardBatch(
      const Matrix& observations,
      const std::vector<ActionRecord>& actions) override;
  void BackwardBatch(const std::vector<SampleGrad>& grads) override;
  std::vector<Parameter*> Parameters() override;
  void PrepareForServing() override;

  /// All learnable tensors of the policy (for checkpointing).
  const ParameterStore& parameter_store() const { return store_; }

  /// Number of full network forward passes so far (a batched pass counts
  /// once). See TwofoldPolicy::forward_passes.
  int64_t forward_passes() const { return forward_passes_; }

 private:
  /// Runs trunk + both heads through the internal workspace and softmaxes
  /// the logits into `probs_buf_` (workspace outputs are read-only, so the
  /// softmax works on a copy). Returns the critic values (aliasing
  /// workspace storage).
  const Matrix* ForwardGraph(const Matrix& observations);

  /// Samples (argmaxes when `rng` is null) one step from a probability row.
  PolicyStep StepFromRow(const double* probs, double value, Rng* rng) const;

  PolicyStep MakeStep(const std::vector<double>& observation, Rng* rng);
  void BuildActionTable(const EdaEnvironment& env);

  Options options_;
  std::vector<ActionRecord> actions_;

  ParameterStore store_;
  std::unique_ptr<Sequential> trunk_;
  std::unique_ptr<Dense> policy_head_;
  std::unique_ptr<Dense> value_head_;
  Workspace ws_;
  Matrix probs_buf_;
  int64_t forward_passes_ = 0;

  // ForwardBatch caches for BackwardBatch.
  std::vector<std::vector<double>> batch_probs_;
  std::vector<int> batch_indices_;
  int batch_size_ = 0;
};

}  // namespace atena

#endif  // ATENA_BASELINES_FLAT_POLICY_H_
