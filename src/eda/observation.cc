#include "eda/observation.h"

#include <algorithm>

#include "common/math_utils.h"
#include "dataframe/stats.h"

namespace atena {

ObservationEncoder::ObservationEncoder(TablePtr table, int history)
    : table_(std::move(table)),
      history_(history),
      display_dim_(4 * table_->num_columns() + 3) {}

std::vector<double> ObservationEncoder::EncodeDisplay(
    const Display& display) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(display_dim_));
  const double table_rows = static_cast<double>(table_->num_rows());
  const double selection = static_cast<double>(display.rows.size());

  for (int c = 0; c < table_->num_columns(); ++c) {
    ColumnStats stats = ComputeColumnStats(*table_->column(c), display.rows);
    out.push_back(stats.normalized_entropy);
    out.push_back(Log1pNormalize(static_cast<double>(stats.distinct),
                                 table_rows));
    out.push_back(selection > 0
                      ? static_cast<double>(stats.nulls) / selection
                      : 0.0);
    bool involved = std::find(display.group_columns.begin(),
                              display.group_columns.end(),
                              c) != display.group_columns.end() ||
                    (display.is_grouped() && display.agg != AggFunc::kCount &&
                     display.agg_column == c);
    out.push_back(involved ? 1.0 : 0.0);
  }

  if (display.grouped) {
    const auto sizes = display.grouped->GroupSizes();
    MeanVar mv = ComputeMeanVar(sizes);
    out.push_back(Log1pNormalize(static_cast<double>(sizes.size()),
                                 table_rows));
    out.push_back(table_rows > 0 ? Clamp(mv.mean / table_rows, 0.0, 1.0)
                                 : 0.0);
    out.push_back(Log1pNormalize(mv.variance, table_rows * table_rows));
  } else {
    out.push_back(0.0);
    out.push_back(0.0);
    out.push_back(0.0);
  }
  return out;
}

std::vector<double> ObservationEncoder::EncodeObservation(
    const std::vector<std::vector<double>>& display_vectors) const {
  std::vector<double> out(static_cast<size_t>(observation_dim()), 0.0);
  // Slot 0 = current display, slot 1 = previous, ... (paper: d̂_t ++ d̂_{t-1}
  // ++ d̂_{t-2}, zeros where history does not exist yet).
  const int available = static_cast<int>(display_vectors.size());
  for (int slot = 0; slot < history_ && slot < available; ++slot) {
    const auto& vec = display_vectors[static_cast<size_t>(available - 1 - slot)];
    std::copy(vec.begin(), vec.end(),
              out.begin() + static_cast<long>(slot) * display_dim_);
  }
  return out;
}

}  // namespace atena
