#ifndef ATENA_EDA_ENVIRONMENT_H_
#define ATENA_EDA_ENVIRONMENT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"
#include "eda/display.h"
#include "eda/display_cache.h"
#include "eda/observation.h"
#include "eda/operation.h"
#include "eda/reward_interface.h"
#include "index/vector_index.h"

namespace atena {

/// Environment hyper-parameters.
struct EnvConfig {
  /// Episode length N: number of EDA operations per generated notebook.
  int episode_length = 12;
  /// Number of logarithmic frequency bins B for the filter term parameter.
  int num_term_bins = 8;
  /// How many recent displays one observation concatenates.
  int history_displays = 3;
  /// Maximum grouped attributes (the coherency rules call a deeper grouping
  /// incoherent; the environment hard-caps it).
  int max_group_attrs = 4;
  /// Row cap for per-display statistics: selections larger than this are
  /// stride-sampled when computing observation features and reward
  /// histograms, bounding step cost on large datasets. 0 disables.
  int stats_row_cap = 4096;
  /// Penalty returned for invalid (no-op) actions when a reward signal is
  /// attached; also returned when no signal is attached.
  double invalid_action_penalty = -1.0;
  uint64_t seed = 7;
  /// Display-execution memoization cache (see display_cache.h). Disabled
  /// caches recompute everything; results are bit-identical either way.
  bool display_cache_enabled = true;
  /// Maximum resident cache entries (row sets, grouped results, token
  /// lists, encoded vectors) before LRU eviction.
  size_t display_cache_capacity = size_t{1} << 16;
  /// Byte budget for resident cache values (estimated at insert), 0 =
  /// unbounded. Bounds memory at scaled datasets where a single row set is
  /// megabytes and the entry cap alone would admit gigabytes.
  size_t display_cache_max_bytes = size_t{256} << 20;
  int display_cache_shards = 8;
  /// Incremental vector index over display_vectors() (DESIGN.md §14),
  /// which the diversity reward routes its min-distance query through.
  /// Results are bit-identical with the index on or off; only the cost of
  /// long sessions changes (sub-linear vs linear per step).
  bool diversity_index_enabled = true;
  /// History length at which the index activates. Below it the scalar
  /// scan is used — training episodes (~12 steps) never pay index
  /// maintenance; long serving sessions cross it once and stay indexed.
  int diversity_index_threshold = 64;
};

/// Sizes of the parameterized action space. Segment order is the canonical
/// layout used by the twofold network and the flat baselines:
/// [op_type, filter_column, filter_op, filter_bin, group_column, agg_func,
///  agg_column].
struct ActionSpace {
  int num_op_types = kNumOpTypes;
  int num_columns = 0;
  int num_filter_ops = kNumCompareOps;
  int num_term_bins = 0;
  int num_agg_funcs = kNumAggFuncs;

  std::vector<int> SegmentSizes() const;
  int TotalParameterNodes() const;  // pre-output layer width (paper §5)
  /// Count of distinct flattened actions when filter terms are drawn from
  /// `terms_per_column` explicit tokens (the OTS-DRL baseline layout) or
  /// from the frequency bins when `terms_per_column` == 0 (OTS-DRL-B).
  int64_t FlatActionCount(int terms_per_column) const;
};

/// A structured action: the operation type plus an index for every
/// parameter segment (indices for segments not used by `type` are ignored).
struct EnvAction {
  OpType type = OpType::kBack;
  int filter_column = 0;
  int filter_op = 0;
  int filter_bin = 0;
  int group_column = 0;
  int agg_func = 0;
  int agg_column = 0;
};

/// Everything produced by one environment step.
struct StepOutcome {
  std::vector<double> observation;
  double reward = 0.0;
  bool done = false;
  bool valid = true;
  EdaOperation op;  // the concrete executed operation (term resolved)
};

/// One executed step kept in the session log.
struct EdaStep {
  EdaOperation op;
  bool valid = true;
  double reward = 0.0;
};

/// The episodic EDA environment (paper §4.1): a dataset plus the display
/// stack, observation encoding, term binning and step dynamics. Invalid
/// parameter combinations are handled in the Pandas-like spirit of the
/// paper's environment: type-incompatible filter operators fall back to
/// equality; non-numeric aggregation targets fall back to COUNT; truly
/// impossible actions (BACK at the root, empty filter results, duplicate
/// group attributes) are penalized no-ops.
class EdaEnvironment {
 public:
  EdaEnvironment(Dataset dataset, EnvConfig config);

  EdaEnvironment(const EdaEnvironment&) = delete;
  EdaEnvironment& operator=(const EdaEnvironment&) = delete;

  const Dataset& dataset() const { return dataset_; }
  const Table& table() const { return *dataset_.table; }
  const EnvConfig& config() const { return config_; }
  const ActionSpace& action_space() const { return action_space_; }
  const ObservationEncoder& encoder() const { return encoder_; }
  int observation_dim() const { return encoder_.observation_dim(); }

  /// Attaches the reward signal (non-owning; may be null, in which case
  /// rewards are 0 / the invalid penalty).
  void SetRewardSignal(RewardSignal* reward) { reward_ = reward; }

  /// Starts a new episode; returns the initial observation (root display).
  std::vector<double> Reset();

  /// Checks every index of `action` against the action space (the op type,
  /// and the parameter segments the type actually uses) without resolving
  /// or executing anything — consumes no randomness. OutOfRange names the
  /// offending segment and bound.
  Status ValidateAction(const EnvAction& action) const;

  /// Non-OK when the environment cannot accept another step — stepping a
  /// finished episode (the caller must Reset first). Input-dependent for
  /// external drivers (a serving scheduler fed by remote session state),
  /// so it is a recoverable Status, not a fatal check.
  Status CheckReadyToStep() const;

  /// Resolves `action` into a concrete operation (sampling a filter term
  /// from the chosen frequency bin) and executes it. A malformed action
  /// (ValidateAction non-OK) is not resolved at all: it takes the
  /// penalized no-op path — recorded as an invalid BACK, reward
  /// config().invalid_action_penalty — and consumes no randomness, so a
  /// buggy or adversarial action id can never crash an episode or shift
  /// the Rng stream.
  ///
  /// The Try variants return CheckReadyToStep's error instead of aborting
  /// and leave the environment untouched on failure — the recoverable
  /// entry points the serving runtime quarantines on. Step/StepOperation
  /// keep the fatal contract for the training loop, where an
  /// out-of-contract call is a programmer error.
  Result<StepOutcome> TryStep(const EnvAction& action);
  StepOutcome Step(const EnvAction& action);

  /// Executes an explicit concrete operation (used by gold notebooks,
  /// traces replay and the greedy baselines).
  Result<StepOutcome> TryStepOperation(const EdaOperation& op);
  StepOutcome StepOperation(const EdaOperation& op);

  bool done() const { return step_count_ >= config_.episode_length; }
  int step_count() const { return step_count_; }

  /// Chronological displays d_0..d_t (d_0 = root; one entry per step after
  /// that, including no-op steps which repeat their predecessor).
  const std::vector<Display>& display_history() const { return history_; }
  /// Encoded vectors d̂_0..d̂_t matching display_history().
  const std::vector<std::vector<double>>& display_vectors() const {
    return display_vectors_;
  }
  /// The incremental index over display_vectors() (ids = positions), or
  /// null when it is not active: disabled by config, or the history is
  /// still below diversity_index_threshold. When non-null it covers the
  /// history exactly — callers may query without further sync checks.
  const VectorIndex* display_index() const;
  const std::vector<EdaStep>& steps() const { return steps_; }
  const Display& current_display() const { return stack_.back(); }
  /// The display the current one was derived from (d_{t-1}); the root
  /// display when no history exists.
  const Display& previous_display() const;

  /// Resolves a structured action into a concrete operation without
  /// executing it (samples the filter term; applies the fallback rules).
  EdaOperation ResolveAction(const EnvAction& action);

  /// Enumerates concrete candidate operations at the current display for
  /// greedy baselines: every (column, operator) filter with the
  /// `tokens_per_column` most frequent tokens, every group-by/aggregation
  /// combination, and BACK.
  std::vector<EdaOperation> EnumerateOperations(int tokens_per_column) const;

  /// Stride-sampled view of `rows` respecting config().stats_row_cap.
  std::vector<int32_t> CapRows(const std::vector<int32_t>& rows) const;

  /// Cached, zero-copy variant of CapRows for a display: a selection within
  /// the cap is returned as-is (shared storage), larger selections are
  /// stride-sampled once and memoized under the display's row signature.
  RowSet CappedRows(const Display& display) const;

  /// The display-execution cache; null when disabled by config. All actors
  /// of a ParallelPpoTrainer share one instance.
  const std::shared_ptr<DisplayCache>& display_cache() const {
    return cache_;
  }
  /// Replaces the cache (pass null to disable). Sharing one cache across
  /// environments of the same dataset/config is safe and deterministic:
  /// keys are canonical operation-path signatures and values are exact
  /// kernel outputs.
  void SetDisplayCache(std::shared_ptr<DisplayCache> cache) {
    cache_ = std::move(cache);
  }

  /// Distinct-value ratio of each column over the full table (distinct
  /// non-null values / rows), computed once. Reward functions and
  /// coherency rules use it to tell key-like/continuous columns (ratio
  /// near 1) from categorical ones.
  const std::vector<double>& column_distinct_ratios() const {
    return distinct_ratios_;
  }

  /// Opaque saved session state for speculative evaluation (greedy
  /// baselines try every candidate operation, then roll back).
  struct Snapshot {
    std::vector<Display> stack;
    std::vector<Display> history;
    std::vector<std::vector<double>> display_vectors;
    std::vector<EdaStep> steps;
    int step_count = 0;
  };
  Snapshot SaveSnapshot() const;
  void RestoreSnapshot(const Snapshot& snapshot);

  /// The environment's private Rng stream (filter-term bin sampling).
  /// Training checkpoints capture it at update boundaries and restore it
  /// after replaying the in-flight episode, so a resumed run samples
  /// exactly the terms the uninterrupted run would have (rl/checkpoint.h).
  RngState rng_state() const { return rng_.state(); }
  void set_rng_state(const RngState& state) { rng_.set_state(state); }

 private:
  StepOutcome FinishStep(EdaOperation op, bool valid, bool pushed);
  /// Applies `op` to the current display; returns false for no-op actions.
  bool ApplyOperation(const EdaOperation& op);
  /// Token-frequency list of `column` over the current display's capped
  /// rows, memoized per (row signature, column).
  std::shared_ptr<const std::vector<TokenFreq>> CurrentTokenFrequencies(
      int column) const;
  /// Grouped result of `spec` over `rows`, memoized under `rows_signature`.
  /// Null when grouping fails (status logged at debug level).
  std::shared_ptr<const GroupedResult> CachedGroupAggregate(
      uint64_t rows_signature, const RowSet& rows, const GroupSpec& spec);
  /// Encoded observation vector of `display`, memoized by display key.
  std::vector<double> EncodeDisplayCached(const Display& display);
  /// Catches display_index_ up to display_vectors_ (no-op until the
  /// history reaches diversity_index_threshold; then inserts the backlog
  /// and stays incremental, one insert per step).
  void SyncDisplayIndex();

  Dataset dataset_;
  EnvConfig config_;
  ActionSpace action_space_;
  ObservationEncoder encoder_;
  Rng rng_;
  RewardSignal* reward_ = nullptr;
  std::shared_ptr<DisplayCache> cache_;
  /// Shared root selection [0, num_rows), reused by every Reset.
  RowSet all_rows_;
  uint64_t root_signature_ = 0;

  std::vector<double> distinct_ratios_;
  std::vector<Display> stack_;
  std::vector<Display> history_;
  std::vector<std::vector<double>> display_vectors_;
  std::vector<EdaStep> steps_;
  int step_count_ = 0;
  /// Incremental index mirroring display_vectors_[0, indexed_upto_).
  /// indexed_upto_ stays 0 (index dormant) until the activation
  /// threshold; snapshots do not capture the index — RestoreSnapshot
  /// rebuilds it from the restored history.
  VectorIndex display_index_;
  size_t indexed_upto_ = 0;
};

/// Uniformly random structured action over `space` (used for warmup
/// corpora and as an exploration fallback).
EnvAction SampleRandomAction(const ActionSpace& space, Rng* rng);

}  // namespace atena

#endif  // ATENA_EDA_ENVIRONMENT_H_
