#include "eda/display.h"

namespace atena {

GroupSpec Display::MakeGroupSpec() const {
  GroupSpec spec;
  spec.group_columns = group_columns;
  spec.agg = agg;
  spec.agg_column = agg_column;
  return spec;
}

std::vector<double> Display::AggregateValues() const {
  std::vector<double> out;
  if (!grouped) return out;
  out.reserve(grouped->groups.size());
  for (const auto& g : grouped->groups) {
    if (g.agg_valid) out.push_back(g.aggregate);
  }
  return out;
}

}  // namespace atena
