#include "eda/display.h"

namespace atena {

std::vector<double> Display::AggregateValues() const {
  std::vector<double> out;
  if (!grouped) return out;
  out.reserve(grouped->groups.size());
  for (const auto& g : grouped->groups) {
    if (g.agg_valid) out.push_back(g.aggregate);
  }
  return out;
}

}  // namespace atena
