#ifndef ATENA_EDA_BINNING_H_
#define ATENA_EDA_BINNING_H_

#include <vector>

#include "common/random.h"
#include "dataframe/stats.h"

namespace atena {

/// Logarithmic frequency binning of filter terms (paper §5).
///
/// Instead of one network output per dataset token, the agent picks one of
/// `num_bins` frequency ranges; a concrete token whose frequency falls in
/// that range is then sampled uniformly at random. Bin 0 holds the most
/// frequent tokens; each subsequent bin halves the frequency ceiling
/// (log-base-2 ranges, following the Zipfian token-frequency assumption via
/// logarithmic binning [31]). The last bin absorbs everything rarer.
class TermBinning {
 public:
  /// Builds the binning over a column's token frequency list (as produced
  /// by TokenFrequencies: sorted by descending count).
  TermBinning(const std::vector<TokenFreq>& tokens, int num_bins);

  int num_bins() const { return num_bins_; }

  /// Tokens (indices into the original list) assigned to `bin`.
  const std::vector<int>& BinMembers(int bin) const { return bins_[bin]; }

  /// True when `bin` holds at least one token.
  bool BinNonEmpty(int bin) const { return !bins_[bin].empty(); }

  /// Samples a token index for `bin`. When the requested bin is empty the
  /// nearest non-empty bin is used (so every bin choice maps to a concrete
  /// token as long as the column has any token). Returns -1 only when the
  /// column has no tokens at all.
  int SampleToken(int bin, Rng* rng) const;

 private:
  int num_bins_;
  std::vector<std::vector<int>> bins_;
};

}  // namespace atena

#endif  // ATENA_EDA_BINNING_H_
