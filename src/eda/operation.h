#ifndef ATENA_EDA_OPERATION_H_
#define ATENA_EDA_OPERATION_H_

#include <string>

#include "dataframe/ops.h"
#include "dataframe/table.h"

namespace atena {

/// EDA operation types (paper §4.1).
enum class OpType { kFilter, kGroup, kBack };
const char* OpTypeName(OpType type);
constexpr int kNumOpTypes = 3;

/// Concrete parameters of a FILTER(attr, op, term) operation. `term_bin`
/// records which frequency bin the term was sampled from (-1 when the term
/// was given explicitly, e.g. in gold-standard notebooks).
struct FilterParams {
  int column = -1;
  CompareOp op = CompareOp::kEq;
  Value term;
  int term_bin = -1;
};

/// Concrete parameters of a GROUP(g_attr, agg_func, agg_attr) operation.
/// `agg_column` is ignored when `agg == kCount`.
struct GroupParams {
  int group_column = -1;
  AggFunc agg = AggFunc::kCount;
  int agg_column = -1;
};

/// One concrete EDA operation as executed in a session.
struct EdaOperation {
  OpType type = OpType::kBack;
  FilterParams filter;  // meaningful iff type == kFilter
  GroupParams group;    // meaningful iff type == kGroup

  static EdaOperation Filter(int column, CompareOp op, Value term,
                             int term_bin = -1);
  static EdaOperation Group(int group_column, AggFunc agg, int agg_column);
  static EdaOperation Back();

  /// Human-readable description as shown in the notebook, e.g.
  /// "FILTER month == 'June'" or "GROUP-BY origin_airport, AVG(departure_delay)".
  std::string Describe(const Table& table) const;
};

}  // namespace atena

#endif  // ATENA_EDA_OPERATION_H_
