#include "eda/environment.h"

#include <algorithm>

#include "common/logging.h"
#include "dataframe/stats.h"
#include "eda/binning.h"

namespace atena {

std::vector<int> ActionSpace::SegmentSizes() const {
  return {num_op_types, num_columns,   num_filter_ops, num_term_bins,
          num_columns,  num_agg_funcs, num_columns};
}

int ActionSpace::TotalParameterNodes() const {
  int total = 0;
  for (int s : SegmentSizes()) total += s;
  return total;
}

int64_t ActionSpace::FlatActionCount(int terms_per_column) const {
  const int64_t cols = num_columns;
  const int64_t terms = terms_per_column > 0 ? terms_per_column : num_term_bins;
  const int64_t filters = cols * num_filter_ops * terms;
  const int64_t groups = cols * num_agg_funcs * cols;
  return filters + groups + 1;  // + BACK
}

EdaEnvironment::EdaEnvironment(Dataset dataset, EnvConfig config)
    : dataset_(std::move(dataset)),
      config_(config),
      encoder_(dataset_.table, config.history_displays),
      rng_(config.seed) {
  action_space_.num_columns = dataset_.table->num_columns();
  action_space_.num_term_bins = config_.num_term_bins;
  if (config_.display_cache_enabled && config_.display_cache_capacity > 0) {
    DisplayCache::Options options;
    options.capacity = config_.display_cache_capacity;
    options.max_bytes = config_.display_cache_max_bytes;
    options.shards = config_.display_cache_shards;
    cache_ = std::make_shared<DisplayCache>(options);
  }
  // The constructor cannot propagate a Status; generator/CSV tables are far
  // below the int32 row-id bound, so an overflow here is a programmer error
  // and value() aborting is the right behavior.
  all_rows_ = AllRows(*dataset_.table).value();
  root_signature_ = RootRowsSignature(*dataset_.table);
  distinct_ratios_.reserve(static_cast<size_t>(table().num_columns()));
  for (int c = 0; c < table().num_columns(); ++c) {
    ColumnStats stats = ComputeColumnStats(*table().column(c), all_rows_);
    distinct_ratios_.push_back(
        table().num_rows() > 0
            ? static_cast<double>(stats.distinct) /
                  static_cast<double>(table().num_rows())
            : 0.0);
  }
  Reset();
}

const Display& EdaEnvironment::previous_display() const {
  if (history_.size() >= 2) return history_[history_.size() - 2];
  return history_.front();
}

std::vector<int32_t> EdaEnvironment::CapRows(
    const std::vector<int32_t>& rows) const {
  const int cap = config_.stats_row_cap;
  if (cap <= 0 || static_cast<int>(rows.size()) <= cap) return rows;
  // Deterministic stride sample preserving order.
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(cap));
  const double stride =
      static_cast<double>(rows.size()) / static_cast<double>(cap);
  for (int i = 0; i < cap; ++i) {
    out.push_back(rows[static_cast<size_t>(i * stride)]);
  }
  return out;
}

RowSet EdaEnvironment::CappedRows(const Display& display) const {
  const int cap = config_.stats_row_cap;
  if (cap <= 0 || static_cast<int>(display.rows.size()) <= cap) {
    return display.rows;  // shared storage, no copy
  }
  const uint64_t key = CappedRowsKey(display.rows_signature, cap);
  if (cache_) {
    if (auto hit = cache_->GetRows(key)) return RowSet(std::move(hit));
  }
  RowSet capped(CapRows(display.rows));
  if (cache_) cache_->PutRows(key, capped.storage());
  return capped;
}

std::vector<double> EdaEnvironment::Reset() {
  stack_.clear();
  history_.clear();
  display_vectors_.clear();
  steps_.clear();
  step_count_ = 0;
  display_index_.Clear();
  indexed_upto_ = 0;

  Display root;
  root.rows = all_rows_;
  root.rows_signature = root_signature_;
  stack_.push_back(root);
  history_.push_back(root);

  display_vectors_.push_back(EncodeDisplayCached(root));
  return encoder_.EncodeObservation(display_vectors_);
}

EdaOperation EdaEnvironment::ResolveAction(const EnvAction& action) {
  switch (action.type) {
    case OpType::kBack:
      return EdaOperation::Back();
    case OpType::kGroup: {
      AggFunc agg = static_cast<AggFunc>(action.agg_func);
      int agg_column = action.agg_column;
      // Non-numeric aggregation target falls back to COUNT.
      if (agg != AggFunc::kCount) {
        DataType t = table().column(agg_column)->type();
        if (t == DataType::kString) {
          agg = AggFunc::kCount;
          agg_column = -1;
        }
      } else {
        agg_column = -1;
      }
      return EdaOperation::Group(action.group_column, agg, agg_column);
    }
    case OpType::kFilter: {
      int column = action.filter_column;
      CompareOp op = static_cast<CompareOp>(action.filter_op);
      const Column& col = *table().column(column);
      // Type-incompatible operators fall back to equality.
      const bool string_col = col.type() == DataType::kString;
      const bool ordering = op == CompareOp::kGt || op == CompareOp::kGe ||
                            op == CompareOp::kLt || op == CompareOp::kLe;
      const bool substring = op == CompareOp::kContains ||
                             op == CompareOp::kStartsWith ||
                             op == CompareOp::kEndsWith;
      if ((string_col && ordering) || (!string_col && substring)) {
        op = CompareOp::kEq;
      }
      // Sample a concrete token for the chosen frequency bin over the
      // current display's rows (paper §5). The token list is memoized per
      // (display row set, column); only the bin sampling consumes rng_.
      auto tokens = CurrentTokenFrequencies(column);
      TermBinning binning(*tokens, config_.num_term_bins);
      int token_index = binning.SampleToken(action.filter_bin, &rng_);
      Value term = token_index >= 0
                       ? (*tokens)[static_cast<size_t>(token_index)].token
                       : Value::Null();
      return EdaOperation::Filter(column, op, std::move(term),
                                  action.filter_bin);
    }
  }
  return EdaOperation::Back();
}

bool EdaEnvironment::ApplyOperation(const EdaOperation& op) {
  const Display& current = stack_.back();
  switch (op.type) {
    case OpType::kBack: {
      if (stack_.size() <= 1) return false;
      stack_.pop_back();
      return true;
    }
    case OpType::kGroup: {
      const GroupParams& p = op.group;
      if (p.group_column < 0 || p.group_column >= table().num_columns()) {
        return false;
      }
      if (std::find(current.group_columns.begin(),
                    current.group_columns.end(),
                    p.group_column) != current.group_columns.end()) {
        return false;  // already grouped by this attribute
      }
      if (static_cast<int>(current.group_columns.size()) >=
          config_.max_group_attrs) {
        return false;
      }
      Display next = current;
      next.group_columns.push_back(p.group_column);
      next.agg = p.agg;
      next.agg_column = p.agg_column;
      auto grouped = CachedGroupAggregate(next.rows_signature, next.rows,
                                          next.MakeGroupSpec());
      if (!grouped) return false;
      next.grouped = std::move(grouped);
      stack_.push_back(std::move(next));
      return true;
    }
    case OpType::kFilter: {
      const FilterParams& p = op.filter;
      if (p.column < 0 || p.column >= table().num_columns()) return false;
      if (p.term.is_null()) return false;  // column had no tokens
      FilterPred pred{p.column, p.op, p.term};
      const uint64_t child_signature =
          FilterChildSignature(current.rows_signature, pred);
      RowSet::Storage filtered_rows;
      if (cache_) filtered_rows = cache_->GetRows(child_signature);
      if (!filtered_rows) {
        auto filtered = FilterRows(table(), current.rows, p.column, p.op,
                                   p.term);
        if (!filtered.ok()) {
          ATENA_LOG(kDebug) << "filter failed: " << filtered.status();
          return false;
        }
        filtered_rows = std::make_shared<const std::vector<int32_t>>(
            std::move(filtered).value());
        if (cache_) cache_->PutRows(child_signature, filtered_rows);
      }
      if (filtered_rows->empty()) return false;  // empty result display
      // Re-applying a predicate that is already part of the display is a
      // no-op (a fresh predicate that happens to keep every row is fine —
      // experts use such filters to confirm a hypothesis).
      for (const FilterPred& existing : current.filters) {
        if (existing.column == p.column && existing.op == p.op &&
            existing.term == p.term) {
          return false;
        }
      }
      Display next = current;
      next.filters.push_back(std::move(pred));
      next.rows = RowSet(std::move(filtered_rows));
      next.rows_signature = child_signature;
      if (next.is_grouped()) {
        auto grouped = CachedGroupAggregate(next.rows_signature, next.rows,
                                            next.MakeGroupSpec());
        if (!grouped) return false;
        next.grouped = std::move(grouped);
      }
      stack_.push_back(std::move(next));
      return true;
    }
  }
  return false;
}

StepOutcome EdaEnvironment::FinishStep(EdaOperation op, bool valid,
                                       bool /*pushed*/) {
  ++step_count_;
  // One history entry per step; invalid steps repeat the current display.
  // Pushes share the display's row storage (RowSet) — no row copies.
  history_.push_back(stack_.back());
  display_vectors_.push_back(EncodeDisplayCached(stack_.back()));
  // The index always mirrors the full history (once active), including
  // the display just pushed; diversity queries exclude it via id_limit.
  // External callers (eval, tests) that compute rewards after the step
  // completes therefore see the same index state the in-step reward saw.
  SyncDisplayIndex();

  // The step is pushed before the reward is computed so that reward
  // functions and labeling rules see a consistent session log in which the
  // operation being scored is steps().back().
  EdaStep step;
  step.op = op;
  step.valid = valid;
  steps_.push_back(step);

  double reward = 0.0;
  if (!valid) {
    reward = config_.invalid_action_penalty;
  } else if (reward_ != nullptr) {
    RewardContext context;
    context.env = this;
    context.op = &steps_.back().op;
    context.valid = valid;
    reward = reward_->Compute(context);
  }
  steps_.back().reward = reward;

  StepOutcome outcome;
  outcome.observation = encoder_.EncodeObservation(display_vectors_);
  outcome.reward = reward;
  outcome.done = done();
  outcome.valid = valid;
  outcome.op = std::move(op);
  return outcome;
}

Status EdaEnvironment::ValidateAction(const EnvAction& action) const {
  auto out_of_range = [](const char* segment, int value, int bound) {
    return Status::OutOfRange(std::string(segment) + " index " +
                              std::to_string(value) + " outside [0, " +
                              std::to_string(bound) + ")");
  };
  const int type_index = static_cast<int>(action.type);
  if (type_index < 0 || type_index >= action_space_.num_op_types) {
    return out_of_range("op type", type_index, action_space_.num_op_types);
  }
  switch (action.type) {
    case OpType::kBack:
      return Status::OK();
    case OpType::kFilter:
      if (action.filter_column < 0 ||
          action.filter_column >= action_space_.num_columns) {
        return out_of_range("filter column", action.filter_column,
                            action_space_.num_columns);
      }
      if (action.filter_op < 0 ||
          action.filter_op >= action_space_.num_filter_ops) {
        return out_of_range("filter operator", action.filter_op,
                            action_space_.num_filter_ops);
      }
      if (action.filter_bin < 0 ||
          action.filter_bin >= action_space_.num_term_bins) {
        return out_of_range("filter bin", action.filter_bin,
                            action_space_.num_term_bins);
      }
      return Status::OK();
    case OpType::kGroup:
      if (action.group_column < 0 ||
          action.group_column >= action_space_.num_columns) {
        return out_of_range("group column", action.group_column,
                            action_space_.num_columns);
      }
      if (action.agg_func < 0 ||
          action.agg_func >= action_space_.num_agg_funcs) {
        return out_of_range("agg function", action.agg_func,
                            action_space_.num_agg_funcs);
      }
      if (action.agg_column < 0 ||
          action.agg_column >= action_space_.num_columns) {
        return out_of_range("agg column", action.agg_column,
                            action_space_.num_columns);
      }
      return Status::OK();
  }
  return out_of_range("op type", type_index, action_space_.num_op_types);
}

Status EdaEnvironment::CheckReadyToStep() const {
  if (done()) {
    return Status::FailedPrecondition(
        "step on a finished episode: " + std::to_string(step_count_) + "/" +
        std::to_string(config_.episode_length) +
        " steps taken, Reset required");
  }
  return Status::OK();
}

Result<StepOutcome> EdaEnvironment::TryStep(const EnvAction& action) {
  ATENA_RETURN_IF_ERROR(CheckReadyToStep());
  // Malformed actions (out-of-range segment indices) must not reach
  // ResolveAction: it would index columns out of bounds, and its filter
  // path consumes rng_ — an invalid action may do neither. They become
  // penalized no-ops, like BACK at the root.
  Status status = ValidateAction(action);
  if (!status.ok()) {
    ATENA_LOG(kDebug) << "invalid action rejected: " << status;
    return FinishStep(EdaOperation::Back(), /*valid=*/false, false);
  }
  EdaOperation op = ResolveAction(action);
  bool valid = ApplyOperation(op);
  return FinishStep(std::move(op), valid, valid);
}

StepOutcome EdaEnvironment::Step(const EnvAction& action) {
  Result<StepOutcome> outcome = TryStep(action);
  ATENA_CHECK(outcome.ok()) << outcome.status();
  return std::move(outcome).value();
}

Result<StepOutcome> EdaEnvironment::TryStepOperation(const EdaOperation& op) {
  ATENA_RETURN_IF_ERROR(CheckReadyToStep());
  bool valid = ApplyOperation(op);
  return FinishStep(op, valid, valid);
}

StepOutcome EdaEnvironment::StepOperation(const EdaOperation& op) {
  Result<StepOutcome> outcome = TryStepOperation(op);
  ATENA_CHECK(outcome.ok()) << outcome.status();
  return std::move(outcome).value();
}

std::vector<EdaOperation> EdaEnvironment::EnumerateOperations(
    int tokens_per_column) const {
  std::vector<EdaOperation> out;

  for (int c = 0; c < table().num_columns(); ++c) {
    const Column& col = *table().column(c);
    auto tokens = CurrentTokenFrequencies(c);
    const int limit = std::min<int>(tokens_per_column,
                                    static_cast<int>(tokens->size()));
    const bool string_col = col.type() == DataType::kString;
    for (int i = 0; i < limit; ++i) {
      const Value& token = (*tokens)[static_cast<size_t>(i)].token;
      out.push_back(EdaOperation::Filter(c, CompareOp::kEq, token));
      if (string_col) {
        out.push_back(EdaOperation::Filter(c, CompareOp::kNeq, token));
      } else {
        out.push_back(EdaOperation::Filter(c, CompareOp::kGt, token));
        out.push_back(EdaOperation::Filter(c, CompareOp::kLe, token));
      }
    }
  }
  for (int g = 0; g < table().num_columns(); ++g) {
    out.push_back(EdaOperation::Group(g, AggFunc::kCount, -1));
    for (int a = 0; a < table().num_columns(); ++a) {
      if (table().column(a)->type() == DataType::kString) continue;
      for (AggFunc f : {AggFunc::kSum, AggFunc::kMin, AggFunc::kMax,
                        AggFunc::kAvg}) {
        out.push_back(EdaOperation::Group(g, f, a));
      }
    }
  }
  out.push_back(EdaOperation::Back());
  return out;
}

std::shared_ptr<const std::vector<TokenFreq>>
EdaEnvironment::CurrentTokenFrequencies(int column) const {
  const Display& current = current_display();
  const uint64_t key =
      TokenKey(current.rows_signature, column, config_.stats_row_cap);
  if (cache_) {
    if (auto hit = cache_->GetTokens(key)) return hit;
  }
  auto tokens = std::make_shared<const std::vector<TokenFreq>>(
      TokenFrequencies(*table().column(column), CappedRows(current)));
  if (cache_) cache_->PutTokens(key, tokens);
  return tokens;
}

std::shared_ptr<const GroupedResult> EdaEnvironment::CachedGroupAggregate(
    uint64_t rows_signature, const RowSet& rows, const GroupSpec& spec) {
  const uint64_t key = GroupKey(rows_signature, spec);
  if (cache_) {
    if (auto hit = cache_->GetGrouped(key)) return hit;
  }
  auto grouped = GroupAggregate(table(), rows, spec);
  if (!grouped.ok()) {
    ATENA_LOG(kDebug) << "group failed: " << grouped.status();
    return nullptr;
  }
  auto result =
      std::make_shared<const GroupedResult>(std::move(grouped).value());
  if (cache_) cache_->PutGrouped(key, result);
  return result;
}

std::vector<double> EdaEnvironment::EncodeDisplayCached(
    const Display& display) {
  const uint64_t key = DisplayVectorKey(display, config_.stats_row_cap);
  if (cache_) {
    if (auto hit = cache_->GetVector(key)) return *hit;
  }
  Display capped = display;
  capped.rows = CappedRows(display);
  std::vector<double> vec = encoder_.EncodeDisplay(capped);
  if (cache_) {
    cache_->PutVector(key, std::make_shared<const std::vector<double>>(vec));
  }
  return vec;
}

EdaEnvironment::Snapshot EdaEnvironment::SaveSnapshot() const {
  return Snapshot{stack_, history_, display_vectors_, steps_, step_count_};
}

void EdaEnvironment::RestoreSnapshot(const Snapshot& snapshot) {
  stack_ = snapshot.stack;
  history_ = snapshot.history;
  display_vectors_ = snapshot.display_vectors;
  steps_ = snapshot.steps;
  step_count_ = snapshot.step_count;
  // Snapshots do not carry the index; rebuild it from the restored
  // history. Queries only depend on the indexed vector set, not the tree
  // shape, so a rebuilt index answers identically (tests/index_test.cc).
  display_index_.Clear();
  indexed_upto_ = 0;
  SyncDisplayIndex();
}

const VectorIndex* EdaEnvironment::display_index() const {
  if (indexed_upto_ == 0) return nullptr;  // disabled or below threshold
  ATENA_CHECK(indexed_upto_ == display_vectors_.size())
      << "display index out of sync with history";
  return &display_index_;
}

void EdaEnvironment::SyncDisplayIndex() {
  if (!config_.diversity_index_enabled) return;
  if (indexed_upto_ == 0 &&
      display_vectors_.size() <
          static_cast<size_t>(config_.diversity_index_threshold)) {
    return;  // dormant: short (training-length) episodes stay scalar
  }
  while (indexed_upto_ < display_vectors_.size()) {
    display_index_.Insert(display_vectors_[indexed_upto_]);
    ++indexed_upto_;
  }
}

EnvAction SampleRandomAction(const ActionSpace& space, Rng* rng) {
  EnvAction action;
  action.type = static_cast<OpType>(rng->NextBounded(space.num_op_types));
  action.filter_column = static_cast<int>(rng->NextBounded(space.num_columns));
  action.filter_op = static_cast<int>(rng->NextBounded(space.num_filter_ops));
  action.filter_bin = static_cast<int>(rng->NextBounded(space.num_term_bins));
  action.group_column = static_cast<int>(rng->NextBounded(space.num_columns));
  action.agg_func = static_cast<int>(rng->NextBounded(space.num_agg_funcs));
  action.agg_column = static_cast<int>(rng->NextBounded(space.num_columns));
  return action;
}

}  // namespace atena
