#ifndef ATENA_EDA_REWARD_INTERFACE_H_
#define ATENA_EDA_REWARD_INTERFACE_H_

#include "eda/operation.h"

namespace atena {

class EdaEnvironment;

/// Everything a reward function may inspect about the step that just
/// executed. The environment guarantees that by the time Compute is called
/// the step's display (even for invalid no-op steps) has been appended to
/// the environment's display history.
struct RewardContext {
  const EdaEnvironment* env = nullptr;
  const EdaOperation* op = nullptr;
  /// False when the action was a no-op: empty filter result, BACK at the
  /// root display, regrouping an already-grouped attribute, etc.
  bool valid = true;
};

/// Reward-signal strategy injected into the environment (paper §4.2). The
/// compound ATENA reward, the interestingness-only ablation, and test fakes
/// all implement this.
class RewardSignal {
 public:
  virtual ~RewardSignal() = default;
  virtual double Compute(const RewardContext& context) = 0;

  /// Degraded-mode switch for serving under deadline pressure (DESIGN.md
  /// §13): when set, implementations should skip work that grows with the
  /// session history — for the compound ATENA reward that is the
  /// diversity component's O(history) min-distance scan. Default: ignore.
  virtual void SetDegradedMode(bool /*degraded*/) {}
};

}  // namespace atena

#endif  // ATENA_EDA_REWARD_INTERFACE_H_
