#include "eda/binning.h"

#include <cmath>

namespace atena {

TermBinning::TermBinning(const std::vector<TokenFreq>& tokens, int num_bins)
    : num_bins_(num_bins), bins_(static_cast<size_t>(num_bins)) {
  if (tokens.empty() || num_bins <= 0) return;
  const double max_count = static_cast<double>(tokens.front().count);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const double c = static_cast<double>(tokens[i].count);
    // Bin index = how many halvings of max_count are needed to reach c.
    int bin = 0;
    if (c > 0 && c < max_count) {
      bin = static_cast<int>(std::floor(std::log2(max_count / c)));
    }
    if (bin >= num_bins_) bin = num_bins_ - 1;
    bins_[static_cast<size_t>(bin)].push_back(static_cast<int>(i));
  }
}

int TermBinning::SampleToken(int bin, Rng* rng) const {
  if (bins_.empty()) return -1;
  if (bin < 0) bin = 0;
  if (bin >= num_bins_) bin = num_bins_ - 1;
  // Walk outward from the requested bin to the nearest non-empty one.
  for (int delta = 0; delta < num_bins_; ++delta) {
    for (int candidate : {bin - delta, bin + delta}) {
      if (candidate < 0 || candidate >= num_bins_) continue;
      const auto& members = bins_[static_cast<size_t>(candidate)];
      if (!members.empty()) {
        return members[rng->NextBounded(members.size())];
      }
    }
  }
  return -1;
}

}  // namespace atena
