#ifndef ATENA_EDA_DISPLAY_CACHE_H_
#define ATENA_EDA_DISPLAY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dataframe/ops.h"
#include "dataframe/stats.h"
#include "eda/display.h"

namespace atena {

/// Running counters of one DisplayCache (totals across all shards).
struct DisplayCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  /// Estimated heap bytes of all resident values (see Options::max_bytes).
  uint64_t resident_bytes = 0;

  double hit_rate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// A single consistent observation of a DisplayCache: the totals plus the
/// per-shard resident entry counts, all read at one instant (every shard
/// lock held simultaneously). Unlike polling stats() fields across separate
/// loads, a snapshot's hit rate and occupancy always describe the same
/// moment — what bench_serve and the serving example report.
struct DisplayCacheSnapshot {
  DisplayCacheStats totals;
  std::vector<uint64_t> shard_entries;
};

/// Thread-safe sharded LRU memoization cache for display execution.
///
/// RL training replays the same operation prefixes constantly (Boltzmann
/// exploration concentrates on few actions as the policy converges), so the
/// environment memoizes the expensive products of a step keyed by a
/// canonical 64-bit signature of the operation path (see the Signature
/// functions below): filter row sets, grouped results, per-column token
/// frequencies, capped row samples and encoded display vectors. One
/// instance is shared by all actors of ParallelPpoTrainer; each key shard
/// has its own mutex, so concurrent actors contend only within a shard.
///
/// Every cached value is an immutable shared_ptr produced by the exact
/// deterministic kernel the cache fronts, so a hit is bit-identical to a
/// recompute — caching never changes observations, rewards or notebooks.
class DisplayCache {
 public:
  struct Options {
    /// Maximum resident entries across all shards (each shard evicts LRU
    /// past capacity/shards).
    size_t capacity = size_t{1} << 16;
    /// Maximum estimated resident bytes across all shards, 0 = unbounded.
    /// Entry sizes are estimated at Put (vector payloads, group members,
    /// token strings); a shard evicts LRU until back under its share. At
    /// million-row tables a single filter row set is ~4 MB, so an entry
    /// cap alone no longer bounds memory — this does.
    size_t max_bytes = 0;
    int shards = 8;
  };

  explicit DisplayCache(Options options);

  DisplayCache(const DisplayCache&) = delete;
  DisplayCache& operator=(const DisplayCache&) = delete;

  /// Typed sections. Keys must come from the matching Signature function,
  /// which salts the operation-path hash per section.
  std::shared_ptr<const std::vector<int32_t>> GetRows(uint64_t key);
  void PutRows(uint64_t key, std::shared_ptr<const std::vector<int32_t>> rows);

  std::shared_ptr<const GroupedResult> GetGrouped(uint64_t key);
  void PutGrouped(uint64_t key, std::shared_ptr<const GroupedResult> grouped);

  std::shared_ptr<const std::vector<TokenFreq>> GetTokens(uint64_t key);
  void PutTokens(uint64_t key,
                 std::shared_ptr<const std::vector<TokenFreq>> tokens);

  std::shared_ptr<const std::vector<double>> GetVector(uint64_t key);
  void PutVector(uint64_t key, std::shared_ptr<const std::vector<double>> vec);

  void Clear();

  /// Aggregated counters. Each shard's contribution is internally
  /// consistent (read under its lock), but shards are visited one after
  /// another, so totals may mix instants under concurrent load. Exact once
  /// the writers have quiesced.
  DisplayCacheStats stats() const;

  /// One consistent observation of the whole cache: all shard locks are
  /// acquired (in index order) before anything is read, so the returned
  /// hit rate, totals and per-shard occupancy describe a single instant —
  /// no torn multi-counter reads even while other threads keep serving.
  DisplayCacheSnapshot Snapshot() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::list<uint64_t>::iterator lru_it;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<uint64_t, Entry> entries;
    /// Most-recently-used front; evictions pop the back.
    std::list<uint64_t> lru;
    // Per-shard counters, guarded by `mutex` (updated while it is already
    // held by Get/Put, so they cost no extra synchronization and a reader
    // holding the lock sees hit/miss/occupancy move together).
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t resident_bytes = 0;
  };

  Shard& ShardFor(uint64_t key) {
    return *shards_[static_cast<size_t>(key) % shards_.size()];
  }
  std::shared_ptr<const void> Get(uint64_t key);
  void Put(uint64_t key, std::shared_ptr<const void> value, size_t bytes);

  size_t per_shard_capacity_;
  size_t per_shard_max_bytes_;  // 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Canonical operation-path signatures. All are pure functions of the
/// logical operation chain (never of row contents or pointers), so every
/// actor sharing a cache derives identical keys for identical work.
///
/// The row-set signature is *commutative* over filter predicates: a chain
/// of filters selects the rows satisfying the conjunction of its predicate
/// set, independent of application order, so displays reached through
/// reordered filter paths share one cached row set.

/// Signature of the unfiltered root selection of `table`.
uint64_t RootRowsSignature(const Table& table);

/// Signature of the selection after applying `pred` to a parent selection.
uint64_t FilterChildSignature(uint64_t parent_rows_signature,
                              const FilterPred& pred);

/// Key of the grouped result of `spec` over a selection (Grouped section).
uint64_t GroupKey(uint64_t rows_signature, const GroupSpec& spec);

/// Key of a column's token-frequency list over the capped selection
/// (Tokens section). `row_cap` is EnvConfig::stats_row_cap.
uint64_t TokenKey(uint64_t rows_signature, int column, int row_cap);

/// Key of the stride-sampled capped selection itself (Rows section).
uint64_t CappedRowsKey(uint64_t rows_signature, int row_cap);

/// Key of the encoded observation vector of `display` (Vector section).
uint64_t DisplayVectorKey(const Display& display, int row_cap);

}  // namespace atena

#endif  // ATENA_EDA_DISPLAY_CACHE_H_
