#include "eda/display_cache.h"

#include <algorithm>
#include <bit>

#include "common/hashing.h"
#include "common/logging.h"

namespace atena {

namespace {

// Section salts keep the four typed key spaces disjoint even when they are
// derived from the same operation-path signature.
constexpr uint64_t kRowsSalt = 0xA1C4E953F0B6D711ULL;
constexpr uint64_t kGroupSalt = 0xB7E151628AED2A6BULL;
constexpr uint64_t kTokenSalt = 0x93C467E37DB0C7A4ULL;
constexpr uint64_t kCappedSalt = 0xD1310BA698DFB5ACULL;
constexpr uint64_t kVectorSalt = 0xF61E2562C040B340ULL;

uint64_t HashValue(const Value& value) {
  if (value.is_null()) return Mix64(0x9D2C5680ULL);
  if (value.is_int()) {
    return HashCombine(1, static_cast<uint64_t>(value.as_int()));
  }
  if (value.is_double()) {
    return HashCombine(2, std::bit_cast<uint64_t>(value.as_double()));
  }
  return HashCombine(3, HashString(value.as_string()));
}

// Estimated heap bytes of cached values, charged against Options::max_bytes.
// Estimates only count the dominant payloads (element storage, group member
// lists, token strings) — constants like struct headers are approximated by
// kEntryOverhead. What matters is that multi-megabyte row sets from
// million-row tables are charged at full weight so the byte budget tracks
// real memory, not that small entries are exact.
constexpr size_t kEntryOverhead = 64;

size_t RowsBytes(const std::vector<int32_t>& rows) {
  return kEntryOverhead + rows.capacity() * sizeof(int32_t);
}

size_t GroupedBytes(const GroupedResult& grouped) {
  size_t bytes = kEntryOverhead;
  for (const Group& g : grouped.groups) {
    bytes += kEntryOverhead + g.rows.capacity() * sizeof(int32_t) +
             g.keys.size() * sizeof(Value);
  }
  return bytes;
}

size_t TokensBytes(const std::vector<TokenFreq>& tokens) {
  size_t bytes = kEntryOverhead + tokens.capacity() * sizeof(TokenFreq);
  for (const TokenFreq& t : tokens) {
    if (t.token.is_string()) bytes += t.token.as_string().size();
  }
  return bytes;
}

size_t VectorBytes(const std::vector<double>& vec) {
  return kEntryOverhead + vec.capacity() * sizeof(double);
}

}  // namespace

DisplayCache::DisplayCache(Options options) {
  const int shards = std::max(1, options.shards);
  per_shard_capacity_ =
      std::max<size_t>(1, options.capacity / static_cast<size_t>(shards));
  per_shard_max_bytes_ =
      options.max_bytes == 0
          ? 0
          : std::max<size_t>(1, options.max_bytes /
                                    static_cast<size_t>(shards));
  shards_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const void> DisplayCache::Get(uint64_t key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.value;
}

void DisplayCache::Put(uint64_t key, std::shared_ptr<const void> value,
                       size_t bytes) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Another actor raced us to the same computation; both results are
    // bit-identical, keep the resident one.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  shard.lru.push_front(key);
  shard.entries.emplace(key, Entry{std::move(value), shard.lru.begin(),
                                   bytes});
  shard.resident_bytes += bytes;
  // Evict LRU past either budget. The byte loop keeps the newest entry even
  // if it alone exceeds the shard budget (an empty cache would thrash);
  // entries.size() > 1 guards that.
  while (shard.entries.size() > per_shard_capacity_ ||
         (per_shard_max_bytes_ != 0 &&
          shard.resident_bytes > per_shard_max_bytes_ &&
          shard.entries.size() > 1)) {
    auto victim = shard.entries.find(shard.lru.back());
    shard.resident_bytes -= victim->second.bytes;
    shard.entries.erase(victim);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::shared_ptr<const std::vector<int32_t>> DisplayCache::GetRows(
    uint64_t key) {
  return std::static_pointer_cast<const std::vector<int32_t>>(Get(key));
}

void DisplayCache::PutRows(uint64_t key,
                           std::shared_ptr<const std::vector<int32_t>> rows) {
  const size_t bytes = RowsBytes(*rows);
  Put(key, std::move(rows), bytes);
}

std::shared_ptr<const GroupedResult> DisplayCache::GetGrouped(uint64_t key) {
  return std::static_pointer_cast<const GroupedResult>(Get(key));
}

void DisplayCache::PutGrouped(uint64_t key,
                              std::shared_ptr<const GroupedResult> grouped) {
  const size_t bytes = GroupedBytes(*grouped);
  Put(key, std::move(grouped), bytes);
}

std::shared_ptr<const std::vector<TokenFreq>> DisplayCache::GetTokens(
    uint64_t key) {
  return std::static_pointer_cast<const std::vector<TokenFreq>>(Get(key));
}

void DisplayCache::PutTokens(
    uint64_t key, std::shared_ptr<const std::vector<TokenFreq>> tokens) {
  const size_t bytes = TokensBytes(*tokens);
  Put(key, std::move(tokens), bytes);
}

std::shared_ptr<const std::vector<double>> DisplayCache::GetVector(
    uint64_t key) {
  return std::static_pointer_cast<const std::vector<double>>(Get(key));
}

void DisplayCache::PutVector(uint64_t key,
                             std::shared_ptr<const std::vector<double>> vec) {
  const size_t bytes = VectorBytes(*vec);
  Put(key, std::move(vec), bytes);
}

void DisplayCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
    shard->lru.clear();
    shard->resident_bytes = 0;
  }
}

DisplayCacheStats DisplayCache::stats() const {
  DisplayCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->entries.size();
    stats.resident_bytes += shard->resident_bytes;
  }
  return stats;
}

DisplayCacheSnapshot DisplayCache::Snapshot() const {
  // Acquire every shard lock (index order — the only multi-lock site, so
  // the ordering can never deadlock against single-shard Get/Put) and only
  // then read, so all counters describe one instant.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex);
  }
  DisplayCacheSnapshot snapshot;
  snapshot.shard_entries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot.totals.hits += shard->hits;
    snapshot.totals.misses += shard->misses;
    snapshot.totals.evictions += shard->evictions;
    snapshot.totals.entries += shard->entries.size();
    snapshot.totals.resident_bytes += shard->resident_bytes;
    snapshot.shard_entries.push_back(shard->entries.size());
  }
  return snapshot;
}

uint64_t RootRowsSignature(const Table& table) {
  uint64_t sig = HashString(table.name(), kRowsSalt);
  return HashCombine(sig, static_cast<uint64_t>(table.num_rows()));
}

uint64_t FilterChildSignature(uint64_t parent_rows_signature,
                              const FilterPred& pred) {
  uint64_t h = HashCombine(static_cast<uint64_t>(pred.column),
                           static_cast<uint64_t>(pred.op));
  h = HashCombine(h, HashValue(pred.term));
  // Commutative across predicates: sequential filters select the
  // conjunction of their predicate set, so reordered paths must collide.
  return parent_rows_signature + Mix64(h);
}

uint64_t GroupKey(uint64_t rows_signature, const GroupSpec& spec) {
  uint64_t key = HashCombine(kGroupSalt, rows_signature);
  for (int c : spec.group_columns) {
    key = HashCombine(key, static_cast<uint64_t>(c));
  }
  key = HashCombine(key, static_cast<uint64_t>(spec.agg));
  return HashCombine(key, static_cast<uint64_t>(spec.agg_column));
}

uint64_t TokenKey(uint64_t rows_signature, int column, int row_cap) {
  uint64_t key = HashCombine(kTokenSalt, rows_signature);
  key = HashCombine(key, static_cast<uint64_t>(column));
  return HashCombine(key, static_cast<uint64_t>(row_cap));
}

uint64_t CappedRowsKey(uint64_t rows_signature, int row_cap) {
  uint64_t key = HashCombine(kCappedSalt, rows_signature);
  return HashCombine(key, static_cast<uint64_t>(row_cap));
}

uint64_t DisplayVectorKey(const Display& display, int row_cap) {
  uint64_t key = HashCombine(kVectorSalt, display.rows_signature);
  key = HashCombine(key, static_cast<uint64_t>(row_cap));
  for (int c : display.group_columns) {
    key = HashCombine(key, static_cast<uint64_t>(c));
  }
  key = HashCombine(key, static_cast<uint64_t>(display.agg));
  return HashCombine(key, static_cast<uint64_t>(display.agg_column));
}

}  // namespace atena
