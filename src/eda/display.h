#ifndef ATENA_EDA_DISPLAY_H_
#define ATENA_EDA_DISPLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "dataframe/ops.h"
#include "dataframe/row_set.h"
#include "eda/operation.h"

namespace atena {

/// One applied filter predicate (part of a display's provenance).
struct FilterPred {
  int column = -1;
  CompareOp op = CompareOp::kEq;
  Value term;
};

/// A results display d_t (paper §4.1): the state reached after a chain of
/// EDA operations. A display is a row selection over the source table plus
/// the active grouping, if any. Consecutive GROUP operations compose into a
/// multi-attribute grouping (paper footnote 1).
struct Display {
  /// Filters applied so far, in application order.
  std::vector<FilterPred> filters;
  /// Selected rows of the source table after `filters`. Shared storage:
  /// copying a display (stack push, history entry, snapshot) shares the
  /// row buffer instead of duplicating it.
  RowSet rows;
  /// Canonical signature of the filter set that produced `rows` (see
  /// display_cache.h); keys the display-execution cache.
  uint64_t rows_signature = 0;
  /// Grouped attributes in application order; empty = ungrouped display.
  std::vector<int> group_columns;
  /// Aggregation shown for the groups (from the most recent GROUP).
  AggFunc agg = AggFunc::kCount;
  int agg_column = -1;
  /// Materialized grouping; null iff ungrouped.
  std::shared_ptr<const GroupedResult> grouped;

  bool is_grouped() const { return !group_columns.empty(); }

  /// The GroupSpec describing this display's grouping state.
  GroupSpec MakeGroupSpec() const;

  /// Aggregate values of all groups (empty when ungrouped); feeds the KL
  /// interestingness reward for grouped displays.
  std::vector<double> AggregateValues() const;
};

}  // namespace atena

#endif  // ATENA_EDA_DISPLAY_H_
