#include "eda/operation.h"

namespace atena {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kFilter:
      return "FILTER";
    case OpType::kGroup:
      return "GROUP";
    case OpType::kBack:
      return "BACK";
  }
  return "?";
}

EdaOperation EdaOperation::Filter(int column, CompareOp op, Value term,
                                  int term_bin) {
  EdaOperation out;
  out.type = OpType::kFilter;
  out.filter = FilterParams{column, op, std::move(term), term_bin};
  return out;
}

EdaOperation EdaOperation::Group(int group_column, AggFunc agg,
                                 int agg_column) {
  EdaOperation out;
  out.type = OpType::kGroup;
  out.group = GroupParams{group_column, agg, agg_column};
  return out;
}

EdaOperation EdaOperation::Back() {
  EdaOperation out;
  out.type = OpType::kBack;
  return out;
}

std::string EdaOperation::Describe(const Table& table) const {
  switch (type) {
    case OpType::kFilter: {
      std::string column = (filter.column >= 0 &&
                            filter.column < table.num_columns())
                               ? table.column_name(filter.column)
                               : "?";
      std::string term = filter.term.is_string()
                             ? "'" + filter.term.ToString() + "'"
                             : filter.term.ToString();
      return "FILTER " + column + " " + CompareOpSymbol(filter.op) + " " +
             term;
    }
    case OpType::kGroup: {
      std::string key = (group.group_column >= 0 &&
                         group.group_column < table.num_columns())
                            ? table.column_name(group.group_column)
                            : "?";
      std::string agg;
      if (group.agg == AggFunc::kCount) {
        agg = "COUNT(*)";
      } else {
        std::string target = (group.agg_column >= 0 &&
                              group.agg_column < table.num_columns())
                                 ? table.column_name(group.agg_column)
                                 : "?";
        agg = std::string(AggFuncName(group.agg)) + "(" + target + ")";
      }
      return "GROUP-BY " + key + ", " + agg;
    }
    case OpType::kBack:
      return "BACK";
  }
  return "?";
}

}  // namespace atena
