#include "eda/session.h"

namespace atena {

EdaNotebook NotebookFromSession(const EdaEnvironment& env,
                                std::string generator) {
  EdaNotebook notebook;
  notebook.dataset_id = env.dataset().info.id;
  notebook.generator = std::move(generator);
  notebook.table = env.dataset().table;
  const auto& steps = env.steps();
  const auto& history = env.display_history();
  for (size_t i = 0; i < steps.size(); ++i) {
    if (!steps[i].valid) continue;
    NotebookEntry entry;
    entry.op = steps[i].op;
    // history[0] is the root display; step i produced history[i + 1].
    entry.display = history[i + 1];
    entry.description = steps[i].op.Describe(env.table());
    entry.reward = steps[i].reward;
    notebook.entries.push_back(std::move(entry));
  }
  return notebook;
}

EdaNotebook ReplayOperations(EdaEnvironment* env,
                             const std::vector<EdaOperation>& ops,
                             std::string generator, double* total_reward) {
  env->Reset();
  double total = 0.0;
  for (const auto& op : ops) {
    if (env->done()) break;
    StepOutcome outcome = env->StepOperation(op);
    total += outcome.reward;
  }
  if (total_reward != nullptr) *total_reward = total;
  return NotebookFromSession(*env, std::move(generator));
}

}  // namespace atena
