#ifndef ATENA_EDA_OBSERVATION_H_
#define ATENA_EDA_OBSERVATION_H_

#include <vector>

#include "dataframe/table.h"
#include "eda/display.h"

namespace atena {

/// Encodes result displays into the fixed-size numeric vectors the paper's
/// MDP exposes to the agent (§4.1): per attribute, the values' entropy,
/// distinct count and null count (plus a grouped/aggregated flag), and three
/// global grouping features (group count, group-size mean and variance).
/// All features are normalized into [0,1] against the source table size so
/// networks see a stable input scale across datasets.
class ObservationEncoder {
 public:
  /// `history` is how many most-recent displays one observation
  /// concatenates (the paper uses the current display plus the two before
  /// it, i.e. 3).
  ObservationEncoder(TablePtr table, int history = 3);

  /// Dimension of one encoded display vector: 4*|Attr| + 3.
  int display_dim() const { return display_dim_; }
  /// Dimension of a full observation: history * display_dim.
  int observation_dim() const { return history_ * display_dim_; }
  int history() const { return history_; }

  /// Encodes a single display d_t into its compact structural summary d̂_t.
  std::vector<double> EncodeDisplay(const Display& display) const;

  /// Builds the agent observation from the chronological display-vector
  /// history (last element = current display). Missing history slots are
  /// zero vectors (paper §4.1). Layout: current display first, then t-1,
  /// then t-2.
  std::vector<double> EncodeObservation(
      const std::vector<std::vector<double>>& display_vectors) const;

 private:
  TablePtr table_;
  int history_;
  int display_dim_;
};

}  // namespace atena

#endif  // ATENA_EDA_OBSERVATION_H_
