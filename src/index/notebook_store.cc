#include "index/notebook_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/math_utils.h"

namespace atena {

namespace {

const std::string_view kStoreMagic = "ATENA-NBSTORE v1";

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

}  // namespace

NotebookStore::NotebookStore() : NotebookStore(Options()) {}

NotebookStore::NotebookStore(Options options)
    : options_(options),
      mutex_(std::make_unique<std::mutex>()),
      centroids_(options.index) {}

uint64_t NotebookStore::SequenceHash(
    const std::vector<std::vector<double>>& sequence) {
  // FNV-1a over the raw double bits plus per-vector length separators:
  // bitwise-equal sequences (and only those, up to hash collisions that
  // the verified lookup filters out) hash equal.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (byte * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<uint64_t>(sequence.size()));
  for (const auto& v : sequence) {
    mix(static_cast<uint64_t>(v.size()));
    for (double x : v) {
      uint64_t bits;
      std::memcpy(&bits, &x, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

std::vector<double> NotebookStore::Centroid(
    const std::vector<std::vector<double>>& sequence) {
  size_t dim = 0;
  for (const auto& v : sequence) dim = std::max(dim, v.size());
  std::vector<double> centroid(dim, 0.0);
  if (sequence.empty()) return centroid;
  for (const auto& v : sequence) {
    for (size_t i = 0; i < v.size(); ++i) centroid[i] += v[i];
  }
  const double inv = 1.0 / static_cast<double>(sequence.size());
  for (double& c : centroid) c *= inv;
  return centroid;
}

int64_t NotebookStore::RegisterLocked(
    uint64_t session_id, uint64_t session_seed,
    std::vector<std::vector<double>> display_vectors) {
  if (display_vectors.size() < options_.min_sequence_length) {
    ++skipped_;
    return -1;
  }
  const uint64_t id = static_cast<uint64_t>(entries_.size());
  Entry entry;
  entry.notebook_id = id;
  entry.session_id = session_id;
  entry.session_seed = session_seed;
  entry.length = static_cast<uint32_t>(display_vectors.size());
  const int32_t index_id = centroids_.Insert(Centroid(display_vectors));
  ATENA_CHECK(static_cast<uint64_t>(index_id) == id)
      << "centroid index out of sync with the entry table";
  by_hash_[SequenceHash(display_vectors)].push_back(id);
  entries_.push_back(entry);
  sequences_.push_back(std::move(display_vectors));
  return static_cast<int64_t>(id);
}

int64_t NotebookStore::Register(
    uint64_t session_id, uint64_t session_seed,
    const std::vector<std::vector<double>>& display_vectors) {
  std::lock_guard<std::mutex> lock(*mutex_);
  return RegisterLocked(session_id, session_seed, display_vectors);
}

std::vector<NotebookStore::Match> NotebookStore::TopK(
    const std::vector<std::vector<double>>& display_vectors, int k) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<Match> matches;
  if (k <= 0 || entries_.empty()) return matches;
  const std::vector<double> query = Centroid(display_vectors);
  const std::vector<VectorIndex::Neighbor> neighbors =
      centroids_.TopK(query, k);
  matches.reserve(neighbors.size());
  for (const VectorIndex::Neighbor& n : neighbors) {
    Match match;
    match.entry = entries_[static_cast<size_t>(n.id)];
    match.distance = std::sqrt(n.squared_distance);
    matches.push_back(match);
  }
  return matches;
}

int64_t NotebookStore::FindDuplicate(
    const std::vector<std::vector<double>>& display_vectors) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = by_hash_.find(SequenceHash(display_vectors));
  if (it == by_hash_.end()) return -1;
  for (uint64_t id : it->second) {
    if (sequences_[static_cast<size_t>(id)] == display_vectors) {
      return static_cast<int64_t>(id);
    }
  }
  return -1;
}

size_t NotebookStore::size() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return entries_.size();
}

int64_t NotebookStore::skipped_registrations() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return skipped_;
}

NotebookStore::Entry NotebookStore::entry(uint64_t notebook_id) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  ATENA_CHECK(notebook_id < entries_.size()) << "notebook id out of range";
  return entries_[static_cast<size_t>(notebook_id)];
}

std::vector<std::vector<double>> NotebookStore::sequence(
    uint64_t notebook_id) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  ATENA_CHECK(notebook_id < sequences_.size()) << "notebook id out of range";
  return sequences_[static_cast<size_t>(notebook_id)];
}

Status NotebookStore::Save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(options_.index.branching));
  AppendU32(&payload, static_cast<uint32_t>(options_.index.leaf_capacity));
  AppendU32(&payload,
            static_cast<uint32_t>(options_.index.kmeans_iterations));
  AppendU64(&payload, static_cast<uint64_t>(options_.min_sequence_length));
  AppendU64(&payload, static_cast<uint64_t>(entries_.size()));
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    AppendU64(&payload, entry.session_id);
    AppendU64(&payload, entry.session_seed);
    const auto& sequence = sequences_[i];
    AppendU32(&payload, static_cast<uint32_t>(sequence.size()));
    for (const auto& v : sequence) {
      AppendU32(&payload, static_cast<uint32_t>(v.size()));
      const size_t bytes = v.size() * sizeof(double);
      const size_t at = payload.size();
      payload.resize(at + bytes);
      if (bytes > 0) std::memcpy(&payload[at], v.data(), bytes);
    }
  }
  return WriteChecksummedFile(path, kStoreMagic, payload);
}

Result<NotebookStore> NotebookStore::Load(const std::string& path) {
  std::string payload;
  ATENA_RETURN_IF_ERROR(ReadChecksummedFile(path, kStoreMagic, &payload));
  size_t pos = 0;
  uint32_t branching = 0, leaf_capacity = 0, kmeans_iterations = 0;
  uint64_t min_len = 0, count = 0;
  if (!ReadU32(payload, &pos, &branching) ||
      !ReadU32(payload, &pos, &leaf_capacity) ||
      !ReadU32(payload, &pos, &kmeans_iterations) ||
      !ReadU64(payload, &pos, &min_len) || !ReadU64(payload, &pos, &count)) {
    return Status::IOError("notebook store " + path + ": truncated header");
  }
  if (branching < 2 || leaf_capacity < 1 || kmeans_iterations < 1) {
    return Status::InvalidArgument("notebook store " + path +
                                   ": implausible options");
  }
  Options options;
  options.index.branching = static_cast<int>(branching);
  options.index.leaf_capacity = static_cast<int>(leaf_capacity);
  options.index.kmeans_iterations = static_cast<int>(kmeans_iterations);
  // Registrations below the threshold were never stored, so the loaded
  // store replays only admissible sequences whatever the saved threshold.
  options.min_sequence_length = static_cast<size_t>(min_len);
  NotebookStore store(options);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t session_id = 0, session_seed = 0;
    uint32_t length = 0;
    if (!ReadU64(payload, &pos, &session_id) ||
        !ReadU64(payload, &pos, &session_seed) ||
        !ReadU32(payload, &pos, &length)) {
      return Status::IOError("notebook store " + path +
                             ": truncated notebook " + std::to_string(i));
    }
    std::vector<std::vector<double>> sequence;
    sequence.reserve(length);
    for (uint32_t v = 0; v < length; ++v) {
      uint32_t dim = 0;
      if (!ReadU32(payload, &pos, &dim)) {
        return Status::IOError("notebook store " + path +
                               ": truncated notebook " + std::to_string(i));
      }
      const size_t bytes = static_cast<size_t>(dim) * sizeof(double);
      if (pos + bytes > payload.size()) {
        return Status::IOError("notebook store " + path +
                               ": truncated notebook " + std::to_string(i));
      }
      std::vector<double> vec(static_cast<size_t>(dim));
      if (bytes > 0) std::memcpy(vec.data(), payload.data() + pos, bytes);
      pos += bytes;
      sequence.push_back(std::move(vec));
    }
    if (store.RegisterLocked(session_id, session_seed,
                             std::move(sequence)) < 0) {
      return Status::InvalidArgument(
          "notebook store " + path + ": notebook " + std::to_string(i) +
          " shorter than the store's min_sequence_length");
    }
  }
  if (pos != payload.size()) {
    return Status::IOError("notebook store " + path + ": " +
                           std::to_string(payload.size() - pos) +
                           " trailing bytes");
  }
  return store;
}

}  // namespace atena
