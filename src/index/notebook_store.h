#ifndef ATENA_INDEX_NOTEBOOK_STORE_H_
#define ATENA_INDEX_NOTEBOOK_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/vector_index.h"

namespace atena {

/// Cross-session notebook corpus (DESIGN.md §14): retired serving sessions
/// register their display-vector sequences here, and new sessions can look
/// up the most similar past notebooks — the NotebookRAG-style retrieval
/// primitive the serving runtime uses to deduplicate or warm-start
/// sessions, and the corpus the ILAEDA pretraining track will consume.
///
/// Each notebook is summarized by its display-vector centroid (the mean
/// over the zero-padded union space) and indexed in a VectorIndex, so
/// top-k similarity queries are sub-linear in corpus size while staying
/// exact for the centroid metric. Exact-duplicate detection is separate
/// and bitwise: sequences are hashed over their raw double bits, so
/// FindDuplicate never false-positives on merely-close notebooks.
///
/// Thread-safe: all public methods take an internal mutex, so one store
/// can be shared across SessionManagers (or a manager and an offline
/// reader). Queries under the lock are short — sub-linear index descent
/// plus a handful of exact re-checks.
class NotebookStore {
 public:
  struct Options {
    VectorIndex::Options index;
    /// Sequences shorter than this are not registered (a root display
    /// alone is not a notebook). Counted in skipped_registrations.
    size_t min_sequence_length = 2;
  };

  /// Provenance of one registered notebook.
  struct Entry {
    uint64_t notebook_id = 0;   // dense, assigned by Register (0-based)
    uint64_t session_id = 0;
    uint64_t session_seed = 0;
    uint32_t length = 0;        // number of display vectors
  };

  /// One retrieval hit: the registered notebook plus its centroid
  /// Euclidean distance to the query sequence's centroid (0 = identical
  /// centroids; ties broken by lowest notebook id).
  struct Match {
    Entry entry;
    double distance = 0.0;
  };

  NotebookStore();
  explicit NotebookStore(Options options);

  /// Registers a display-vector sequence; returns its notebook id, or -1
  /// (as int64) when the sequence is below min_sequence_length.
  int64_t Register(uint64_t session_id, uint64_t session_seed,
                   const std::vector<std::vector<double>>& display_vectors);

  /// The k registered notebooks whose centroids are nearest to the
  /// query sequence's centroid, nearest first.
  std::vector<Match> TopK(
      const std::vector<std::vector<double>>& display_vectors, int k) const;

  /// Bitwise-exact duplicate lookup: the id of the first registered
  /// notebook whose sequence equals `display_vectors` element for
  /// element (every double bit-identical), or -1 when none exists.
  int64_t FindDuplicate(
      const std::vector<std::vector<double>>& display_vectors) const;

  size_t size() const;
  int64_t skipped_registrations() const;
  Entry entry(uint64_t notebook_id) const;
  std::vector<std::vector<double>> sequence(uint64_t notebook_id) const;

  /// Persists the corpus (entries + sequences) as a CRC-framed container;
  /// Load rebuilds the centroid index and duplicate table by replaying
  /// registrations, so a loaded store answers queries identically.
  Status Save(const std::string& path) const;
  static Result<NotebookStore> Load(const std::string& path);

 private:
  static uint64_t SequenceHash(
      const std::vector<std::vector<double>>& sequence);
  static std::vector<double> Centroid(
      const std::vector<std::vector<double>>& sequence);
  int64_t RegisterLocked(uint64_t session_id, uint64_t session_seed,
                         std::vector<std::vector<double>> display_vectors);

  Options options_;
  /// Held by pointer so the store stays movable (Result<NotebookStore>).
  mutable std::unique_ptr<std::mutex> mutex_;
  VectorIndex centroids_;                       // id i = notebook i
  std::vector<Entry> entries_;
  std::vector<std::vector<std::vector<double>>> sequences_;
  /// Raw-bits sequence hash -> notebook ids (verified element-wise on
  /// lookup, so hash collisions cannot produce a false duplicate).
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_hash_;
  int64_t skipped_ = 0;
};

}  // namespace atena

#endif  // ATENA_INDEX_NOTEBOOK_STORE_H_
