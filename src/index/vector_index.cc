#include "index/vector_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <utility>

#include "common/file_io.h"
#include "common/logging.h"
#include "common/math_utils.h"

namespace atena {

namespace {

/// Relative slack applied to every ball lower bound before it may prune.
/// The computed Euclidean distances carry a worst-case relative rounding
/// error of ~n·2^-52 (n = vector dimension) — below 1e-12 for any display
/// vector this system produces — so a 1e-9 slack dominates it by three
/// orders of magnitude: a subtree is pruned only when every member is
/// *provably* farther than the current best even under worst-case
/// rounding, which is what makes the index's results bit-identical to the
/// flat scan (DESIGN.md §14).
constexpr double kBoundSlack = 1e-9;

/// Conservative lower bound on the distance from the query to any vector
/// inside a ball of `radius` around a centroid at `center_dist`.
inline double BallLowerBound(double center_dist, double radius) {
  const double lb = center_dist - radius;
  return lb > 0.0 ? lb * (1.0 - kBoundSlack) : 0.0;
}

/// Squared centroid distance past which a ball is certainly pruned, i.e.
/// the contrapositive of the BallLowerBound comparison: prune happens iff
/// (dist - radius)·(1-slack) > best, iff dist > best/(1-slack) + radius.
/// Inflated by one more slack factor so the bounded kernel's early break
/// (partial sums, different rounding than the full sum) can never trigger
/// on a ball the exact comparison would have kept — the kernel returns
/// the exact squared distance whenever it is below this threshold, and
/// the caller then applies the standard comparison to it.
inline double PruneThresholdSquared(double best, double radius) {
  if (!(best < std::numeric_limits<double>::infinity())) {
    return std::numeric_limits<double>::infinity();
  }
  const double t = best / (1.0 - kBoundSlack) + radius;
  return t * t * (1.0 + kBoundSlack);
}

const std::string_view kIndexMagic = "ATENA-VIDX v1";

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

}  // namespace

VectorIndex::VectorIndex() : VectorIndex(Options()) {}

VectorIndex::VectorIndex(Options options) : options_(options) {
  ATENA_CHECK(options_.branching >= 2) << "branching must be >= 2";
  ATENA_CHECK(options_.leaf_capacity >= 1) << "leaf_capacity must be >= 1";
}

int32_t VectorIndex::NewNode() {
  nodes_.emplace_back();
  return static_cast<int32_t>(nodes_.size() - 1);
}

void VectorIndex::PackMember(Node* node, int32_t id) {
  const std::vector<double>& v = vectors_[static_cast<size_t>(id)];
  node->packed.insert(node->packed.end(), v.begin(), v.end());
  node->packed_dims.push_back(static_cast<uint32_t>(v.size()));
}

void VectorIndex::PackChildCentroids(Node* node) {
  node->child_centroids.clear();
  node->child_centroid_dims.clear();
  for (int32_t child : node->children) {
    const std::vector<double>& c = nodes_[static_cast<size_t>(child)].centroid;
    node->child_centroids.insert(node->child_centroids.end(), c.begin(),
                                 c.end());
    node->child_centroid_dims.push_back(static_cast<uint32_t>(c.size()));
  }
}

void VectorIndex::SetCentroidAndRadius(Node* node,
                                       const std::vector<int32_t>& ids) const {
  size_t dim = 0;
  for (int32_t id : ids) {
    dim = std::max(dim, vectors_[static_cast<size_t>(id)].size());
  }
  // Mean over the zero-padded union space — consistent with the distance
  // kernel's tails-count-as-distance-from-zero semantics.
  std::vector<double> centroid(dim, 0.0);
  for (int32_t id : ids) {
    const auto& v = vectors_[static_cast<size_t>(id)];
    for (size_t i = 0; i < v.size(); ++i) centroid[i] += v[i];
  }
  const double inv = ids.empty() ? 0.0 : 1.0 / static_cast<double>(ids.size());
  for (double& c : centroid) c *= inv;
  double radius = 0.0;
  for (int32_t id : ids) {
    radius = std::max(
        radius, EuclideanDistance(centroid, vectors_[static_cast<size_t>(id)]));
  }
  node->centroid = std::move(centroid);
  node->radius = radius;
}

int VectorIndex::KMeans(const std::vector<int32_t>& ids,
                        std::vector<int>* assignment) const {
  const size_t n = ids.size();
  const int want =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(options_.branching), n));
  // Deterministic farthest-point init: the first member seeds center 0,
  // each next center is the member farthest from all chosen ones (ties ->
  // lowest position). Stops early when every remaining member coincides
  // with a chosen center — duplicate-heavy sets get fewer clusters.
  std::vector<std::vector<double>> centers;
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  centers.push_back(vectors_[static_cast<size_t>(ids[0])]);
  while (static_cast<int>(centers.size()) < want) {
    size_t far = 0;
    double far_sq = -1.0;
    for (size_t i = 0; i < n; ++i) {
      const double sq = std::min(
          min_sq[i], SquaredEuclideanDistance(
                         centers.back(), vectors_[static_cast<size_t>(ids[i])]));
      min_sq[i] = sq;
      if (sq > far_sq) {
        far_sq = sq;
        far = i;
      }
    }
    if (far_sq <= 0.0) break;  // all remaining members duplicate a center
    centers.push_back(vectors_[static_cast<size_t>(ids[far])]);
  }
  if (centers.size() < 2) return 1;

  const int k = static_cast<int>(centers.size());
  assignment->assign(n, 0);
  for (int iter = 0; iter < options_.kmeans_iterations; ++iter) {
    // Assign (ties -> lowest center index, so the loop is deterministic).
    for (size_t i = 0; i < n; ++i) {
      const auto& v = vectors_[static_cast<size_t>(ids[i])];
      int best_c = 0;
      double best_sq = SquaredEuclideanDistance(centers[0], v);
      for (int c = 1; c < k; ++c) {
        const double sq = SquaredEuclideanDistanceBounded(centers[static_cast<size_t>(c)], v, best_sq);
        if (sq < best_sq) {
          best_sq = sq;
          best_c = c;
        }
      }
      (*assignment)[i] = best_c;
    }
    if (iter + 1 == options_.kmeans_iterations) break;
    // Update: means over the zero-padded space; empty clusters keep their
    // previous center (farthest-point init makes them rare).
    std::vector<size_t> dims(static_cast<size_t>(k), 0);
    std::vector<size_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>((*assignment)[i]);
      dims[c] = std::max(dims[c], vectors_[static_cast<size_t>(ids[i])].size());
      ++counts[c];
    }
    std::vector<std::vector<double>> next(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      next[static_cast<size_t>(c)].assign(dims[static_cast<size_t>(c)], 0.0);
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>((*assignment)[i]);
      const auto& v = vectors_[static_cast<size_t>(ids[i])];
      for (size_t d = 0; d < v.size(); ++d) next[c][d] += v[d];
    }
    for (int c = 0; c < k; ++c) {
      const size_t cs = static_cast<size_t>(c);
      if (counts[cs] == 0) {
        next[cs] = centers[cs];
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[cs]);
      for (double& x : next[cs]) x *= inv;
    }
    centers = std::move(next);
  }

  // Compact away empty clusters so callers see contiguous cluster ids.
  std::vector<int> remap(static_cast<size_t>(k), -1);
  int used = 0;
  for (size_t i = 0; i < n; ++i) {
    int& slot = remap[static_cast<size_t>((*assignment)[i])];
    if (slot < 0) slot = used++;
    (*assignment)[i] = slot;
  }
  return used;
}

void VectorIndex::SplitLeaf(int32_t node_id) {
  std::vector<int32_t> ids = nodes_[static_cast<size_t>(node_id)].ids;
  std::vector<int> assignment;
  const int clusters = KMeans(ids, &assignment);
  if (clusters < 2) {
    // Unseparable (typically all-duplicate) members: stay a flat leaf and
    // only re-attempt after the leaf doubles, bounding amortized cost.
    nodes_[static_cast<size_t>(node_id)].retry_split_at = ids.size() * 2;
    return;
  }
  std::vector<std::vector<int32_t>> members(static_cast<size_t>(clusters));
  for (size_t i = 0; i < ids.size(); ++i) {
    members[static_cast<size_t>(assignment[i])].push_back(ids[i]);
  }
  std::vector<int32_t> children;
  children.reserve(static_cast<size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    const int32_t child = NewNode();  // may reallocate nodes_
    Node& child_node = nodes_[static_cast<size_t>(child)];
    child_node.ids = std::move(members[static_cast<size_t>(c)]);
    for (int32_t member : child_node.ids) PackMember(&child_node, member);
    SetCentroidAndRadius(&child_node, child_node.ids);
    children.push_back(child);
  }
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.leaf = false;
  node.ids.clear();
  node.ids.shrink_to_fit();
  node.packed.clear();
  node.packed.shrink_to_fit();
  node.packed_dims.clear();
  node.packed_dims.shrink_to_fit();
  node.children = std::move(children);
  node.retry_split_at = 0;
  PackChildCentroids(&node);
}

void VectorIndex::BuildNode(int32_t node_id, std::vector<int32_t> ids) {
  if (ids.size() <= static_cast<size_t>(options_.leaf_capacity)) {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    SetCentroidAndRadius(&node, ids);
    node.ids = std::move(ids);
    for (int32_t member : node.ids) PackMember(&node, member);
    return;
  }
  std::vector<int> assignment;
  const int clusters = KMeans(ids, &assignment);
  if (clusters < 2) {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    SetCentroidAndRadius(&node, ids);
    node.ids = std::move(ids);
    for (int32_t member : node.ids) PackMember(&node, member);
    node.retry_split_at = node.ids.size() * 2;
    return;
  }
  SetCentroidAndRadius(&nodes_[static_cast<size_t>(node_id)], ids);
  std::vector<std::vector<int32_t>> members(static_cast<size_t>(clusters));
  for (size_t i = 0; i < ids.size(); ++i) {
    members[static_cast<size_t>(assignment[i])].push_back(ids[i]);
  }
  std::vector<int32_t> children;
  children.reserve(static_cast<size_t>(clusters));
  for (int c = 0; c < clusters; ++c) children.push_back(NewNode());
  {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    node.leaf = false;
    node.children = children;
  }
  for (int c = 0; c < clusters; ++c) {
    BuildNode(children[static_cast<size_t>(c)],
              std::move(members[static_cast<size_t>(c)]));
  }
  // Children's centroids are final once their subtrees are built.
  PackChildCentroids(&nodes_[static_cast<size_t>(node_id)]);
}

VectorIndex VectorIndex::Build(std::vector<std::vector<double>> vectors) {
  return Build(std::move(vectors), Options());
}

VectorIndex VectorIndex::Build(std::vector<std::vector<double>> vectors,
                               Options options) {
  VectorIndex index(options);
  index.vectors_ = std::move(vectors);
  if (index.vectors_.empty()) return index;
  std::vector<int32_t> ids(index.vectors_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  const int32_t root = index.NewNode();
  index.BuildNode(root, std::move(ids));
  return index;
}

int32_t VectorIndex::Insert(std::vector<double> vector) {
  const int32_t id = static_cast<int32_t>(vectors_.size());
  vectors_.push_back(std::move(vector));
  const std::vector<double>& v = vectors_.back();
  if (nodes_.empty()) {
    const int32_t root = NewNode();
    Node& node = nodes_[static_cast<size_t>(root)];
    node.centroid = v;
    node.ids.push_back(id);
    PackMember(&node, id);
    return id;
  }
  int32_t cur = 0;
  for (;;) {
    Node& node = nodes_[static_cast<size_t>(cur)];
    // Every ball on the descent path absorbs the new vector, keeping the
    // invariant that a node's radius covers its whole subtree.
    node.radius =
        std::max(node.radius, EuclideanDistance(v, node.centroid));
    if (node.leaf) break;
    const double* centroid = node.child_centroids.data();
    int32_t best_child = node.children.front();
    double best_sq = SquaredEuclideanDistanceBounded(
        v.data(), v.size(), centroid, node.child_centroid_dims[0],
        std::numeric_limits<double>::infinity());
    centroid += node.child_centroid_dims[0];
    for (size_t c = 1; c < node.children.size(); ++c) {
      const size_t dim = node.child_centroid_dims[c];
      const double sq = SquaredEuclideanDistanceBounded(
          v.data(), v.size(), centroid, dim, best_sq);
      centroid += dim;
      if (sq < best_sq) {
        best_sq = sq;
        best_child = node.children[c];
      }
    }
    cur = best_child;
  }
  Node& leaf = nodes_[static_cast<size_t>(cur)];
  leaf.ids.push_back(id);
  PackMember(&leaf, id);
  const size_t size_now = leaf.ids.size();
  if (size_now > static_cast<size_t>(options_.leaf_capacity) &&
      (leaf.retry_split_at == 0 || size_now >= leaf.retry_split_at)) {
    SplitLeaf(cur);
  }
  return id;
}

void VectorIndex::Clear() {
  vectors_.clear();
  nodes_.clear();
}

double VectorIndex::MinSquaredDistance(const std::vector<double>& query,
                                       size_t id_limit,
                                       QueryStats* stats) const {
  double best_sq = std::numeric_limits<double>::infinity();
  if (nodes_.empty() || id_limit == 0) return best_sq;
  const size_t limit = std::min(id_limit, vectors_.size());
  double best = std::numeric_limits<double>::infinity();  // sqrt(best_sq)

  // Best-first descent on the ball lower bound: once the closest
  // unexplored subtree cannot beat the current best, nothing can.
  using Entry = std::pair<double, int32_t>;  // (lower bound, node id)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.emplace(
      BallLowerBound(EuclideanDistance(query, nodes_[0].centroid),
                     nodes_[0].radius),
      0);
  while (!heap.empty()) {
    const auto [lb, node_id] = heap.top();
    heap.pop();
    if (lb > best) {
      if (stats != nullptr) {
        stats->nodes_pruned += 1 + static_cast<int64_t>(heap.size());
      }
      break;
    }
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (stats != nullptr) ++stats->nodes_visited;
    if (node.leaf) {
      const double* data = node.packed.data();
      for (size_t m = 0; m < node.ids.size(); ++m) {
        const size_t dim = node.packed_dims[m];
        const double* member = data;
        data += dim;
        if (static_cast<size_t>(node.ids[m]) >= limit) continue;
        if (stats != nullptr) ++stats->vectors_checked;
        const double sq = SquaredEuclideanDistanceBounded(
            query.data(), query.size(), member, dim, best_sq);
        if (sq < best_sq) {
          best_sq = sq;
          best = std::sqrt(sq);
        }
      }
      continue;
    }
    const double* centroid = node.child_centroids.data();
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      const int32_t child = node.children[ci];
      const size_t dim = node.child_centroid_dims[ci];
      const double* c_centroid = centroid;
      centroid += dim;
      const double radius = nodes_[static_cast<size_t>(child)].radius;
      // Bounded centroid distance: balls far beyond the prune threshold
      // break out of the kernel after a few coordinates instead of paying
      // the full dimension.
      const double prune_sq = PruneThresholdSquared(best, radius);
      const double csq = SquaredEuclideanDistanceBounded(
          query.data(), query.size(), c_centroid, dim, prune_sq);
      if (csq > prune_sq) {
        if (stats != nullptr) ++stats->nodes_pruned;
        continue;
      }
      const double clb = BallLowerBound(std::sqrt(csq), radius);
      if (clb > best) {
        if (stats != nullptr) ++stats->nodes_pruned;
        continue;
      }
      heap.emplace(clb, child);
    }
  }
  return best_sq;
}

std::vector<VectorIndex::Neighbor> VectorIndex::TopK(
    const std::vector<double>& query, int k, size_t id_limit,
    QueryStats* stats) const {
  std::vector<Neighbor> result;
  if (nodes_.empty() || k <= 0 || id_limit == 0) return result;
  const size_t limit = std::min(id_limit, vectors_.size());
  const size_t want = static_cast<size_t>(k);

  // Worst-first heap over (squared distance, id): the total order that
  // makes the retained set independent of tree shape — among equal
  // distances the lowest ids win.
  auto worse = [](const Neighbor& a, const Neighbor& b) {
    return a.squared_distance != b.squared_distance
               ? a.squared_distance < b.squared_distance
               : a.id < b.id;
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(worse)> kept(
      worse);
  double bound_sq = std::numeric_limits<double>::infinity();
  double bound = std::numeric_limits<double>::infinity();

  using Entry = std::pair<double, int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.emplace(
      BallLowerBound(EuclideanDistance(query, nodes_[0].centroid),
                     nodes_[0].radius),
      0);
  while (!heap.empty()) {
    const auto [lb, node_id] = heap.top();
    heap.pop();
    if (kept.size() == want && lb > bound) {
      if (stats != nullptr) {
        stats->nodes_pruned += 1 + static_cast<int64_t>(heap.size());
      }
      break;
    }
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (stats != nullptr) ++stats->nodes_visited;
    if (node.leaf) {
      const double* data = node.packed.data();
      for (size_t m = 0; m < node.ids.size(); ++m) {
        const size_t dim = node.packed_dims[m];
        const double* member = data;
        data += dim;
        const int32_t id = node.ids[m];
        if (static_cast<size_t>(id) >= limit) continue;
        if (stats != nullptr) ++stats->vectors_checked;
        const double sq = SquaredEuclideanDistanceBounded(
            query.data(), query.size(), member, dim, bound_sq);
        if (kept.size() < want) {
          // The early-exit bound only tightens once the heap is full; an
          // unfilled heap takes the exact value unconditionally (and the
          // kernel is exact whenever its result is <= bound).
          kept.push(Neighbor{id, sq});
          if (kept.size() == want) {
            bound_sq = kept.top().squared_distance;
            bound = std::sqrt(bound_sq);
          }
          continue;
        }
        const Neighbor& worst = kept.top();
        if (sq < worst.squared_distance ||
            (sq == worst.squared_distance && id < worst.id)) {
          kept.pop();
          kept.push(Neighbor{id, sq});
          bound_sq = kept.top().squared_distance;
          bound = std::sqrt(bound_sq);
        }
      }
      continue;
    }
    const double* centroid = node.child_centroids.data();
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      const int32_t child = node.children[ci];
      const size_t dim = node.child_centroid_dims[ci];
      const double* c_centroid = centroid;
      centroid += dim;
      const double radius = nodes_[static_cast<size_t>(child)].radius;
      const double prune_sq = kept.size() == want
                                  ? PruneThresholdSquared(bound, radius)
                                  : std::numeric_limits<double>::infinity();
      const double csq = SquaredEuclideanDistanceBounded(
          query.data(), query.size(), c_centroid, dim, prune_sq);
      if (csq > prune_sq) {
        if (stats != nullptr) ++stats->nodes_pruned;
        continue;
      }
      const double clb = BallLowerBound(std::sqrt(csq), radius);
      if (kept.size() == want && clb > bound) {
        if (stats != nullptr) ++stats->nodes_pruned;
        continue;
      }
      heap.emplace(clb, child);
    }
  }

  result.resize(kept.size());
  for (size_t i = kept.size(); i-- > 0;) {
    result[i] = kept.top();
    kept.pop();
  }
  return result;
}

int VectorIndex::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative DFS (the tree is shallow, but avoid recursion anyway).
  int max_depth = 1;
  std::vector<std::pair<int32_t, int>> stack = {{0, 1}};
  while (!stack.empty()) {
    const auto [node_id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    for (int32_t child : nodes_[static_cast<size_t>(node_id)].children) {
      stack.emplace_back(child, d + 1);
    }
  }
  return max_depth;
}

Status VectorIndex::Save(const std::string& path) const {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(options_.branching));
  AppendU32(&payload, static_cast<uint32_t>(options_.leaf_capacity));
  AppendU32(&payload, static_cast<uint32_t>(options_.kmeans_iterations));
  AppendU64(&payload, static_cast<uint64_t>(vectors_.size()));
  for (const auto& v : vectors_) {
    AppendU32(&payload, static_cast<uint32_t>(v.size()));
    const size_t bytes = v.size() * sizeof(double);
    const size_t at = payload.size();
    payload.resize(at + bytes);
    if (bytes > 0) std::memcpy(&payload[at], v.data(), bytes);
  }
  return WriteChecksummedFile(path, kIndexMagic, payload);
}

Result<VectorIndex> VectorIndex::Load(const std::string& path) {
  std::string payload;
  ATENA_RETURN_IF_ERROR(ReadChecksummedFile(path, kIndexMagic, &payload));
  size_t pos = 0;
  uint32_t branching = 0, leaf_capacity = 0, kmeans_iterations = 0;
  uint64_t count = 0;
  if (!ReadU32(payload, &pos, &branching) ||
      !ReadU32(payload, &pos, &leaf_capacity) ||
      !ReadU32(payload, &pos, &kmeans_iterations) ||
      !ReadU64(payload, &pos, &count)) {
    return Status::IOError("vector index " + path + ": truncated header");
  }
  if (branching < 2 || leaf_capacity < 1 || kmeans_iterations < 1) {
    return Status::InvalidArgument("vector index " + path +
                                   ": implausible options");
  }
  Options options;
  options.branching = static_cast<int>(branching);
  options.leaf_capacity = static_cast<int>(leaf_capacity);
  options.kmeans_iterations = static_cast<int>(kmeans_iterations);
  VectorIndex index(options);
  // The tree is a pure function of the insertion sequence, so replaying
  // the stored vectors reproduces the saved index's behavior exactly (and
  // an exact index's answers do not depend on tree shape anyway).
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t dim = 0;
    if (!ReadU32(payload, &pos, &dim)) {
      return Status::IOError("vector index " + path + ": truncated vector " +
                             std::to_string(i));
    }
    const size_t bytes = static_cast<size_t>(dim) * sizeof(double);
    if (pos + bytes > payload.size()) {
      return Status::IOError("vector index " + path + ": truncated vector " +
                             std::to_string(i));
    }
    std::vector<double> v(static_cast<size_t>(dim));
    if (bytes > 0) std::memcpy(v.data(), payload.data() + pos, bytes);
    pos += bytes;
    index.Insert(std::move(v));
  }
  if (pos != payload.size()) {
    return Status::IOError("vector index " + path + ": " +
                           std::to_string(payload.size() - pos) +
                           " trailing bytes");
  }
  return index;
}

}  // namespace atena
