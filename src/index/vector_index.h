#ifndef ATENA_INDEX_VECTOR_INDEX_H_
#define ATENA_INDEX_VECTOR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace atena {

/// An *exact-result* hierarchical k-means (vocabulary-tree) index over
/// dense double vectors (DESIGN.md §14). The structure is the classic
/// Nistér–Stewénius layout — each internal node holds up to `branching`
/// children produced by a deterministic k-means split of its members —
/// but unlike the approximate retrieval it was invented for, every query
/// here is **exact**: tree nodes carry a ball bound (centroid + radius
/// covering every vector in the subtree), the triangle inequality prunes
/// subtrees that provably cannot contain a closer vector, and survivors
/// are re-checked with the same squared-distance kernel a flat scan uses
/// (`SquaredEuclideanDistanceBounded`). Pruning applies a conservative
/// relative slack many orders of magnitude above the kernel's worst-case
/// floating-point error, so the returned minimum is bit-identical to the
/// flat scan's at any history length (property-enforced in
/// tests/index_test.cc; exactness argument in DESIGN.md §14).
///
/// Vectors are identified by their insertion order (0, 1, 2, ...). The
/// tree shape depends on how the index was grown (batch build vs
/// incremental inserts), but query *results* never do — both paths scan
/// an unpruned candidate set that provably contains the optimum.
///
/// Vectors of different lengths are allowed: distances follow
/// EuclideanDistance's documented tails-count-as-distance-from-zero
/// semantics (equivalent to zero-padding into one space, so the triangle
/// inequality the bounds rely on holds; pinned in tests/common_test.cc).
///
/// Not internally synchronized: concurrent queries are safe, any mutation
/// requires external exclusion (the EDA environment owns one per session;
/// the NotebookStore wraps a shared one in a mutex).
class VectorIndex {
 public:
  struct Options {
    /// Fan-out of each k-means split.
    int branching = 8;
    /// A leaf holding more vectors than this is split (when its members
    /// are separable; duplicate-heavy leaves stay flat and re-try after
    /// doubling, keeping amortized insert cost bounded). Tuned against
    /// real display histories (bench/bench_index.cc): leaf members are
    /// scanned with the cheap early-breaking bounded kernel while every
    /// extra node costs a centroid distance per query, so leaves several
    /// times the branching factor beat thin ones — but past ~32 the
    /// extra members scanned outweigh the nodes saved.
    int leaf_capacity = 32;
    /// Lloyd iterations per split. Affects tree quality (pruning rate)
    /// only, never query results.
    int kmeans_iterations = 6;
  };

  struct Neighbor {
    int32_t id = 0;
    double squared_distance = 0.0;
  };

  /// Pruning-effectiveness counters of one query (bench/tests).
  struct QueryStats {
    int64_t nodes_visited = 0;
    int64_t nodes_pruned = 0;
    int64_t vectors_checked = 0;
  };

  VectorIndex();
  explicit VectorIndex(Options options);

  /// Batch-builds by recursive top-down k-means over all of `vectors`
  /// (ids follow the input order). Equivalent to inserting one by one in
  /// every observable way except tree shape / pruning rate.
  static VectorIndex Build(std::vector<std::vector<double>> vectors);
  static VectorIndex Build(std::vector<std::vector<double>> vectors,
                           Options options);

  /// Appends `vector` and threads it into the tree (descend to the
  /// nearest child at each level, growing each visited ball; split
  /// overflowing leaves). Returns the new vector's id.
  int32_t Insert(std::vector<double> vector);

  /// Removes every vector (options are kept).
  void Clear();

  size_t size() const { return vectors_.size(); }
  bool empty() const { return vectors_.empty(); }
  const std::vector<double>& vector(int32_t id) const {
    return vectors_[static_cast<size_t>(id)];
  }
  const Options& options() const { return options_; }

  /// Exact minimum squared Euclidean distance from `query` to any indexed
  /// vector with id < `id_limit` — bit-identical to a flat running-min
  /// scan with SquaredEuclideanDistanceBounded over the same ids, in id
  /// order. Returns +infinity when no id qualifies. `id_limit` exists for
  /// the diversity reward, which excludes the current display (the most
  /// recently inserted vector) from its own history scan.
  double MinSquaredDistance(
      const std::vector<double>& query,
      size_t id_limit = std::numeric_limits<size_t>::max(),
      QueryStats* stats = nullptr) const;

  /// Exact k nearest neighbors among ids < `id_limit`, sorted by
  /// (squared_distance, id) ascending — the deterministic total order, so
  /// results are identical however the index was grown. Returns fewer
  /// than k entries when fewer vectors qualify.
  std::vector<Neighbor> TopK(
      const std::vector<double>& query, int k,
      size_t id_limit = std::numeric_limits<size_t>::max(),
      QueryStats* stats = nullptr) const;

  /// Persists the index as a CRC-framed container (common/file_io).
  /// Only the vectors and options are stored: the tree is rebuilt on
  /// Load by replaying the inserts, so a loaded index answers every
  /// query identically to the saved one by construction.
  Status Save(const std::string& path) const;
  static Result<VectorIndex> Load(const std::string& path);

  // Structure introspection (tests/bench).
  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

 private:
  struct Node {
    std::vector<double> centroid;
    /// Upper bound on EuclideanDistance(centroid, v) for every vector v
    /// in this subtree. Grows monotonically under Insert; never shrinks.
    double radius = 0.0;
    std::vector<int32_t> children;  // internal node: child node ids
    /// Children's centroids packed contiguously in children order (with
    /// lengths alongside): the per-child prune test walks one sequential
    /// arena. Valid for the node's lifetime — a child's centroid is fixed
    /// at creation (inserts grow only its radius, which lives on the
    /// child node itself).
    std::vector<double> child_centroids;
    std::vector<uint32_t> child_centroid_dims;
    std::vector<int32_t> ids;       // leaf: member vector ids
    /// Leaf members' coordinates packed contiguously in ids order, with
    /// their lengths alongside: a leaf scan is one sequential walk over
    /// this arena instead of a cache-missing pointer chase through
    /// vectors_. Pure mirror of the members — rebuilt on split, cleared
    /// when the node becomes internal.
    std::vector<double> packed;
    std::vector<uint32_t> packed_dims;
    bool leaf = true;
    /// Split retry threshold for duplicate-heavy leaves: 0 = split as
    /// soon as capacity is exceeded; otherwise re-attempt once ids.size()
    /// reaches this count.
    size_t retry_split_at = 0;
  };

  int32_t NewNode();
  /// Appends vector `id`'s coordinates to a leaf's packed arena.
  void PackMember(Node* node, int32_t id);
  /// Rebuilds a node's packed child-centroid arena from its children.
  void PackChildCentroids(Node* node);
  void SplitLeaf(int32_t node_id);
  /// Recursive top-down batch build of `ids` under `node_id`.
  void BuildNode(int32_t node_id, std::vector<int32_t> ids);
  /// Deterministic k-means over the member set; returns per-member
  /// cluster assignments and the cluster count (1 = unseparable).
  int KMeans(const std::vector<int32_t>& ids,
             std::vector<int>* assignment) const;
  void SetCentroidAndRadius(Node* node, const std::vector<int32_t>& ids) const;

  Options options_;
  std::vector<std::vector<double>> vectors_;
  std::vector<Node> nodes_;  // nodes_[0] is the root (present once non-empty)
};

}  // namespace atena

#endif  // ATENA_INDEX_VECTOR_INDEX_H_
