#ifndef ATENA_REWARD_COMPOUND_H_
#define ATENA_REWARD_COMPOUND_H_

#include <memory>

#include "coherency/classifier.h"
#include "eda/environment.h"

namespace atena {

/// The full ATENA reward (paper §4.2): a weighted sum of interestingness,
/// diversity and coherency. Weights can be auto-calibrated on a warmup
/// corpus of random sessions so that no component contributes less than 10%
/// of the mean absolute reward (paper §6.1). Component switches support the
/// interestingness-only baselines and the reward ablation bench.
class CompoundReward final : public RewardSignal {
 public:
  struct Options {
    double weight_interestingness = 1.0;
    double weight_diversity = 1.0;
    double weight_coherency = 1.0;
    bool enable_interestingness = true;
    bool enable_diversity = true;
    bool enable_coherency = true;
    /// Random warmup episodes used by Calibrate.
    int calibration_episodes = 15;
    /// Target share of the mean absolute reward per component after
    /// calibration (renormalized over the enabled components). The paper
    /// requires every component to stay above 10% (§6.1) but lets the
    /// weights "reflect different priorities"; coherency gets the largest
    /// share so that operations humans would never write are clearly
    /// penalized.
    double share_interestingness = 0.3;
    double share_diversity = 0.2;
    double share_coherency = 0.5;
    uint64_t seed = 1234;
  };

  /// `coherency` may be null only when enable_coherency is false.
  explicit CompoundReward(std::shared_ptr<CoherencyClassifier> coherency)
      : CompoundReward(std::move(coherency), Options()) {}
  CompoundReward(std::shared_ptr<CoherencyClassifier> coherency,
                 Options options);

  /// Runs reward-free random sessions on `env`, measures each enabled
  /// component's mean magnitude, and rescales the weights so every enabled
  /// component contributes an equal share of the mean total (hence each is
  /// ≥ 10% for up to three components). Leaves the environment reset.
  Status Calibrate(EdaEnvironment* env);

  double Compute(const RewardContext& context) override;

  /// Deadline degradation (serving): a degraded CompoundReward skips the
  /// diversity component — the only term whose cost is O(session history),
  /// a min-Euclidean-distance scan over every prior display vector — and
  /// scores it 0, keeping the O(1) interestingness and coherency terms.
  void SetDegradedMode(bool degraded) override { degraded_ = degraded; }
  bool degraded_mode() const { return degraded_; }

  /// Raw (unweighted) component values of the last Compute call.
  struct Components {
    double interestingness = 0.0;
    double diversity = 0.0;
    double coherency = 0.0;
  };
  const Components& last_components() const { return last_; }
  const Options& options() const { return options_; }

  /// The trained coherency classifier. Scoring is const (thread-safe), so
  /// multi-actor training builds one per-actor CompoundReward clone around
  /// this shared classifier instead of re-training it per actor — Compute
  /// itself is stateful (`last_components`) and must never be shared across
  /// concurrently stepped environments.
  const std::shared_ptr<CoherencyClassifier>& coherency() const {
    return coherency_;
  }

 private:
  Components Measure(const RewardContext& context) const;

  std::shared_ptr<CoherencyClassifier> coherency_;
  Options options_;
  Components last_;
  bool degraded_ = false;
};

/// Builds the standard fully-assembled ATENA reward for `env`'s dataset:
/// trains the coherency classifier (standard rule set + focal attributes)
/// and calibrates the component weights. The returned object must outlive
/// its attachment to the environment.
Result<std::shared_ptr<CompoundReward>> MakeStandardReward(
    EdaEnvironment* env, CompoundReward::Options options);
Result<std::shared_ptr<CompoundReward>> MakeStandardReward(EdaEnvironment* env);

}  // namespace atena

#endif  // ATENA_REWARD_COMPOUND_H_
