#ifndef ATENA_REWARD_INTERESTINGNESS_H_
#define ATENA_REWARD_INTERESTINGNESS_H_

#include "eda/environment.h"

namespace atena {

/// Interestingness of a GROUP operation (paper §4.2): a conciseness measure
/// over the number of groups g, the number of grouped attributes a, and the
/// number of underlying tuples r. Compact groupings that cover many tuples
/// score high; degenerate groupings (a single group, or ≈1 tuple per group)
/// score low. Built from normalized sigmoids with predefined centers and
/// widths. Returns a value in [0, 1].
double GroupInterestingness(int64_t num_groups, int num_group_attrs,
                            int64_t num_tuples);

/// Interestingness of a FILTER operation (paper §4.2): the deviation of the
/// result display from the previous display, h(max_A KL(P_A(d_t) ||
/// P_A(d_{t-1}))). For grouped displays, only the aggregated attribute is
/// compared (group-size distributions when the aggregation is COUNT).
/// Returns a value in [0, 1].
double FilterInterestingness(const EdaEnvironment& env,
                             const Display& current, const Display& previous);

/// Dispatches on the operation type: group conciseness for GROUP, KL
/// deviation for FILTER, and 0 for BACK (revisiting an old display carries
/// no new information; diversity/coherency govern BACK's utility).
double OperationInterestingness(const RewardContext& context);

}  // namespace atena

#endif  // ATENA_REWARD_INTERESTINGNESS_H_
