#ifndef ATENA_REWARD_DIVERSITY_H_
#define ATENA_REWARD_DIVERSITY_H_

#include "eda/environment.h"

namespace atena {

/// Diversity reward (paper §4.2): the minimal Euclidean distance between
/// the current display vector d̂_t and the vectors of all previous displays
/// d̂_{t'}, t' < t, normalized by sqrt(vector dimension) so the value is
/// scale-free in [0, ~1]. Duplicated displays (e.g. after BACK or a no-op)
/// score exactly 0.
double DiversityReward(const RewardContext& context);

}  // namespace atena

#endif  // ATENA_REWARD_DIVERSITY_H_
