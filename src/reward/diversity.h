#ifndef ATENA_REWARD_DIVERSITY_H_
#define ATENA_REWARD_DIVERSITY_H_

#include <vector>

#include "eda/environment.h"
#include "index/vector_index.h"

namespace atena {

/// What the diversity reward actually consumes, extracted from the
/// environment: the display history and, when the environment's
/// incremental per-session index covers that history exactly, the index
/// to route the min-distance query through. A null `index` (short
/// episodes below the activation threshold, index disabled by config, or
/// a caller that only has raw vectors) selects the scalar scan — results
/// are bit-identical either way, so the choice is purely a matter of
/// speed.
struct IndexedRewardContext {
  /// Chronological display vectors d̂_0..d̂_t; the last entry is the
  /// current display being scored.
  const std::vector<std::vector<double>>* vectors = nullptr;
  /// Index over exactly `vectors` (ids matching positions), or null.
  const VectorIndex* index = nullptr;
};

/// Builds the indexed view of a step: takes the environment's display
/// history and its display index when (and only when) the index is in
/// sync with the history.
IndexedRewardContext MakeIndexedRewardContext(const RewardContext& context);

/// Diversity reward (paper §4.2): the minimal Euclidean distance between
/// the current display vector d̂_t and the vectors of all previous displays
/// d̂_{t'}, t' < t, normalized by sqrt(vector dimension) so the value is
/// scale-free in [0, ~1]. Duplicated displays (e.g. after BACK or a no-op)
/// score exactly 0.
///
/// Routed through the environment's display index when available
/// (sub-linear in history length); otherwise a scalar scan. Both paths
/// return bit-identical values (property-enforced in tests/index_test.cc).
double DiversityReward(const RewardContext& context);
double DiversityReward(const IndexedRewardContext& context);

/// Retained scalar reference (the PR 7 kernel/scalar A/B pattern): a flat
/// running-min scan over squared distances with early exit, one sqrt at
/// the end. Ignores `context.index`. The indexed path's exact re-check
/// uses the same squared-distance kernel, which is how bit-identity is
/// guaranteed (DESIGN.md §14).
double ScalarDiversityReward(const IndexedRewardContext& context);

}  // namespace atena

#endif  // ATENA_REWARD_DIVERSITY_H_
