#include "reward/interestingness.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"
#include "dataframe/stats.h"

namespace atena {

namespace {

/// Sigmoid squashing of a KL divergence into (0,1) — "the sigmoid h(·) is
/// used to obtain a more significant difference in values" (paper §4.2).
/// Center 0.5 nat: a mild distribution shift scores ~0.5, a strong shift
/// saturates toward 1.
double SquashKl(double kl) { return ScaledSigmoid(kl, 0.5, 0.25); }

/// Support discount: a deviation witnessed by a handful of tuples is an
/// anecdote, not an exception (the exceptionality literature the reward
/// follows [37, 44] scores subgroups, not single rows). ≈0 for one row,
/// ≈1 from a dozen rows up.
double SupportFactor(size_t result_rows) {
  return ScaledSigmoid(static_cast<double>(result_rows), 5.0, 2.0);
}

/// Group sizes histogrammed as *relative shares* on a half-log2 scale:
/// comparing exact sizes would register any one-row change as a full
/// distribution shift, and comparing absolute sizes would register a
/// proportional shrink (which leaves the composition unchanged) as one.
std::unordered_map<int64_t, double> GroupSizeHistogram(const Display& d) {
  std::unordered_map<int64_t, double> hist;
  if (!d.grouped || d.rows.empty()) return hist;
  const double total = static_cast<double>(d.rows.size());
  for (const auto& g : d.grouped->groups) {
    const double share = static_cast<double>(g.rows.size()) / total;
    hist[static_cast<int64_t>(std::floor(2.0 * std::log2(share)))] += 1.0;
  }
  return hist;
}

/// Equi-width histogram of two value samples over their common range, so
/// continuous aggregated attributes compare by distribution shape rather
/// than by (almost always disjoint) exact values.
void BinnedHistograms(const std::vector<double>& a,
                      const std::vector<double>& b, int bins,
                      std::unordered_map<int64_t, double>* ha,
                      std::unordered_map<int64_t, double>* hb) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(hi > lo)) {
    if (!a.empty()) (*ha)[0] = static_cast<double>(a.size());
    if (!b.empty()) (*hb)[0] = static_cast<double>(b.size());
    return;
  }
  const double width = (hi - lo) / bins;
  auto bin_of = [&](double v) {
    int b = static_cast<int>((v - lo) / width);
    return static_cast<int64_t>(std::min(b, bins - 1));
  };
  for (double v : a) (*ha)[bin_of(v)] += 1.0;
  for (double v : b) (*hb)[bin_of(v)] += 1.0;
}

/// Values of `column` over `rows`, nulls skipped.
std::vector<double> NumericValues(const Column& column,
                                  const std::vector<int32_t>& rows) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (int32_t r : rows) {
    if (column.IsNull(r)) continue;
    out.push_back(column.AsDoubleOrNan(r));
  }
  return out;
}

}  // namespace

double GroupInterestingness(int64_t num_groups, int num_group_attrs,
                            int64_t num_tuples) {
  if (num_groups <= 0 || num_tuples <= 0) return 0.0;
  const double g = static_cast<double>(num_groups);
  const double a = static_cast<double>(num_group_attrs);
  const double r = static_cast<double>(num_tuples);

  // h_g: a bump over the group count — at least 2 groups, not hundreds.
  const double hg = SigmoidBump(g, /*low_center=*/1.5, /*low_width=*/0.25,
                                /*high_center=*/25.0, /*high_width=*/8.0);
  // h_r: groups should summarize many tuples (conciseness [9, 17]):
  // average group size of 3+ is informative, singleton groups are not.
  const double hr = ScaledSigmoid(r / g, /*center=*/3.0, /*width=*/1.5);
  // h_a: shallow groupings are easier to read; 4+ attributes is penalized.
  const double ha = 1.0 - ScaledSigmoid(a, /*center=*/3.5, /*width=*/0.5);
  return hg * hr * ha;
}

double FilterInterestingness(const EdaEnvironment& env,
                             const Display& current, const Display& previous) {
  const Table& table = env.table();
  // Cached, zero-copy capped selections (shared with the encoder's views).
  const RowSet cur_rows = env.CappedRows(current);
  const RowSet prev_rows = env.CappedRows(previous);

  const double support = SupportFactor(current.rows.size());
  if (current.is_grouped()) {
    // Compare only the aggregated attribute (paper §4.2). Continuous
    // attributes are compared by binned distribution; exact-value
    // histograms would make every filter look maximally interesting.
    if (current.agg != AggFunc::kCount && current.agg_column >= 0) {
      const Column& agg_col = *table.column(current.agg_column);
      std::unordered_map<int64_t, double> p, q;
      BinnedHistograms(NumericValues(agg_col, cur_rows),
                       NumericValues(agg_col, prev_rows), 16, &p, &q);
      return support * SquashKl(KlDivergence(p, q));
    }
    // COUNT aggregation: compare the group-size distributions.
    auto p = GroupSizeHistogram(current);
    auto q = GroupSizeHistogram(previous);
    if (q.empty()) return support * SquashKl(KlDivergence(p, p));
    return support * SquashKl(KlDivergence(p, q));
  }

  // Deviation is measured over the analyzable (categorical-ish) attributes
  // only: a range cut on a key-like or continuous column (row ids,
  // timestamps) trivially reshapes that column's distribution without
  // telling a reader anything.
  // ...and excluding the filtered attribute itself: a predicate on A
  // trivially reshapes A's distribution; what makes the subset exceptional
  // is deviation in the OTHER attributes (the SeeDB-style deviation the
  // paper cites [45]).
  const int filtered_column =
      current.filters.empty() ? -1 : current.filters.back().column;
  const auto& ratios = env.column_distinct_ratios();
  double max_kl = 0.0;
  bool any_column = false;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c == filtered_column) continue;
    if (ratios[static_cast<size_t>(c)] > 0.5) continue;
    any_column = true;
    auto p = ValueHistogram(*table.column(c), cur_rows);
    auto q = ValueHistogram(*table.column(c), prev_rows);
    max_kl = std::max(max_kl, KlDivergence(p, q));
  }
  if (!any_column) {
    // Degenerate schema (every column key-like): fall back to all columns.
    for (int c = 0; c < table.num_columns(); ++c) {
      auto p = ValueHistogram(*table.column(c), cur_rows);
      auto q = ValueHistogram(*table.column(c), prev_rows);
      max_kl = std::max(max_kl, KlDivergence(p, q));
    }
  }
  return support * SquashKl(max_kl);
}

double OperationInterestingness(const RewardContext& context) {
  if (!context.valid) return 0.0;
  const EdaEnvironment& env = *context.env;
  switch (context.op->type) {
    case OpType::kGroup: {
      const Display& d = env.current_display();
      if (!d.grouped) return 0.0;
      return GroupInterestingness(
          static_cast<int64_t>(d.grouped->groups.size()),
          static_cast<int>(d.group_columns.size()),
          static_cast<int64_t>(d.rows.size()));
    }
    case OpType::kFilter:
      return FilterInterestingness(env, env.current_display(),
                                   env.previous_display());
    case OpType::kBack:
      return 0.0;
  }
  return 0.0;
}

}  // namespace atena
