#include "reward/diversity.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace atena {

double DiversityReward(const RewardContext& context) {
  const auto& vectors = context.env->display_vectors();
  if (vectors.size() < 2) return 0.0;
  const auto& current = vectors.back();
  double min_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < vectors.size(); ++i) {
    min_distance = std::min(min_distance,
                            EuclideanDistance(current, vectors[i]));
  }
  const double dim = static_cast<double>(current.size());
  if (dim <= 0.0) return 0.0;
  return Clamp(min_distance / std::sqrt(dim), 0.0, 1.0);
}

}  // namespace atena
