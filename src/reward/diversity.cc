#include "reward/diversity.h"

#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace atena {

namespace {

/// Shared final step of both paths: one sqrt of the minimal squared
/// distance, then the sqrt(dim) normalization. sqrt is monotone and IEEE
/// correctly rounded, so min_i sqrt(x_i) == sqrt(min_i x_i) — taking the
/// min in squared space first is bit-identical to the pre-index code that
/// rooted every candidate.
double NormalizeMinSquared(double min_squared, size_t dim) {
  if (dim == 0) return 0.0;
  const double min_distance = std::sqrt(min_squared);
  return Clamp(min_distance / std::sqrt(static_cast<double>(dim)), 0.0, 1.0);
}

}  // namespace

IndexedRewardContext MakeIndexedRewardContext(const RewardContext& context) {
  IndexedRewardContext indexed;
  indexed.vectors = &context.env->display_vectors();
  const VectorIndex* index = context.env->display_index();
  // Only route through the index when it covers the history exactly; any
  // mismatch (index below its activation threshold, disabled, mid-rebuild)
  // falls back to the scalar scan.
  if (index != nullptr && index->size() == indexed.vectors->size()) {
    indexed.index = index;
  }
  return indexed;
}

double ScalarDiversityReward(const IndexedRewardContext& context) {
  const auto& vectors = *context.vectors;
  if (vectors.size() < 2) return 0.0;
  const auto& current = vectors.back();
  // Running min over squared distances with per-element early exit: the
  // partial sum is non-decreasing, so a candidate abandoned above the
  // running min can never be the minimum. One sqrt at the end instead of
  // one per candidate.
  double min_squared = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < vectors.size(); ++i) {
    const double sq =
        SquaredEuclideanDistanceBounded(current, vectors[i], min_squared);
    if (sq < min_squared) min_squared = sq;
  }
  return NormalizeMinSquared(min_squared, current.size());
}

double DiversityReward(const IndexedRewardContext& context) {
  const auto& vectors = *context.vectors;
  if (vectors.size() < 2) return 0.0;
  if (context.index == nullptr) return ScalarDiversityReward(context);
  const auto& current = vectors.back();
  // id_limit excludes the current display (the most recent insert) from
  // its own history. Ball-bound pruning plus the exact squared-distance
  // re-check make this bit-identical to the scalar scan (DESIGN.md §14).
  const double min_squared =
      context.index->MinSquaredDistance(current, vectors.size() - 1);
  return NormalizeMinSquared(min_squared, current.size());
}

double DiversityReward(const RewardContext& context) {
  return DiversityReward(MakeIndexedRewardContext(context));
}

}  // namespace atena
