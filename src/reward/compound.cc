#include "reward/compound.h"

#include <cmath>

#include "coherency/rules.h"
#include "common/logging.h"
#include "common/random.h"
#include "reward/diversity.h"
#include "reward/interestingness.h"

namespace atena {

CompoundReward::CompoundReward(std::shared_ptr<CoherencyClassifier> coherency,
                               Options options)
    : coherency_(std::move(coherency)), options_(options) {
  ATENA_CHECK(coherency_ != nullptr || !options_.enable_coherency)
      << "coherency component enabled without a classifier";
}

CompoundReward::Components CompoundReward::Measure(
    const RewardContext& context) const {
  Components c;
  if (options_.enable_interestingness) {
    c.interestingness = OperationInterestingness(context);
  }
  if (options_.enable_diversity && !degraded_) {
    c.diversity = DiversityReward(context);
  }
  if (options_.enable_coherency) {
    // Center the coherency confidence at 0 so incoherent operations are
    // penalized, not merely under-rewarded: [0,1] -> [-1,1].
    c.coherency = 2.0 * coherency_->Score(context) - 1.0;
  }
  return c;
}

double CompoundReward::Compute(const RewardContext& context) {
  last_ = Measure(context);
  return options_.weight_interestingness * last_.interestingness +
         options_.weight_diversity * last_.diversity +
         options_.weight_coherency * last_.coherency;
}

Status CompoundReward::Calibrate(EdaEnvironment* env) {
  env->SetRewardSignal(nullptr);
  Rng rng(options_.seed);
  double sum_i = 0.0, sum_d = 0.0, sum_c = 0.0;
  int64_t n = 0;
  for (int episode = 0; episode < options_.calibration_episodes; ++episode) {
    env->Reset();
    while (!env->done()) {
      EnvAction action = SampleRandomAction(env->action_space(), &rng);
      StepOutcome outcome = env->Step(action);
      RewardContext context;
      context.env = env;
      context.op = &env->steps().back().op;
      context.valid = outcome.valid;
      Components c = Measure(context);
      sum_i += std::fabs(c.interestingness);
      sum_d += std::fabs(c.diversity);
      sum_c += std::fabs(c.coherency);
      ++n;
    }
  }
  env->Reset();
  if (n == 0) {
    return Status::FailedPrecondition("calibration produced no steps");
  }
  // Scale each enabled component so its mean magnitude equals its target
  // share of 1 (shares renormalized over the enabled components). The mean
  // overall reward magnitude stays around 1 per step, so episode rewards
  // are comparable across datasets and the invalid-action penalty keeps
  // its bite.
  double share_total =
      (options_.enable_interestingness ? options_.share_interestingness : 0) +
      (options_.enable_diversity ? options_.share_diversity : 0) +
      (options_.enable_coherency ? options_.share_coherency : 0);
  if (share_total <= 0.0) share_total = 1.0;
  auto weight_for = [n, share_total](double sum, double share) {
    double mean = sum / static_cast<double>(n);
    double target = share / share_total;
    return mean > 1e-9 ? target / mean : 1.0;
  };
  if (options_.enable_interestingness) {
    options_.weight_interestingness =
        weight_for(sum_i, options_.share_interestingness);
  }
  if (options_.enable_diversity) {
    options_.weight_diversity = weight_for(sum_d, options_.share_diversity);
  }
  if (options_.enable_coherency) {
    options_.weight_coherency = weight_for(sum_c, options_.share_coherency);
  }
  ATENA_LOG(kInfo) << "reward calibration (" << env->dataset().info.id
                   << "): w_int=" << options_.weight_interestingness
                   << " w_div=" << options_.weight_diversity
                   << " w_coh=" << options_.weight_coherency;
  return Status::OK();
}

Result<std::shared_ptr<CompoundReward>> MakeStandardReward(
    EdaEnvironment* env, CompoundReward::Options options) {
  std::shared_ptr<CoherencyClassifier> coherency;
  if (options.enable_coherency) {
    coherency = std::make_shared<CoherencyClassifier>(
        StandardRuleSet(env->dataset()));
    ATENA_RETURN_IF_ERROR(coherency->Train(env));
  }
  auto reward = std::make_shared<CompoundReward>(std::move(coherency),
                                                 options);
  ATENA_RETURN_IF_ERROR(reward->Calibrate(env));
  return reward;
}

Result<std::shared_ptr<CompoundReward>> MakeStandardReward(
    EdaEnvironment* env) {
  return MakeStandardReward(env, CompoundReward::Options());
}

}  // namespace atena
