#ifndef ATENA_COMMON_FILE_IO_H_
#define ATENA_COMMON_FILE_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace atena {

/// Durable, crash-safe file primitives shared by every component that
/// persists state (network checkpoints, training checkpoints, CSV export).
/// The invariant all writers get for free: an interrupted write can never
/// corrupt an existing file — the previous contents of `path` survive any
/// failure, because new bytes land in a temp file in the same directory and
/// only an atomic rename() publishes them.

/// True when `path` names an existing filesystem entry.
bool FileExists(const std::string& path);

/// Atomically replaces `path` with `contents`:
///   1. write `path + ".tmp"` in the same directory,
///   2. flush + fsync the temp file,
///   3. rename() it over `path`,
///   4. fsync the containing directory so the rename itself is durable.
/// On any failure the temp file is removed and `path` is untouched; the
/// returned IOError names the failing step and carries strerror(errno)
/// detail.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Reads the whole of `path` into `*out` (binary, no translation). Errors
/// carry strerror(errno) detail; `*out` is only modified on success.
Status ReadFileToString(const std::string& path, std::string* out);

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `data`.
uint32_t Crc32(std::string_view data);

/// Atomically writes a checksummed container:
///
///   <magic>\n
///   crc32 <8-hex-digits> size <payload-bytes>\n
///   <payload>
///
/// so readers can reject truncated or bit-rotted files before interpreting
/// a single payload byte. Uses AtomicWriteFile underneath.
Status WriteChecksummedFile(const std::string& path, std::string_view magic,
                            std::string_view payload);

/// Reads a container written by WriteChecksummedFile and verifies it end to
/// end: magic mismatch -> InvalidArgument; short/overlong file or size
/// mismatch -> IOError("... truncated ..."); checksum mismatch ->
/// IOError("... checksum mismatch ..."). `*payload` is only modified when
/// every check passes.
Status ReadChecksummedFile(const std::string& path, std::string_view magic,
                           std::string* payload);

/// Fault-injection hook for tests. When set, it is consulted before each
/// low-level step of AtomicWriteFile — `op` is one of "open", "write",
/// "fsync", "rename", "dirsync" — and returning true makes that step fail
/// as if the kernel had returned EIO (temp-file cleanup still runs, so the
/// atomicity contract can be asserted under every failure point). Pass an
/// empty function to clear. Not thread-safe; tests only.
using FileIoFailureHook =
    std::function<bool(const char* op, const std::string& path)>;
void SetFileIoFailureHookForTesting(FileIoFailureHook hook);

}  // namespace atena

#endif  // ATENA_COMMON_FILE_IO_H_
