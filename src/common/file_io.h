#ifndef ATENA_COMMON_FILE_IO_H_
#define ATENA_COMMON_FILE_IO_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>

#include "common/status.h"

namespace atena {

/// Durable, crash-safe file primitives shared by every component that
/// persists state (network checkpoints, training checkpoints, CSV export).
/// The invariant all writers get for free: an interrupted write can never
/// corrupt an existing file — the previous contents of `path` survive any
/// failure, because new bytes land in a temp file in the same directory and
/// only an atomic rename() publishes them.

/// True when `path` names an existing filesystem entry.
bool FileExists(const std::string& path);

/// Atomically replaces `path` with `contents`:
///   1. write `path + ".tmp"` in the same directory,
///   2. flush + fsync the temp file,
///   3. rename() it over `path`,
///   4. fsync the containing directory so the rename itself is durable.
/// On any failure the temp file is removed and `path` is untouched; the
/// returned IOError names the failing step and carries strerror(errno)
/// detail.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Reads the whole of `path` into `*out` (binary, no translation). Errors
/// carry strerror(errno) detail; `*out` is only modified on success.
Status ReadFileToString(const std::string& path, std::string* out);

/// Durably appends `data` to `path` (creating it when absent): open with
/// O_APPEND, write the whole buffer, fsync. When the call creates the file
/// its directory entry is fsynced too. This is the log-structured sibling
/// of AtomicWriteFile — it never rewrites existing bytes, so a crash can
/// only leave a *torn suffix*, never damage what earlier appends made
/// durable. Readers of append-only files (the serving journal and health
/// log) must therefore tolerate an incomplete final record.
/// Consults the same failure hook as AtomicWriteFile with ops
/// "append-open", "append-write", "append-fsync" and "append-dirsync".
Status AppendDurableFile(const std::string& path, std::string_view data);

/// The hot-path variant of AppendDurableFile for high-frequency appenders
/// (the serving journal's group commit): the file descriptor is held open
/// across appends, and writing is decoupled from flushing — Append pushes
/// bytes into the kernel (cheap), Sync makes everything appended so far
/// durable with one fdatasync (the expensive part, paid only at commit
/// barriers). fdatasync persists the data and the file-size metadata
/// needed to read it back; a crash can only leave a torn suffix.
/// Consults the same failure hook with the same "append-*" ops as
/// AppendDurableFile, so fault matrices cover both. Not thread-safe.
class DurableAppender {
 public:
  DurableAppender() = default;
  ~DurableAppender();
  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;

  /// Opens (or creates, syncing the directory entry) `path` for appending.
  /// Closes any previously opened file first.
  Status Open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  /// True when bytes have been appended since the last successful Sync —
  /// i.e. a Sync would actually flush something.
  bool dirty() const { return dirty_; }
  /// Closes the descriptor; appends after a Close reopen via Open. Safe to
  /// call when not open. Call after the file is replaced (rename) so the
  /// next Open picks up the new inode. Deliberately does NOT sync: unsynced
  /// bytes are the caller's to flush (or to abandon, crash-style).
  void Close();

  /// Appends `data` on the held descriptor (write loop, no flush).
  /// FailedPrecondition when not open. Until the next Sync the new bytes
  /// survive a process crash (they are in the page cache) but not a
  /// system crash.
  Status Append(std::string_view data);

  /// Append of the concatenation of `parts` (at most 16 non-empty ones)
  /// as one gather write — the record's pieces never have to be copied
  /// into a contiguous buffer first. Same semantics and failure hook op
  /// ("append-write") as Append.
  Status AppendParts(std::initializer_list<std::string_view> parts);

  /// Makes every appended byte durable: one fdatasync ("append-fsync"
  /// hook op). No-op when nothing is unsynced or no file is open.
  Status Sync();

 private:
  int fd_ = -1;
  bool dirty_ = false;
  std::string path_;
};

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `data`.
uint32_t Crc32(std::string_view data);

/// Streaming form: extends a previous Crc32/Crc32Extend result with more
/// bytes — Crc32Extend(Crc32Extend(0, a), b) == Crc32(a + b), so a
/// record assembled from pieces can be checksummed without concatenating
/// them. Pass 0 for an empty prefix.
uint32_t Crc32Extend(uint32_t crc, std::string_view data);

/// Atomically writes a checksummed container:
///
///   <magic>\n
///   crc32 <8-hex-digits> size <payload-bytes>\n
///   <payload>
///
/// so readers can reject truncated or bit-rotted files before interpreting
/// a single payload byte. Uses AtomicWriteFile underneath.
Status WriteChecksummedFile(const std::string& path, std::string_view magic,
                            std::string_view payload);

/// Reads a container written by WriteChecksummedFile and verifies it end to
/// end: magic mismatch -> InvalidArgument; short/overlong file or size
/// mismatch -> IOError("... truncated ..."); checksum mismatch ->
/// IOError("... checksum mismatch ..."). `*payload` is only modified when
/// every check passes.
Status ReadChecksummedFile(const std::string& path, std::string_view magic,
                           std::string* payload);

/// Fault-injection hook for tests. When set, it is consulted before each
/// low-level step of AtomicWriteFile — `op` is one of "open", "write",
/// "fsync", "rename", "dirsync" — and of AppendDurableFile ("append-open",
/// "append-write", "append-fsync", "append-dirsync") — and returning true
/// makes that step fail
/// as if the kernel had returned EIO (temp-file cleanup still runs, so the
/// atomicity contract can be asserted under every failure point). Pass an
/// empty function to clear. Not thread-safe; tests only.
using FileIoFailureHook =
    std::function<bool(const char* op, const std::string& path)>;
void SetFileIoFailureHookForTesting(FileIoFailureHook hook);

}  // namespace atena

#endif  // ATENA_COMMON_FILE_IO_H_
