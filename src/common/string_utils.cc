#include "common/string_utils.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace atena {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  double value = 0.0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  // from_chars' general format accepts "nan"/"inf"/"infinity". Numeric
  // data (CSV cells, script literals) must never smuggle a non-finite
  // value in as if it were a measurement — callers treat a false return
  // as null-or-error, which is the honest reading of such a field.
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  if (out == "-0") out = "0";
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text.substr(0, width));
  out.resize(width, ' ');
  return out;
}

}  // namespace atena
