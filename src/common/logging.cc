#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace atena {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep just the basename to avoid absolute build paths in logs.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal

}  // namespace atena
