#ifndef ATENA_COMMON_MATH_UTILS_H_
#define ATENA_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace atena {

/// Standard logistic sigmoid 1 / (1 + e^-x).
double Sigmoid(double x);

/// Sigmoid with configurable center and width: Sigmoid((x - center) / width).
/// `width` > 0 yields an increasing curve, `width` < 0 a decreasing one.
/// This is the paper's "normalized sigmoid function with a predefined width
/// and center" (Section 4.2, citing [26]).
double ScaledSigmoid(double x, double center, double width);

/// A smooth "bump": rises through `low_center` and falls through
/// `high_center`, ≈1 between them. Used for conciseness-style rewards that
/// favor moderate values (e.g. a group-by with a handful of groups).
double SigmoidBump(double x, double low_center, double low_width,
                   double high_center, double high_width);

/// Shannon entropy (natural log) of an unnormalized histogram. Zero-weight
/// entries are ignored; an empty or all-zero histogram has entropy 0.
double Entropy(const std::vector<double>& counts);

/// Entropy normalized to [0,1] by log(support size); 0 when support <= 1.
double NormalizedEntropy(const std::vector<double>& counts);

/// Kullback-Leibler divergence D(P || Q) between two discrete distributions
/// given as value->count maps over arbitrary integer keys. Both histograms
/// are smoothed additively (epsilon added to every key in the union of
/// supports) and normalized, so the divergence is always finite. Returns 0
/// for two empty histograms.
double KlDivergence(const std::unordered_map<int64_t, double>& p,
                    const std::unordered_map<int64_t, double>& q,
                    double epsilon = 1e-4);

/// Squared Euclidean (L2) distance. Mismatched tails count as distance
/// from zero — equivalent to zero-padding the shorter vector — so vectors
/// of different lengths live in one well-defined metric space (the
/// vector index's ball bounds rely on this; see tests/common_test.cc).
/// The accumulation order is fixed (four striped lanes over the shared
/// prefix, combined deterministically, then the a-tail then the b-tail):
/// every caller that must agree bit-for-bit (the scalar diversity scan,
/// the index's exact re-check) goes through this one kernel.
double SquaredEuclideanDistance(const std::vector<double>& a,
                                const std::vector<double>& b);

/// Early-exit variant for running-min scans: returns the exact squared
/// distance when it is <= `bound`, otherwise some partial sum > `bound`
/// (the caller only compares against `bound`, so the exact value of a
/// rejected candidate is irrelevant). Because every term is >= 0 the
/// partial sums are non-decreasing, so the early exit can never discard
/// a candidate whose full distance is <= `bound` — min results are
/// bit-identical to the unbounded kernel.
double SquaredEuclideanDistanceBounded(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       double bound);

/// Raw-buffer form of the bounded kernel, for callers that keep vectors in
/// a packed arena (the vector index's leaf storage). Identical
/// accumulation order and early-exit contract as the std::vector overload,
/// which delegates here — one kernel, bit-identical results.
double SquaredEuclideanDistanceBounded(const double* a, size_t a_size,
                                       const double* b, size_t b_size,
                                       double bound);

/// Euclidean (L2) distance: sqrt(SquaredEuclideanDistance(a, b)).
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Numerically stable mean and (population) variance of `values`.
/// Returns {0, 0} for an empty input.
struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;
};
MeanVar ComputeMeanVar(const std::vector<double>& values);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// log(1 + x) normalization of a non-negative count into [0, 1), with a soft
/// scale: Log1pNormalize(x, s) = log1p(x) / log1p(s) clamped to [0, 1].
/// Used by the observation encoder for unbounded counts.
double Log1pNormalize(double x, double scale);

}  // namespace atena

#endif  // ATENA_COMMON_MATH_UTILS_H_
