#ifndef ATENA_COMMON_RANDOM_H_
#define ATENA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace atena {

/// Complete serializable state of an Rng: the four xoshiro256** words plus
/// the Marsaglia-polar spare. Capturing and restoring it resumes the stream
/// bit-identically — the basis of crash-safe training checkpoints
/// (rl/checkpoint.h).
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_spare_gaussian = false;
  double spare_gaussian = 0.0;
};

/// Deterministic, seedable PRNG used everywhere in the library so that
/// experiments are reproducible bit-for-bit across runs and platforms.
///
/// The core generator is xoshiro256** seeded via SplitMix64, which has good
/// statistical quality and is much faster than std::mt19937_64. The class
/// intentionally does not depend on <random> distributions (their outputs
/// are not portable across standard library implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Bernoulli with probability `p` of true.
  bool NextBool(double p = 0.5);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Returns weights.size() - 1 if all weights are ~0 at the tail; the
  /// caller must pass at least one positive weight.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` (s > 0). Used by the
  /// synthetic data generators to produce realistic token frequency skew.
  size_t NextZipf(size_t n, double s);

  /// Snapshot of the full generator state; set_state restores it so the
  /// stream continues exactly where the snapshot was taken.
  RngState state() const;
  void set_state(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace atena

#endif  // ATENA_COMMON_RANDOM_H_
