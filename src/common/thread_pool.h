#ifndef ATENA_COMMON_THREAD_POOL_H_
#define ATENA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atena {

/// A small persistent worker pool with a blocking parallel-for, built for
/// the trainer's lockstep env stepping (DESIGN.md §9).
///
/// Determinism contract: ParallelFor(n, fn) runs fn(0..n-1) exactly once
/// each and returns only when all have finished. Which thread runs which
/// index (and in what order) is scheduling-dependent, so callers must keep
/// tasks independent — each task may only write state owned by its index
/// (plus properly synchronized shared structures such as DisplayCache).
/// Outputs are gathered into index-addressed slots and any floating-point
/// reduction over them is performed by the caller afterwards, in index
/// order — which is what makes pool-driven results bit-identical to a
/// serial loop at any thread count.
///
/// Tasks must not throw: the pool runs fn on plain worker threads and an
/// escaping exception terminates the process (this codebase reports errors
/// through Status, never exceptions).
///
/// The calling thread participates in the work, so a pool constructed with
/// `num_threads` applies at most `num_threads` concurrent tasks while
/// holding only `num_threads - 1` OS threads.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (clamped below at 0). A pool of one
  /// thread has no workers: ParallelFor degenerates to an inline loop on
  /// the caller.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Must not race an in-flight ParallelFor.
  ~ThreadPool();

  /// Total concurrency (workers + the participating caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0), ..., fn(n-1) across the pool and blocks until every call
  /// has returned. Indices are claimed dynamically (load-balanced); see the
  /// class comment for the determinism contract. Reentrant calls (fn itself
  /// calling ParallelFor on the same pool) are not supported.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// The default thread count for `tasks` parallel tasks: the task count
  /// capped at the hardware concurrency (and at least 1). Explicit user
  /// thread counts may exceed this — useful for tests that interleave more
  /// threads than cores — but the default never oversubscribes.
  static int DefaultThreads(int tasks);

 private:
  void WorkerLoop();
  /// Claims and runs job indices until the current job is exhausted.
  /// Expects `lock` held on `mutex_`; drops it around each task body.
  void RunJobShare(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  /// Incremented per ParallelFor; workers use it to detect fresh jobs.
  uint64_t job_generation_ = 0;
  bool shutdown_ = false;

  // Current job. All fields are read and written under `mutex_`; the task
  // bodies themselves run unlocked.
  const std::function<void(int)>* job_fn_ = nullptr;
  int job_size_ = 0;
  int next_index_ = 0;
  /// Claimed-but-unfinished plus unclaimed tasks; the final decrement
  /// signals `job_done_`.
  int remaining_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace atena

#endif  // ATENA_COMMON_THREAD_POOL_H_
