#include "common/random.h"

#include <cmath>

namespace atena {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
  has_spare_gaussian_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's method: multiply-shift with rejection of the biased zone.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (~bound + 1) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble() * 2.0 - 1.0;
    v = NextDouble() * 2.0 - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

RngState Rng::state() const {
  RngState out;
  for (int i = 0; i < 4; ++i) out.words[i] = state_[i];
  out.has_spare_gaussian = has_spare_gaussian_;
  out.spare_gaussian = spare_gaussian_;
  return out;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_spare_gaussian_ = state.has_spare_gaussian;
  spare_gaussian_ = state.spare_gaussian;
}

size_t Rng::NextZipf(size_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over the (small) finite support. The harmonic
  // normalizer is recomputed per call; generators cache an Rng per column so
  // this stays off any hot path.
  double h = 0.0;
  for (size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double target = NextDouble() * h;
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (target < acc) return k - 1;
  }
  return n - 1;
}

}  // namespace atena
