#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace atena {

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreads(int tasks) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int cores = hw == 0 ? 1 : static_cast<int>(hw);
  return std::max(1, std::min(tasks, cores));
}

void ThreadPool::RunJobShare(std::unique_lock<std::mutex>& lock) {
  // Indices are claimed one at a time under the lock: tasks are few and
  // coarse (an environment step dwarfs a mutex acquisition), and claiming
  // under the lock makes the job state trivially consistent — a worker that
  // wakes late can never run a stale job or steal from the next one.
  while (next_index_ < job_size_) {
    const int index = next_index_++;
    const std::function<void(int)>* fn = job_fn_;
    lock.unlock();
    (*fn)(index);
    lock.lock();
    // job_fn_ stays valid throughout fn: ParallelFor only clears it once
    // remaining_ hits 0, and this task's decrement has not happened yet.
    if (--remaining_ == 0) job_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    job_ready_.wait(lock, [&] {
      return shutdown_ ||
             (job_generation_ != seen_generation && next_index_ < job_size_);
    });
    if (shutdown_) return;
    seen_generation = job_generation_;
    RunJobShare(lock);
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  ATENA_CHECK(job_fn_ == nullptr) << "reentrant ParallelFor on one pool";
  job_fn_ = &fn;
  job_size_ = n;
  next_index_ = 0;
  remaining_ = n;
  ++job_generation_;
  job_ready_.notify_all();
  // The caller is one of the pool's threads: it claims indices alongside
  // the workers, then waits out the stragglers.
  RunJobShare(lock);
  job_done_.wait(lock, [&] { return remaining_ == 0; });
  job_fn_ = nullptr;
  job_size_ = 0;
}

}  // namespace atena
