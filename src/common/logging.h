#ifndef ATENA_COMMON_LOGGING_H_
#define ATENA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace atena {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded. Defaults to
/// kWarning so library consumers see nothing unless they opt in (benches
/// and examples raise verbosity explicitly).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; writes one line to stderr at destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything; used for disabled levels without evaluating the
/// streamed expressions' formatting cost (the expressions themselves are
/// still evaluated — keep side effects out of log statements).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define ATENA_LOG(level)                                               \
  if (::atena::LogLevel::level < ::atena::GetLogLevel()) {             \
  } else                                                               \
    ::atena::internal::LogMessage(::atena::LogLevel::level, __FILE__,  \
                                  __LINE__)                            \
        .stream()

/// Fatal check; aborts with a message when `condition` is false. Used for
/// programmer-error invariants (out-of-contract calls), not data errors —
/// those go through Status.
#define ATENA_CHECK(condition)                                          \
  if (condition) {                                                      \
  } else                                                                \
    ::atena::internal::FatalMessage(__FILE__, __LINE__, #condition)     \
        .stream()

namespace internal {

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace atena

#endif  // ATENA_COMMON_LOGGING_H_
