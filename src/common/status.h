#ifndef ATENA_COMMON_STATUS_H_
#define ATENA_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>

namespace atena {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIOError,
  kTypeMismatch,
  kInternal,
  kNotImplemented,
  kResourceExhausted,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A Status holds the outcome of an operation: OK, or an error code plus a
/// message. Statuses are cheap to copy (OK carries no allocation cost is not
/// guaranteed, but messages are only built on error paths).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Result<T> is either a value or an error Status. The accessors abort on
/// misuse (extracting a value from an errored result), which keeps usage
/// errors loud in tests without requiring exceptions.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      // A Result built from a Status must carry an error.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

/// Propagates an error status out of the current function.
#define ATENA_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::atena::Status _atena_status = (expr);        \
    if (!_atena_status.ok()) return _atena_status; \
  } while (0)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration, e.g.
/// ATENA_ASSIGN_OR_RETURN(auto table, ReadCsv(path));
#define ATENA_ASSIGN_OR_RETURN(lhs, expr)                       \
  ATENA_ASSIGN_OR_RETURN_IMPL(                                  \
      ATENA_STATUS_CONCAT(_atena_result, __LINE__), lhs, expr)

#define ATENA_ASSIGN_OR_RETURN_IMPL(result_var, lhs, expr) \
  auto result_var = (expr);                                \
  if (!result_var.ok()) return result_var.status();        \
  lhs = std::move(result_var).value()

#define ATENA_STATUS_CONCAT(a, b) ATENA_STATUS_CONCAT_IMPL(a, b)
#define ATENA_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace atena

#endif  // ATENA_COMMON_STATUS_H_
