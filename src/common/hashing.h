#ifndef ATENA_COMMON_HASHING_H_
#define ATENA_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace atena {

/// 64-bit hashing primitives for cache keys and hash-table kernels.
///
/// Requirements here are determinism across platforms/runs (keys feed the
/// display cache, whose hits must be bit-identical to recomputation) and
/// good avalanche behaviour — not cryptographic strength. The finalizer is
/// SplitMix64's, the byte hash is FNV-1a widened through the finalizer.

/// SplitMix64 finalizer: bijective, strong avalanche.
inline constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combiner (boost::hash_combine shape, 64-bit constants).
inline constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 12) +
                 (seed >> 4));
}

/// FNV-1a over raw bytes, strengthened with a final mix.
inline uint64_t HashBytes(const void* data, size_t length,
                          uint64_t seed = 0xCBF29CE484222325ULL) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < length; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view text,
                           uint64_t seed = 0xCBF29CE484222325ULL) {
  return HashBytes(text.data(), text.size(), seed);
}

}  // namespace atena

#endif  // ATENA_COMMON_HASHING_H_
