#include "common/clock.h"

#include <chrono>
#include <thread>

namespace atena {

namespace {

MonotonicClockHook& ClockHook() {
  static MonotonicClockHook hook;
  return hook;
}

}  // namespace

int64_t MonotonicNanos() {
  const MonotonicClockHook& hook = ClockHook();
  if (hook) return hook();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepForNanos(int64_t nanos) {
  if (nanos <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

void SetMonotonicClockHookForTesting(MonotonicClockHook hook) {
  ClockHook() = std::move(hook);
}

}  // namespace atena
