#ifndef ATENA_COMMON_STRING_UTILS_H_
#define ATENA_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace atena {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII lowercase copy.
std::string ToLower(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool Contains(std::string_view text, std::string_view needle);

/// Parses a decimal integer / double. Returns false (leaving *out untouched)
/// on any trailing garbage, empty input, out-of-range magnitude, or — for
/// ParseDouble — a non-finite spelling ("nan"/"inf"/"infinity"): hostile or
/// corrupt numeric fields must surface as null-or-error, never as a value.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseDouble(std::string_view text, double* out);

/// Formats a double the way notebooks display it: up to `precision` decimals
/// with trailing zeros trimmed ("27.650" -> "27.65", "3.000" -> "3").
std::string FormatDouble(double value, int precision = 3);

/// Pads/truncates `text` to exactly `width` columns (left-aligned).
std::string PadRight(std::string_view text, size_t width);

}  // namespace atena

#endif  // ATENA_COMMON_STRING_UTILS_H_
