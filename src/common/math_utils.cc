#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace atena {

double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

double ScaledSigmoid(double x, double center, double width) {
  return Sigmoid((x - center) / width);
}

double SigmoidBump(double x, double low_center, double low_width,
                   double high_center, double high_width) {
  return ScaledSigmoid(x, low_center, low_width) *
         (1.0 - ScaledSigmoid(x, high_center, high_width));
}

double Entropy(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) {
    if (c > 0.0) total += c;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log(p);
  }
  return h;
}

double NormalizedEntropy(const std::vector<double>& counts) {
  size_t support = 0;
  for (double c : counts) {
    if (c > 0.0) ++support;
  }
  if (support <= 1) return 0.0;
  return Entropy(counts) / std::log(static_cast<double>(support));
}

double KlDivergence(const std::unordered_map<int64_t, double>& p,
                    const std::unordered_map<int64_t, double>& q,
                    double epsilon) {
  if (p.empty() && q.empty()) return 0.0;
  // Union of supports, with additive smoothing so Q never has a zero where P
  // is positive (the paper compares a filtered display against its parent,
  // whose supports can differ in both directions).
  std::unordered_map<int64_t, double> keys;
  double p_total = 0.0, q_total = 0.0;
  for (const auto& [k, v] : p) {
    keys[k] = 0.0;
    p_total += v;
  }
  for (const auto& [k, v] : q) {
    keys[k] = 0.0;
    q_total += v;
  }
  const double n = static_cast<double>(keys.size());
  p_total += epsilon * n;
  q_total += epsilon * n;
  if (p_total <= 0.0 || q_total <= 0.0) return 0.0;
  double kl = 0.0;
  for (const auto& [k, unused] : keys) {
    (void)unused;
    auto pit = p.find(k);
    auto qit = q.find(k);
    double pv = ((pit != p.end()) ? pit->second : 0.0) + epsilon;
    double qv = ((qit != q.end()) ? qit->second : 0.0) + epsilon;
    double pp = pv / p_total;
    double qq = qv / q_total;
    kl += pp * std::log(pp / qq);
  }
  return std::max(0.0, kl);
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  size_t n = std::min(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  // Mismatched tails count as distance from zero, so comparing vectors of
  // different lengths is well-defined (it never happens inside one episode).
  for (size_t i = n; i < a.size(); ++i) sum += a[i] * a[i];
  for (size_t i = n; i < b.size(); ++i) sum += b[i] * b[i];
  return std::sqrt(sum);
}

MeanVar ComputeMeanVar(const std::vector<double>& values) {
  MeanVar out;
  if (values.empty()) return out;
  // Welford's online algorithm.
  double mean = 0.0, m2 = 0.0;
  size_t count = 0;
  for (double v : values) {
    ++count;
    double delta = v - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (v - mean);
  }
  out.mean = mean;
  out.variance = m2 / static_cast<double>(count);
  return out;
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

double Log1pNormalize(double x, double scale) {
  if (x <= 0.0 || scale <= 0.0) return 0.0;
  return Clamp(std::log1p(x) / std::log1p(scale), 0.0, 1.0);
}

}  // namespace atena
