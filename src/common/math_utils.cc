#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace atena {

double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

double ScaledSigmoid(double x, double center, double width) {
  return Sigmoid((x - center) / width);
}

double SigmoidBump(double x, double low_center, double low_width,
                   double high_center, double high_width) {
  return ScaledSigmoid(x, low_center, low_width) *
         (1.0 - ScaledSigmoid(x, high_center, high_width));
}

double Entropy(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) {
    if (c > 0.0) total += c;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log(p);
  }
  return h;
}

double NormalizedEntropy(const std::vector<double>& counts) {
  size_t support = 0;
  for (double c : counts) {
    if (c > 0.0) ++support;
  }
  if (support <= 1) return 0.0;
  return Entropy(counts) / std::log(static_cast<double>(support));
}

double KlDivergence(const std::unordered_map<int64_t, double>& p,
                    const std::unordered_map<int64_t, double>& q,
                    double epsilon) {
  if (p.empty() && q.empty()) return 0.0;
  // Union of supports, with additive smoothing so Q never has a zero where P
  // is positive (the paper compares a filtered display against its parent,
  // whose supports can differ in both directions).
  std::unordered_map<int64_t, double> keys;
  double p_total = 0.0, q_total = 0.0;
  for (const auto& [k, v] : p) {
    keys[k] = 0.0;
    p_total += v;
  }
  for (const auto& [k, v] : q) {
    keys[k] = 0.0;
    q_total += v;
  }
  const double n = static_cast<double>(keys.size());
  p_total += epsilon * n;
  q_total += epsilon * n;
  if (p_total <= 0.0 || q_total <= 0.0) return 0.0;
  double kl = 0.0;
  for (const auto& [k, unused] : keys) {
    (void)unused;
    auto pit = p.find(k);
    auto qit = q.find(k);
    double pv = ((pit != p.end()) ? pit->second : 0.0) + epsilon;
    double qv = ((qit != q.end()) ? qit->second : 0.0) + epsilon;
    double pp = pv / p_total;
    double qq = qv / q_total;
    kl += pp * std::log(pp / qq);
  }
  return std::max(0.0, kl);
}

double SquaredEuclideanDistance(const std::vector<double>& a,
                                const std::vector<double>& b) {
  // Delegates with an infinite bound: one kernel, one accumulation order,
  // so bounded and unbounded results are bit-identical by construction.
  return SquaredEuclideanDistanceBounded(
      a.data(), a.size(), b.data(), b.size(),
      std::numeric_limits<double>::infinity());
}

double SquaredEuclideanDistanceBounded(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       double bound) {
  return SquaredEuclideanDistanceBounded(a.data(), a.size(), b.data(),
                                         b.size(), bound);
}

double SquaredEuclideanDistanceBounded(const double* a, size_t a_size,
                                       const double* b, size_t b_size,
                                       double bound) {
  // Four independent accumulators (lanes striped over positions i%4) break
  // the serial sum += d*d dependency chain, and the bound check runs once
  // per 8-element block rather than per element — the below-bound case
  // runs at full pipeline throughput while the exceeded-bound case still
  // breaks out early. The accumulation order is fixed and deterministic
  // (lanes combined as ((s0+s1)+s2)+s3 at every checkpoint and at the
  // end), and every partial checkpoint value is a sum of a subset of the
  // non-negative terms, so checkpoints are non-decreasing and an early
  // break can never discard a candidate whose full sum is <= bound; any
  // result <= bound is the exact full sum, bit-identical between the
  // bounded and (delegating) unbounded entry points.
  constexpr size_t kBlock = 8;
  size_t n = std::min(a_size, b_size);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  while (i + kBlock <= n) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    const double d4 = a[i + 4] - b[i + 4];
    const double d5 = a[i + 5] - b[i + 5];
    const double d6 = a[i + 6] - b[i + 6];
    const double d7 = a[i + 7] - b[i + 7];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
    s0 += d4 * d4;
    s1 += d5 * d5;
    s2 += d6 * d6;
    s3 += d7 * d7;
    i += kBlock;
    if (((s0 + s1) + s2) + s3 > bound) return ((s0 + s1) + s2) + s3;
  }
  for (size_t lane = 0; i < n; ++i, ++lane) {
    const double d = a[i] - b[i];
    switch (lane & 3) {
      case 0: s0 += d * d; break;
      case 1: s1 += d * d; break;
      case 2: s2 += d * d; break;
      default: s3 += d * d; break;
    }
  }
  double sum = ((s0 + s1) + s2) + s3;
  if (sum > bound) return sum;
  for (i = n; i < a_size; ++i) {
    sum += a[i] * a[i];
    if (sum > bound) return sum;
  }
  for (i = n; i < b_size; ++i) {
    sum += b[i] * b[i];
    if (sum > bound) return sum;
  }
  return sum;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredEuclideanDistance(a, b));
}

MeanVar ComputeMeanVar(const std::vector<double>& values) {
  MeanVar out;
  if (values.empty()) return out;
  // Welford's online algorithm.
  double mean = 0.0, m2 = 0.0;
  size_t count = 0;
  for (double v : values) {
    ++count;
    double delta = v - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (v - mean);
  }
  out.mean = mean;
  out.variance = m2 / static_cast<double>(count);
  return out;
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

double Log1pNormalize(double x, double scale) {
  if (x <= 0.0 || scale <= 0.0) return 0.0;
  return Clamp(std::log1p(x) / std::log1p(scale), 0.0, 1.0);
}

}  // namespace atena
