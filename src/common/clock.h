#ifndef ATENA_COMMON_CLOCK_H_
#define ATENA_COMMON_CLOCK_H_

#include <cstdint>
#include <functional>

namespace atena {

/// Monotonic deadline clock shared by every component that budgets wall
/// time (the serving runtime's per-step deadlines, reload backoff). It is
/// a thin wrapper over std::chrono::steady_clock with one property the
/// raw clock lacks: a test can replace it, so every deadline-driven
/// recovery path is deterministically reachable without real waiting.

/// Nanoseconds on a monotonic clock. Only differences are meaningful; the
/// epoch is unspecified.
int64_t MonotonicNanos();

/// Blocks the calling thread for ~`nanos` (clamped below at 0). Reload
/// backoff uses it; tests replace it per call site instead (the serving
/// runtime takes an injectable sleeper) so nothing in a test ever sleeps.
void SleepForNanos(int64_t nanos);

/// Replaces MonotonicNanos's source for tests: when set, every call
/// returns hook() instead of reading the steady clock. Pass an empty
/// function to restore the real clock. Install/clear only while no other
/// thread is reading the clock; the hook itself must be safe to call
/// concurrently (deadline measurement runs on worker threads).
using MonotonicClockHook = std::function<int64_t()>;
void SetMonotonicClockHookForTesting(MonotonicClockHook hook);

}  // namespace atena

#endif  // ATENA_COMMON_CLOCK_H_
