#include "common/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace atena {

namespace {

FileIoFailureHook& FailureHook() {
  static FileIoFailureHook hook;
  return hook;
}

/// Returns true (and synthesizes EIO) when the test hook asks step `op` on
/// `path` to fail.
bool InjectFailure(const char* op, const std::string& path) {
  if (FailureHook() && FailureHook()(op, path)) {
    errno = EIO;
    return true;
  }
  return false;
}

std::string ErrnoDetail() {
  return std::string(std::strerror(errno)) + " (errno " +
         std::to_string(errno) + ")";
}

Status StepError(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " failed for '" + path + "': " +
                         ErrnoDetail());
}

/// Directory component of `path` ("." when it has none) — the directory
/// whose entry list the rename mutates, and therefore the one to fsync.
std::string DirectoryOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void SetFileIoFailureHookForTesting(FileIoFailureHook hook) {
  FailureHook() = std::move(hook);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = -1;
  if (InjectFailure("open", path) ||
      (fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)) < 0) {
    return StepError("open", tmp);
  }
  // Write the whole buffer, tolerating short writes.
  const char* data = contents.data();
  size_t remaining = contents.size();
  while (remaining > 0) {
    ssize_t n;
    if (InjectFailure("write", path) ||
        (n = ::write(fd, data, remaining)) < 0) {
      Status error = StepError("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return error;
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  // fsync before rename: the rename must never publish a file whose data
  // blocks are still only in the page cache.
  if (InjectFailure("fsync", path) || ::fsync(fd) != 0) {
    Status error = StepError("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return error;
  }
  if (::close(fd) != 0) {
    Status error = StepError("close", tmp);
    ::unlink(tmp.c_str());
    return error;
  }
  if (InjectFailure("rename", path) ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status error = StepError("rename", tmp);
    ::unlink(tmp.c_str());
    return error;
  }
  // Make the rename itself durable. Failure here is still reported, but the
  // target already holds the new contents (no cleanup to do).
  const std::string dir = DirectoryOf(path);
  int dir_fd;
  if (InjectFailure("dirsync", path) ||
      (dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY)) < 0) {
    return StepError("dirsync-open", dir);
  }
  if (::fsync(dir_fd) != 0) {
    Status error = StepError("dirsync", dir);
    ::close(dir_fd);
    return error;
  }
  ::close(dir_fd);
  return Status::OK();
}

Status AppendDurableFile(const std::string& path, std::string_view data) {
  const bool existed = FileExists(path);
  int fd = -1;
  if (InjectFailure("append-open", path) ||
      (fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644)) < 0) {
    return StepError("append-open", path);
  }
  const char* bytes = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    ssize_t n;
    if (InjectFailure("append-write", path) ||
        (n = ::write(fd, bytes, remaining)) < 0) {
      // A short prefix of `data` may already be in the file — the torn
      // suffix readers of append-only files are required to tolerate.
      Status error = StepError("append-write", path);
      ::close(fd);
      return error;
    }
    bytes += n;
    remaining -= static_cast<size_t>(n);
  }
  if (InjectFailure("append-fsync", path) || ::fsync(fd) != 0) {
    Status error = StepError("append-fsync", path);
    ::close(fd);
    return error;
  }
  if (::close(fd) != 0) return StepError("append-close", path);
  if (!existed) {
    // First append created the file: fsync the directory so the new entry
    // itself survives a crash, like AtomicWriteFile does for its rename.
    const std::string dir = DirectoryOf(path);
    int dir_fd;
    if (InjectFailure("append-dirsync", path) ||
        (dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY)) < 0) {
      return StepError("append-dirsync-open", dir);
    }
    if (::fsync(dir_fd) != 0) {
      Status error = StepError("append-dirsync", dir);
      ::close(dir_fd);
      return error;
    }
    ::close(dir_fd);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return StepError("open", path);
  std::string buffer;
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      Status error = StepError("read", path);
      ::close(fd);
      return error;
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  *out = std::move(buffer);
  return Status::OK();
}

DurableAppender::~DurableAppender() { Close(); }

void DurableAppender::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dirty_ = false;
}

Status DurableAppender::Open(const std::string& path) {
  Close();
  const bool existed = FileExists(path);
  int fd = -1;
  if (InjectFailure("append-open", path) ||
      (fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644)) < 0) {
    return StepError("append-open", path);
  }
  if (!existed) {
    // Creation must reach the directory before any append can claim
    // durability (the AtomicWriteFile rename discipline).
    const std::string dir = DirectoryOf(path);
    int dir_fd;
    if (InjectFailure("append-dirsync", path) ||
        (dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY)) < 0) {
      ::close(fd);
      return StepError("append-dirsync-open", dir);
    }
    if (::fsync(dir_fd) != 0) {
      Status error = StepError("append-dirsync", dir);
      ::close(dir_fd);
      ::close(fd);
      return error;
    }
    ::close(dir_fd);
  }
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

Status DurableAppender::Append(std::string_view data) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("DurableAppender: no file open");
  }
  const char* bytes = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    ssize_t n;
    if (InjectFailure("append-write", path_) ||
        (n = ::write(fd_, bytes, remaining)) < 0) {
      // A short prefix may already be in the file — the torn suffix
      // readers of append-only files are required to tolerate.
      return StepError("append-write", path_);
    }
    bytes += n;
    remaining -= static_cast<size_t>(n);
  }
  if (!data.empty()) dirty_ = true;
  return Status::OK();
}

Status DurableAppender::AppendParts(
    std::initializer_list<std::string_view> parts) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("DurableAppender: no file open");
  }
  // Gather write: the parts land in the file as their concatenation
  // without the caller assembling (and copying into) a contiguous
  // buffer — the journal's group commit appends a multi-kilobyte payload
  // per tick, where that copy is pure overhead.
  struct iovec iov[16];
  size_t count = 0;
  size_t total = 0;
  for (const std::string_view part : parts) {
    if (part.empty()) continue;
    if (count == sizeof(iov) / sizeof(iov[0])) {
      return Status::InvalidArgument("AppendParts: too many parts");
    }
    iov[count].iov_base = const_cast<char*>(part.data());
    iov[count].iov_len = part.size();
    ++count;
    total += part.size();
  }
  size_t done = 0;
  size_t first = 0;
  while (done < total) {
    ssize_t n;
    if (InjectFailure("append-write", path_) ||
        (n = ::writev(fd_, iov + first, static_cast<int>(count - first))) <
            0) {
      // A short prefix may already be in the file — the torn suffix
      // readers of append-only files are required to tolerate.
      if (done > 0) dirty_ = true;
      return StepError("append-write", path_);
    }
    done += static_cast<size_t>(n);
    // Skip fully-written iovecs and trim a partially-written one.
    size_t written = static_cast<size_t>(n);
    while (first < count && written >= iov[first].iov_len) {
      written -= iov[first].iov_len;
      ++first;
    }
    if (first < count && written > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + written;
      iov[first].iov_len -= written;
    }
  }
  if (total > 0) dirty_ = true;
  return Status::OK();
}

Status DurableAppender::Sync() {
  if (fd_ < 0 || !dirty_) return Status::OK();
  // fdatasync, not fsync: the data and the size metadata needed to read it
  // back are persisted; mtime and friends can lag.
  if (InjectFailure("append-fsync", path_) || ::fdatasync(fd_) != 0) {
    return StepError("append-fsync", path_);
  }
  dirty_ = false;
  return Status::OK();
}

uint32_t Crc32Extend(uint32_t crc, std::string_view data) {
  // Slice-by-8 CRC-32 (reflected polynomial 0xEDB88320): eight tables so
  // the inner loop folds 8 input bytes per iteration instead of one —
  // the journal checksums every group-committed tick record on the
  // serving hot path, where the classic byte-at-a-time loop was the
  // single most expensive part of an append. Tables are built once on
  // first use; slice 0 equals the classic table, so results are
  // unchanged.
  static const auto tables = [] {
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t slice = 1; slice < 8; ++slice) {
        crc = (crc >> 8) ^ t[0][crc & 0xFFu];
        t[slice][i] = crc;
      }
    }
    return t;
  }();
  // Composable form: un-finalize the incoming value so that
  // Crc32Extend(Crc32Extend(0, a), b) == Crc32(a + b) — an initial 0
  // un-finalizes to the standard 0xFFFFFFFF seed.
  crc ^= 0xFFFFFFFFu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 8) {
    // Byte-wise loads keep the fold endianness-independent.
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][p[4]] ^ tables[2][p[5]] ^ tables[1][p[6]] ^
          tables[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tables[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) { return Crc32Extend(0, data); }

Status WriteChecksummedFile(const std::string& path, std::string_view magic,
                            std::string_view payload) {
  std::ostringstream framed;
  framed << magic << "\n";
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload));
  framed << "crc32 " << crc_hex << " size " << payload.size() << "\n";
  framed << payload;
  return AtomicWriteFile(path, framed.str());
}

Status ReadChecksummedFile(const std::string& path, std::string_view magic,
                           std::string* payload) {
  std::string raw;
  ATENA_RETURN_IF_ERROR(ReadFileToString(path, &raw));

  // Magic line.
  size_t magic_end = raw.find('\n');
  if (magic_end == std::string::npos ||
      std::string_view(raw).substr(0, magic_end) != magic) {
    return Status::InvalidArgument("'" + path + "' is not a " +
                                   std::string(magic) + " file");
  }
  // Header line: "crc32 <hex> size <n>".
  size_t header_end = raw.find('\n', magic_end + 1);
  if (header_end == std::string::npos) {
    return Status::IOError("'" + path + "' truncated: no checksum header");
  }
  std::istringstream header(raw.substr(magic_end + 1,
                                       header_end - magic_end - 1));
  std::string crc_key, size_key;
  std::string crc_hex;
  uint64_t declared_size = 0;
  header >> crc_key >> crc_hex >> size_key >> declared_size;
  // The checksum is written as exactly 8 lowercase hex digits; parse it
  // strictly so any byte flip inside the digits is itself detected.
  uint32_t declared_crc = 0;
  bool crc_ok = header && crc_key == "crc32" && size_key == "size" &&
                crc_hex.size() == 8;
  for (char c : crc_hex) {
    if (c >= '0' && c <= '9') {
      declared_crc = declared_crc * 16 + static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      declared_crc = declared_crc * 16 + static_cast<uint32_t>(c - 'a' + 10);
    } else {
      crc_ok = false;
      break;
    }
  }
  if (!crc_ok) {
    return Status::IOError("'" + path + "' has a malformed checksum header");
  }
  const size_t body_start = header_end + 1;
  if (raw.size() - body_start != declared_size) {
    return Status::IOError(
        "'" + path + "' truncated: payload has " +
        std::to_string(raw.size() - body_start) + " bytes, header declares " +
        std::to_string(declared_size));
  }
  std::string body = raw.substr(body_start);
  const uint32_t actual_crc = Crc32(body);
  if (actual_crc != declared_crc) {
    char actual_hex[9];
    std::snprintf(actual_hex, sizeof(actual_hex), "%08x", actual_crc);
    return Status::IOError("'" + path + "' checksum mismatch: header " +
                           crc_hex + ", payload " + actual_hex);
  }
  *payload = std::move(body);
  return Status::OK();
}

}  // namespace atena
