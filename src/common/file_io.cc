#include "common/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace atena {

namespace {

FileIoFailureHook& FailureHook() {
  static FileIoFailureHook hook;
  return hook;
}

/// Returns true (and synthesizes EIO) when the test hook asks step `op` on
/// `path` to fail.
bool InjectFailure(const char* op, const std::string& path) {
  if (FailureHook() && FailureHook()(op, path)) {
    errno = EIO;
    return true;
  }
  return false;
}

std::string ErrnoDetail() {
  return std::string(std::strerror(errno)) + " (errno " +
         std::to_string(errno) + ")";
}

Status StepError(const char* op, const std::string& path) {
  return Status::IOError(std::string(op) + " failed for '" + path + "': " +
                         ErrnoDetail());
}

/// Directory component of `path` ("." when it has none) — the directory
/// whose entry list the rename mutates, and therefore the one to fsync.
std::string DirectoryOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void SetFileIoFailureHookForTesting(FileIoFailureHook hook) {
  FailureHook() = std::move(hook);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = -1;
  if (InjectFailure("open", path) ||
      (fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)) < 0) {
    return StepError("open", tmp);
  }
  // Write the whole buffer, tolerating short writes.
  const char* data = contents.data();
  size_t remaining = contents.size();
  while (remaining > 0) {
    ssize_t n;
    if (InjectFailure("write", path) ||
        (n = ::write(fd, data, remaining)) < 0) {
      Status error = StepError("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return error;
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  // fsync before rename: the rename must never publish a file whose data
  // blocks are still only in the page cache.
  if (InjectFailure("fsync", path) || ::fsync(fd) != 0) {
    Status error = StepError("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return error;
  }
  if (::close(fd) != 0) {
    Status error = StepError("close", tmp);
    ::unlink(tmp.c_str());
    return error;
  }
  if (InjectFailure("rename", path) ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status error = StepError("rename", tmp);
    ::unlink(tmp.c_str());
    return error;
  }
  // Make the rename itself durable. Failure here is still reported, but the
  // target already holds the new contents (no cleanup to do).
  const std::string dir = DirectoryOf(path);
  int dir_fd;
  if (InjectFailure("dirsync", path) ||
      (dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY)) < 0) {
    return StepError("dirsync-open", dir);
  }
  if (::fsync(dir_fd) != 0) {
    Status error = StepError("dirsync", dir);
    ::close(dir_fd);
    return error;
  }
  ::close(dir_fd);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return StepError("open", path);
  std::string buffer;
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      Status error = StepError("read", path);
      ::close(fd);
      return error;
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  *out = std::move(buffer);
  return Status::OK();
}

uint32_t Crc32(std::string_view data) {
  // Table-driven CRC-32 (reflected polynomial 0xEDB88320). The table is
  // built once on first use.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ c) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteChecksummedFile(const std::string& path, std::string_view magic,
                            std::string_view payload) {
  std::ostringstream framed;
  framed << magic << "\n";
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload));
  framed << "crc32 " << crc_hex << " size " << payload.size() << "\n";
  framed << payload;
  return AtomicWriteFile(path, framed.str());
}

Status ReadChecksummedFile(const std::string& path, std::string_view magic,
                           std::string* payload) {
  std::string raw;
  ATENA_RETURN_IF_ERROR(ReadFileToString(path, &raw));

  // Magic line.
  size_t magic_end = raw.find('\n');
  if (magic_end == std::string::npos ||
      std::string_view(raw).substr(0, magic_end) != magic) {
    return Status::InvalidArgument("'" + path + "' is not a " +
                                   std::string(magic) + " file");
  }
  // Header line: "crc32 <hex> size <n>".
  size_t header_end = raw.find('\n', magic_end + 1);
  if (header_end == std::string::npos) {
    return Status::IOError("'" + path + "' truncated: no checksum header");
  }
  std::istringstream header(raw.substr(magic_end + 1,
                                       header_end - magic_end - 1));
  std::string crc_key, size_key;
  std::string crc_hex;
  uint64_t declared_size = 0;
  header >> crc_key >> crc_hex >> size_key >> declared_size;
  // The checksum is written as exactly 8 lowercase hex digits; parse it
  // strictly so any byte flip inside the digits is itself detected.
  uint32_t declared_crc = 0;
  bool crc_ok = header && crc_key == "crc32" && size_key == "size" &&
                crc_hex.size() == 8;
  for (char c : crc_hex) {
    if (c >= '0' && c <= '9') {
      declared_crc = declared_crc * 16 + static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      declared_crc = declared_crc * 16 + static_cast<uint32_t>(c - 'a' + 10);
    } else {
      crc_ok = false;
      break;
    }
  }
  if (!crc_ok) {
    return Status::IOError("'" + path + "' has a malformed checksum header");
  }
  const size_t body_start = header_end + 1;
  if (raw.size() - body_start != declared_size) {
    return Status::IOError(
        "'" + path + "' truncated: payload has " +
        std::to_string(raw.size() - body_start) + " bytes, header declares " +
        std::to_string(declared_size));
  }
  std::string body = raw.substr(body_start);
  const uint32_t actual_crc = Crc32(body);
  if (actual_crc != declared_crc) {
    char actual_hex[9];
    std::snprintf(actual_hex, sizeof(actual_hex), "%08x", actual_crc);
    return Status::IOError("'" + path + "' checksum mismatch: header " +
                           crc_hex + ", payload " + actual_hex);
  }
  *payload = std::move(body);
  return Status::OK();
}

}  // namespace atena
