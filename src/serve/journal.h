#ifndef ATENA_SERVE_JOURNAL_H_
#define ATENA_SERVE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/random.h"
#include "common/status.h"
#include "eda/operation.h"

namespace atena {

/// Write-ahead session journal (DESIGN.md §15): the durability layer of
/// the serving runtime. The SessionManager appends one framed record per
/// state transition — admission, snapshot reload, one *group-committed*
/// record per tick covering every stepped session, hard stop — plus a
/// periodic compaction that rewrites the file against a full session-state
/// snapshot so recovery cost stays bounded by the compaction interval, not
/// the age of the runtime.
///
/// File layout (append-only text, CRC-framed per record):
///
///   ATENA-SJL v1\n
///   ATJ <type> <crc32-8hex> <payload-bytes>\n<payload>\n
///   ATJ ...
///
/// The first record is always `meta` (format version, dataset id and the
/// env dimensions that bind the journal to one serving configuration);
/// a compacted journal's second record is `snap`. Each record's payload is
/// independently checksummed, so a reader can stop at the longest valid
/// prefix: a torn tail (crash mid-append) or a corrupt record drops that
/// record and everything after it — never the durable prefix. Because the
/// runtime is bit-deterministic, a dropped suffix is not data loss: the
/// recovered runtime simply re-executes those ticks and produces the same
/// bytes again. The one record with a fallback instead of prefix semantics
/// is a corrupt `snap`: its pre-compaction journal survives next to the
/// file as `<path>.prev` and replays to the exact state the snapshot
/// captured, after which the corrupt journal's remaining records apply.
///
/// Why replay works bit-exactly: step records carry the *concrete*
/// operation (filter terms resolved), and EdaEnvironment::TryStepOperation
/// consumes no randomness — so replay applies recorded operations and then
/// restores the recorded post-step RNG states, the same idiom training
/// resume uses (DESIGN.md §7). Rewards and display signatures recomputed
/// during replay are verified against the recorded values, so a journal
/// can never silently replay against the wrong dataset, snapshot or
/// reward configuration.

/// Binds a journal to one serving configuration; verified before replay.
struct JournalMeta {
  int version = 1;
  std::string dataset_id;
  int observation_dim = 0;
  int episode_length = 0;
  int num_term_bins = 0;
};

/// One committed environment step as journaled (and as verified on
/// replay): the concrete operation plus the step's observable products.
struct JournalStep {
  EdaOperation op;
  bool valid = true;
  double reward = 0.0;
  uint64_t display_signature = 0;
};

/// A session admission: everything Admit needs to rebuild the session
/// deterministically. `max_steps`/`greedy` are the raw SessionConfig
/// values; `gen` pins the policy-snapshot generation (0 = the snapshot the
/// manager was constructed with; reload records define later generations).
struct JournalAdmit {
  uint64_t id = 0;
  uint64_t seed = 0;
  int max_steps = 0;
  bool greedy = false;
  uint32_t gen = 0;
};

/// A successful hot snapshot reload: generation `gen` now serves new
/// admissions, loaded from `path` (which must stay readable for recovery
/// of sessions pinned to it).
struct JournalReload {
  uint32_t gen = 0;
  std::string path;
};

/// A session RNG stream's post-step state as journaled. The common wire
/// form is a *delta*: the number of raw xoshiro draws the step consumed
/// since the stream's pre-step state (typically 0–3 — a handful of bytes
/// instead of four 20-digit words), plus the Marsaglia spare when one is
/// cached, which advancing the words alone cannot reproduce (an absent
/// spare's stale bytes carry over from the pre-step state and are not
/// journaled). The full four-word state is the automatic fallback
/// whenever the writer cannot prove that advancing reproduces the stream
/// (a re-seed, or more than kMaxJournalRngDelta draws).
struct JournalRng {
  bool full = true;
  /// Meaningful when `full`.
  RngState state;
  /// Meaningful when `!full`: raw draws to advance, then the spare.
  uint32_t draws = 0;
  bool has_spare = false;
  double spare = 0.0;
};

/// Longest draw delta the writer probes for before falling back to the
/// full state. Serving steps consume a handful of draws (one categorical
/// sample plus occasional term-sampling rejections), so 64 is generous.
inline constexpr uint32_t kMaxJournalRngDelta = 64;

/// Computes the journaled form of a stream that moved `before` -> `after`
/// across one step: a draw-count delta when advancing `before` by at most
/// kMaxJournalRngDelta raw draws reproduces `after`'s words, the full
/// state otherwise. Always exact — the fallback makes unprovable cases
/// explicit rather than wrong.
JournalRng MakeJournalRng(const RngState& before, const RngState& after);

/// Materializes a journaled stream state on top of `current` (the
/// stream's state at the previous journal entry, which is exactly the
/// replaying session's live state, because replay consumes no
/// randomness).
RngState MaterializeJournalRng(const JournalRng& rng,
                               const RngState& current);

/// One session's entry in a tick's group-committed record, in serial-
/// commit (admission) order. Either a quarantine (the step never
/// committed; the session and its environment are gone) or a committed
/// step plus how the commit ended for the session.
struct JournalTickEntry {
  enum class Kind { kStep = 0, kQuarantine = 1 };
  /// How a kStep entry's serial commit ended for the session.
  enum End { kLive = 0, kCompleted = 1, kDeadlineRetired = 2 };

  Kind kind = Kind::kStep;
  uint64_t id = 0;
  JournalStep step;
  /// DegradeStage after the commit (including an escalation this tick).
  int stage_after = 0;
  int end = kLive;
  /// Post-commit RNG states: the env's term stream after the step (and
  /// the episode-boundary Reset, when one happened) and the acting stream
  /// after this tick's act — delta-encoded against the pre-step states
  /// (see JournalRng). Restored after replaying the recorded operation,
  /// which itself consumes no randomness.
  JournalRng env_rng;
  JournalRng act_rng;
};

/// One Tick's group commit: every live session's entry, appended as a
/// single record — one append per tick, not per session — whose flush is
/// shared with neighbouring records at the next durability barrier.
struct JournalTick {
  bool overloaded = false;
  std::vector<JournalTickEntry> entries;
};

/// Zero-copy writer for a tick record's payload: the serial commit loop
/// encodes each entry straight into the payload string as it commits —
/// no JournalTick materialization, no operation/term copies — and the
/// result parses back through ReadJournal as a normal tick record. The
/// buffer is reusable across ticks (Clear keeps its capacity).
class JournalTickBuilder {
 public:
  void Clear() {
    body_.clear();
    entries_ = 0;
  }
  size_t entries() const { return entries_; }

  void AddQuarantine(uint64_t id);
  void AddStep(uint64_t id, int end, int stage_after, const JournalRng& env,
               const JournalRng& act, const EdaOperation& op, bool valid,
               double reward, uint64_t display_signature);
  /// The encoded entries. The full tick payload is the
  /// "<overloaded> <count>\n" header followed by these bytes;
  /// SessionJournal::AppendTickBuilt frames and appends it without ever
  /// concatenating the two.
  const std::string& body() const { return body_; }

 private:
  std::string body_;
  size_t entries_ = 0;
};

/// Full session-manager state at a compaction point. Sessions appear in
/// admission order with their complete traces; the environment state is
/// not serialized — it is rebuilt by replaying the current episode's
/// trailing `episode_steps` operations after a Reset, then restoring the
/// recorded RNG states.
struct JournalSessionState {
  uint64_t id = 0;
  uint64_t seed = 0;
  int max_steps = 0;
  bool greedy = false;
  uint32_t gen = 0;
  int steps_done = 0;
  int stage = 0;
  int degraded_steps = 0;
  /// Trailing trace entries belonging to the in-progress episode.
  int episode_steps = 0;
  double total_reward = 0.0;
  RngState env_rng;
  RngState act_rng;
  std::vector<JournalStep> trace;
};

struct JournalSnapshot {
  uint64_t next_id = 1;
  int64_t steps_served = 0;
  bool overloaded = false;
  /// ServeStats flattened in the manager's canonical field order (the
  /// journal stays decoupled from the struct's layout).
  std::vector<int64_t> stats;
  /// Policy-snapshot path per generation; index 0 is the constructor
  /// snapshot (path unknown, stored empty).
  std::vector<std::string> generation_paths{std::string()};
  uint32_t current_gen = 0;
  /// Sequence number of the NotebookStore sidecar persisted alongside
  /// this snapshot (JournalSidecarPath), -1 when no store was configured.
  int64_t notebook_seq = -1;
  std::vector<JournalSessionState> sessions;
};

/// A parsed non-snapshot record, in file order.
struct JournalRecord {
  enum class Kind { kAdmit, kReload, kTick, kStop };
  Kind kind = Kind::kAdmit;
  JournalAdmit admit;
  JournalReload reload;
  JournalTick tick;
  /// Hard-stopped session ids in retirement (admission) order.
  std::vector<uint64_t> stop_ids;
};

/// Everything a journal file yields under prefix semantics.
struct JournalContents {
  /// The file is shorter than (a prefix of) the header line — a crash
  /// tore the very first append. Nothing to recover, but not an error.
  bool header_torn = false;
  bool has_meta = false;
  JournalMeta meta;
  /// A `snap` record frame was present...
  bool has_snapshot = false;
  /// ...and its payload decoded cleanly. When false the caller must fall
  /// back to `<path>.prev` for the base state; `records` still holds the
  /// decodable records *after* the corrupt snapshot.
  bool snapshot_valid = false;
  JournalSnapshot snapshot;
  std::vector<JournalRecord> records;
  /// False when a torn or corrupt suffix was dropped (prefix semantics).
  bool clean_tail = true;
};

/// Parses `path` to the longest valid prefix. Returns an error only when
/// the file cannot be read at all or its header identifies a different
/// file type entirely; torn/corrupt suffixes are reported via the flags.
Result<JournalContents> ReadJournal(const std::string& path);

/// Path of the NotebookStore sidecar persisted with compaction `seq`.
std::string JournalSidecarPath(const std::string& journal_path, int64_t seq);

/// The append-side writer. Not thread-safe (the SessionManager appends
/// from its single scheduler thread).
class SessionJournal {
 public:
  explicit SessionJournal(std::string path);

  const std::string& path() const { return path_; }
  /// Bytes appended since the last Reset — the auto-compaction trigger.
  int64_t appended_bytes() const { return appended_bytes_; }
  /// Size of the snap record the last Reset wrote (0 before the first
  /// Reset). Auto-compaction scales its threshold by this so that a large
  /// live set — whose snapshot is itself expensive to re-encode — is not
  /// compacted after a few ticks' worth of appends.
  int64_t snapshot_bytes() const { return snapshot_bytes_; }

  /// Writes a fresh compacted journal (header + meta + snap) atomically,
  /// first preserving any existing journal as `<path>.prev` — the
  /// fallback for a corrupt compaction snapshot. Serves both the initial
  /// start and every later compaction.
  Status Reset(const JournalMeta& meta, const JournalSnapshot& snapshot);

  /// Appends write the framed record into the kernel but do NOT flush it;
  /// durability is bought at the next Sync. In particular AppendTick is
  /// the group commit: ONE appended record for the whole tick and no
  /// fsync at all — consecutive ticks share the next barrier's single
  /// fdatasync. A system crash before that barrier tears the unsynced
  /// suffix, which recovery already tolerates (and, the runtime being
  /// bit-deterministic, re-executes to the same bytes). The manager
  /// places the barriers: after externally acknowledged transitions
  /// (reload, hard stop) and before completed outcomes become visible
  /// through TakeCompleted. Admissions deliberately ride the next
  /// barrier — prefix semantics guarantee no tick record can outlive a
  /// lost admit, so a crash before the barrier forgets the admission
  /// cleanly.
  Status AppendAdmit(const JournalAdmit& admit);
  Status AppendReload(const JournalReload& reload);
  Status AppendTick(const JournalTick& tick);
  /// AppendTick for entries pre-encoded by a JournalTickBuilder — the
  /// hot path. Never materializes a JournalTick, and the record reaches
  /// the kernel as one gather write of its pieces (frame line, payload
  /// header, builder body) with a streamed CRC — the builder's bytes are
  /// not copied into a contiguous record first. Byte-identical on disk
  /// to AppendTick of the equivalent JournalTick.
  Status AppendTickBuilt(const JournalTickBuilder& builder, bool overloaded);
  Status AppendStop(const std::vector<uint64_t>& ids);

  /// True when appended records are not yet durable (a Sync would flush).
  bool dirty() const { return appender_.dirty(); }
  /// The durability barrier: one fdatasync covering every record appended
  /// since the last Sync. No-op when clean.
  Status Sync();

 private:
  Status Append(const char* type, const std::string& payload);

  std::string path_;
  int64_t appended_bytes_ = 0;
  int64_t snapshot_bytes_ = 0;
  /// Held open across appends; closed by Reset, whose rename replaces the
  /// inode underneath it.
  DurableAppender appender_;
};

}  // namespace atena

#endif  // ATENA_SERVE_JOURNAL_H_
