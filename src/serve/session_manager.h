#ifndef ATENA_SERVE_SESSION_MANAGER_H_
#define ATENA_SERVE_SESSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "eda/display_cache.h"
#include "eda/environment.h"
#include "nn/matrix.h"
#include "serve/snapshot.h"

namespace atena {

/// Everything that identifies one served exploration session. Two sessions
/// with equal configs produce bit-identical traces, no matter how many
/// other sessions they were batched with, which thread count stepped them,
/// or when they joined (test-enforced, tests/serve_test.cc).
struct SessionConfig {
  /// Derives both of the session's private streams: the environment's
  /// filter-term stream (EnvConfig::seed) and the acting stream
  /// (ActingStreamSeed below).
  uint64_t seed = 1;
  /// Total environment steps to serve. When it exceeds the episode length
  /// the session spans several episodes — the environment is reset in
  /// between, like an analyst opening a fresh notebook. 0 = one episode.
  int max_steps = 0;
  /// Greedy (argmax) acting instead of Boltzmann sampling.
  bool greedy = false;
};

/// One served step of a session's trace.
struct ServedStep {
  EdaOperation op;
  bool valid = true;
  double reward = 0.0;
  /// Canonical signature of the display the step landed on — a pure
  /// function of the logical display (DisplayVectorKey), so traces can be
  /// compared bit-exactly without retaining row sets.
  uint64_t display_signature = 0;
};

/// The complete record of one finished session.
struct SessionTrace {
  uint64_t id = 0;
  uint64_t seed = 0;
  std::vector<ServedStep> steps;
  double total_reward = 0.0;
};

/// The acting stream seed derived from a session seed. Kept distinct from
/// the environment stream (which uses the seed directly) so term sampling
/// and action sampling never alias.
uint64_t ActingStreamSeed(uint64_t session_seed);

/// Runtime knobs of a SessionManager. None of them changes any session's
/// trace — they only move work around.
struct ServeOptions {
  /// Worker threads for environment stepping; 0 = all hardware cores.
  int num_threads = 0;
  /// One batched forward per tick across every pending session (the point
  /// of this runtime). False falls back to one forward per session per
  /// tick — the baseline bench_serve measures the speedup against.
  bool batched_acting = true;
  /// The display cache shared by all sessions (capacity 0 disables it).
  size_t cache_capacity = size_t{1} << 16;
  int cache_shards = 8;
  /// Builds the per-session reward signal. Each session needs its own
  /// instance because Compute is stateful; share only internally-const
  /// state (e.g. one trained CoherencyClassifier) across the factory's
  /// products. Null → rewards are 0 / the invalid penalty.
  std::function<std::shared_ptr<RewardSignal>()> reward_factory;
};

/// Multi-session policy-serving runtime: one immutable PolicySnapshot,
/// N concurrent EDA sessions, one batched forward per scheduler tick
/// (DESIGN.md §11).
///
/// Tick() runs the lockstep discipline proven out by ParallelPpoTrainer:
///   1. serial act   — gather every live session's observation into one
///                     Matrix and issue a single Policy::ActBatch with the
///                     sessions' private Rng streams (row i consumes only
///                     rngs[i], so a row's result is independent of who
///                     else is in the batch);
///   2. parallel step — fan the environment steps out on a ThreadPool,
///                     each worker writing an index-addressed slot;
///   3. serial commit — record steps, retire finished sessions and reset
///                     episode boundaries in admission order.
/// Sessions touch only their own environment plus the shared DisplayCache,
/// whose hits are bit-identical to recomputes — so every session's trace
/// equals the single-session serial reference (ServeSingleSessionSerial),
/// bit for bit, at any thread count and under any join/leave pattern.
///
/// Not thread-safe itself: Admit/Tick/Drain/TakeCompleted must be called
/// from one scheduler thread.
class SessionManager {
 public:
  SessionManager(std::shared_ptr<const PolicySnapshot> snapshot,
                 ServeOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits a session (recycling a pooled environment when one is free);
  /// it starts stepping on the next Tick. Returns the session id.
  uint64_t Admit(const SessionConfig& config);

  /// Advances every live session by one environment step. Returns the
  /// number of steps executed (0 when no session is live).
  int Tick();

  /// Ticks until every admitted session has finished — the graceful-drain
  /// path of the serving binary (finish in-flight sessions, admit none).
  void Drain();

  /// Moves out the traces of sessions finished since the last call, in
  /// completion order.
  std::vector<SessionTrace> TakeCompleted();

  int active_sessions() const { return static_cast<int>(sessions_.size()); }
  int64_t steps_served() const { return steps_served_; }
  const std::shared_ptr<DisplayCache>& display_cache() const {
    return cache_;
  }

 private:
  struct Session {
    uint64_t id = 0;
    SessionConfig config;
    int effective_max_steps = 0;
    int steps_done = 0;
    Rng act_rng;
    std::vector<double> observation;
    std::unique_ptr<EdaEnvironment> env;
    std::shared_ptr<RewardSignal> reward;
    SessionTrace trace;
  };

  std::unique_ptr<EdaEnvironment> AcquireEnv(uint64_t seed);

  std::shared_ptr<const PolicySnapshot> snapshot_;
  ServeOptions options_;
  std::shared_ptr<DisplayCache> cache_;
  std::unique_ptr<ThreadPool> pool_;

  std::vector<std::unique_ptr<Session>> sessions_;  // admission order
  std::vector<SessionTrace> completed_;
  /// Retired sessions' environments, reseeded and reused by Admit: the
  /// per-environment setup (distinct-value ratios, encoder layout) depends
  /// only on the dataset, so recycling skips it entirely.
  std::vector<std::unique_ptr<EdaEnvironment>> env_pool_;

  uint64_t next_id_ = 1;
  int64_t steps_served_ = 0;

  // Tick scratch, reused across calls.
  Matrix obs_batch_;
  std::vector<Rng*> rngs_;
  std::vector<StepOutcome> outcomes_;
};

/// Serves one session start to finish with per-sample acting on a private
/// environment and a private cache — the serial reference every served
/// trace must match bit-for-bit. `reward` may be null; like the manager's
/// sessions it must be a fresh instance per call (Compute is stateful).
SessionTrace ServeSingleSessionSerial(const PolicySnapshot& snapshot,
                                      const SessionConfig& config,
                                      RewardSignal* reward);

}  // namespace atena

#endif  // ATENA_SERVE_SESSION_MANAGER_H_
