#ifndef ATENA_SERVE_SESSION_MANAGER_H_
#define ATENA_SERVE_SESSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "eda/display_cache.h"
#include "eda/environment.h"
#include "index/notebook_store.h"
#include "nn/matrix.h"
#include "serve/health_log.h"
#include "serve/journal.h"
#include "serve/snapshot.h"

namespace atena {

/// Everything that identifies one served exploration session. Two sessions
/// with equal configs produce bit-identical traces, no matter how many
/// other sessions they were batched with, which thread count stepped them,
/// or when they joined (test-enforced, tests/serve_test.cc) — and no matter
/// which *other* sessions were quarantined, shed or deadline-degraded
/// around them (tests/serve_faults_test.cc).
struct SessionConfig {
  /// Derives both of the session's private streams: the environment's
  /// filter-term stream (EnvConfig::seed) and the acting stream
  /// (ActingStreamSeed below).
  uint64_t seed = 1;
  /// Total environment steps to serve. When it exceeds the episode length
  /// the session spans several episodes — the environment is reset in
  /// between, like an analyst opening a fresh notebook. 0 = one episode.
  int max_steps = 0;
  /// Greedy (argmax) acting instead of Boltzmann sampling.
  bool greedy = false;
};

/// One served step of a session's trace.
struct ServedStep {
  EdaOperation op;
  bool valid = true;
  double reward = 0.0;
  /// Canonical signature of the display the step landed on — a pure
  /// function of the logical display (DisplayVectorKey), so traces can be
  /// compared bit-exactly without retaining row sets.
  uint64_t display_signature = 0;
};

/// The complete record of one finished session.
struct SessionTrace {
  uint64_t id = 0;
  uint64_t seed = 0;
  std::vector<ServedStep> steps;
  double total_reward = 0.0;
};

/// Why a session left the runtime.
enum class RetireReason {
  kCompleted = 0,        // served its full step budget
  kQuarantined,          // env step / reward / policy output fault
  kDeadlineExceeded,     // exhausted the degradation ladder
  kHardStopped,          // second stop request: partial notebook, no fault
};
const char* RetireReasonName(RetireReason reason);

/// The degradation ladder a session walks when its steps blow the deadline
/// budget (each additional overrun escalates one stage):
///   kNormal      → full reward, sampled acting;
///   kNoDiversity → the reward signal's degraded mode skips the diversity
///                  min-distance scan (RewardSignal::SetDegradedMode).
///                  Since the display index made that scan sub-linear in
///                  history (DESIGN.md §14) this stage rarely fires — the
///                  scan it skips is no longer the dominant per-step cost
///                  on long sessions — but it stays in the ladder as the
///                  cheap first response for deployments that disable the
///                  index;
///   kGreedy      → argmax acting: the session stops consuming its acting
///                  stream entirely. One more overrun retires the session
///                  with kDeadlineExceeded.
enum class DegradeStage { kNormal = 0, kNoDiversity = 1, kGreedy = 2 };
const char* DegradeStageName(DegradeStage stage);

/// The structured result of one session leaving the runtime: the (possibly
/// partial) notebook plus why it ended. `status` is OK for kCompleted and
/// kHardStopped; quarantines carry the fault's Status and deadline
/// retirements carry kResourceExhausted-flavoured detail.
struct SessionOutcome {
  SessionTrace trace;
  RetireReason reason = RetireReason::kCompleted;
  Status status;
  /// Where on the degradation ladder the session ended.
  DegradeStage final_stage = DegradeStage::kNormal;
  /// Steps executed at any degraded stage (>= kNoDiversity).
  int degraded_steps = 0;
};

/// The acting stream seed derived from a session seed. Kept distinct from
/// the environment stream (which uses the seed directly) so term sampling
/// and action sampling never alias.
uint64_t ActingStreamSeed(uint64_t session_seed);

/// Deterministic fault-injection hooks for tests (the file_io / PpoUpdater
/// idiom): each hook is keyed by the raw call's identity — (session id,
/// step index) — not by call order, so injected faults land on the same
/// logical step at any thread count. Hooks are read concurrently from
/// worker threads during Tick: they must be pure functions of their
/// arguments and must not be reinstalled while serving.
struct ServeFaultInjection {
  /// Consulted before each environment step; non-OK fails that step as if
  /// the environment had errored (the env is not touched), quarantining
  /// the session.
  std::function<Status(uint64_t session_id, int step_index)> env_step;
  /// When set, replaces the measured wall-clock duration of each step —
  /// the deterministic trigger for the deadline/degradation ladder.
  std::function<int64_t(uint64_t session_id, int step_index)>
      step_duration_nanos;
};

/// Runtime knobs of a SessionManager. The fault-domain knobs (deadline,
/// admission cap, watermark) change which sessions are served or degraded
/// — but never the trace of a session they leave alone.
struct ServeOptions {
  /// Worker threads for environment stepping; 0 = all hardware cores.
  int num_threads = 0;
  /// One batched forward per tick across every pending session (the point
  /// of this runtime). False falls back to one forward per session per
  /// tick — the baseline bench_serve measures the speedup against.
  bool batched_acting = true;
  /// The display cache shared by all sessions (capacity 0 disables it).
  size_t cache_capacity = size_t{1} << 16;
  int cache_shards = 8;
  /// Builds the per-session reward signal. Each session needs its own
  /// instance because Compute is stateful; share only internally-const
  /// state (e.g. one trained CoherencyClassifier) across the factory's
  /// products. Null → rewards are 0 / the invalid penalty.
  std::function<std::shared_ptr<RewardSignal>()> reward_factory;

  /// Admission control: hard cap on concurrently live sessions (0 = no
  /// cap). Admit returns kResourceExhausted at the cap instead of letting
  /// tick latency collapse for everyone.
  int max_sessions = 0;
  /// Load shedding: with a cap and a deadline configured, Admit also
  /// sheds once live sessions reach `shed_watermark * max_sessions` AND
  /// the previous tick overran the deadline on average — the runtime is
  /// already too slow, so refusing new work beats degrading all of it.
  double shed_watermark = 0.9;

  /// Per-step deadline in nanoseconds (0 = no deadlines). A session whose
  /// environment step exceeds it escalates one DegradeStage per overrun
  /// and is retired with kDeadlineExceeded past the last stage.
  int64_t step_deadline_nanos = 0;

  /// ReloadSnapshot retry budget: on a failed load the reload is retried
  /// up to this many more times, sleeping reload_backoff_nanos, 2x, 4x...
  /// between attempts, before keeping the last-good snapshot and
  /// returning the error.
  int reload_retries = 2;
  int64_t reload_backoff_nanos = 100 * 1000 * 1000;  // 100ms
  /// Replaces the real backoff sleep (tests). Null = SleepForNanos.
  std::function<void(int64_t nanos)> reload_sleep;

  /// Cross-session notebook corpus (DESIGN.md §14). When set, every
  /// finished notebook — one per episode boundary inside a longer
  /// session, plus the final (possibly partial) one at retire when the
  /// environment is healthy — is registered with its display-vector
  /// sequence, and QuerySimilarNotebooks serves top-k retrieval over the
  /// corpus. Shareable across managers (the store locks internally).
  /// Null disables registration and retrieval.
  std::shared_ptr<NotebookStore> notebook_store;

  /// JSONL serving-health log path (see ServingHealthLog); empty disables.
  std::string health_log_path;

  /// Write-ahead session journal path (DESIGN.md §15); empty disables
  /// durability. The journal starts lazily on the first state transition
  /// (admit / tick / reload / hard stop), so constructing a manager never
  /// clobbers an existing journal before RecoverFromJournal reads it. An
  /// append or compaction failure disables journaling for the rest of the
  /// manager's life (the prefix already on disk stays recoverable) and
  /// serving continues — durability degrades, availability does not.
  std::string journal_path;
  /// Auto-compaction floor: once the bytes appended since the last
  /// compaction exceed both this floor and `journal_compact_snap_factor`
  /// times the last compaction snapshot's own size, the next Tick
  /// rewrites the journal against a full state snapshot — keeping
  /// recovery cost bounded by the compaction interval instead of the
  /// runtime's age. 0 disables auto-compaction (CompactJournal can still
  /// be called manually).
  int64_t journal_compact_bytes = int64_t{1} << 20;
  /// The snapshot-relative term of the auto-compaction threshold: the
  /// log must also outgrow this multiple of the last snapshot's encoded
  /// size. Rewriting the snapshot costs O(live set), so requiring the
  /// log to grow in proportion first keeps compaction work amortized
  /// O(1) per appended byte no matter how many sessions are live —
  /// without it, a 1024-session deployment (whose every tick appends
  /// about a snapshot's worth of bytes) would re-encode its full state
  /// every handful of ticks. <= 0 disables the snapshot-relative term
  /// (the byte floor alone decides).
  int64_t journal_compact_snap_factor = 8;

  /// Deterministic fault hooks; default-constructed = no faults.
  ServeFaultInjection fault_injection;
};

/// Aggregate fault-domain accounting across the manager's lifetime.
struct ServeStats {
  int64_t admitted = 0;
  int64_t completed = 0;
  int64_t quarantined = 0;
  /// Admissions refused (hard cap or watermark shed).
  int64_t shed = 0;
  int64_t deadline_retired = 0;
  int64_t hard_stopped = 0;
  /// Degradation-ladder escalations (stage transitions, incl. the final
  /// one that retires a session).
  int64_t degrade_transitions = 0;
  /// Steps executed at stage >= kNoDiversity / stage >= kGreedy.
  int64_t degraded_steps = 0;
  int64_t degraded_greedy_steps = 0;
  int64_t reload_successes = 0;
  int64_t reload_failures = 0;
  /// Display-vector sequences registered in the notebook store (excludes
  /// sequences below the store's min length and quarantined sessions).
  int64_t notebooks_registered = 0;
  /// Journal appends (admits + per-tick group commits + reloads + hard
  /// stops) and the bytes they wrote.
  int64_t journal_appends = 0;
  int64_t journal_bytes = 0;
  /// Durability barriers actually flushed (one fdatasync each). Group
  /// commit makes this ≤ journal_appends: consecutive tick records share
  /// the barrier that precedes the next external acknowledgement
  /// (admission, reload, hard stop, or TakeCompleted delivery).
  int64_t journal_syncs = 0;
  /// Journal append/compaction failures. The first one disables journaling
  /// for the rest of the manager's life; serving continues unjournaled.
  int64_t journal_failures = 0;
  /// Compactions (including the lazy initial start and the one closing a
  /// successful recovery).
  int64_t journal_compactions = 0;
  /// Live sessions rebuilt by RecoverFromJournal.
  int64_t recovered_sessions = 0;
  /// Recoveries that fell back to `<path>.prev` across a corrupt
  /// compaction snapshot.
  int64_t recovery_fallbacks = 0;
};

/// Multi-session policy-serving runtime: one immutable PolicySnapshot
/// per session (normally shared by all), N concurrent EDA sessions, one
/// batched forward per scheduler tick (DESIGN.md §11), wrapped in a fault
/// domain per session (DESIGN.md §13).
///
/// Tick() runs the lockstep discipline proven out by ParallelPpoTrainer:
///   1. serial act   — live sessions are grouped by their pinned snapshot
///                     (admission order; one group in steady state) and
///                     each group issues a single Policy::ActBatch with
///                     the sessions' private Rng streams (row i consumes
///                     only rngs[i], so a row's result is independent of
///                     who else is in the batch);
///   2. parallel step — fan the environment steps out on a ThreadPool,
///                     each worker writing an index-addressed slot and
///                     timing its step against the deadline clock;
///   3. serial commit — record steps, quarantine faulted sessions, walk
///                     the degradation ladder, retire finished sessions
///                     and reset episode boundaries in admission order.
/// Sessions touch only their own environment plus the shared DisplayCache,
/// whose hits are bit-identical to recomputes — so every session's trace
/// equals the single-session serial reference (ServeSingleSessionSerial),
/// bit for bit, at any thread count and under any join/leave pattern; and
/// because a faulted session's fault domain is itself, the survivors of a
/// quarantine are bit-identical to a run where the failed session was
/// never admitted (tests/serve_faults_test.cc).
///
/// Not thread-safe itself: Admit/Tick/Drain/HardStop/ReloadSnapshot/
/// TakeCompleted must be called from one scheduler thread.
class SessionManager {
 public:
  SessionManager(std::shared_ptr<const PolicySnapshot> snapshot,
                 ServeOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits a session (recycling a pooled environment when one is free);
  /// it starts stepping on the next Tick, pinned to the snapshot current
  /// at admission. Returns the session id, or kResourceExhausted when the
  /// runtime is at max_sessions (or shedding at the watermark) — overload
  /// is a structured refusal, never a latency collapse.
  Result<uint64_t> Admit(const SessionConfig& config);

  /// Advances every live session by one environment step. Returns the
  /// number of steps executed (0 when no session is live).
  int Tick();

  /// Ticks until every admitted session has finished — the graceful-drain
  /// path of the serving binary (finish in-flight sessions, admit none).
  void Drain();

  /// Immediately retires every live session with its partial notebook,
  /// flagged kHardStopped — the second-stop-request path. Environments
  /// are healthy (no fault occurred) and return to the pool. Returns the
  /// number of sessions stopped.
  int HardStop();

  /// Validates `path` and atomically swaps the serving snapshot between
  /// ticks: new admissions pin the new snapshot, in-flight sessions
  /// finish on their admission-time snapshot (shared_ptr pinning). A
  /// corrupt, truncated or architecture-mismatched file never replaces
  /// the last-good snapshot: the load is retried under the bounded
  /// backoff budget (ServeOptions::reload_retries), then the error is
  /// returned and serving continues unchanged.
  Status ReloadSnapshot(const std::string& path);

  /// What RecoverFromJournal found and did.
  struct RecoveryInfo {
    int sessions_restored = 0;
    int64_t ticks_replayed = 0;
    int64_t steps_replayed = 0;
    /// The journal's compaction snapshot was unreadable and the base state
    /// was replayed from `<path>.prev` instead.
    bool used_prev_fallback = false;
    /// A torn or corrupt suffix was dropped (prefix semantics). Not a
    /// loss: the recovered runtime re-executes those ticks identically.
    bool torn_tail = false;
  };

  /// Rebuilds the manager's entire serving state from the journal at
  /// `path` (DESIGN.md §15): restores the compaction snapshot (re-stepping
  /// each session's in-progress episode to rebuild its environment, and
  /// restoring the shared NotebookStore from the snapshot's sidecar), then
  /// replays every appended record — admissions, group-committed ticks,
  /// reloads, hard stops — verifying each replayed step's validity, reward
  /// and display signature bit-exactly against the recorded values, so a
  /// journal can never silently replay against the wrong dataset, snapshot
  /// or reward configuration. After recovery every live session's
  /// subsequent trace is bit-identical to an uninterrupted run
  /// (test-enforced, tests/serve_journal_test.cc).
  ///
  /// Tolerates a torn tail (crash mid-append) by dropping the incomplete
  /// suffix, and a corrupt compaction snapshot by replaying `<path>.prev`
  /// before applying the records that followed the compaction. Outcomes of
  /// sessions that retired after the last compaction are re-delivered
  /// through TakeCompleted — at-least-once semantics; consumers that must
  /// not double-count dedupe by session id.
  ///
  /// Must be called on a freshly constructed manager (before any Admit or
  /// Tick), built with the same dataset/options the journal was written
  /// under. On success the journal is immediately compacted against the
  /// recovered state. Returns NotFound when neither `path` nor its .prev
  /// exists; a verification mismatch or unusable base state is an error
  /// and leaves the manager unusable (construct a new one to retry).
  Status RecoverFromJournal(const std::string& path,
                            RecoveryInfo* info = nullptr);

  /// Rewrites the journal now against a full state snapshot (persisting
  /// the NotebookStore sidecar first), preserving the pre-compaction
  /// journal as `<path>.prev`. Requires ServeOptions::journal_path.
  Status CompactJournal();

  /// True while journaling is configured and has not been disabled by an
  /// append/compaction failure.
  bool journal_healthy() const {
    return !options_.journal_path.empty() &&
           (journal_ != nullptr || !journal_started_);
  }

  /// Moves out the outcomes of sessions finished since the last call, in
  /// completion order (quarantined and hard-stopped sessions included,
  /// with partial traces). When journaling, delivery is the group-commit
  /// durability barrier: the journal is fdatasynced (once, covering every
  /// record appended since the last barrier) before outcomes become
  /// visible, so no outcome the caller observes can be lost by a crash.
  std::vector<SessionOutcome> TakeCompleted();

  int active_sessions() const { return static_cast<int>(sessions_.size()); }
  int64_t steps_served() const { return steps_served_; }
  const ServeStats& stats() const { return stats_; }
  /// The snapshot new admissions would pin (the last-good one).
  const std::shared_ptr<const PolicySnapshot>& snapshot() const {
    return snapshot_;
  }
  const std::shared_ptr<DisplayCache>& display_cache() const {
    return cache_;
  }
  /// The shared notebook corpus, or null when not configured.
  const std::shared_ptr<NotebookStore>& notebook_store() const {
    return options_.notebook_store;
  }
  /// Top-k past notebooks most similar to `display_vectors` (NotebookRAG-
  /// style retrieval over the shared corpus; see NotebookStore::TopK).
  /// Empty when no store is configured.
  std::vector<NotebookStore::Match> QuerySimilarNotebooks(
      const std::vector<std::vector<double>>& display_vectors, int k) const;

 private:
  struct Session {
    uint64_t id = 0;
    SessionConfig config;
    int effective_max_steps = 0;
    int steps_done = 0;
    Rng act_rng;
    std::vector<double> observation;
    std::unique_ptr<EdaEnvironment> env;
    std::shared_ptr<RewardSignal> reward;
    /// The snapshot this session acts on, pinned at admission; a reload
    /// between its ticks never changes its policy.
    std::shared_ptr<const PolicySnapshot> snapshot;
    /// Generation index of `snapshot` (0 = the constructor snapshot) —
    /// what the journal records so recovery can re-pin the same policy.
    uint32_t snapshot_gen = 0;
    DegradeStage stage = DegradeStage::kNormal;
    int degraded_steps = 0;
    SessionTrace trace;
  };

  /// Index-addressed result slot of one session's parallel step.
  struct StepSlot {
    Status status;          // non-OK => quarantine
    StepOutcome outcome;    // valid only when status.ok() && executed
    int64_t duration_nanos = 0;
    bool executed = false;  // false when pre-step screening failed
  };

  std::unique_ptr<EdaEnvironment> AcquireEnv(uint64_t seed);
  /// The common session construction shared by Admit and journal replay.
  std::unique_ptr<Session> BuildSession(
      const SessionConfig& config, uint64_t id,
      std::shared_ptr<const PolicySnapshot> snapshot, uint32_t gen);
  /// Retires sessions_[index] (serial commit only). The env returns to
  /// the pool when `env_healthy`; a quarantined env may be mid-mutation
  /// and is discarded.
  void Retire(size_t index, RetireReason reason, Status status,
              bool env_healthy);
  /// One ladder escalation for sessions_[index]; retires on overflow.
  /// Returns true when the session was retired.
  bool EscalateDegrade(size_t index);
  /// Registers the session's current display-vector sequence in the
  /// notebook store (no-op without a store; the store skips sequences
  /// below its minimum length).
  void RegisterNotebook(const Session& session);
  void LogSessionEvent(const char* type, const Session& session,
                       const std::string& extra);

  // --- Durability (DESIGN.md §15). All no-ops without a journal_path. ---
  JournalMeta BuildJournalMeta() const;
  Status VerifyJournalMeta(const JournalMeta& meta) const;
  /// Full manager state for a compaction snapshot; `notebook_seq` is the
  /// sidecar sequence the caller just persisted (-1 = no store).
  JournalSnapshot CaptureJournalSnapshot(int64_t notebook_seq) const;
  /// Starts the journal lazily on the first state transition by running an
  /// initial compaction; does nothing once started, broken or recovering.
  void EnsureJournalStarted();
  /// First journal failure: log it, count it, stop journaling for good.
  void MarkJournalBroken(Status status);
  /// Books a finished append (or breaks the journal on failure).
  void AccountJournalAppend(Status status, int64_t bytes_before);
  /// Durability barrier: one fdatasync covering every record appended
  /// since the last barrier (group commit across ticks and admissions).
  /// Placed after externally acknowledged transitions (reload, hard stop)
  /// and before TakeCompleted hands outcomes out. Breaks the journal on
  /// failure; no-op when nothing is unsynced.
  void SyncJournal();
  void MaybeAutoCompact();
  /// Recovery internals: restore the compaction snapshot (sessions, store,
  /// generations, stats), then replay one appended record at a time.
  Status ReplayJournalSnapshot(const JournalSnapshot& snap,
                               const std::string& sidecar_root,
                               RecoveryInfo* info);
  Status ReplayJournalRecord(const JournalRecord& record, RecoveryInfo* info);
  Status ReplayJournalTick(const JournalTick& tick, RecoveryInfo* info);

  std::shared_ptr<const PolicySnapshot> snapshot_;
  ServeOptions options_;
  std::shared_ptr<DisplayCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  ServingHealthLog health_log_;

  std::vector<std::unique_ptr<Session>> sessions_;  // admission order
  std::vector<SessionOutcome> completed_;
  /// Retired sessions' environments, reseeded and reused by Admit: the
  /// per-environment setup (distinct-value ratios, encoder layout) depends
  /// only on the dataset, so recycling skips it entirely.
  std::vector<std::unique_ptr<EdaEnvironment>> env_pool_;

  uint64_t next_id_ = 1;
  int64_t steps_served_ = 0;
  ServeStats stats_;
  /// The journal writer; null until the lazy start, and again forever
  /// after the first append/compaction failure.
  std::unique_ptr<SessionJournal> journal_;
  bool journal_started_ = false;
  /// True while RecoverFromJournal replays — suppresses journal appends
  /// and the lazy start, so replaying records never rewrites the journal
  /// being read.
  bool recovering_ = false;
  /// Policy-snapshot path per generation; index 0 is the constructor
  /// snapshot (path unknown, stored empty). Reloads append.
  std::vector<std::string> generation_paths_{std::string()};
  uint32_t current_gen_ = 0;
  /// Sequence number of the last persisted NotebookStore sidecar.
  int64_t notebook_seq_ = -1;
  /// True when the previous tick's mean step duration overran the
  /// deadline — the watermark shed signal.
  bool overloaded_ = false;

  // Tick scratch, reused across calls.
  Matrix obs_batch_;
  std::vector<Rng*> rngs_;
  std::vector<StepSlot> slots_;
  /// Pre-step stream states captured at the top of a journaled tick, the
  /// base MakeJournalRng delta-encodes each entry's post-step state
  /// against (reused across ticks to stay allocation-free).
  std::vector<RngState> env_rng_before_;
  std::vector<RngState> act_rng_before_;
  /// Reusable tick-record payload writer: the serial commit loop encodes
  /// entries straight into the payload (no JournalTick materialization,
  /// no operation/term copies on the hot path).
  JournalTickBuilder tick_builder_;
};

/// Serves one session start to finish with per-sample acting on a private
/// environment and a private cache — the serial reference every served
/// trace must match bit-for-bit. `reward` may be null; like the manager's
/// sessions it must be a fresh instance per call (Compute is stateful).
SessionTrace ServeSingleSessionSerial(const PolicySnapshot& snapshot,
                                      const SessionConfig& config,
                                      RewardSignal* reward);

}  // namespace atena

#endif  // ATENA_SERVE_SESSION_MANAGER_H_
