#include "serve/journal.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/file_io.h"

namespace atena {

namespace {

constexpr char kFileHeader[] = "ATENA-SJL v1\n";
constexpr size_t kFileHeaderLen = sizeof(kFileHeader) - 1;

bool SameWords(const RngState& a, const RngState& b) {
  return a.words[0] == b.words[0] && a.words[1] == b.words[1] &&
         a.words[2] == b.words[2] && a.words[3] == b.words[3];
}

}  // namespace

JournalRng MakeJournalRng(const RngState& before, const RngState& after) {
  JournalRng out;
  Rng probe(1);
  probe.set_state(before);
  for (uint32_t draws = 0; draws <= kMaxJournalRngDelta; ++draws) {
    if (SameWords(probe.state(), after)) {
      out.full = false;
      out.draws = draws;
      out.has_spare = after.has_spare_gaussian;
      out.spare = after.spare_gaussian;
      return out;
    }
    probe.NextUint64();
  }
  // Unprovable (a re-seed, or an unusually draw-hungry step): record the
  // state verbatim. Correct either way — the delta is an optimization.
  out.full = true;
  out.state = after;
  return out;
}

RngState MaterializeJournalRng(const JournalRng& rng,
                               const RngState& current) {
  if (rng.full) return rng.state;
  Rng probe(1);
  probe.set_state(current);
  for (uint32_t i = 0; i < rng.draws; ++i) probe.NextUint64();
  RngState out = probe.state();
  out.has_spare_gaussian = rng.has_spare;
  // Without a spare the cached value is untouched garbage the step either
  // never looked at or consumed in place — both leave the bytes equal to
  // `current`'s (already carried through the probe), so only a fresh
  // spare needs restoring. The writer omits the value accordingly.
  if (rng.has_spare) out.spare_gaussian = rng.spare;
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Payload encoding: the checkpoint container's idiom (rl/checkpoint.cc) —
// whitespace-delimited keyword sections, strings length-prefixed so
// arbitrary dataset tokens survive. Encoding runs on the serving hot path
// (one tick record per Tick), so numbers append via std::to_chars into one
// growing string — no ostream formatting. Doubles encode as the 16-hex-
// digit IEEE-754 bit pattern: exact by construction and several times
// cheaper than shortest-round-trip decimal on both the encode and the
// replay-parse side.

template <typename T>
void Num(std::string& out, T value) {
  char buf[40];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, result.ptr);
}

void F64(std::string& out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[bits & 0xF];
    bits >>= 4;
  }
  out.append(buf, sizeof(buf));
}

void Sp(std::string& out) { out.push_back(' '); }
void Nl(std::string& out) { out.push_back('\n'); }

void EncodeRng(std::string& out, const RngState& rng) {
  Num(out, rng.words[0]);
  Sp(out);
  Num(out, rng.words[1]);
  Sp(out);
  Num(out, rng.words[2]);
  Sp(out);
  Num(out, rng.words[3]);
  Sp(out);
  Num(out, rng.has_spare_gaussian ? 1 : 0);
  Sp(out);
  F64(out, rng.spare_gaussian);
}

// Tick entries carry the delta form when possible ("d <draws> <spare>"),
// the full state ("F <state>") otherwise — the dominant byte saving of
// the tick record.
void EncodeJournalRng(std::string& out, const JournalRng& rng) {
  if (rng.full) {
    out += "F ";
    EncodeRng(out, rng.state);
    return;
  }
  out += "d ";
  Num(out, rng.draws);
  Sp(out);
  if (rng.has_spare) {
    out += "1 ";
    F64(out, rng.spare);
  } else {
    // A cleared/absent spare keeps its pre-step bytes; the value is
    // omitted (MaterializeJournalRng carries it from `current`).
    out += '0';
  }
}

void EncodeValue(std::string& out, const Value& value) {
  if (value.is_null()) {
    out += 'N';
  } else if (value.is_int()) {
    out += "I ";
    Num(out, value.as_int());
  } else if (value.is_double()) {
    out += "D ";
    F64(out, value.as_double());
  } else {
    const std::string& s = value.as_string();
    out += "S ";
    Num(out, s.size());
    Sp(out);
    out += s;
  }
}

void EncodeOp(std::string& out, const EdaOperation& op) {
  switch (op.type) {
    case OpType::kBack:
      out += 'B';
      break;
    case OpType::kGroup:
      out += "G ";
      Num(out, op.group.group_column);
      Sp(out);
      Num(out, static_cast<int>(op.group.agg));
      Sp(out);
      Num(out, op.group.agg_column);
      break;
    case OpType::kFilter:
      out += "F ";
      Num(out, op.filter.column);
      Sp(out);
      Num(out, static_cast<int>(op.filter.op));
      Sp(out);
      Num(out, op.filter.term_bin);
      Sp(out);
      EncodeValue(out, op.filter.term);
      break;
  }
}

void EncodeStep(std::string& out, const JournalStep& step) {
  Num(out, step.valid ? 1 : 0);
  Sp(out);
  F64(out, step.reward);
  Sp(out);
  Num(out, step.display_signature);
  Sp(out);
  EncodeOp(out, step.op);
}

void EncodeString(std::string& out, const std::string& s) {
  Num(out, s.size());
  Sp(out);
  out += s;
}

std::string EncodeMetaPayload(const JournalMeta& meta) {
  std::string out;
  out += "version ";
  Num(out, meta.version);
  Nl(out);
  out += "dataset ";
  EncodeString(out, meta.dataset_id);
  Nl(out);
  out += "obs_dim ";
  Num(out, meta.observation_dim);
  Nl(out);
  out += "episode_length ";
  Num(out, meta.episode_length);
  Nl(out);
  out += "term_bins ";
  Num(out, meta.num_term_bins);
  Nl(out);
  return out;
}

std::string EncodeAdmitPayload(const JournalAdmit& admit) {
  std::string out;
  Num(out, admit.id);
  Sp(out);
  Num(out, admit.seed);
  Sp(out);
  Num(out, admit.max_steps);
  Sp(out);
  Num(out, admit.greedy ? 1 : 0);
  Sp(out);
  Num(out, admit.gen);
  Nl(out);
  return out;
}

std::string EncodeReloadPayload(const JournalReload& reload) {
  std::string out;
  Num(out, reload.gen);
  Sp(out);
  EncodeString(out, reload.path);
  Nl(out);
  return out;
}

std::string TickPayloadHeader(bool overloaded, size_t count) {
  std::string out;
  Num(out, overloaded ? 1 : 0);
  Sp(out);
  Num(out, count);
  Nl(out);
  return out;
}

// Raw char* variants of the encoders above, for the per-entry stack
// buffer below (same bytes, no per-token std::string::append).
template <typename T>
char* PutNum(char* p, char* end, T value) {
  return std::to_chars(p, end, value).ptr;
}

char* PutF64(char* p, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 15; i >= 0; --i) {
    p[i] = "0123456789abcdef"[bits & 0xF];
    bits >>= 4;
  }
  return p + 16;
}

char* PutJournalRng(char* p, char* end, const JournalRng& rng) {
  if (rng.full) {
    *p++ = 'F';
    *p++ = ' ';
    for (const uint64_t word : rng.state.words) {
      p = PutNum(p, end, word);
      *p++ = ' ';
    }
    *p++ = rng.state.has_spare_gaussian ? '1' : '0';
    *p++ = ' ';
    return PutF64(p, rng.state.spare_gaussian);
  }
  *p++ = 'd';
  *p++ = ' ';
  p = PutNum(p, end, rng.draws);
  *p++ = ' ';
  if (rng.has_spare) {
    *p++ = '1';
    *p++ = ' ';
    return PutF64(p, rng.spare);
  }
  *p++ = '0';
  return p;
}

// Everything up to the operation is fixed-bounded (≲300 bytes even with
// two full-state fallbacks), so it encodes into one stack buffer and
// lands in the payload as a single append; the operation tail can carry
// an arbitrary dataset string, so it keeps the growing-string encoders.
void EncodeTickEntryStep(std::string& out, uint64_t id, int end,
                         int stage_after, const JournalRng& env,
                         const JournalRng& act, const EdaOperation& op,
                         bool valid, double reward,
                         uint64_t display_signature) {
  char buf[384];
  char* const limit = buf + sizeof(buf);
  char* p = buf;
  *p++ = 's';
  *p++ = ' ';
  p = PutNum(p, limit, id);
  *p++ = ' ';
  p = PutNum(p, limit, end);
  *p++ = ' ';
  p = PutNum(p, limit, stage_after);
  *p++ = ' ';
  p = PutJournalRng(p, limit, env);
  *p++ = ' ';
  p = PutJournalRng(p, limit, act);
  *p++ = ' ';
  *p++ = valid ? '1' : '0';
  *p++ = ' ';
  p = PutF64(p, reward);
  *p++ = ' ';
  p = PutNum(p, limit, display_signature);
  *p++ = ' ';
  out.append(buf, static_cast<size_t>(p - buf));
  EncodeOp(out, op);
  Nl(out);
}

std::string EncodeTickPayload(const JournalTick& tick) {
  std::string out = TickPayloadHeader(tick.overloaded, tick.entries.size());
  out.reserve(32 + tick.entries.size() * 96);
  for (const JournalTickEntry& entry : tick.entries) {
    if (entry.kind == JournalTickEntry::Kind::kQuarantine) {
      out += "q ";
      Num(out, entry.id);
      Nl(out);
      continue;
    }
    EncodeTickEntryStep(out, entry.id, entry.end, entry.stage_after,
                        entry.env_rng, entry.act_rng, entry.step.op,
                        entry.step.valid, entry.step.reward,
                        entry.step.display_signature);
  }
  return out;
}

std::string EncodeStopPayload(const std::vector<uint64_t>& ids) {
  std::string out;
  Num(out, ids.size());
  for (uint64_t id : ids) {
    Sp(out);
    Num(out, id);
  }
  Nl(out);
  return out;
}

std::string EncodeSnapPayload(const JournalSnapshot& snap) {
  std::string out;
  out.reserve(256 + snap.sessions.size() * 512);
  out += "next_id ";
  Num(out, snap.next_id);
  Nl(out);
  out += "steps_served ";
  Num(out, snap.steps_served);
  Nl(out);
  out += "overloaded ";
  Num(out, snap.overloaded ? 1 : 0);
  Nl(out);
  out += "stats ";
  Num(out, snap.stats.size());
  for (int64_t v : snap.stats) {
    Sp(out);
    Num(out, v);
  }
  Nl(out);
  out += "gens ";
  Num(out, snap.generation_paths.size());
  Nl(out);
  for (const std::string& path : snap.generation_paths) {
    EncodeString(out, path);
    Nl(out);
  }
  out += "current_gen ";
  Num(out, snap.current_gen);
  Nl(out);
  out += "notebook_seq ";
  Num(out, snap.notebook_seq);
  Nl(out);
  out += "sessions ";
  Num(out, snap.sessions.size());
  Nl(out);
  for (const JournalSessionState& s : snap.sessions) {
    out += "session ";
    Num(out, s.id);
    Sp(out);
    Num(out, s.seed);
    Sp(out);
    Num(out, s.max_steps);
    Sp(out);
    Num(out, s.greedy ? 1 : 0);
    Sp(out);
    Num(out, s.gen);
    Sp(out);
    Num(out, s.steps_done);
    Sp(out);
    Num(out, s.stage);
    Sp(out);
    Num(out, s.degraded_steps);
    Sp(out);
    Num(out, s.episode_steps);
    Sp(out);
    F64(out, s.total_reward);
    Nl(out);
    out += "env_rng ";
    EncodeRng(out, s.env_rng);
    Nl(out);
    out += "act_rng ";
    EncodeRng(out, s.act_rng);
    Nl(out);
    out += "trace ";
    Num(out, s.trace.size());
    Nl(out);
    for (const JournalStep& step : s.trace) {
      EncodeStep(out, step);
      Nl(out);
    }
  }
  out += "end\n";
  return out;
}

// ---------------------------------------------------------------------------
// Payload decoding. Every read is checked; any surprise aborts the record's
// parse with a Status, which the journal reader maps to prefix semantics
// (drop this record and everything after it).

class PayloadReader {
 public:
  PayloadReader(std::istream& in, size_t limit) : in_(in), limit_(limit) {}

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("journal record: " + what);
  }

  Status ExpectKeyword(const char* keyword) {
    std::string token;
    in_ >> token;
    if (!in_ || token != keyword) {
      return Fail("expected section '" + std::string(keyword) + "', got '" +
                  token + "'");
    }
    return Status::OK();
  }

  template <typename T>
  Status Read(T* value, const char* what) {
    in_ >> *value;
    if (!in_) return Fail(std::string("truncated or malformed ") + what);
    return Status::OK();
  }

  Status ReadBool(bool* value, const char* what) {
    int flag = 0;
    ATENA_RETURN_IF_ERROR(Read(&flag, what));
    if (flag != 0 && flag != 1) return Fail(std::string("non-boolean ") + what);
    *value = flag == 1;
    return Status::OK();
  }

  Status ReadCount(int64_t* count, const char* what) {
    ATENA_RETURN_IF_ERROR(Read(count, what));
    if (*count < 0 || static_cast<uint64_t>(*count) > limit_) {
      return Fail(std::string("implausible ") + what + " count " +
                  std::to_string(*count));
    }
    return Status::OK();
  }

  /// Doubles travel as the 16-hex-digit IEEE-754 bit pattern (see F64).
  Status ReadF64(double* value, const char* what) {
    std::string token;
    in_ >> token;
    if (!in_ || token.size() != 16) {
      return Fail(std::string("truncated or malformed ") + what);
    }
    uint64_t bits = 0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), bits, 16);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      return Fail(std::string("truncated or malformed ") + what);
    }
    std::memcpy(value, &bits, sizeof(bits));
    return Status::OK();
  }

  Status ReadString(std::string* out, const char* what) {
    int64_t len = 0;
    ATENA_RETURN_IF_ERROR(ReadCount(&len, what));
    in_.get();  // the single separator after the length
    std::string s(static_cast<size_t>(len), '\0');
    in_.read(s.data(), len);
    if (!in_) return Fail(std::string("truncated ") + what);
    *out = std::move(s);
    return Status::OK();
  }

  Status ReadRng(RngState* rng) {
    for (auto& word : rng->words) {
      ATENA_RETURN_IF_ERROR(Read(&word, "rng word"));
    }
    int has_spare = 0;
    ATENA_RETURN_IF_ERROR(Read(&has_spare, "rng spare flag"));
    if (has_spare != 0 && has_spare != 1) return Fail("rng spare flag");
    rng->has_spare_gaussian = has_spare == 1;
    ATENA_RETURN_IF_ERROR(ReadF64(&rng->spare_gaussian, "rng spare value"));
    return Status::OK();
  }

  Status ReadJournalRng(JournalRng* rng) {
    std::string tag;
    in_ >> tag;
    if (!in_) return Fail("truncated rng");
    if (tag == "F") {
      rng->full = true;
      return ReadRng(&rng->state);
    }
    if (tag != "d") return Fail("unknown rng tag '" + tag + "'");
    rng->full = false;
    ATENA_RETURN_IF_ERROR(Read(&rng->draws, "rng draw delta"));
    if (rng->draws > kMaxJournalRngDelta) {
      return Fail("rng draw delta " + std::to_string(rng->draws) +
                  " out of range");
    }
    int has_spare = 0;
    ATENA_RETURN_IF_ERROR(Read(&has_spare, "rng spare flag"));
    if (has_spare != 0 && has_spare != 1) return Fail("rng spare flag");
    rng->has_spare = has_spare == 1;
    rng->spare = 0.0;
    if (rng->has_spare) {
      ATENA_RETURN_IF_ERROR(ReadF64(&rng->spare, "rng spare value"));
    }
    return Status::OK();
  }

  Status ReadValue(Value* value) {
    std::string tag;
    in_ >> tag;
    if (!in_) return Fail("truncated value");
    if (tag == "N") {
      *value = Value::Null();
    } else if (tag == "I") {
      int64_t v = 0;
      ATENA_RETURN_IF_ERROR(Read(&v, "int value"));
      *value = Value(v);
    } else if (tag == "D") {
      double v = 0.0;
      ATENA_RETURN_IF_ERROR(ReadF64(&v, "double value"));
      *value = Value(v);
    } else if (tag == "S") {
      std::string s;
      ATENA_RETURN_IF_ERROR(ReadString(&s, "string value"));
      *value = Value(std::move(s));
    } else {
      return Fail("unknown value tag '" + tag + "'");
    }
    return Status::OK();
  }

  Status ReadOp(EdaOperation* op) {
    std::string tag;
    in_ >> tag;
    if (!in_) return Fail("truncated operation");
    if (tag == "B") {
      *op = EdaOperation::Back();
    } else if (tag == "G") {
      int group_column = 0, agg = 0, agg_column = 0;
      ATENA_RETURN_IF_ERROR(Read(&group_column, "group column"));
      ATENA_RETURN_IF_ERROR(Read(&agg, "agg function"));
      ATENA_RETURN_IF_ERROR(Read(&agg_column, "agg column"));
      if (agg < 0 || agg >= kNumAggFuncs) {
        return Fail("agg function " + std::to_string(agg) + " out of range");
      }
      *op = EdaOperation::Group(group_column, static_cast<AggFunc>(agg),
                                agg_column);
    } else if (tag == "F") {
      int column = 0, cmp = 0, term_bin = 0;
      ATENA_RETURN_IF_ERROR(Read(&column, "filter column"));
      ATENA_RETURN_IF_ERROR(Read(&cmp, "filter operator"));
      ATENA_RETURN_IF_ERROR(Read(&term_bin, "filter term bin"));
      if (cmp < 0 || cmp >= kNumCompareOps) {
        return Fail("filter operator " + std::to_string(cmp) +
                    " out of range");
      }
      Value term;
      ATENA_RETURN_IF_ERROR(ReadValue(&term));
      *op = EdaOperation::Filter(column, static_cast<CompareOp>(cmp),
                                 std::move(term), term_bin);
    } else {
      return Fail("unknown operation tag '" + tag + "'");
    }
    return Status::OK();
  }

  Status ReadStep(JournalStep* step) {
    ATENA_RETURN_IF_ERROR(ReadBool(&step->valid, "step valid flag"));
    ATENA_RETURN_IF_ERROR(ReadF64(&step->reward, "step reward"));
    ATENA_RETURN_IF_ERROR(Read(&step->display_signature, "step signature"));
    return ReadOp(&step->op);
  }

 private:
  std::istream& in_;
  size_t limit_;
};

Status DecodeMetaPayload(const std::string& payload, JournalMeta* meta) {
  std::istringstream in(payload);
  PayloadReader reader(in, payload.size());
  JournalMeta out;
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("version"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.version, "version"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("dataset"));
  ATENA_RETURN_IF_ERROR(reader.ReadString(&out.dataset_id, "dataset id"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("obs_dim"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.observation_dim, "obs_dim"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("episode_length"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.episode_length, "episode_length"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("term_bins"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.num_term_bins, "term_bins"));
  *meta = std::move(out);
  return Status::OK();
}

Status DecodeAdmitPayload(const std::string& payload, JournalAdmit* admit) {
  std::istringstream in(payload);
  PayloadReader reader(in, payload.size());
  JournalAdmit out;
  ATENA_RETURN_IF_ERROR(reader.Read(&out.id, "admit id"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.seed, "admit seed"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.max_steps, "admit max_steps"));
  ATENA_RETURN_IF_ERROR(reader.ReadBool(&out.greedy, "admit greedy flag"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.gen, "admit generation"));
  *admit = out;
  return Status::OK();
}

Status DecodeReloadPayload(const std::string& payload, JournalReload* reload) {
  std::istringstream in(payload);
  PayloadReader reader(in, payload.size());
  JournalReload out;
  ATENA_RETURN_IF_ERROR(reader.Read(&out.gen, "reload generation"));
  ATENA_RETURN_IF_ERROR(reader.ReadString(&out.path, "reload path"));
  *reload = std::move(out);
  return Status::OK();
}

Status DecodeTickPayload(const std::string& payload, JournalTick* tick) {
  std::istringstream in(payload);
  PayloadReader reader(in, payload.size());
  JournalTick out;
  ATENA_RETURN_IF_ERROR(reader.ReadBool(&out.overloaded, "tick overloaded"));
  int64_t count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&count, "tick entry"));
  out.entries.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    std::string tag;
    if (!(in >> tag)) return reader.Fail("truncated tick entry");
    JournalTickEntry entry;
    if (tag == "q") {
      entry.kind = JournalTickEntry::Kind::kQuarantine;
      ATENA_RETURN_IF_ERROR(reader.Read(&entry.id, "quarantine id"));
    } else if (tag == "s") {
      entry.kind = JournalTickEntry::Kind::kStep;
      ATENA_RETURN_IF_ERROR(reader.Read(&entry.id, "step id"));
      ATENA_RETURN_IF_ERROR(reader.Read(&entry.end, "step end"));
      if (entry.end < JournalTickEntry::kLive ||
          entry.end > JournalTickEntry::kDeadlineRetired) {
        return reader.Fail("step end " + std::to_string(entry.end) +
                           " out of range");
      }
      ATENA_RETURN_IF_ERROR(reader.Read(&entry.stage_after, "step stage"));
      ATENA_RETURN_IF_ERROR(reader.ReadJournalRng(&entry.env_rng));
      ATENA_RETURN_IF_ERROR(reader.ReadJournalRng(&entry.act_rng));
      ATENA_RETURN_IF_ERROR(reader.ReadStep(&entry.step));
    } else {
      return reader.Fail("unknown tick entry tag '" + tag + "'");
    }
    out.entries.push_back(std::move(entry));
  }
  *tick = std::move(out);
  return Status::OK();
}

Status DecodeStopPayload(const std::string& payload,
                         std::vector<uint64_t>* ids) {
  std::istringstream in(payload);
  PayloadReader reader(in, payload.size());
  int64_t count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&count, "stop id"));
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    ATENA_RETURN_IF_ERROR(reader.Read(&id, "stop id"));
    out.push_back(id);
  }
  *ids = std::move(out);
  return Status::OK();
}

Status DecodeSnapPayload(const std::string& payload, JournalSnapshot* snap) {
  std::istringstream in(payload);
  PayloadReader reader(in, payload.size());
  JournalSnapshot out;
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("next_id"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.next_id, "next_id"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("steps_served"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.steps_served, "steps_served"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("overloaded"));
  ATENA_RETURN_IF_ERROR(reader.ReadBool(&out.overloaded, "overloaded"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("stats"));
  int64_t stat_count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&stat_count, "stats"));
  out.stats.resize(static_cast<size_t>(stat_count));
  for (int64_t& v : out.stats) {
    ATENA_RETURN_IF_ERROR(reader.Read(&v, "stats value"));
  }
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("gens"));
  int64_t gen_count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&gen_count, "generation"));
  if (gen_count < 1) return reader.Fail("empty generation table");
  out.generation_paths.resize(static_cast<size_t>(gen_count));
  for (std::string& path : out.generation_paths) {
    ATENA_RETURN_IF_ERROR(reader.ReadString(&path, "generation path"));
  }
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("current_gen"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.current_gen, "current_gen"));
  if (out.current_gen >= out.generation_paths.size()) {
    return reader.Fail("current_gen out of range");
  }
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("notebook_seq"));
  ATENA_RETURN_IF_ERROR(reader.Read(&out.notebook_seq, "notebook_seq"));
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("sessions"));
  int64_t session_count = 0;
  ATENA_RETURN_IF_ERROR(reader.ReadCount(&session_count, "session"));
  out.sessions.reserve(static_cast<size_t>(session_count));
  for (int64_t i = 0; i < session_count; ++i) {
    JournalSessionState s;
    ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("session"));
    ATENA_RETURN_IF_ERROR(reader.Read(&s.id, "session id"));
    ATENA_RETURN_IF_ERROR(reader.Read(&s.seed, "session seed"));
    ATENA_RETURN_IF_ERROR(reader.Read(&s.max_steps, "session max_steps"));
    ATENA_RETURN_IF_ERROR(reader.ReadBool(&s.greedy, "session greedy flag"));
    ATENA_RETURN_IF_ERROR(reader.Read(&s.gen, "session generation"));
    if (s.gen >= out.generation_paths.size()) {
      return reader.Fail("session generation out of range");
    }
    ATENA_RETURN_IF_ERROR(reader.Read(&s.steps_done, "session steps_done"));
    ATENA_RETURN_IF_ERROR(reader.Read(&s.stage, "session stage"));
    ATENA_RETURN_IF_ERROR(
        reader.Read(&s.degraded_steps, "session degraded_steps"));
    ATENA_RETURN_IF_ERROR(
        reader.Read(&s.episode_steps, "session episode_steps"));
    ATENA_RETURN_IF_ERROR(
        reader.ReadF64(&s.total_reward, "session total_reward"));
    ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("env_rng"));
    ATENA_RETURN_IF_ERROR(reader.ReadRng(&s.env_rng));
    ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("act_rng"));
    ATENA_RETURN_IF_ERROR(reader.ReadRng(&s.act_rng));
    ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("trace"));
    int64_t trace_count = 0;
    ATENA_RETURN_IF_ERROR(reader.ReadCount(&trace_count, "trace step"));
    if (s.episode_steps < 0 || s.episode_steps > trace_count) {
      return reader.Fail("episode_steps out of range");
    }
    s.trace.reserve(static_cast<size_t>(trace_count));
    for (int64_t t = 0; t < trace_count; ++t) {
      JournalStep step;
      ATENA_RETURN_IF_ERROR(reader.ReadStep(&step));
      s.trace.push_back(std::move(step));
    }
    out.sessions.push_back(std::move(s));
  }
  ATENA_RETURN_IF_ERROR(reader.ExpectKeyword("end"));
  *snap = std::move(out);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Record framing.

std::string FrameRecord(const char* type, const std::string& payload) {
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload));
  std::string framed = "ATJ ";
  framed += type;
  framed += " ";
  framed += crc_hex;
  framed += " ";
  framed += std::to_string(payload.size());
  framed += "\n";
  framed += payload;
  framed += "\n";
  return framed;
}

/// Parses one "ATJ <type> <crc> <size>" frame-header line. Strict: exactly
/// four tokens, the checksum exactly 8 lowercase hex digits — so any byte
/// flip inside the header is itself detected.
bool ParseFrameHeader(std::string_view line, std::string* type,
                      uint32_t* crc, uint64_t* size) {
  std::istringstream in{std::string(line)};
  std::string magic, crc_hex, extra;
  if (!(in >> magic >> *type >> crc_hex >> *size)) return false;
  if (in >> extra) return false;
  if (magic != "ATJ" || crc_hex.size() != 8) return false;
  uint32_t declared = 0;
  for (char c : crc_hex) {
    if (c >= '0' && c <= '9') {
      declared = declared * 16 + static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      declared = declared * 16 + static_cast<uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *crc = declared;
  return true;
}

/// Decodes one verified record payload into `out`. `index` is the record's
/// position in the file: 0 must be meta, 1 must be the compaction
/// snapshot, everything after is the append stream.
Status DecodeRecord(const std::string& type, const std::string& payload,
                    int index, JournalContents* out) {
  if (index == 0) {
    if (type != "meta") {
      return Status::InvalidArgument("first journal record is '" + type +
                                     "', expected 'meta'");
    }
    ATENA_RETURN_IF_ERROR(DecodeMetaPayload(payload, &out->meta));
    out->has_meta = true;
    return Status::OK();
  }
  if (index == 1) {
    if (type != "snap") {
      return Status::InvalidArgument("second journal record is '" + type +
                                     "', expected 'snap'");
    }
    ATENA_RETURN_IF_ERROR(DecodeSnapPayload(payload, &out->snapshot));
    out->has_snapshot = true;
    out->snapshot_valid = true;
    return Status::OK();
  }
  JournalRecord record;
  if (type == "admit") {
    record.kind = JournalRecord::Kind::kAdmit;
    ATENA_RETURN_IF_ERROR(DecodeAdmitPayload(payload, &record.admit));
  } else if (type == "reload") {
    record.kind = JournalRecord::Kind::kReload;
    ATENA_RETURN_IF_ERROR(DecodeReloadPayload(payload, &record.reload));
  } else if (type == "tick") {
    record.kind = JournalRecord::Kind::kTick;
    ATENA_RETURN_IF_ERROR(DecodeTickPayload(payload, &record.tick));
  } else if (type == "stop") {
    record.kind = JournalRecord::Kind::kStop;
    ATENA_RETURN_IF_ERROR(DecodeStopPayload(payload, &record.stop_ids));
  } else {
    return Status::InvalidArgument("unknown journal record type '" + type +
                                   "'");
  }
  out->records.push_back(std::move(record));
  return Status::OK();
}

}  // namespace

void JournalTickBuilder::AddQuarantine(uint64_t id) {
  body_ += "q ";
  Num(body_, id);
  Nl(body_);
  ++entries_;
}

void JournalTickBuilder::AddStep(uint64_t id, int end, int stage_after,
                                 const JournalRng& env, const JournalRng& act,
                                 const EdaOperation& op, bool valid,
                                 double reward, uint64_t display_signature) {
  EncodeTickEntryStep(body_, id, end, stage_after, env, act, op, valid,
                      reward, display_signature);
  ++entries_;
}


std::string JournalSidecarPath(const std::string& journal_path, int64_t seq) {
  return journal_path + ".nb." + std::to_string(seq);
}

Result<JournalContents> ReadJournal(const std::string& path) {
  std::string content;
  ATENA_RETURN_IF_ERROR(ReadFileToString(path, &content));

  JournalContents out;
  if (content.size() < kFileHeaderLen) {
    if (std::string_view(kFileHeader, content.size()) == content) {
      out.header_torn = true;
      out.clean_tail = content.empty();
      return out;
    }
    return Status::InvalidArgument("'" + path +
                                   "' is not an ATENA-SJL journal");
  }
  if (std::string_view(content).substr(0, kFileHeaderLen) != kFileHeader) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an ATENA-SJL journal");
  }

  size_t offset = kFileHeaderLen;
  int index = 0;
  while (offset < content.size()) {
    const size_t header_end = content.find('\n', offset);
    if (header_end == std::string::npos) {
      out.clean_tail = false;  // torn frame header (crash mid-append)
      break;
    }
    std::string type;
    uint32_t declared_crc = 0;
    uint64_t size = 0;
    const bool frame_ok = ParseFrameHeader(
        std::string_view(content).substr(offset, header_end - offset), &type,
        &declared_crc, &size);
    if (!frame_ok) {
      // A mangled frame header. If this is where the compaction snapshot
      // must sit, try to resync at the next frame so the records *after*
      // the corrupt snapshot stay available for the .prev fallback;
      // anywhere else, prefix semantics end the parse here.
      if (index == 1) {
        const size_t next = content.find("\nATJ ", offset);
        if (next != std::string::npos) {
          out.has_snapshot = true;
          out.snapshot_valid = false;
          offset = next + 1;
          index = 2;
          continue;
        }
        out.has_snapshot = true;
        out.snapshot_valid = false;
      }
      out.clean_tail = false;
      break;
    }
    const size_t payload_start = header_end + 1;
    if (payload_start + size + 1 > content.size()) {
      out.clean_tail = false;  // torn payload
      break;
    }
    const std::string payload = content.substr(payload_start, size);
    bool record_ok = content[payload_start + size] == '\n' &&
                     Crc32(payload) == declared_crc;
    if (record_ok) {
      record_ok = DecodeRecord(type, payload, index, &out).ok();
    }
    if (!record_ok) {
      if (index == 1 && type == "snap") {
        // Corrupt compaction snapshot with an intact frame: skip exactly
        // its declared extent and keep the records after it (fallback
        // replays `<path>.prev` for the base state).
        out.has_snapshot = true;
        out.snapshot_valid = false;
        offset = payload_start + size + 1;
        ++index;
        continue;
      }
      out.clean_tail = false;
      break;
    }
    offset = payload_start + size + 1;
    ++index;
  }
  return out;
}

SessionJournal::SessionJournal(std::string path) : path_(std::move(path)) {}

Status SessionJournal::Reset(const JournalMeta& meta,
                             const JournalSnapshot& snapshot) {
  std::string content = kFileHeader;
  content += FrameRecord("meta", EncodeMetaPayload(meta));
  const size_t before_snap = content.size();
  content += FrameRecord("snap", EncodeSnapPayload(snapshot));
  const int64_t snap_bytes =
      static_cast<int64_t>(content.size() - before_snap);
  if (FileExists(path_)) {
    // Preserve the pre-compaction journal: if the snapshot we are about
    // to publish turns out unreadable, recovery replays `.prev` — which
    // ends exactly at the state the snapshot captured — and then applies
    // whatever was appended after the compaction.
    std::string previous;
    ATENA_RETURN_IF_ERROR(ReadFileToString(path_, &previous));
    ATENA_RETURN_IF_ERROR(AtomicWriteFile(path_ + ".prev", previous));
  }
  ATENA_RETURN_IF_ERROR(AtomicWriteFile(path_, content));
  // The rename above replaced the inode the held descriptor points at;
  // drop it so the next Append reopens the fresh file.
  appender_.Close();
  appended_bytes_ = 0;
  snapshot_bytes_ = snap_bytes;
  return Status::OK();
}

Status SessionJournal::Append(const char* type, const std::string& payload) {
  const std::string framed = FrameRecord(type, payload);
  if (!appender_.is_open()) {
    ATENA_RETURN_IF_ERROR(appender_.Open(path_));
  }
  ATENA_RETURN_IF_ERROR(appender_.Append(framed));
  appended_bytes_ += static_cast<int64_t>(framed.size());
  return Status::OK();
}

Status SessionJournal::Sync() { return appender_.Sync(); }

Status SessionJournal::AppendAdmit(const JournalAdmit& admit) {
  return Append("admit", EncodeAdmitPayload(admit));
}

Status SessionJournal::AppendReload(const JournalReload& reload) {
  return Append("reload", EncodeReloadPayload(reload));
}

Status SessionJournal::AppendTick(const JournalTick& tick) {
  return Append("tick", EncodeTickPayload(tick));
}

Status SessionJournal::AppendTickBuilt(const JournalTickBuilder& builder,
                                       bool overloaded) {
  // Frame + payload header land in one stack buffer; the builder's body
  // is never copied — the CRC streams over both pieces and one gather
  // write moves them into the kernel. The bytes on disk are exactly
  // FrameRecord("tick", TickPayloadHeader(...) + body).
  const std::string header = TickPayloadHeader(overloaded, builder.entries());
  const std::string& body = builder.body();
  const uint32_t crc = Crc32Extend(Crc32Extend(0, header), body);
  char prefix[64];
  const int prefix_len = std::snprintf(
      prefix, sizeof(prefix), "ATJ tick %08x %zu\n", crc,
      header.size() + body.size());
  if (!appender_.is_open()) {
    ATENA_RETURN_IF_ERROR(appender_.Open(path_));
  }
  ATENA_RETURN_IF_ERROR(appender_.AppendParts(
      {std::string_view(prefix, static_cast<size_t>(prefix_len)), header,
       body, std::string_view("\n", 1)}));
  appended_bytes_ += static_cast<int64_t>(static_cast<size_t>(prefix_len) +
                                          header.size() + body.size() + 1);
  return Status::OK();
}

Status SessionJournal::AppendStop(const std::vector<uint64_t>& ids) {
  return Append("stop", EncodeStopPayload(ids));
}

}  // namespace atena
