#ifndef ATENA_SERVE_HEALTH_LOG_H_
#define ATENA_SERVE_HEALTH_LOG_H_

#include <cstdint>
#include <string>

namespace atena {

/// JSONL serving-health log (DESIGN.md §13): one JSON object per fault-
/// domain event — quarantine, degradation transition, deadline retirement,
/// load shed, snapshot reload attempt/outcome, hard stop. Like the
/// training guard's log (§10), the whole file is rewritten atomically via
/// the file_io layer on every append, so a crash can never leave a torn
/// line, and events are rare enough that the rewrite cost is noise.
///
/// Schema (all events): {"event":N,"type":"...","detail":"..."} plus
/// per-type fields — "session"/"step" for per-session events, "stage" for
/// degradations, "path"/"attempt" for reloads, "code" for the Status code
/// of errors. Field values are built by the SessionManager; this class
/// only owns ordering, escaping helpers and the atomic rewrite.
class ServingHealthLog {
 public:
  /// An empty path disables the log: Append becomes a no-op.
  explicit ServingHealthLog(std::string path);

  bool enabled() const { return !path_.empty(); }
  int64_t events() const { return events_; }

  /// Appends `{"event":<n>,<body>}` as one line and atomically rewrites
  /// the log file. `body` is the comma-separated interior of the object
  /// (already JSON-escaped, e.g. via JsonString). Write failures are
  /// logged as warnings and never fail serving.
  void Append(const std::string& body);

 private:
  std::string path_;
  std::string log_;
  int64_t events_ = 0;
};

/// `"..."` with backslash, quote and control characters escaped — safe to
/// splice a Status message or file path into a JSON object body.
std::string JsonString(const std::string& value);

}  // namespace atena

#endif  // ATENA_SERVE_HEALTH_LOG_H_
