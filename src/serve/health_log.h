#ifndef ATENA_SERVE_HEALTH_LOG_H_
#define ATENA_SERVE_HEALTH_LOG_H_

#include <cstdint>
#include <string>

namespace atena {

/// JSONL serving-health log (DESIGN.md §13): one JSON object per fault-
/// domain event — quarantine, degradation transition, deadline retirement,
/// load shed, snapshot reload attempt/outcome, hard stop, journal append/
/// compaction failures and recovery outcomes. Each event is one durable
/// append (AppendDurableFile: O_APPEND + fsync), so the cost of N events is
/// O(N) total rather than the O(N²) a whole-file rewrite per event would
/// be, and a crash mid-append can only leave a torn *final* line — which
/// the constructor detects and trims when the log is reopened, so every
/// line a reader ever sees is complete.
///
/// Schema (all events): {"event":N,"type":"...","detail":"..."} plus
/// per-type fields — "session"/"step" for per-session events, "stage" for
/// degradations, "path"/"attempt" for reloads. Event numbers continue
/// across process restarts: reopening an existing log resumes numbering
/// after its last complete line. Field values are built by the
/// SessionManager; this class only owns ordering, escaping helpers and the
/// durable append.
class ServingHealthLog {
 public:
  /// An empty path disables the log: Append becomes a no-op. A non-empty
  /// path pointing at an existing log reloads its event count (tolerating
  /// — and trimming — a torn final line from a crash mid-append).
  explicit ServingHealthLog(std::string path);

  bool enabled() const { return !path_.empty(); }
  int64_t events() const { return events_; }

  /// Durably appends `{"event":<n>,<body>}` as one line. `body` is the
  /// comma-separated interior of the object (already JSON-escaped, e.g.
  /// via JsonString/JsonNumber). Write failures are logged as warnings and
  /// never fail serving.
  void Append(const std::string& body);

 private:
  std::string path_;
  int64_t events_ = 0;
};

/// `"..."` with backslash, quote and control characters escaped — safe to
/// splice a Status message or file path into a JSON object body.
std::string JsonString(const std::string& value);

/// JSON-safe number (the training health log's convention, rl/guardrails):
/// finite doubles round-trip via %.17g; non-finite ones — which JSON
/// cannot represent — become the quoted strings "nan"/"inf"/"-inf", so a
/// degraded-step ratio over zero steps can be logged without producing an
/// unparseable line.
std::string JsonNumber(double value);

}  // namespace atena

#endif  // ATENA_SERVE_HEALTH_LOG_H_
