#include "serve/session_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/clock.h"
#include "rl/policy.h"

namespace atena {

uint64_t ActingStreamSeed(uint64_t session_seed) {
  // Any fixed non-zero salt works: SplitMix64 seeding decorrelates the
  // resulting stream from the environment's (seeded with the raw value).
  return session_seed ^ 0xA3EC4155D1E5ULL;
}

const char* RetireReasonName(RetireReason reason) {
  switch (reason) {
    case RetireReason::kCompleted:
      return "completed";
    case RetireReason::kQuarantined:
      return "quarantined";
    case RetireReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case RetireReason::kHardStopped:
      return "hard_stopped";
  }
  return "unknown";
}

const char* DegradeStageName(DegradeStage stage) {
  switch (stage) {
    case DegradeStage::kNormal:
      return "normal";
    case DegradeStage::kNoDiversity:
      return "no_diversity";
    case DegradeStage::kGreedy:
      return "greedy";
  }
  return "unknown";
}

namespace {

int EffectiveMaxSteps(const SessionConfig& config, const EnvConfig& env) {
  return config.max_steps > 0 ? config.max_steps : env.episode_length;
}

ServedStep RecordStep(const StepOutcome& out, const EdaEnvironment& env) {
  return ServedStep{out.op, out.valid, out.reward,
                    DisplayVectorKey(env.current_display(),
                                     env.config().stats_row_cap)};
}

/// First non-finite element of `values`, or -1 when all are finite.
int FirstNonFinite(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

SessionManager::SessionManager(std::shared_ptr<const PolicySnapshot> snapshot,
                               ServeOptions options)
    : snapshot_(std::move(snapshot)),
      options_(std::move(options)),
      health_log_(options_.health_log_path) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_shared<DisplayCache>(DisplayCache::Options{
        .capacity = options_.cache_capacity,
        .shards = options_.cache_shards});
  }
  const int threads =
      options_.num_threads > 0
          ? options_.num_threads
          : ThreadPool::DefaultThreads(std::numeric_limits<int>::max());
  pool_ = std::make_unique<ThreadPool>(threads);
}

SessionManager::~SessionManager() = default;

std::unique_ptr<EdaEnvironment> SessionManager::AcquireEnv(uint64_t seed) {
  if (!env_pool_.empty()) {
    std::unique_ptr<EdaEnvironment> env = std::move(env_pool_.back());
    env_pool_.pop_back();
    // Reseeding the term stream (plus the Reset in Admit) makes a recycled
    // environment observationally identical to a freshly constructed one;
    // the expensive dataset-derived state (distinct-value ratios, encoder
    // layout) depends only on the dataset and carries over untouched.
    env->set_rng_state(Rng(seed).state());
    return env;
  }
  EnvConfig config = snapshot_->options().env;
  config.seed = seed;
  // All sessions share the manager's cache, injected in Admit.
  config.display_cache_enabled = false;
  return std::make_unique<EdaEnvironment>(snapshot_->dataset(), config);
}

Result<uint64_t> SessionManager::Admit(const SessionConfig& config) {
  const int live = static_cast<int>(sessions_.size());
  if (options_.max_sessions > 0) {
    if (live >= options_.max_sessions) {
      ++stats_.shed;
      if (health_log_.enabled()) {
        health_log_.Append("\"type\":\"shed\",\"seed\":" +
                           std::to_string(config.seed) +
                           ",\"live\":" + std::to_string(live) +
                           ",\"detail\":\"at max_sessions\"");
      }
      return Status::ResourceExhausted(
          "admission refused: " + std::to_string(live) +
          " live sessions at max_sessions=" +
          std::to_string(options_.max_sessions));
    }
    const int watermark =
        static_cast<int>(options_.shed_watermark *
                         static_cast<double>(options_.max_sessions));
    if (options_.shed_watermark > 0.0 && options_.step_deadline_nanos > 0 &&
        overloaded_ && live >= watermark) {
      ++stats_.shed;
      if (health_log_.enabled()) {
        health_log_.Append("\"type\":\"shed\",\"seed\":" +
                           std::to_string(config.seed) +
                           ",\"live\":" + std::to_string(live) +
                           ",\"detail\":\"overloaded past watermark\"");
      }
      return Status::ResourceExhausted(
          "load shed: " + std::to_string(live) +
          " live sessions past watermark (" + std::to_string(watermark) +
          " of max_sessions=" + std::to_string(options_.max_sessions) +
          ") while the last tick overran the step deadline");
    }
  }

  auto session = std::make_unique<Session>();
  session->id = next_id_++;
  session->config = config;
  session->effective_max_steps =
      EffectiveMaxSteps(config, snapshot_->options().env);
  session->env = AcquireEnv(config.seed);
  session->env->SetDisplayCache(cache_);
  if (options_.reward_factory) {
    session->reward = options_.reward_factory();
  }
  session->env->SetRewardSignal(session->reward.get());
  session->act_rng = Rng(ActingStreamSeed(config.seed));
  session->observation = session->env->Reset();
  session->snapshot = snapshot_;
  session->trace.id = session->id;
  session->trace.seed = config.seed;
  session->trace.steps.reserve(
      static_cast<size_t>(session->effective_max_steps));
  const uint64_t id = session->id;
  sessions_.push_back(std::move(session));
  ++stats_.admitted;
  return id;
}

void SessionManager::RegisterNotebook(const Session& session) {
  if (!options_.notebook_store) return;
  const int64_t notebook_id = options_.notebook_store->Register(
      session.id, session.config.seed, session.env->display_vectors());
  if (notebook_id < 0) return;
  ++stats_.notebooks_registered;
  LogSessionEvent("notebook_registered", session,
                  "\"notebook\":" + std::to_string(notebook_id));
}

void SessionManager::Retire(size_t index, RetireReason reason, Status status,
                            bool env_healthy) {
  Session& s = *sessions_[index];
  // A healthy environment's in-progress notebook joins the corpus (the
  // store drops sequences too short to be a notebook); a quarantined
  // environment may be mid-mutation and its history is not trusted.
  if (env_healthy) RegisterNotebook(s);
  SessionOutcome outcome;
  outcome.reason = reason;
  outcome.status = std::move(status);
  outcome.final_stage = s.stage;
  outcome.degraded_steps = s.degraded_steps;
  outcome.trace = std::move(s.trace);
  completed_.push_back(std::move(outcome));
  switch (reason) {
    case RetireReason::kCompleted:
      ++stats_.completed;
      break;
    case RetireReason::kQuarantined:
      ++stats_.quarantined;
      break;
    case RetireReason::kDeadlineExceeded:
      ++stats_.deadline_retired;
      break;
    case RetireReason::kHardStopped:
      ++stats_.hard_stopped;
      break;
  }
  if (env_healthy) {
    s.env->SetRewardSignal(nullptr);
    env_pool_.push_back(std::move(s.env));
  }
  // A quarantined environment may have been interrupted mid-mutation; it
  // is discarded with the session rather than pooled.
  sessions_[index].reset();
}

bool SessionManager::EscalateDegrade(size_t index) {
  Session& s = *sessions_[index];
  ++stats_.degrade_transitions;
  switch (s.stage) {
    case DegradeStage::kNormal:
      s.stage = DegradeStage::kNoDiversity;
      if (s.reward) s.reward->SetDegradedMode(true);
      LogSessionEvent("degrade", s, "\"stage\":\"no_diversity\"");
      return false;
    case DegradeStage::kNoDiversity:
      s.stage = DegradeStage::kGreedy;
      LogSessionEvent("degrade", s, "\"stage\":\"greedy\"");
      return false;
    case DegradeStage::kGreedy:
      break;
  }
  // Past the last stage: the session cannot be served within budget even
  // fully degraded — retire it with its partial notebook.
  LogSessionEvent("deadline_retire", s, std::string("\"stage\":\"") +
                                            DegradeStageName(s.stage) + "\"");
  Retire(index, RetireReason::kDeadlineExceeded,
         Status::ResourceExhausted(
             "step deadline (" + std::to_string(options_.step_deadline_nanos) +
             "ns) still exceeded at the last degradation stage"),
         /*env_healthy=*/true);
  return true;
}

void SessionManager::LogSessionEvent(const char* type, const Session& session,
                                     const std::string& extra) {
  if (!health_log_.enabled()) return;
  std::string body = "\"type\":" + JsonString(type) +
                     ",\"session\":" + std::to_string(session.id) +
                     ",\"seed\":" + std::to_string(session.config.seed) +
                     ",\"step\":" + std::to_string(session.steps_done);
  if (!extra.empty()) {
    body += ",";
    body += extra;
  }
  health_log_.Append(body);
}

int SessionManager::Tick() {
  const int live = static_cast<int>(sessions_.size());
  if (live == 0) return 0;

  // 1. Serial act: one batched forward per pinned-snapshot group (a single
  // group except in the ticks spanning a hot reload), each row drawing
  // from its session's private stream (or none when greedy — by config or
  // by degradation stage).
  std::vector<PolicyStep> acts(static_cast<size_t>(live));
  std::vector<const PolicySnapshot*> group_keys;
  std::vector<std::vector<int>> groups;
  for (int i = 0; i < live; ++i) {
    const PolicySnapshot* key = sessions_[static_cast<size_t>(i)]->snapshot.get();
    size_t g = 0;
    while (g < group_keys.size() && group_keys[g] != key) ++g;
    if (g == group_keys.size()) {
      group_keys.push_back(key);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }
  for (const std::vector<int>& members : groups) {
    Session& first = *sessions_[static_cast<size_t>(members.front())];
    TwofoldPolicy* policy = first.snapshot->policy();
    if (options_.batched_acting) {
      // Pad the batch up to the forward pass's 4-row register-tile width
      // so a draining runtime (1–3 live sessions) keeps the tiled GEMM
      // instead of falling back to per-row dot products. GEMM rows are
      // independent, and a padded row carries a null Rng, so live rows'
      // results are bit-identical with or without padding; padded outputs
      // are dropped.
      constexpr int kTileRows = 4;
      const int count = static_cast<int>(members.size());
      const int rows = std::max(count, kTileRows);
      obs_batch_.Resize(rows, first.snapshot->observation_dim());
      rngs_.assign(static_cast<size_t>(rows), nullptr);
      for (int r = 0; r < count; ++r) {
        Session& s = *sessions_[static_cast<size_t>(members[static_cast<size_t>(r)])];
        std::copy(s.observation.begin(), s.observation.end(),
                  obs_batch_.RowPtr(r));
        if (!s.config.greedy && s.stage < DegradeStage::kGreedy) {
          rngs_[static_cast<size_t>(r)] = &s.act_rng;
        }
      }
      for (int r = count; r < rows; ++r) {
        std::copy(obs_batch_.RowPtr(0),
                  obs_batch_.RowPtr(0) + obs_batch_.cols(),
                  obs_batch_.RowPtr(r));
      }
      std::vector<PolicyStep> group_acts = policy->ActBatch(obs_batch_, rngs_);
      for (int r = 0; r < count; ++r) {
        acts[static_cast<size_t>(members[static_cast<size_t>(r)])] =
            std::move(group_acts[static_cast<size_t>(r)]);
      }
    } else {
      // Baseline path: one forward per session (what bench_serve compares
      // the batched path against).
      for (int idx : members) {
        Session& s = *sessions_[static_cast<size_t>(idx)];
        const bool greedy =
            s.config.greedy || s.stage >= DegradeStage::kGreedy;
        acts[static_cast<size_t>(idx)] =
            greedy ? policy->ActGreedy(s.observation)
                   : policy->Act(s.observation, &s.act_rng);
      }
    }
  }

  // Pre-step screening: a policy that produced non-finite outputs for a
  // row must not drive that session's environment at all. The session is
  // quarantined; its environment was never touched this tick.
  slots_.assign(static_cast<size_t>(live), StepSlot{});
  for (int i = 0; i < live; ++i) {
    const PolicyStep& act = acts[static_cast<size_t>(i)];
    if (!std::isfinite(act.log_prob) || !std::isfinite(act.value)) {
      slots_[static_cast<size_t>(i)].status = Status::Internal(
          "non-finite policy output: log_prob=" +
          std::to_string(act.log_prob) +
          " value=" + std::to_string(act.value));
    }
  }

  // 2. Parallel step: index-addressed slots; a worker touches only its
  // session's environment plus the internally synchronized cache. Each
  // step is timed against the monotonic deadline clock; failures land in
  // the slot's Status and never escape the session's fault domain.
  pool_->ParallelFor(live, [&](int i) {
    StepSlot& slot = slots_[static_cast<size_t>(i)];
    if (!slot.status.ok()) return;  // screened out before stepping
    Session& s = *sessions_[static_cast<size_t>(i)];
    if (options_.fault_injection.env_step) {
      Status injected = options_.fault_injection.env_step(s.id, s.steps_done);
      if (!injected.ok()) {
        slot.status = std::move(injected);
        return;
      }
    }
    const int64_t start = MonotonicNanos();
    Result<StepOutcome> stepped =
        TryApplyAction(s.env.get(), acts[static_cast<size_t>(i)].action);
    slot.duration_nanos = MonotonicNanos() - start;
    if (options_.fault_injection.step_duration_nanos) {
      slot.duration_nanos =
          options_.fault_injection.step_duration_nanos(s.id, s.steps_done);
    }
    if (!stepped.ok()) {
      slot.status = stepped.status();
      return;
    }
    slot.outcome = std::move(stepped).value();
    // Screen the step's products: a non-finite reward or observation
    // element is a poisoned session that must not reach the next batch.
    if (!std::isfinite(slot.outcome.reward)) {
      slot.status = Status::Internal("non-finite reward: " +
                                     std::to_string(slot.outcome.reward));
      return;
    }
    const int bad = FirstNonFinite(slot.outcome.observation);
    if (bad >= 0) {
      slot.status = Status::Internal("non-finite observation element " +
                                     std::to_string(bad));
      return;
    }
    slot.executed = true;
  });

  // 3. Serial commit in admission order: quarantine, record, walk the
  // degradation ladder, retire, reset.
  int executed_steps = 0;
  int64_t duration_sum = 0;
  for (int i = 0; i < live; ++i) {
    Session& s = *sessions_[static_cast<size_t>(i)];
    StepSlot& slot = slots_[static_cast<size_t>(i)];
    if (!slot.status.ok()) {
      LogSessionEvent(
          "quarantine", s,
          "\"code\":" + JsonString(StatusCodeName(slot.status.code())) +
              ",\"detail\":" + JsonString(slot.status.message()));
      Retire(static_cast<size_t>(i), RetireReason::kQuarantined,
             std::move(slot.status), /*env_healthy=*/false);
      continue;
    }
    s.trace.steps.push_back(RecordStep(slot.outcome, *s.env));
    s.trace.total_reward += slot.outcome.reward;
    ++s.steps_done;
    ++steps_served_;
    ++executed_steps;
    duration_sum += slot.duration_nanos;
    if (s.stage >= DegradeStage::kNoDiversity) {
      ++s.degraded_steps;
      ++stats_.degraded_steps;
      if (s.stage >= DegradeStage::kGreedy) ++stats_.degraded_greedy_steps;
    }
    if (s.steps_done >= s.effective_max_steps) {
      Retire(static_cast<size_t>(i), RetireReason::kCompleted, Status::OK(),
             /*env_healthy=*/true);
      continue;
    }
    if (options_.step_deadline_nanos > 0 &&
        slot.duration_nanos > options_.step_deadline_nanos) {
      // The overrunning step stays in the notebook; the *next* step runs
      // one stage further down the ladder (or not at all).
      if (EscalateDegrade(static_cast<size_t>(i))) continue;
    }
    if (slot.outcome.done) {
      // Episode boundary inside a longer session: the finished notebook
      // joins the corpus, then the next one starts. (A session completing
      // its step budget was retired above — registered there, not twice.)
      RegisterNotebook(s);
      s.observation = s.env->Reset();
    } else {
      s.observation = std::move(slot.outcome.observation);
    }
  }
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), nullptr),
                  sessions_.end());
  overloaded_ = options_.step_deadline_nanos > 0 && executed_steps > 0 &&
                duration_sum / executed_steps > options_.step_deadline_nanos;
  return executed_steps;
}

void SessionManager::Drain() {
  while (!sessions_.empty()) Tick();
}

int SessionManager::HardStop() {
  int stopped = 0;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (!sessions_[i]) continue;
    LogSessionEvent("hard_stop", *sessions_[i], "");
    Retire(i, RetireReason::kHardStopped, Status::OK(), /*env_healthy=*/true);
    ++stopped;
  }
  sessions_.clear();
  return stopped;
}

Status SessionManager::ReloadSnapshot(const std::string& path) {
  Status last;
  for (int attempt = 0; attempt <= options_.reload_retries; ++attempt) {
    if (attempt > 0) {
      const int64_t backoff = options_.reload_backoff_nanos << (attempt - 1);
      if (options_.reload_sleep) {
        options_.reload_sleep(backoff);
      } else {
        SleepForNanos(backoff);
      }
    }
    // The new snapshot is built against the serving dataset and options,
    // so LoadPolicySnapshot's architecture validation guarantees every
    // accepted file is observation/action-compatible with live sessions.
    Result<std::shared_ptr<PolicySnapshot>> loaded = LoadPolicySnapshot(
        snapshot_->dataset(), snapshot_->options(), path);
    if (loaded.ok()) {
      snapshot_ = std::move(loaded).value();
      ++stats_.reload_successes;
      if (health_log_.enabled()) {
        health_log_.Append("\"type\":\"reload_ok\",\"path\":" +
                           JsonString(path) +
                           ",\"attempt\":" + std::to_string(attempt));
      }
      return Status::OK();
    }
    last = loaded.status();
    if (health_log_.enabled()) {
      health_log_.Append(
          "\"type\":\"reload_fail\",\"path\":" + JsonString(path) +
          ",\"attempt\":" + std::to_string(attempt) +
          ",\"code\":" + JsonString(StatusCodeName(last.code())) +
          ",\"detail\":" + JsonString(last.message()));
    }
  }
  ++stats_.reload_failures;
  if (health_log_.enabled()) {
    health_log_.Append("\"type\":\"reload_giveup\",\"path\":" +
                       JsonString(path) + ",\"attempts\":" +
                       std::to_string(options_.reload_retries + 1));
  }
  return last;
}

std::vector<SessionOutcome> SessionManager::TakeCompleted() {
  std::vector<SessionOutcome> out = std::move(completed_);
  completed_.clear();
  return out;
}

std::vector<NotebookStore::Match> SessionManager::QuerySimilarNotebooks(
    const std::vector<std::vector<double>>& display_vectors, int k) const {
  if (!options_.notebook_store) return {};
  return options_.notebook_store->TopK(display_vectors, k);
}

SessionTrace ServeSingleSessionSerial(const PolicySnapshot& snapshot,
                                      const SessionConfig& config,
                                      RewardSignal* reward) {
  EnvConfig env_config = snapshot.options().env;
  env_config.seed = config.seed;
  EdaEnvironment env(snapshot.dataset(), env_config);
  env.SetRewardSignal(reward);
  Rng act_rng(ActingStreamSeed(config.seed));
  const int max_steps = EffectiveMaxSteps(config, env_config);

  SessionTrace trace;
  trace.seed = config.seed;
  trace.steps.reserve(static_cast<size_t>(max_steps));
  std::vector<double> observation = env.Reset();
  TwofoldPolicy* policy = snapshot.policy();
  for (int step = 0; step < max_steps; ++step) {
    const PolicyStep act = config.greedy ? policy->ActGreedy(observation)
                                         : policy->Act(observation, &act_rng);
    StepOutcome out = ApplyAction(&env, act.action);
    trace.steps.push_back(RecordStep(out, env));
    trace.total_reward += out.reward;
    if (out.done && step + 1 < max_steps) {
      observation = env.Reset();
    } else {
      observation = std::move(out.observation);
    }
  }
  return trace;
}

}  // namespace atena
